(function() {
    const implementors = Object.fromEntries([["ctc_dsp",[["impl&lt;R: <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/std/io/trait.Read.html\" title=\"trait std::io::Read\">Read</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"ctc_dsp/io/struct.Cf32Reader.html\" title=\"struct ctc_dsp::io::Cf32Reader\">Cf32Reader</a>&lt;R&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[464]}