(function() {
    const implementors = Object.fromEntries([["ctc_dsp",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/accum/trait.Sum.html\" title=\"trait core::iter::traits::accum::Sum\">Sum</a> for <a class=\"struct\" href=\"ctc_dsp/complex/struct.Complex.html\" title=\"struct ctc_dsp::complex::Complex\">Complex</a>",0],["impl&lt;'a&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/accum/trait.Sum.html\" title=\"trait core::iter::traits::accum::Sum\">Sum</a>&lt;&amp;'a <a class=\"struct\" href=\"ctc_dsp/complex/struct.Complex.html\" title=\"struct ctc_dsp::complex::Complex\">Complex</a>&gt; for <a class=\"struct\" href=\"ctc_dsp/complex/struct.Complex.html\" title=\"struct ctc_dsp::complex::Complex\">Complex</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[736]}