(function() {
    const implementors = Object.fromEntries([["ctc_zigbee",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ctc_zigbee/channels/struct.WifiChannel.html\" title=\"struct ctc_zigbee::channels::WifiChannel\">WifiChannel</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"ctc_zigbee/channels/struct.ZigbeeChannel.html\" title=\"struct ctc_zigbee::channels::ZigbeeChannel\">ZigbeeChannel</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[580]}