(function() {
    const implementors = Object.fromEntries([["ctc_dsp",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a> for <a class=\"struct\" href=\"ctc_dsp/complex/struct.Complex.html\" title=\"struct ctc_dsp::complex::Complex\">Complex</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[285]}