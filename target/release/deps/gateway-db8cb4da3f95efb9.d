/root/repo/target/release/deps/gateway-db8cb4da3f95efb9.d: crates/bench/benches/gateway.rs

/root/repo/target/release/deps/gateway-db8cb4da3f95efb9: crates/bench/benches/gateway.rs

crates/bench/benches/gateway.rs:
