/root/repo/target/release/deps/ctc_channel-5f142f854c1d8e24.d: crates/channel/src/lib.rs crates/channel/src/fading.rs crates/channel/src/hardware.rs crates/channel/src/impairments.rs crates/channel/src/interference.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs

/root/repo/target/release/deps/libctc_channel-5f142f854c1d8e24.rlib: crates/channel/src/lib.rs crates/channel/src/fading.rs crates/channel/src/hardware.rs crates/channel/src/impairments.rs crates/channel/src/interference.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs

/root/repo/target/release/deps/libctc_channel-5f142f854c1d8e24.rmeta: crates/channel/src/lib.rs crates/channel/src/fading.rs crates/channel/src/hardware.rs crates/channel/src/impairments.rs crates/channel/src/interference.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs

crates/channel/src/lib.rs:
crates/channel/src/fading.rs:
crates/channel/src/hardware.rs:
crates/channel/src/impairments.rs:
crates/channel/src/interference.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
