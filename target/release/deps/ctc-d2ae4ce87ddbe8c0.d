/root/repo/target/release/deps/ctc-d2ae4ce87ddbe8c0.d: crates/cli/src/main.rs

/root/repo/target/release/deps/ctc-d2ae4ce87ddbe8c0: crates/cli/src/main.rs

crates/cli/src/main.rs:
