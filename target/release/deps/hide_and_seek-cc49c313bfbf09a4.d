/root/repo/target/release/deps/hide_and_seek-cc49c313bfbf09a4.d: src/lib.rs

/root/repo/target/release/deps/libhide_and_seek-cc49c313bfbf09a4.rlib: src/lib.rs

/root/repo/target/release/deps/libhide_and_seek-cc49c313bfbf09a4.rmeta: src/lib.rs

src/lib.rs:
