/root/repo/target/release/deps/experiments-439905bb8fcafe74.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-439905bb8fcafe74: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
