/root/repo/target/release/deps/ctc_gateway-e09d95df5d78efea.d: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

/root/repo/target/release/deps/libctc_gateway-e09d95df5d78efea.rlib: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

/root/repo/target/release/deps/libctc_gateway-e09d95df5d78efea.rmeta: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

crates/gateway/src/lib.rs:
crates/gateway/src/json.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/pipeline.rs:
crates/gateway/src/queue.rs:
crates/gateway/src/source.rs:
