/root/repo/target/release/deps/ctc_zigbee-fcb9dc3b51b2306a.d: crates/zigbee/src/lib.rs crates/zigbee/src/app.rs crates/zigbee/src/channels.rs crates/zigbee/src/chipmap.rs crates/zigbee/src/frame.rs crates/zigbee/src/frontend.rs crates/zigbee/src/mac.rs crates/zigbee/src/modem.rs crates/zigbee/src/rx.rs crates/zigbee/src/tx.rs

/root/repo/target/release/deps/libctc_zigbee-fcb9dc3b51b2306a.rlib: crates/zigbee/src/lib.rs crates/zigbee/src/app.rs crates/zigbee/src/channels.rs crates/zigbee/src/chipmap.rs crates/zigbee/src/frame.rs crates/zigbee/src/frontend.rs crates/zigbee/src/mac.rs crates/zigbee/src/modem.rs crates/zigbee/src/rx.rs crates/zigbee/src/tx.rs

/root/repo/target/release/deps/libctc_zigbee-fcb9dc3b51b2306a.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/app.rs crates/zigbee/src/channels.rs crates/zigbee/src/chipmap.rs crates/zigbee/src/frame.rs crates/zigbee/src/frontend.rs crates/zigbee/src/mac.rs crates/zigbee/src/modem.rs crates/zigbee/src/rx.rs crates/zigbee/src/tx.rs

crates/zigbee/src/lib.rs:
crates/zigbee/src/app.rs:
crates/zigbee/src/channels.rs:
crates/zigbee/src/chipmap.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/frontend.rs:
crates/zigbee/src/mac.rs:
crates/zigbee/src/modem.rs:
crates/zigbee/src/rx.rs:
crates/zigbee/src/tx.rs:
