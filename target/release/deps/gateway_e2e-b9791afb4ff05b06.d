/root/repo/target/release/deps/gateway_e2e-b9791afb4ff05b06.d: crates/gateway/tests/gateway_e2e.rs

/root/repo/target/release/deps/gateway_e2e-b9791afb4ff05b06: crates/gateway/tests/gateway_e2e.rs

crates/gateway/tests/gateway_e2e.rs:
