/root/repo/target/release/deps/ctc_dsp-45cc7ca4e7875ec7.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/cumulants.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/fractional.rs crates/dsp/src/io.rs crates/dsp/src/kmeans.rs crates/dsp/src/linalg.rs crates/dsp/src/metrics.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/spectrogram.rs

/root/repo/target/release/deps/ctc_dsp-45cc7ca4e7875ec7: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/cumulants.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/fractional.rs crates/dsp/src/io.rs crates/dsp/src/kmeans.rs crates/dsp/src/linalg.rs crates/dsp/src/metrics.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/spectrogram.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/cumulants.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/fractional.rs:
crates/dsp/src/io.rs:
crates/dsp/src/kmeans.rs:
crates/dsp/src/linalg.rs:
crates/dsp/src/metrics.rs:
crates/dsp/src/psd.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/spectrogram.rs:
