/root/repo/target/release/deps/ctc_gateway-cf281f300ccd9336.d: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

/root/repo/target/release/deps/ctc_gateway-cf281f300ccd9336: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

crates/gateway/src/lib.rs:
crates/gateway/src/json.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/pipeline.rs:
crates/gateway/src/queue.rs:
crates/gateway/src/source.rs:
