/root/repo/target/release/deps/ctc_bench-83c5beff4eb88c6c.d: crates/bench/src/lib.rs crates/bench/src/engine.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/advanced.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/protocol.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/trials.rs

/root/repo/target/release/deps/libctc_bench-83c5beff4eb88c6c.rlib: crates/bench/src/lib.rs crates/bench/src/engine.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/advanced.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/protocol.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/trials.rs

/root/repo/target/release/deps/libctc_bench-83c5beff4eb88c6c.rmeta: crates/bench/src/lib.rs crates/bench/src/engine.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/advanced.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/protocol.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/trials.rs

crates/bench/src/lib.rs:
crates/bench/src/engine.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/advanced.rs:
crates/bench/src/experiments/extensions.rs:
crates/bench/src/experiments/figures.rs:
crates/bench/src/experiments/protocol.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/report.rs:
crates/bench/src/trials.rs:
