/root/repo/target/release/deps/ctc-58b399e035fac510.d: crates/cli/src/main.rs

/root/repo/target/release/deps/ctc-58b399e035fac510: crates/cli/src/main.rs

crates/cli/src/main.rs:
