/root/repo/target/release/deps/ctc_wifi-5e4b665b82abdaf2.d: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs

/root/repo/target/release/deps/libctc_wifi-5e4b665b82abdaf2.rlib: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs

/root/repo/target/release/deps/libctc_wifi-5e4b665b82abdaf2.rmeta: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs

crates/wifi/src/lib.rs:
crates/wifi/src/convolutional.rs:
crates/wifi/src/interleaver.rs:
crates/wifi/src/mac.rs:
crates/wifi/src/ofdm.rs:
crates/wifi/src/plcp.rs:
crates/wifi/src/qam.rs:
crates/wifi/src/rx.rs:
crates/wifi/src/scrambler.rs:
crates/wifi/src/tx.rs:
