/root/repo/target/release/deps/hide_and_seek-f5d694ba890dfd73.d: src/lib.rs

/root/repo/target/release/deps/libhide_and_seek-f5d694ba890dfd73.rlib: src/lib.rs

/root/repo/target/release/deps/libhide_and_seek-f5d694ba890dfd73.rmeta: src/lib.rs

src/lib.rs:
