/root/repo/target/release/deps/ctc_core-8a3e8f0264d26162.d: crates/core/src/lib.rs crates/core/src/attack/mod.rs crates/core/src/attack/emulator.rs crates/core/src/attack/evasion.rs crates/core/src/attack/fullframe.rs crates/core/src/attack/listener.rs crates/core/src/attack/quantizer.rs crates/core/src/attack/spectrum.rs crates/core/src/defense/mod.rs crates/core/src/defense/alternatives.rs crates/core/src/defense/detector.rs crates/core/src/defense/features.rs crates/core/src/defense/naive.rs crates/core/src/defense/stream.rs crates/core/src/error.rs crates/core/src/scenario.rs crates/core/src/waveform.rs

/root/repo/target/release/deps/ctc_core-8a3e8f0264d26162: crates/core/src/lib.rs crates/core/src/attack/mod.rs crates/core/src/attack/emulator.rs crates/core/src/attack/evasion.rs crates/core/src/attack/fullframe.rs crates/core/src/attack/listener.rs crates/core/src/attack/quantizer.rs crates/core/src/attack/spectrum.rs crates/core/src/defense/mod.rs crates/core/src/defense/alternatives.rs crates/core/src/defense/detector.rs crates/core/src/defense/features.rs crates/core/src/defense/naive.rs crates/core/src/defense/stream.rs crates/core/src/error.rs crates/core/src/scenario.rs crates/core/src/waveform.rs

crates/core/src/lib.rs:
crates/core/src/attack/mod.rs:
crates/core/src/attack/emulator.rs:
crates/core/src/attack/evasion.rs:
crates/core/src/attack/fullframe.rs:
crates/core/src/attack/listener.rs:
crates/core/src/attack/quantizer.rs:
crates/core/src/attack/spectrum.rs:
crates/core/src/defense/mod.rs:
crates/core/src/defense/alternatives.rs:
crates/core/src/defense/detector.rs:
crates/core/src/defense/features.rs:
crates/core/src/defense/naive.rs:
crates/core/src/defense/stream.rs:
crates/core/src/error.rs:
crates/core/src/scenario.rs:
crates/core/src/waveform.rs:
