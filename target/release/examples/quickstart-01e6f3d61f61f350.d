/root/repo/target/release/examples/quickstart-01e6f3d61f61f350.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-01e6f3d61f61f350: examples/quickstart.rs

examples/quickstart.rs:
