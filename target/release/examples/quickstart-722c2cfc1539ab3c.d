/root/repo/target/release/examples/quickstart-722c2cfc1539ab3c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-722c2cfc1539ab3c: examples/quickstart.rs

examples/quickstart.rs:
