/root/repo/target/release/examples/gateway_monitor-0f17dc40c990b9d4.d: examples/gateway_monitor.rs

/root/repo/target/release/examples/gateway_monitor-0f17dc40c990b9d4: examples/gateway_monitor.rs

examples/gateway_monitor.rs:
