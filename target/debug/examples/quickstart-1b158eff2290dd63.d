/root/repo/target/debug/examples/quickstart-1b158eff2290dd63.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1b158eff2290dd63: examples/quickstart.rs

examples/quickstart.rs:
