/root/repo/target/debug/examples/spectrum_anatomy-9c2a2d57a9c97744.d: examples/spectrum_anatomy.rs

/root/repo/target/debug/examples/spectrum_anatomy-9c2a2d57a9c97744: examples/spectrum_anatomy.rs

examples/spectrum_anatomy.rs:
