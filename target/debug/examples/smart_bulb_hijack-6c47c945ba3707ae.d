/root/repo/target/debug/examples/smart_bulb_hijack-6c47c945ba3707ae.d: examples/smart_bulb_hijack.rs

/root/repo/target/debug/examples/smart_bulb_hijack-6c47c945ba3707ae: examples/smart_bulb_hijack.rs

examples/smart_bulb_hijack.rs:
