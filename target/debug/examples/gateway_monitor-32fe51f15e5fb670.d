/root/repo/target/debug/examples/gateway_monitor-32fe51f15e5fb670.d: examples/gateway_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libgateway_monitor-32fe51f15e5fb670.rmeta: examples/gateway_monitor.rs Cargo.toml

examples/gateway_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
