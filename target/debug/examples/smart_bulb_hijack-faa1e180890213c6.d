/root/repo/target/debug/examples/smart_bulb_hijack-faa1e180890213c6.d: examples/smart_bulb_hijack.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_bulb_hijack-faa1e180890213c6.rmeta: examples/smart_bulb_hijack.rs Cargo.toml

examples/smart_bulb_hijack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
