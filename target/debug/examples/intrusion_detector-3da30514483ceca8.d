/root/repo/target/debug/examples/intrusion_detector-3da30514483ceca8.d: examples/intrusion_detector.rs Cargo.toml

/root/repo/target/debug/examples/libintrusion_detector-3da30514483ceca8.rmeta: examples/intrusion_detector.rs Cargo.toml

examples/intrusion_detector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
