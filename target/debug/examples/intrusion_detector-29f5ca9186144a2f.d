/root/repo/target/debug/examples/intrusion_detector-29f5ca9186144a2f.d: examples/intrusion_detector.rs

/root/repo/target/debug/examples/intrusion_detector-29f5ca9186144a2f: examples/intrusion_detector.rs

examples/intrusion_detector.rs:
