/root/repo/target/debug/examples/quickstart-e90beb38751d15b1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e90beb38751d15b1: examples/quickstart.rs

examples/quickstart.rs:
