/root/repo/target/debug/examples/gateway_monitor-d5595fd70cbf3efe.d: examples/gateway_monitor.rs

/root/repo/target/debug/examples/gateway_monitor-d5595fd70cbf3efe: examples/gateway_monitor.rs

examples/gateway_monitor.rs:
