/root/repo/target/debug/examples/dual_protocol_frame-26e44b9df6aeb367.d: examples/dual_protocol_frame.rs Cargo.toml

/root/repo/target/debug/examples/libdual_protocol_frame-26e44b9df6aeb367.rmeta: examples/dual_protocol_frame.rs Cargo.toml

examples/dual_protocol_frame.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
