/root/repo/target/debug/examples/gateway_monitor-788a8caca5f22047.d: examples/gateway_monitor.rs

/root/repo/target/debug/examples/gateway_monitor-788a8caca5f22047: examples/gateway_monitor.rs

examples/gateway_monitor.rs:
