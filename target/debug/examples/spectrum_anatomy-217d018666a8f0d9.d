/root/repo/target/debug/examples/spectrum_anatomy-217d018666a8f0d9.d: examples/spectrum_anatomy.rs

/root/repo/target/debug/examples/spectrum_anatomy-217d018666a8f0d9: examples/spectrum_anatomy.rs

examples/spectrum_anatomy.rs:
