/root/repo/target/debug/examples/spectrum_anatomy-5cdb1a8405585e2a.d: examples/spectrum_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/libspectrum_anatomy-5cdb1a8405585e2a.rmeta: examples/spectrum_anatomy.rs Cargo.toml

examples/spectrum_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
