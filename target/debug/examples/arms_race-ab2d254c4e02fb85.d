/root/repo/target/debug/examples/arms_race-ab2d254c4e02fb85.d: examples/arms_race.rs

/root/repo/target/debug/examples/arms_race-ab2d254c4e02fb85: examples/arms_race.rs

examples/arms_race.rs:
