/root/repo/target/debug/examples/gateway_monitor-9eb247927678f945.d: examples/gateway_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libgateway_monitor-9eb247927678f945.rmeta: examples/gateway_monitor.rs Cargo.toml

examples/gateway_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
