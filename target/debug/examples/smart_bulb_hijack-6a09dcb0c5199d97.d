/root/repo/target/debug/examples/smart_bulb_hijack-6a09dcb0c5199d97.d: examples/smart_bulb_hijack.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_bulb_hijack-6a09dcb0c5199d97.rmeta: examples/smart_bulb_hijack.rs Cargo.toml

examples/smart_bulb_hijack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
