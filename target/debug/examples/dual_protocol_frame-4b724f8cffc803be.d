/root/repo/target/debug/examples/dual_protocol_frame-4b724f8cffc803be.d: examples/dual_protocol_frame.rs Cargo.toml

/root/repo/target/debug/examples/libdual_protocol_frame-4b724f8cffc803be.rmeta: examples/dual_protocol_frame.rs Cargo.toml

examples/dual_protocol_frame.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
