/root/repo/target/debug/examples/arms_race-7eb3f91fff740a70.d: examples/arms_race.rs Cargo.toml

/root/repo/target/debug/examples/libarms_race-7eb3f91fff740a70.rmeta: examples/arms_race.rs Cargo.toml

examples/arms_race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
