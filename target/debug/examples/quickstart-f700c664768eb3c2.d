/root/repo/target/debug/examples/quickstart-f700c664768eb3c2.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f700c664768eb3c2.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
