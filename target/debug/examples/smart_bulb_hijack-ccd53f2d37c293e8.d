/root/repo/target/debug/examples/smart_bulb_hijack-ccd53f2d37c293e8.d: examples/smart_bulb_hijack.rs

/root/repo/target/debug/examples/smart_bulb_hijack-ccd53f2d37c293e8: examples/smart_bulb_hijack.rs

examples/smart_bulb_hijack.rs:
