/root/repo/target/debug/examples/arms_race-e8dbc736ef77ec47.d: examples/arms_race.rs Cargo.toml

/root/repo/target/debug/examples/libarms_race-e8dbc736ef77ec47.rmeta: examples/arms_race.rs Cargo.toml

examples/arms_race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
