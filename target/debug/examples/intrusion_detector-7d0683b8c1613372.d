/root/repo/target/debug/examples/intrusion_detector-7d0683b8c1613372.d: examples/intrusion_detector.rs Cargo.toml

/root/repo/target/debug/examples/libintrusion_detector-7d0683b8c1613372.rmeta: examples/intrusion_detector.rs Cargo.toml

examples/intrusion_detector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
