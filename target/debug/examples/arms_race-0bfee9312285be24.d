/root/repo/target/debug/examples/arms_race-0bfee9312285be24.d: examples/arms_race.rs

/root/repo/target/debug/examples/arms_race-0bfee9312285be24: examples/arms_race.rs

examples/arms_race.rs:
