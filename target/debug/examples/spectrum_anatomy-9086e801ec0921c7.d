/root/repo/target/debug/examples/spectrum_anatomy-9086e801ec0921c7.d: examples/spectrum_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/libspectrum_anatomy-9086e801ec0921c7.rmeta: examples/spectrum_anatomy.rs Cargo.toml

examples/spectrum_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
