/root/repo/target/debug/examples/intrusion_detector-441d7844d71ac0df.d: examples/intrusion_detector.rs

/root/repo/target/debug/examples/intrusion_detector-441d7844d71ac0df: examples/intrusion_detector.rs

examples/intrusion_detector.rs:
