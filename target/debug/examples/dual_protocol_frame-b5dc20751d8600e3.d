/root/repo/target/debug/examples/dual_protocol_frame-b5dc20751d8600e3.d: examples/dual_protocol_frame.rs

/root/repo/target/debug/examples/dual_protocol_frame-b5dc20751d8600e3: examples/dual_protocol_frame.rs

examples/dual_protocol_frame.rs:
