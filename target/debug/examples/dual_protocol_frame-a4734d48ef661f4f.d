/root/repo/target/debug/examples/dual_protocol_frame-a4734d48ef661f4f.d: examples/dual_protocol_frame.rs

/root/repo/target/debug/examples/dual_protocol_frame-a4734d48ef661f4f: examples/dual_protocol_frame.rs

examples/dual_protocol_frame.rs:
