/root/repo/target/debug/deps/ctc_wifi-874cb51ca98ab876.d: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs Cargo.toml

/root/repo/target/debug/deps/libctc_wifi-874cb51ca98ab876.rmeta: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs Cargo.toml

crates/wifi/src/lib.rs:
crates/wifi/src/convolutional.rs:
crates/wifi/src/interleaver.rs:
crates/wifi/src/mac.rs:
crates/wifi/src/ofdm.rs:
crates/wifi/src/plcp.rs:
crates/wifi/src/qam.rs:
crates/wifi/src/rx.rs:
crates/wifi/src/scrambler.rs:
crates/wifi/src/tx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
