/root/repo/target/debug/deps/end_to_end_defense-f4381d9535f924ee.d: tests/end_to_end_defense.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_defense-f4381d9535f924ee.rmeta: tests/end_to_end_defense.rs Cargo.toml

tests/end_to_end_defense.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
