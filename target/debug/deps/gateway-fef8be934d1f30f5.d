/root/repo/target/debug/deps/gateway-fef8be934d1f30f5.d: crates/bench/benches/gateway.rs Cargo.toml

/root/repo/target/debug/deps/libgateway-fef8be934d1f30f5.rmeta: crates/bench/benches/gateway.rs Cargo.toml

crates/bench/benches/gateway.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
