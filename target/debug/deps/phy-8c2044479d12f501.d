/root/repo/target/debug/deps/phy-8c2044479d12f501.d: crates/bench/benches/phy.rs Cargo.toml

/root/repo/target/debug/deps/libphy-8c2044479d12f501.rmeta: crates/bench/benches/phy.rs Cargo.toml

crates/bench/benches/phy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
