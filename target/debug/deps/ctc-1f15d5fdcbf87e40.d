/root/repo/target/debug/deps/ctc-1f15d5fdcbf87e40.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libctc-1f15d5fdcbf87e40.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
