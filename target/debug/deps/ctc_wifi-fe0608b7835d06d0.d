/root/repo/target/debug/deps/ctc_wifi-fe0608b7835d06d0.d: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs

/root/repo/target/debug/deps/libctc_wifi-fe0608b7835d06d0.rmeta: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs

crates/wifi/src/lib.rs:
crates/wifi/src/convolutional.rs:
crates/wifi/src/interleaver.rs:
crates/wifi/src/mac.rs:
crates/wifi/src/ofdm.rs:
crates/wifi/src/plcp.rs:
crates/wifi/src/qam.rs:
crates/wifi/src/rx.rs:
crates/wifi/src/scrambler.rs:
crates/wifi/src/tx.rs:
