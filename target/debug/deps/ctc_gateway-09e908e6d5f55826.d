/root/repo/target/debug/deps/ctc_gateway-09e908e6d5f55826.d: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

/root/repo/target/debug/deps/libctc_gateway-09e908e6d5f55826.rmeta: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

crates/gateway/src/lib.rs:
crates/gateway/src/json.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/pipeline.rs:
crates/gateway/src/queue.rs:
crates/gateway/src/source.rs:
