/root/repo/target/debug/deps/experiments-cac3b49778c5795b.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-cac3b49778c5795b: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
