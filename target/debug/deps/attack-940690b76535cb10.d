/root/repo/target/debug/deps/attack-940690b76535cb10.d: crates/bench/benches/attack.rs Cargo.toml

/root/repo/target/debug/deps/libattack-940690b76535cb10.rmeta: crates/bench/benches/attack.rs Cargo.toml

crates/bench/benches/attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
