/root/repo/target/debug/deps/experiments-1d6b1bf507a68cdd.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-1d6b1bf507a68cdd.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
