/root/repo/target/debug/deps/phy_interop-a2b7de3893e89e21.d: tests/phy_interop.rs Cargo.toml

/root/repo/target/debug/deps/libphy_interop-a2b7de3893e89e21.rmeta: tests/phy_interop.rs Cargo.toml

tests/phy_interop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
