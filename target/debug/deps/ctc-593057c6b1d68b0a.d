/root/repo/target/debug/deps/ctc-593057c6b1d68b0a.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ctc-593057c6b1d68b0a: crates/cli/src/main.rs

crates/cli/src/main.rs:
