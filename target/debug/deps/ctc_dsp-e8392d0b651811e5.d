/root/repo/target/debug/deps/ctc_dsp-e8392d0b651811e5.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/cumulants.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/fractional.rs crates/dsp/src/io.rs crates/dsp/src/kmeans.rs crates/dsp/src/linalg.rs crates/dsp/src/metrics.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/spectrogram.rs Cargo.toml

/root/repo/target/debug/deps/libctc_dsp-e8392d0b651811e5.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/cumulants.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/fractional.rs crates/dsp/src/io.rs crates/dsp/src/kmeans.rs crates/dsp/src/linalg.rs crates/dsp/src/metrics.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/spectrogram.rs Cargo.toml

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/cumulants.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/fractional.rs:
crates/dsp/src/io.rs:
crates/dsp/src/kmeans.rs:
crates/dsp/src/linalg.rs:
crates/dsp/src/metrics.rs:
crates/dsp/src/psd.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/spectrogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
