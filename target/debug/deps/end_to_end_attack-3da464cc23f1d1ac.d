/root/repo/target/debug/deps/end_to_end_attack-3da464cc23f1d1ac.d: tests/end_to_end_attack.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_attack-3da464cc23f1d1ac.rmeta: tests/end_to_end_attack.rs Cargo.toml

tests/end_to_end_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
