/root/repo/target/debug/deps/full_stack-6fb2b9c8ce3801d8.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-6fb2b9c8ce3801d8: tests/full_stack.rs

tests/full_stack.rs:
