/root/repo/target/debug/deps/determinism-cca0fcf666ddaf2a.d: crates/bench/tests/determinism.rs

/root/repo/target/debug/deps/determinism-cca0fcf666ddaf2a: crates/bench/tests/determinism.rs

crates/bench/tests/determinism.rs:
