/root/repo/target/debug/deps/experiments-812e4fb4584c61d5.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-812e4fb4584c61d5: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
