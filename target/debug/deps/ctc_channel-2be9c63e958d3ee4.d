/root/repo/target/debug/deps/ctc_channel-2be9c63e958d3ee4.d: crates/channel/src/lib.rs crates/channel/src/fading.rs crates/channel/src/hardware.rs crates/channel/src/impairments.rs crates/channel/src/interference.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs

/root/repo/target/debug/deps/libctc_channel-2be9c63e958d3ee4.rmeta: crates/channel/src/lib.rs crates/channel/src/fading.rs crates/channel/src/hardware.rs crates/channel/src/impairments.rs crates/channel/src/interference.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs

crates/channel/src/lib.rs:
crates/channel/src/fading.rs:
crates/channel/src/hardware.rs:
crates/channel/src/impairments.rs:
crates/channel/src/interference.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
