/root/repo/target/debug/deps/ctc_bench-0fa8c54662729985.d: crates/bench/src/lib.rs crates/bench/src/engine.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/advanced.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/protocol.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/trials.rs

/root/repo/target/debug/deps/ctc_bench-0fa8c54662729985: crates/bench/src/lib.rs crates/bench/src/engine.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/advanced.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/protocol.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/trials.rs

crates/bench/src/lib.rs:
crates/bench/src/engine.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/advanced.rs:
crates/bench/src/experiments/extensions.rs:
crates/bench/src/experiments/figures.rs:
crates/bench/src/experiments/protocol.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/report.rs:
crates/bench/src/trials.rs:
