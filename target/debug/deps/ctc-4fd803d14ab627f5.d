/root/repo/target/debug/deps/ctc-4fd803d14ab627f5.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libctc-4fd803d14ab627f5.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
