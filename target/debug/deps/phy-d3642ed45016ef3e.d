/root/repo/target/debug/deps/phy-d3642ed45016ef3e.d: crates/bench/benches/phy.rs Cargo.toml

/root/repo/target/debug/deps/libphy-d3642ed45016ef3e.rmeta: crates/bench/benches/phy.rs Cargo.toml

crates/bench/benches/phy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
