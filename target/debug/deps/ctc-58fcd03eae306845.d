/root/repo/target/debug/deps/ctc-58fcd03eae306845.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ctc-58fcd03eae306845: crates/cli/src/main.rs

crates/cli/src/main.rs:
