/root/repo/target/debug/deps/ctc_channel-cb96c1e2f7e8704c.d: crates/channel/src/lib.rs crates/channel/src/fading.rs crates/channel/src/hardware.rs crates/channel/src/impairments.rs crates/channel/src/interference.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs Cargo.toml

/root/repo/target/debug/deps/libctc_channel-cb96c1e2f7e8704c.rmeta: crates/channel/src/lib.rs crates/channel/src/fading.rs crates/channel/src/hardware.rs crates/channel/src/impairments.rs crates/channel/src/interference.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs Cargo.toml

crates/channel/src/lib.rs:
crates/channel/src/fading.rs:
crates/channel/src/hardware.rs:
crates/channel/src/impairments.rs:
crates/channel/src/interference.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
