/root/repo/target/debug/deps/streaming_gateway-76665bd723f8e074.d: tests/streaming_gateway.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_gateway-76665bd723f8e074.rmeta: tests/streaming_gateway.rs Cargo.toml

tests/streaming_gateway.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
