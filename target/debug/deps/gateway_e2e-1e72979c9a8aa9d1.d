/root/repo/target/debug/deps/gateway_e2e-1e72979c9a8aa9d1.d: crates/gateway/tests/gateway_e2e.rs

/root/repo/target/debug/deps/gateway_e2e-1e72979c9a8aa9d1: crates/gateway/tests/gateway_e2e.rs

crates/gateway/tests/gateway_e2e.rs:
