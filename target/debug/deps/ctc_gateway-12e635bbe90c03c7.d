/root/repo/target/debug/deps/ctc_gateway-12e635bbe90c03c7.d: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs Cargo.toml

/root/repo/target/debug/deps/libctc_gateway-12e635bbe90c03c7.rmeta: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs Cargo.toml

crates/gateway/src/lib.rs:
crates/gateway/src/json.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/pipeline.rs:
crates/gateway/src/queue.rs:
crates/gateway/src/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
