/root/repo/target/debug/deps/end_to_end_defense-454ccebe3ec33049.d: tests/end_to_end_defense.rs

/root/repo/target/debug/deps/end_to_end_defense-454ccebe3ec33049: tests/end_to_end_defense.rs

tests/end_to_end_defense.rs:
