/root/repo/target/debug/deps/hide_and_seek-00b242d51ee14467.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhide_and_seek-00b242d51ee14467.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
