/root/repo/target/debug/deps/hide_and_seek-4568cb46caf7aa3d.d: src/lib.rs

/root/repo/target/debug/deps/libhide_and_seek-4568cb46caf7aa3d.rlib: src/lib.rs

/root/repo/target/debug/deps/libhide_and_seek-4568cb46caf7aa3d.rmeta: src/lib.rs

src/lib.rs:
