/root/repo/target/debug/deps/phy_interop-dd99470a73cc8598.d: tests/phy_interop.rs Cargo.toml

/root/repo/target/debug/deps/libphy_interop-dd99470a73cc8598.rmeta: tests/phy_interop.rs Cargo.toml

tests/phy_interop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
