/root/repo/target/debug/deps/full_stack-d1b85a660ef40a00.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-d1b85a660ef40a00: tests/full_stack.rs

tests/full_stack.rs:
