/root/repo/target/debug/deps/paper_claims-2d96f584dc36d74b.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-2d96f584dc36d74b.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
