/root/repo/target/debug/deps/ctc_gateway-f6a1df1c34ee884f.d: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

/root/repo/target/debug/deps/ctc_gateway-f6a1df1c34ee884f: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

crates/gateway/src/lib.rs:
crates/gateway/src/json.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/pipeline.rs:
crates/gateway/src/queue.rs:
crates/gateway/src/source.rs:
