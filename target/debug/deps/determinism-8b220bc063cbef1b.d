/root/repo/target/debug/deps/determinism-8b220bc063cbef1b.d: crates/bench/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-8b220bc063cbef1b.rmeta: crates/bench/tests/determinism.rs Cargo.toml

crates/bench/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
