/root/repo/target/debug/deps/phy_interop-d9b4532b66f785c2.d: tests/phy_interop.rs

/root/repo/target/debug/deps/phy_interop-d9b4532b66f785c2: tests/phy_interop.rs

tests/phy_interop.rs:
