/root/repo/target/debug/deps/ctc-fc830b67355e8c90.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libctc-fc830b67355e8c90.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
