/root/repo/target/debug/deps/ctc_gateway-6777aef7a9d69b20.d: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

/root/repo/target/debug/deps/ctc_gateway-6777aef7a9d69b20: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

crates/gateway/src/lib.rs:
crates/gateway/src/json.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/pipeline.rs:
crates/gateway/src/queue.rs:
crates/gateway/src/source.rs:
