/root/repo/target/debug/deps/ctc_gateway-c2f3e92032edf8d7.d: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

/root/repo/target/debug/deps/libctc_gateway-c2f3e92032edf8d7.rlib: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

/root/repo/target/debug/deps/libctc_gateway-c2f3e92032edf8d7.rmeta: crates/gateway/src/lib.rs crates/gateway/src/json.rs crates/gateway/src/metrics.rs crates/gateway/src/pipeline.rs crates/gateway/src/queue.rs crates/gateway/src/source.rs

crates/gateway/src/lib.rs:
crates/gateway/src/json.rs:
crates/gateway/src/metrics.rs:
crates/gateway/src/pipeline.rs:
crates/gateway/src/queue.rs:
crates/gateway/src/source.rs:
