/root/repo/target/debug/deps/ctc_bench-e53793322e37b5b8.d: crates/bench/src/lib.rs crates/bench/src/engine.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/advanced.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/protocol.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/trials.rs Cargo.toml

/root/repo/target/debug/deps/libctc_bench-e53793322e37b5b8.rmeta: crates/bench/src/lib.rs crates/bench/src/engine.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/advanced.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/protocol.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/trials.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/engine.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/advanced.rs:
crates/bench/src/experiments/extensions.rs:
crates/bench/src/experiments/figures.rs:
crates/bench/src/experiments/protocol.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/report.rs:
crates/bench/src/trials.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
