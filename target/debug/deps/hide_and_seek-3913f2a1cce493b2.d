/root/repo/target/debug/deps/hide_and_seek-3913f2a1cce493b2.d: src/lib.rs

/root/repo/target/debug/deps/hide_and_seek-3913f2a1cce493b2: src/lib.rs

src/lib.rs:
