/root/repo/target/debug/deps/ctc-aa2bfdf6afd96632.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ctc-aa2bfdf6afd96632: crates/cli/src/main.rs

crates/cli/src/main.rs:
