/root/repo/target/debug/deps/gateway_e2e-c81ab16adc9ae42d.d: crates/gateway/tests/gateway_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libgateway_e2e-c81ab16adc9ae42d.rmeta: crates/gateway/tests/gateway_e2e.rs Cargo.toml

crates/gateway/tests/gateway_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
