/root/repo/target/debug/deps/ctc_dsp-da79819c260de01f.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/cumulants.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/fractional.rs crates/dsp/src/io.rs crates/dsp/src/kmeans.rs crates/dsp/src/linalg.rs crates/dsp/src/metrics.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/spectrogram.rs

/root/repo/target/debug/deps/libctc_dsp-da79819c260de01f.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/cumulants.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/fractional.rs crates/dsp/src/io.rs crates/dsp/src/kmeans.rs crates/dsp/src/linalg.rs crates/dsp/src/metrics.rs crates/dsp/src/psd.rs crates/dsp/src/resample.rs crates/dsp/src/spectrogram.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/cumulants.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/fractional.rs:
crates/dsp/src/io.rs:
crates/dsp/src/kmeans.rs:
crates/dsp/src/linalg.rs:
crates/dsp/src/metrics.rs:
crates/dsp/src/psd.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/spectrogram.rs:
