/root/repo/target/debug/deps/hide_and_seek-3cc83efa1bc79565.d: src/lib.rs

/root/repo/target/debug/deps/hide_and_seek-3cc83efa1bc79565: src/lib.rs

src/lib.rs:
