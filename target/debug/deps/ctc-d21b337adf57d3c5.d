/root/repo/target/debug/deps/ctc-d21b337adf57d3c5.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libctc-d21b337adf57d3c5.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
