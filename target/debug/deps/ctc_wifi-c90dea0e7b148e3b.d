/root/repo/target/debug/deps/ctc_wifi-c90dea0e7b148e3b.d: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs

/root/repo/target/debug/deps/libctc_wifi-c90dea0e7b148e3b.rlib: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs

/root/repo/target/debug/deps/libctc_wifi-c90dea0e7b148e3b.rmeta: crates/wifi/src/lib.rs crates/wifi/src/convolutional.rs crates/wifi/src/interleaver.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm.rs crates/wifi/src/plcp.rs crates/wifi/src/qam.rs crates/wifi/src/rx.rs crates/wifi/src/scrambler.rs crates/wifi/src/tx.rs

crates/wifi/src/lib.rs:
crates/wifi/src/convolutional.rs:
crates/wifi/src/interleaver.rs:
crates/wifi/src/mac.rs:
crates/wifi/src/ofdm.rs:
crates/wifi/src/plcp.rs:
crates/wifi/src/qam.rs:
crates/wifi/src/rx.rs:
crates/wifi/src/scrambler.rs:
crates/wifi/src/tx.rs:
