/root/repo/target/debug/deps/streaming_gateway-5ec382e843556f60.d: tests/streaming_gateway.rs

/root/repo/target/debug/deps/streaming_gateway-5ec382e843556f60: tests/streaming_gateway.rs

tests/streaming_gateway.rs:
