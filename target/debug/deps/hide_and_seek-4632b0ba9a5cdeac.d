/root/repo/target/debug/deps/hide_and_seek-4632b0ba9a5cdeac.d: src/lib.rs

/root/repo/target/debug/deps/libhide_and_seek-4632b0ba9a5cdeac.rlib: src/lib.rs

/root/repo/target/debug/deps/libhide_and_seek-4632b0ba9a5cdeac.rmeta: src/lib.rs

src/lib.rs:
