/root/repo/target/debug/deps/end_to_end_defense-59266f0f837dcbac.d: tests/end_to_end_defense.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_defense-59266f0f837dcbac.rmeta: tests/end_to_end_defense.rs Cargo.toml

tests/end_to_end_defense.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
