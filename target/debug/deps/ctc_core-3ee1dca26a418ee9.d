/root/repo/target/debug/deps/ctc_core-3ee1dca26a418ee9.d: crates/core/src/lib.rs crates/core/src/attack/mod.rs crates/core/src/attack/emulator.rs crates/core/src/attack/evasion.rs crates/core/src/attack/fullframe.rs crates/core/src/attack/listener.rs crates/core/src/attack/quantizer.rs crates/core/src/attack/spectrum.rs crates/core/src/defense/mod.rs crates/core/src/defense/alternatives.rs crates/core/src/defense/detector.rs crates/core/src/defense/features.rs crates/core/src/defense/naive.rs crates/core/src/defense/stream.rs crates/core/src/error.rs crates/core/src/scenario.rs crates/core/src/waveform.rs Cargo.toml

/root/repo/target/debug/deps/libctc_core-3ee1dca26a418ee9.rmeta: crates/core/src/lib.rs crates/core/src/attack/mod.rs crates/core/src/attack/emulator.rs crates/core/src/attack/evasion.rs crates/core/src/attack/fullframe.rs crates/core/src/attack/listener.rs crates/core/src/attack/quantizer.rs crates/core/src/attack/spectrum.rs crates/core/src/defense/mod.rs crates/core/src/defense/alternatives.rs crates/core/src/defense/detector.rs crates/core/src/defense/features.rs crates/core/src/defense/naive.rs crates/core/src/defense/stream.rs crates/core/src/error.rs crates/core/src/scenario.rs crates/core/src/waveform.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/attack/mod.rs:
crates/core/src/attack/emulator.rs:
crates/core/src/attack/evasion.rs:
crates/core/src/attack/fullframe.rs:
crates/core/src/attack/listener.rs:
crates/core/src/attack/quantizer.rs:
crates/core/src/attack/spectrum.rs:
crates/core/src/defense/mod.rs:
crates/core/src/defense/alternatives.rs:
crates/core/src/defense/detector.rs:
crates/core/src/defense/features.rs:
crates/core/src/defense/naive.rs:
crates/core/src/defense/stream.rs:
crates/core/src/error.rs:
crates/core/src/scenario.rs:
crates/core/src/waveform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
