/root/repo/target/debug/deps/determinism-4fd3eaea36b7a91c.d: crates/bench/tests/determinism.rs

/root/repo/target/debug/deps/determinism-4fd3eaea36b7a91c: crates/bench/tests/determinism.rs

crates/bench/tests/determinism.rs:
