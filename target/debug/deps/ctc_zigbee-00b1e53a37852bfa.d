/root/repo/target/debug/deps/ctc_zigbee-00b1e53a37852bfa.d: crates/zigbee/src/lib.rs crates/zigbee/src/app.rs crates/zigbee/src/channels.rs crates/zigbee/src/chipmap.rs crates/zigbee/src/frame.rs crates/zigbee/src/frontend.rs crates/zigbee/src/mac.rs crates/zigbee/src/modem.rs crates/zigbee/src/rx.rs crates/zigbee/src/tx.rs

/root/repo/target/debug/deps/libctc_zigbee-00b1e53a37852bfa.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/app.rs crates/zigbee/src/channels.rs crates/zigbee/src/chipmap.rs crates/zigbee/src/frame.rs crates/zigbee/src/frontend.rs crates/zigbee/src/mac.rs crates/zigbee/src/modem.rs crates/zigbee/src/rx.rs crates/zigbee/src/tx.rs

crates/zigbee/src/lib.rs:
crates/zigbee/src/app.rs:
crates/zigbee/src/channels.rs:
crates/zigbee/src/chipmap.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/frontend.rs:
crates/zigbee/src/mac.rs:
crates/zigbee/src/modem.rs:
crates/zigbee/src/rx.rs:
crates/zigbee/src/tx.rs:
