/root/repo/target/debug/deps/ctc_bench-bc7b83cb1b7e7b62.d: crates/bench/src/lib.rs crates/bench/src/engine.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/advanced.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/protocol.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/trials.rs Cargo.toml

/root/repo/target/debug/deps/libctc_bench-bc7b83cb1b7e7b62.rmeta: crates/bench/src/lib.rs crates/bench/src/engine.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/advanced.rs crates/bench/src/experiments/extensions.rs crates/bench/src/experiments/figures.rs crates/bench/src/experiments/protocol.rs crates/bench/src/experiments/tables.rs crates/bench/src/report.rs crates/bench/src/trials.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/engine.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/advanced.rs:
crates/bench/src/experiments/extensions.rs:
crates/bench/src/experiments/figures.rs:
crates/bench/src/experiments/protocol.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/report.rs:
crates/bench/src/trials.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
