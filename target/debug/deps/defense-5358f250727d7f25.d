/root/repo/target/debug/deps/defense-5358f250727d7f25.d: crates/bench/benches/defense.rs Cargo.toml

/root/repo/target/debug/deps/libdefense-5358f250727d7f25.rmeta: crates/bench/benches/defense.rs Cargo.toml

crates/bench/benches/defense.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
