/root/repo/target/debug/deps/ctc_zigbee-715423ff1ffc4418.d: crates/zigbee/src/lib.rs crates/zigbee/src/app.rs crates/zigbee/src/channels.rs crates/zigbee/src/chipmap.rs crates/zigbee/src/frame.rs crates/zigbee/src/frontend.rs crates/zigbee/src/mac.rs crates/zigbee/src/modem.rs crates/zigbee/src/rx.rs crates/zigbee/src/tx.rs Cargo.toml

/root/repo/target/debug/deps/libctc_zigbee-715423ff1ffc4418.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/app.rs crates/zigbee/src/channels.rs crates/zigbee/src/chipmap.rs crates/zigbee/src/frame.rs crates/zigbee/src/frontend.rs crates/zigbee/src/mac.rs crates/zigbee/src/modem.rs crates/zigbee/src/rx.rs crates/zigbee/src/tx.rs Cargo.toml

crates/zigbee/src/lib.rs:
crates/zigbee/src/app.rs:
crates/zigbee/src/channels.rs:
crates/zigbee/src/chipmap.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/frontend.rs:
crates/zigbee/src/mac.rs:
crates/zigbee/src/modem.rs:
crates/zigbee/src/rx.rs:
crates/zigbee/src/tx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
