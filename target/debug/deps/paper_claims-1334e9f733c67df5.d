/root/repo/target/debug/deps/paper_claims-1334e9f733c67df5.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-1334e9f733c67df5: tests/paper_claims.rs

tests/paper_claims.rs:
