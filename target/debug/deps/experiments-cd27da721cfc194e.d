/root/repo/target/debug/deps/experiments-cd27da721cfc194e.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-cd27da721cfc194e: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
