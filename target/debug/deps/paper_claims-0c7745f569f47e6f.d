/root/repo/target/debug/deps/paper_claims-0c7745f569f47e6f.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-0c7745f569f47e6f: tests/paper_claims.rs

tests/paper_claims.rs:
