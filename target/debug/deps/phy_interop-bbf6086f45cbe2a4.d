/root/repo/target/debug/deps/phy_interop-bbf6086f45cbe2a4.d: tests/phy_interop.rs

/root/repo/target/debug/deps/phy_interop-bbf6086f45cbe2a4: tests/phy_interop.rs

tests/phy_interop.rs:
