/root/repo/target/debug/deps/full_stack-b7f4967deadd1aac.d: tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-b7f4967deadd1aac.rmeta: tests/full_stack.rs Cargo.toml

tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
