/root/repo/target/debug/deps/end_to_end_attack-ebe9b537083a89a1.d: tests/end_to_end_attack.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_attack-ebe9b537083a89a1.rmeta: tests/end_to_end_attack.rs Cargo.toml

tests/end_to_end_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
