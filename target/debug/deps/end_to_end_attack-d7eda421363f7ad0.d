/root/repo/target/debug/deps/end_to_end_attack-d7eda421363f7ad0.d: tests/end_to_end_attack.rs

/root/repo/target/debug/deps/end_to_end_attack-d7eda421363f7ad0: tests/end_to_end_attack.rs

tests/end_to_end_attack.rs:
