/root/repo/target/debug/deps/hide_and_seek-0580f30d5dea008e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhide_and_seek-0580f30d5dea008e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
