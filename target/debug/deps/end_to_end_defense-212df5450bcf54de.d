/root/repo/target/debug/deps/end_to_end_defense-212df5450bcf54de.d: tests/end_to_end_defense.rs

/root/repo/target/debug/deps/end_to_end_defense-212df5450bcf54de: tests/end_to_end_defense.rs

tests/end_to_end_defense.rs:
