/root/repo/target/debug/deps/defense-5ea80f8b962d33ac.d: crates/bench/benches/defense.rs Cargo.toml

/root/repo/target/debug/deps/libdefense-5ea80f8b962d33ac.rmeta: crates/bench/benches/defense.rs Cargo.toml

crates/bench/benches/defense.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
