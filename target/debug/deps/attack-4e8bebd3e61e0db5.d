/root/repo/target/debug/deps/attack-4e8bebd3e61e0db5.d: crates/bench/benches/attack.rs Cargo.toml

/root/repo/target/debug/deps/libattack-4e8bebd3e61e0db5.rmeta: crates/bench/benches/attack.rs Cargo.toml

crates/bench/benches/attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
