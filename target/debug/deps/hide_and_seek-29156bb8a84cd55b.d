/root/repo/target/debug/deps/hide_and_seek-29156bb8a84cd55b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhide_and_seek-29156bb8a84cd55b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
