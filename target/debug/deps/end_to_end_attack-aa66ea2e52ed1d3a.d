/root/repo/target/debug/deps/end_to_end_attack-aa66ea2e52ed1d3a.d: tests/end_to_end_attack.rs

/root/repo/target/debug/deps/end_to_end_attack-aa66ea2e52ed1d3a: tests/end_to_end_attack.rs

tests/end_to_end_attack.rs:
