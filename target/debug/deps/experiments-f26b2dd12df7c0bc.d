/root/repo/target/debug/deps/experiments-f26b2dd12df7c0bc.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-f26b2dd12df7c0bc.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
