#!/usr/bin/env bash
# ROC smoke test: a seeded mini ROC sweep through `ctc detector eval`,
# gated so the feature ensemble must not regress below the single-feature
# DE² baseline:
#
#   - `ctc detector train` fits a logistic model over the synthetic
#     SNR sweep and writes a versioned model file, which must parse back
#     (`--detector model:<path>` is exercised by the gateway smoke);
#   - `ctc detector eval --gate` reruns the sweep with a held-out split,
#     trains both ensembles, and exits 13 when the best ensemble AUC
#     drops below the DE² baseline AUC — that exit fails this script;
#   - the JSON report (AUC / EER / TPR@FPR=1% for baseline, logistic and
#     stumps, plus per-feature AUCs) lands in $REPORT so CI can archive
#     it as an artifact.
#
# Run from the repo root after `cargo build --release -p ctc-cli`.
# Everything is seeded: two runs of this script produce identical
# reports.
set -euo pipefail

CTC=${CTC:-target/release/ctc}
REPORT=${REPORT:-roc_report.json}
PER_CLASS=${PER_CLASS:-16}
SEED=${SEED:-51077}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "FAIL: $1" >&2
    echo "--- report ---" >&2
    cat "$REPORT" 2>/dev/null >&2 || true
    exit 1
}

"$CTC" detector train --out "$workdir/det.model" \
    --per-class "$PER_CLASS" --seed "$SEED" \
    || fail "detector train exited $?"
head -n 1 "$workdir/det.model" | grep -q '^ctc-detector-model v1' \
    || fail "model file missing version header"

status=0
"$CTC" detector eval --gate --report "$REPORT" \
    --per-class "$PER_CLASS" --seed "$SEED" \
    > "$workdir/eval.stdout" || status=$?

[ "$status" -eq 0 ] || fail "detector eval exited $status (13 = ensemble AUC below DE² baseline)"
[ -s "$REPORT" ] || fail "no ROC report written"

grep -q '"type":"detector_eval"' "$REPORT" || fail "report is not a detector_eval report"
grep -q '"gate_pass":true' "$REPORT" || fail "ensemble gate did not pass"
grep -q '"baseline":' "$REPORT" || fail "report missing DE² baseline ROC"
grep -q '"logistic":' "$REPORT" || fail "report missing logistic ROC"
grep -q '"stumps":' "$REPORT" || fail "report missing stump-ensemble ROC"
grep -q '"feature_auc":' "$REPORT" || fail "report missing per-feature AUCs"

ensemble=$(sed -n 's/.*"ensemble_auc":\([0-9.eE+-]*\).*/\1/p' "$REPORT")
echo "roc smoke OK: seed $SEED, $PER_CLASS per class per SNR — ensemble AUC $ensemble"
