#!/usr/bin/env bash
# Loadgen smoke test: soak a live `ctc monitor --listen` gateway with a
# small mixed fleet and assert the SLO verdict end to end:
#
#   - the monitor announces its listen and metrics addresses on stderr
#     (`listening <addr>` and `metrics: serving http://<addr>/metrics`),
#     both bound to ephemeral ports;
#   - `ctc loadgen --soak` drives 8 concurrent TCP streams of mixed
#     authentic / forged / noise bursts for ~10 s, scrapes the monitor's
#     metrics, and exits 0 with `"pass":true` in the JSON capacity
#     report — a breached SLO (exit 12) fails this script;
#   - the report's ground truth and scraped observations line up: every
#     generated burst was ingested and every forgery was caught.
#
# Run from the repo root after `cargo build --release -p ctc-cli`.
# The JSON capacity report lands in $REPORT (default: loadgen_report.json)
# so CI can archive it as an artifact.
set -euo pipefail

CTC=${CTC:-target/release/ctc}
REPORT=${REPORT:-loadgen_report.json}
STREAMS=${STREAMS:-8}
SOAK=${SOAK:-10s}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "FAIL: $1" >&2
    echo "--- monitor stderr ---" >&2
    cat "$workdir/monitor.stderr" >&2
    echo "--- loadgen stderr ---" >&2
    cat "$workdir/loadgen.stderr" 2>/dev/null >&2 || true
    echo "--- report ---" >&2
    cat "$REPORT" 2>/dev/null >&2 || true
    exit 1
}

# The gateway under load, all ports ephemeral. No --stop-after: the
# soak's final scrape (and its drain-wait) needs the metrics endpoint
# alive after the last session closes, exactly like a long-running
# production monitor — the script kills it once loadgen detaches.
"$CTC" monitor --listen tcp://127.0.0.1:0 --threshold 0.25 --chunk 4096 \
    --max-streams $((STREAMS * 2)) \
    --metrics-addr 127.0.0.1:0 \
    > "$workdir/events.jsonl" \
    2> "$workdir/monitor.stderr" &
monitor_pid=$!

# The single parseable `listening <addr>` line (port 0 = ephemeral).
gw=
for _ in $(seq 100); do
    gw=$(sed -n 's#^listening \(.*\)$#\1#p' "$workdir/monitor.stderr" | head -n 1)
    [ -n "$gw" ] && break
    sleep 0.1
done
[ -n "$gw" ] || fail "monitor never announced its listen address"

maddr=
for _ in $(seq 100); do
    maddr=$(sed -n 's#^metrics: serving http://\([^/]*\)/metrics$#\1#p' \
        "$workdir/monitor.stderr" | head -n 1)
    [ -n "$maddr" ] && break
    sleep 0.1
done
[ -n "$maddr" ] || fail "monitor never announced a metrics address"

status=0
"$CTC" loadgen --connect "$gw" --streams "$STREAMS" \
    --soak "$SOAK" --metrics-addr "$maddr" \
    --report "$REPORT" \
    > "$workdir/loadgen.stdout" \
    2> "$workdir/loadgen.stderr" || status=$?

kill "$monitor_pid" 2>/dev/null || true
wait "$monitor_pid" 2>/dev/null || true

[ "$status" -eq 0 ] || fail "loadgen exited $status (12 = SLO breach)"
[ -s "$REPORT" ] || fail "no capacity report written"

grep -q '"mode":"soak"' "$REPORT" || fail "report is not a soak report"
grep -q '"pass":true' "$REPORT" || fail "capacity report did not pass"
grep -q '"sustained":true' "$REPORT" \
    || fail "capacity point not marked sustained"
grep -Eq "\"streams\":$STREAMS\b" "$REPORT" \
    || fail "report does not cover $STREAMS streams"
grep -q '"stream_errors":0' "$REPORT" || fail "streams failed mid-soak"

# Every SLO line on stderr must be ok or skip — FAIL lines mean the
# verdict above was computed from different checks than reported.
if grep -q '^loadgen: slo FAIL' "$workdir/loadgen.stderr"; then
    fail "SLO FAIL line despite pass verdict"
fi

summary=$(sed -n 's/.*"capacity":{\([^}]*\)}.*/\1/p' "$REPORT")
echo "loadgen smoke OK: $STREAMS streams soaked ${SOAK} at $gw — $summary"
