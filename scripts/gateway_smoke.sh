#!/usr/bin/env bash
# Gateway smoke test: build a synthetic 3-frame capture with the ctc CLI
# (authentic | forged | authentic, separated by idle gaps), stream it
# through `ctc monitor` on stdin, and assert on the JSONL events:
#
#   - exactly 3 frame events, in stream order;
#   - verdicts authentic / attack / authentic, the forgery accepted;
#   - the final stats line reports zero dropped samples;
#   - the process exits 3 (forgery detected).
#
# A second pass re-runs the same stream with telemetry on (metrics smoke):
#
#   - `--metrics-addr 127.0.0.1:0` binds, and `ctc obs dump --addr` scrapes
#     the canonical `ctc_*` metric names live, mid-run;
#   - `--trace-out` produces a span log covering every pipeline stage;
#   - the telemetry run still exits 3.
#
# Run from the repo root after `cargo build --release -p ctc-cli`.
set -euo pipefail

CTC=${CTC:-target/release/ctc}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "FAIL: $1" >&2
    echo "--- events ---" >&2
    cat "$workdir/events.jsonl" >&2
    echo "--- stats ---" >&2
    cat "$workdir/stats.jsonl" >&2
    exit 1
}

# One authentic frame, and its emulation as the ZigBee front-end sees it.
"$CTC" generate --payload 00000 --out "$workdir/zig.cf32" >/dev/null
"$CTC" emulate --input "$workdir/zig.cf32" --out - 2>/dev/null \
    | "$CTC" capture --input - --out "$workdir/forged.cf32" >/dev/null

# Idle gaps are zero-power samples: 4096 complex samples = 32768 bytes.
head -c 32768 /dev/zero > "$workdir/gap.cf32"

cat "$workdir/gap.cf32" "$workdir/zig.cf32" \
    "$workdir/gap.cf32" "$workdir/forged.cf32" \
    "$workdir/gap.cf32" "$workdir/zig.cf32" \
    "$workdir/gap.cf32" > "$workdir/stream.cf32"

status=0
"$CTC" monitor --input - --threshold 0.25 \
    < "$workdir/stream.cf32" \
    > "$workdir/events.jsonl" \
    2> "$workdir/stats.jsonl" || status=$?

[ "$status" -eq 3 ] || fail "expected exit code 3 (forgery), got $status"

frames=$(grep -c '"type":"frame"' "$workdir/events.jsonl" || true)
[ "$frames" -eq 3 ] || fail "expected 3 frame events, got $frames"

mapfile -t verdicts < <(grep '"type":"frame"' "$workdir/events.jsonl" \
    | sed 's/.*"verdict":"\([a-z]*\)".*/\1/')
expected=(authentic attack authentic)
for i in 0 1 2; do
    [ "${verdicts[$i]}" = "${expected[$i]}" ] \
        || fail "frame $i verdict ${verdicts[$i]}, expected ${expected[$i]}"
done

grep -q '"accepted_forgery":true' "$workdir/events.jsonl" \
    || fail "no accepted forgery flagged"

stats=$(grep '"type":"stats"' "$workdir/stats.jsonl" | tail -n 1)
[ -n "$stats" ] || fail "no stats line on stderr"
echo "$stats" | grep -q '"samples_dropped":0' \
    || fail "samples dropped under smoke load: $stats"
echo "$stats" | grep -q '"forgeries":1' \
    || fail "expected exactly 1 forgery in stats: $stats"

echo "gateway smoke OK: 3 frames, verdicts ${verdicts[*]}, 0 dropped, exit 3"

# --- metrics smoke: same stream, telemetry on, scraped while live -------
#
# A fifo keeps the monitor's stdin open after the capture is written, so
# the process (and its metrics endpoint) stays up until we close fd 3 —
# that is what lets the scrape observe a *running* gateway. The ingest
# reader fills fixed-size chunks before processing, so the chunk must be
# smaller than the capture (~21k samples) or nothing is classified until
# EOF: 4096 samples means all three frames complete inside the first five
# chunks while stdin is still open.
mkfifo "$workdir/stream.fifo"
mstatus=0
"$CTC" monitor --input - --threshold 0.25 --chunk 4096 \
    --metrics-addr 127.0.0.1:0 \
    --trace-out "$workdir/trace.jsonl" \
    < "$workdir/stream.fifo" \
    > "$workdir/events2.jsonl" \
    2> "$workdir/stats2.jsonl" &
monitor_pid=$!
exec 3> "$workdir/stream.fifo"
cat "$workdir/stream.cf32" >&3

# The monitor prints the bound address (port 0 = ephemeral) on stderr.
addr=
for _ in $(seq 100); do
    addr=$(sed -n 's#^metrics: serving http://\([^/]*\)/metrics$#\1#p' \
        "$workdir/stats2.jsonl" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { exec 3>&-; fail "monitor never announced a metrics address"; }

# Scrape until the pipeline has classified the forged frame (retry: the
# workers race the scraper), then assert the canonical names are served.
metrics=
for _ in $(seq 100); do
    metrics=$("$CTC" obs dump --addr "$addr" || true)
    grep -q 'ctc_gateway_frames_total{verdict="attack"} 1' <<< "$metrics" && break
    sleep 0.1
done
exec 3>&-   # EOF on stdin: the monitor drains and exits
wait "$monitor_pid" || mstatus=$?

grep -q 'ctc_gateway_frames_total{verdict="attack"} 1' <<< "$metrics" \
    || fail "scrape never saw the forgery counted: $metrics"
for name in ctc_gateway_samples_total ctc_gateway_bursts_total \
    ctc_gateway_latency_us_bucket ctc_pool_hits_total ctc_queue_dropped_total; do
    grep -q "^$name" <<< "$metrics" \
        || fail "metric $name missing from the live scrape"
done
grep -q 'ctc_queue_dropped_total 0' <<< "$metrics" \
    || fail "queue drops under metrics-smoke load"

[ "$mstatus" -eq 3 ] || fail "telemetry run: expected exit code 3, got $mstatus"

# The span log must cover the full stage chain for the 3 frames.
for stage in ingest queue decode classify emit; do
    n=$(grep -c "\"stage\":\"$stage\"" "$workdir/trace.jsonl" || true)
    [ "$n" -eq 3 ] || fail "expected 3 '$stage' span records, got $n"
done

echo "metrics smoke OK: live scrape at $addr, span log complete, exit 3"
