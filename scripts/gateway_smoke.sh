#!/usr/bin/env bash
# Gateway smoke test: build a synthetic 3-frame capture with the ctc CLI
# (authentic | forged | authentic, separated by idle gaps), stream it
# through `ctc monitor` on stdin, and assert on the JSONL events:
#
#   - exactly 3 frame events, in stream order;
#   - verdicts authentic / attack / authentic, the forgery accepted;
#   - the final stats line reports zero dropped samples;
#   - the process exits 3 (forgery detected).
#
# Run from the repo root after `cargo build --release -p ctc-cli`.
set -euo pipefail

CTC=${CTC:-target/release/ctc}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "FAIL: $1" >&2
    echo "--- events ---" >&2
    cat "$workdir/events.jsonl" >&2
    echo "--- stats ---" >&2
    cat "$workdir/stats.jsonl" >&2
    exit 1
}

# One authentic frame, and its emulation as the ZigBee front-end sees it.
"$CTC" generate --payload 00000 --out "$workdir/zig.cf32" >/dev/null
"$CTC" emulate --input "$workdir/zig.cf32" --out - 2>/dev/null \
    | "$CTC" capture --input - --out "$workdir/forged.cf32" >/dev/null

# Idle gaps are zero-power samples: 4096 complex samples = 32768 bytes.
head -c 32768 /dev/zero > "$workdir/gap.cf32"

cat "$workdir/gap.cf32" "$workdir/zig.cf32" \
    "$workdir/gap.cf32" "$workdir/forged.cf32" \
    "$workdir/gap.cf32" "$workdir/zig.cf32" \
    "$workdir/gap.cf32" > "$workdir/stream.cf32"

status=0
"$CTC" monitor --input - --threshold 0.25 \
    < "$workdir/stream.cf32" \
    > "$workdir/events.jsonl" \
    2> "$workdir/stats.jsonl" || status=$?

[ "$status" -eq 3 ] || fail "expected exit code 3 (forgery), got $status"

frames=$(grep -c '"type":"frame"' "$workdir/events.jsonl" || true)
[ "$frames" -eq 3 ] || fail "expected 3 frame events, got $frames"

mapfile -t verdicts < <(grep '"type":"frame"' "$workdir/events.jsonl" \
    | sed 's/.*"verdict":"\([a-z]*\)".*/\1/')
expected=(authentic attack authentic)
for i in 0 1 2; do
    [ "${verdicts[$i]}" = "${expected[$i]}" ] \
        || fail "frame $i verdict ${verdicts[$i]}, expected ${expected[$i]}"
done

grep -q '"accepted_forgery":true' "$workdir/events.jsonl" \
    || fail "no accepted forgery flagged"

stats=$(grep '"type":"stats"' "$workdir/stats.jsonl" | tail -n 1)
[ -n "$stats" ] || fail "no stats line on stderr"
echo "$stats" | grep -q '"samples_dropped":0' \
    || fail "samples dropped under smoke load: $stats"
echo "$stats" | grep -q '"forgeries":1' \
    || fail "expected exactly 1 forgery in stats: $stats"

echo "gateway smoke OK: 3 frames, verdicts ${verdicts[*]}, 0 dropped, exit 3"
