#!/usr/bin/env bash
# Gateway smoke test: build a synthetic 3-frame capture with the ctc CLI
# (authentic | forged | authentic, separated by idle gaps), stream it
# through `ctc monitor` on stdin, and assert on the JSONL events:
#
#   - exactly 3 frame events, in stream order;
#   - verdicts authentic / attack / authentic, the forgery accepted;
#   - the final stats line reports zero dropped samples;
#   - the process exits 3 (forgery detected).
#
# A second pass re-runs the same stream with telemetry on (metrics smoke):
#
#   - `--metrics-addr 127.0.0.1:0` binds, and `ctc obs dump --addr` scrapes
#     the canonical `ctc_*` metric names live, mid-run;
#   - `--trace-out` produces a span log covering every pipeline stage;
#   - the telemetry run still exits 3.
#
# A third pass serves the same capture to `ctc monitor --listen` over
# three concurrent TCP connections (multi-stream smoke):
#
#   - every event is `stream`-tagged and seq-ordered within its session,
#     bracketed by open/close markers with per-session tallies;
#   - a mid-run scrape sees `{stream="..."}`-labelled metrics alongside
#     the aggregates, plus the session lifecycle counters;
#   - the server drains via `--stop-after` and still exits 3.
#
# A fourth pass exercises the flight recorder (incident-forensics smoke):
#
#   - `--flight-out` on the forged stream dumps exactly one incident
#     snapshot on the accepted forgery, which `ctc obs report` renders;
#   - SIGUSR1 against a live `--listen` server (authentic traffic only)
#     dumps an on-demand snapshot, while `ctc obs top --count` and
#     `ctc obs dump --json` read the same live endpoint;
#   - the forgery snapshot is left at ./flight_incident.json for CI to
#     archive as an artifact.
#
# Run from the repo root after `cargo build --release -p ctc-cli`.
set -euo pipefail

CTC=${CTC:-target/release/ctc}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "FAIL: $1" >&2
    echo "--- events ---" >&2
    cat "$workdir/events.jsonl" >&2
    echo "--- stats ---" >&2
    cat "$workdir/stats.jsonl" >&2
    exit 1
}

# One authentic frame, and its emulation as the ZigBee front-end sees it.
"$CTC" generate --payload 00000 --out "$workdir/zig.cf32" >/dev/null
"$CTC" emulate --input "$workdir/zig.cf32" --out - 2>/dev/null \
    | "$CTC" capture --input - --out "$workdir/forged.cf32" >/dev/null

# Idle gaps are zero-power samples: 4096 complex samples = 32768 bytes.
head -c 32768 /dev/zero > "$workdir/gap.cf32"

cat "$workdir/gap.cf32" "$workdir/zig.cf32" \
    "$workdir/gap.cf32" "$workdir/forged.cf32" \
    "$workdir/gap.cf32" "$workdir/zig.cf32" \
    "$workdir/gap.cf32" > "$workdir/stream.cf32"

status=0
"$CTC" monitor --input - --threshold 0.25 \
    < "$workdir/stream.cf32" \
    > "$workdir/events.jsonl" \
    2> "$workdir/stats.jsonl" || status=$?

[ "$status" -eq 3 ] || fail "expected exit code 3 (forgery), got $status"

frames=$(grep -c '"type":"frame"' "$workdir/events.jsonl" || true)
[ "$frames" -eq 3 ] || fail "expected 3 frame events, got $frames"

mapfile -t verdicts < <(grep '"type":"frame"' "$workdir/events.jsonl" \
    | sed 's/.*"verdict":"\([a-z]*\)".*/\1/')
expected=(authentic attack authentic)
for i in 0 1 2; do
    [ "${verdicts[$i]}" = "${expected[$i]}" ] \
        || fail "frame $i verdict ${verdicts[$i]}, expected ${expected[$i]}"
done

grep -q '"accepted_forgery":true' "$workdir/events.jsonl" \
    || fail "no accepted forgery flagged"

stats=$(grep '"type":"stats"' "$workdir/stats.jsonl" | tail -n 1)
[ -n "$stats" ] || fail "no stats line on stderr"
echo "$stats" | grep -q '"samples_dropped":0' \
    || fail "samples dropped under smoke load: $stats"
echo "$stats" | grep -q '"forgeries":1' \
    || fail "expected exactly 1 forgery in stats: $stats"

echo "gateway smoke OK: 3 frames, verdicts ${verdicts[*]}, 0 dropped, exit 3"

# --- metrics smoke: same stream, telemetry on, scraped while live -------
#
# A fifo keeps the monitor's stdin open after the capture is written, so
# the process (and its metrics endpoint) stays up until we close fd 3 —
# that is what lets the scrape observe a *running* gateway. The ingest
# reader fills fixed-size chunks before processing, so the chunk must be
# smaller than the capture (~21k samples) or nothing is classified until
# EOF: 4096 samples means all three frames complete inside the first five
# chunks while stdin is still open.
mkfifo "$workdir/stream.fifo"
mstatus=0
"$CTC" monitor --input - --threshold 0.25 --chunk 4096 \
    --metrics-addr 127.0.0.1:0 \
    --trace-out "$workdir/trace.jsonl" \
    < "$workdir/stream.fifo" \
    > "$workdir/events2.jsonl" \
    2> "$workdir/stats2.jsonl" &
monitor_pid=$!
exec 3> "$workdir/stream.fifo"
cat "$workdir/stream.cf32" >&3

# The monitor prints the bound address (port 0 = ephemeral) on stderr.
addr=
for _ in $(seq 100); do
    addr=$(sed -n 's#^metrics: serving http://\([^/]*\)/metrics$#\1#p' \
        "$workdir/stats2.jsonl" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { exec 3>&-; fail "monitor never announced a metrics address"; }

# Scrape until the pipeline has classified the forged frame (retry: the
# workers race the scraper), then assert the canonical names are served.
metrics=
for _ in $(seq 100); do
    metrics=$("$CTC" obs dump --addr "$addr" || true)
    grep -q 'ctc_gateway_frames_total{verdict="attack"} 1' <<< "$metrics" && break
    sleep 0.1
done
exec 3>&-   # EOF on stdin: the monitor drains and exits
wait "$monitor_pid" || mstatus=$?

grep -q 'ctc_gateway_frames_total{verdict="attack"} 1' <<< "$metrics" \
    || fail "scrape never saw the forgery counted: $metrics"
for name in ctc_gateway_samples_total ctc_gateway_bursts_total \
    ctc_gateway_latency_us_bucket ctc_pool_hits_total ctc_queue_dropped_total; do
    grep -q "^$name" <<< "$metrics" \
        || fail "metric $name missing from the live scrape"
done
grep -q 'ctc_queue_dropped_total 0' <<< "$metrics" \
    || fail "queue drops under metrics-smoke load"

[ "$mstatus" -eq 3 ] || fail "telemetry run: expected exit code 3, got $mstatus"

# The span log must cover the full stage chain for the 3 frames.
for stage in ingest queue decode classify emit; do
    n=$(grep -c "\"stage\":\"$stage\"" "$workdir/trace.jsonl" || true)
    [ "$n" -eq 3 ] || fail "expected 3 '$stage' span records, got $n"
done

echo "metrics smoke OK: live scrape at $addr, span log complete, exit 3"

# --- multi-stream smoke: three concurrent TCP sessions, one engine ------
#
# `--listen tcp://127.0.0.1:0` serves each connection as its own session.
# Two clients stream the capture and hang up; a third (fd 4) streams it
# and then holds the connection open, pinning the server live so the
# mid-run scrape can observe per-stream `{stream="..."}` metrics. Closing
# fd 4 EOFs the last session and `--stop-after 3` lets the server drain
# and exit — with code 3, since every session carried the forgery.
sstatus=0
"$CTC" monitor --listen tcp://127.0.0.1:0 --threshold 0.25 --chunk 4096 \
    --max-streams 4 --stop-after 3 \
    --metrics-addr 127.0.0.1:0 \
    > "$workdir/events3.jsonl" \
    2> "$workdir/stats3.jsonl" &
server_pid=$!

gw_addr=
for _ in $(seq 100); do
    gw_addr=$(sed -n 's#^listening tcp://\(.*\)$#\1#p' \
        "$workdir/stats3.jsonl" | head -n 1)
    [ -n "$gw_addr" ] && break
    sleep 0.1
done
[ -n "$gw_addr" ] || fail "server never announced its listen address"
gw_host=${gw_addr%:*}
gw_port=${gw_addr##*:}

maddr=
for _ in $(seq 100); do
    maddr=$(sed -n 's#^metrics: serving http://\([^/]*\)/metrics$#\1#p' \
        "$workdir/stats3.jsonl" | head -n 1)
    [ -n "$maddr" ] && break
    sleep 0.1
done
[ -n "$maddr" ] || fail "server never announced a metrics address"

exec 4> "/dev/tcp/$gw_host/$gw_port"
cat "$workdir/stream.cf32" >&4   # session stays open: server stays live
( cat "$workdir/stream.cf32" > "/dev/tcp/$gw_host/$gw_port" ) &
( cat "$workdir/stream.cf32" > "/dev/tcp/$gw_host/$gw_port" ) &

# Mid-run scrape: wait until all three sessions are open and the forgery
# count shows up under a per-stream label alongside the aggregate.
smetrics=
for _ in $(seq 100); do
    smetrics=$("$CTC" obs dump --addr "$maddr" || true)
    grep -q 'ctc_sessions_opened_total 3' <<< "$smetrics" \
        && grep -q 'stream="s' <<< "$smetrics" && break
    sleep 0.1
done
grep -q 'ctc_sessions_opened_total 3' <<< "$smetrics" \
    || fail "scrape never saw 3 sessions opened"
grep -q 'ctc_gateway_samples_total{stream="s' <<< "$smetrics" \
    || fail "no per-stream labelled samples counter in the live scrape"
grep -q '^ctc_gateway_samples_total [0-9]' <<< "$smetrics" \
    || fail "aggregate samples counter missing alongside the labelled ones"

exec 4>&-   # EOF on the held session: the server drains and exits
wait "$server_pid" || sstatus=$?
[ "$sstatus" -eq 3 ] || fail "multi-stream run: expected exit code 3, got $sstatus"

frames3=$(grep -c '"type":"frame"' "$workdir/events3.jsonl" || true)
[ "$frames3" -eq 9 ] || fail "expected 9 frame events across 3 sessions, got $frames3"

opens=$(grep -c '"event":"open"' "$workdir/events3.jsonl" || true)
closes=$(grep -c '"event":"close"' "$workdir/events3.jsonl" || true)
[ "$opens" -eq 3 ] || fail "expected 3 session open markers, got $opens"
[ "$closes" -eq 3 ] || fail "expected 3 session close markers, got $closes"

# Per-session discipline: every event is stream-tagged, and within one
# stream label the seq numbers are strictly ordered, open first, close
# last, with the close marker carrying the session's own tallies.
for s in s1 s2 s3; do
    lines=$(grep "\"stream\":\"$s\"" "$workdir/events3.jsonl" || true)
    [ -n "$lines" ] || fail "no events tagged stream=$s"
    seqs=$(sed -n 's/.*"seq":\([0-9]*\).*/\1/p' <<< "$lines")
    [ "$seqs" = "$(sort -n <<< "$seqs")" ] || fail "stream $s events out of seq order"
    head -n 1 <<< "$lines" | grep -q '"event":"open"' \
        || fail "stream $s: first event is not the open marker"
    tail -n 1 <<< "$lines" | grep -q '"event":"close"' \
        || fail "stream $s: last event is not the close marker"
    tail -n 1 <<< "$lines" | grep -q '"frames_decoded":3' \
        || fail "stream $s close marker: expected 3 frames decoded"
    tail -n 1 <<< "$lines" | grep -q '"forgeries":1' \
        || fail "stream $s close marker: expected 1 forgery"
done

grep -q 'gateway: 3 session(s) served, 0 refused, 0 errored' "$workdir/stats3.jsonl" \
    || fail "missing or wrong final session tally on stderr"

echo "multi-stream smoke OK: 3 sessions at $gw_addr, 9 frames, per-stream metrics live, exit 3"

# --- flight-recorder smoke: incident snapshots + live operator views ----
#
# Leg 1: the forged stream with --flight-out armed. The first accepted
# forgery must dump exactly one self-contained snapshot whose journal
# ends at the triggering verdict, and `ctc obs report` must render it.
fstatus=0
"$CTC" monitor --input - --threshold 0.25 \
    --flight-out "$workdir/incident.json" \
    < "$workdir/stream.cf32" \
    > "$workdir/events4.jsonl" \
    2> "$workdir/stats4.jsonl" || fstatus=$?
[ "$fstatus" -eq 3 ] || fail "flight run: expected exit code 3, got $fstatus"

[ -f "$workdir/incident.json" ] || fail "no incident snapshot written on forgery"
grep -q '^flight: incident snapshot (forgery) written to ' "$workdir/stats4.jsonl" \
    || fail "missing flight snapshot marker on stderr"
markers=$(grep -c '^flight: incident snapshot' "$workdir/stats4.jsonl" || true)
[ "$markers" -eq 1 ] || fail "expected exactly 1 snapshot dump, got $markers"
grep -q '"trigger":"forgery"' "$workdir/incident.json" \
    || fail "snapshot trigger is not the forgery"

report_out=$("$CTC" obs report "$workdir/incident.json") \
    || fail "obs report could not render the snapshot"
grep -q 'trigger=forgery' <<< "$report_out" || fail "report: missing trigger line"
grep -q 'accepted_forgery=true' <<< "$report_out" \
    || fail "report: journal does not show the accepted forgery"
grep '] verdict' <<< "$report_out" | tail -n 1 | grep -q 'accepted_forgery=true' \
    || fail "report: last journal verdict is not the accepted forgery"
grep -q '] burst' <<< "$report_out" || fail "report: no burst events preceding the verdict"
grep -q 'stage latency' <<< "$report_out" || fail "report: missing stage latency table"
grep -q 'registry delta' <<< "$report_out" || fail "report: missing registry delta"

# Keep the snapshot for the CI artifact upload.
cp "$workdir/incident.json" flight_incident.json

# Leg 2: SIGUSR1 against a live server. Authentic-only traffic (no
# forgery trigger) over a held-open TCP session; the signal must dump an
# on-demand snapshot while the live endpoint also serves `obs top` and
# `obs dump --json`.
cat "$workdir/gap.cf32" "$workdir/zig.cf32" "$workdir/gap.cf32" \
    > "$workdir/authentic.cf32"
ustatus=0
"$CTC" monitor --listen tcp://127.0.0.1:0 --threshold 0.25 --chunk 4096 \
    --stop-after 1 \
    --metrics-addr 127.0.0.1:0 \
    --flight-out "$workdir/incident_usr1.json" \
    > "$workdir/events5.jsonl" \
    2> "$workdir/stats5.jsonl" &
usr1_pid=$!

u_addr=
for _ in $(seq 100); do
    u_addr=$(sed -n 's#^listening tcp://\(.*\)$#\1#p' "$workdir/stats5.jsonl" | head -n 1)
    [ -n "$u_addr" ] && break
    sleep 0.1
done
[ -n "$u_addr" ] || fail "flight server never announced its listen address"
umaddr=
for _ in $(seq 100); do
    umaddr=$(sed -n 's#^metrics: serving http://\([^/]*\)/metrics$#\1#p' \
        "$workdir/stats5.jsonl" | head -n 1)
    [ -n "$umaddr" ] && break
    sleep 0.1
done
[ -n "$umaddr" ] || fail "flight server never announced a metrics address"

exec 5> "/dev/tcp/${u_addr%:*}/${u_addr##*:}"
cat "$workdir/authentic.cf32" >&5   # session held open: server stays live

# Wait until the frame is through, then ask for a snapshot by signal.
for _ in $(seq 100); do
    "$CTC" obs dump --addr "$umaddr" 2>/dev/null \
        | grep -q 'ctc_gateway_frames_total{verdict="authentic"} 1' && break
    sleep 0.1
done
kill -USR1 "$usr1_pid"
for _ in $(seq 100); do
    [ -f "$workdir/incident_usr1.json" ] && break
    sleep 0.1
done
[ -f "$workdir/incident_usr1.json" ] || fail "SIGUSR1 never produced a snapshot"
grep -q '"trigger":"sigusr1"' "$workdir/incident_usr1.json" \
    || fail "on-demand snapshot trigger is not sigusr1"
"$CTC" obs report "$workdir/incident_usr1.json" | grep -q 'trigger=sigusr1' \
    || fail "obs report could not render the sigusr1 snapshot"

# The live operator views read the same endpoint.
top_out=$("$CTC" obs top --addr "$umaddr" --count 2 --interval 200ms) \
    || fail "obs top failed against the live endpoint"
grep -q 'samples' <<< "$top_out" || fail "obs top: no throughput line"
grep -q '/s' <<< "$top_out" || fail "obs top: second frame has no rate column"
"$CTC" obs dump --addr "$umaddr" --json \
    | grep -q '"name":"ctc_gateway_samples_total"' \
    || fail "obs dump --json: missing samples counter"

exec 5>&-   # EOF: the held session drains, --stop-after 1 exits
wait "$usr1_pid" || ustatus=$?
[ "$ustatus" -eq 0 ] || fail "authentic-only flight run: expected exit 0, got $ustatus"

echo "flight smoke OK: forgery snapshot rendered, SIGUSR1 live dump, obs top/dump --json live"
