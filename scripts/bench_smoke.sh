#!/usr/bin/env bash
# Release-mode bench smoke: run the gateway bench once and render the
# results as JSON, optionally gating against a committed baseline.
#
# Usage:
#   ./scripts/bench_smoke.sh [OUT.json] [--scalar] [--check BASELINE.json]
#
#   OUT.json              where to write this run's results
#                         (default: BENCH_<short-sha>.json)
#   --scalar              bench the scalar fallback (--no-default-features):
#                         the lane kernels compile without the AVX2+FMA
#                         dispatch, measuring the portable code path
#   --check BASELINE.json fail (exit 1) when any bench's msamples_per_sec
#                         drops more than ${BENCH_GATE_PCT}% (default 12)
#                         below the baseline's
#
# When GITHUB_STEP_SUMMARY is set (GitHub Actions), --check also appends a
# one-line old-vs-new Msamples/s delta per bench to the job summary.
#
# Refreshing the committed baseline after an intentional perf change is one
# command — run it on a quiet machine and commit the result:
#
#   ./scripts/bench_smoke.sh BENCH_baseline.json
#
# The default (telemetry-on) flavor runs with the flight recorder
# attached at its default ring capacity, so the gate below prices in the
# recorder's hot-path journaling; --scalar compiles it out entirely.
#
# The vendored criterion stub prints one line per bench:
#   <name>: <ns> ns/iter  (<rate> M/s)
# which this script turns into a JSON object keyed by bench name.
set -euo pipefail
cd "$(dirname "$0")/.."

# Locale-proof number formatting/parsing: decimal points, never commas.
export LC_ALL=C

# Allowed drop below baseline, in percent. The SIMD port roughly doubled
# the baseline, so the same relative margin now gates at a far higher
# absolute floor; 12% keeps ~2 sigma of headroom over the observed ±10%
# shared-runner timing noise.
gate_pct="${BENCH_GATE_PCT:-12}"

out=""
baseline=""
cargo_flags=()
flavor="simd"
while [ $# -gt 0 ]; do
  case "$1" in
    --check)
      baseline="${2:?--check needs a baseline file}"
      shift 2
      ;;
    --scalar)
      cargo_flags+=(--no-default-features)
      flavor="scalar"
      shift
      ;;
    *)
      out="$1"
      shift
      ;;
  esac
done
[ -n "$out" ] || out="BENCH_$(git rev-parse --short HEAD 2>/dev/null || echo local).json"

# Keep stderr attached to the terminal: a compile error or bench panic must
# show up in the CI log, so only stdout is captured and filtered.
bench_stdout="$(cargo bench -p ctc-bench "${cargo_flags[@]+"${cargo_flags[@]}"}" --bench gateway)"
raw="$(grep 'ns/iter' <<<"$bench_stdout" || true)"
test -n "$raw" || { echo "no bench output captured" >&2; exit 1; }

{
  echo '{'
  echo '  "bench": "gateway",'
  printf '  "features": "%s",\n' "$flavor"
  echo '  "results": {'
  first=1
  while IFS= read -r line; do
    name="${line%%:*}"
    ns="$(echo "$line" | sed -n 's/.*: *\([0-9.]*\) ns\/iter.*/\1/p')"
    rate="$(echo "$line" | sed -n 's/.*(\([0-9.]*\) M\/s).*/\1/p')"
    [ "$first" -eq 1 ] && first=0 || echo ','
    printf '    "%s": {"ns_per_iter": %s, "msamples_per_sec": %s}' \
      "$name" "${ns:-0}" "${rate:-0}"
  done <<< "$raw"
  echo ''
  echo '  }'
  echo '}'
} > "$out"

echo "wrote $out"
cat "$out"

[ -n "$baseline" ] || exit 0

# --check: every baseline bench must still run within $gate_pct% of its
# recorded throughput. New benches (in $out but not the baseline) pass
# silently; a bench that disappeared is a failure.
test -f "$baseline" || { echo "baseline $baseline not found" >&2; exit 1; }

# "name rate" pairs from one of our result files.
rates() {
  sed -n 's/^ *"\([^"]*\)": {"ns_per_iter": [0-9.]*, "msamples_per_sec": \([0-9.]*\)}.*$/\1 \2/p' "$1"
}

# One-line old-vs-new delta, mirrored into the GitHub job summary when
# running under Actions.
summarize() {
  echo "$1"
  if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    echo "$1" >> "$GITHUB_STEP_SUMMARY"
  fi
}

fail=0
while read -r name base_rate; do
  new_rate="$(rates "$out" | awk -v n="$name" '$1 == n { print $2 }')"
  if [ -z "$new_rate" ]; then
    echo "FAIL $name: present in $baseline but missing from this run" >&2
    fail=1
    continue
  fi
  delta="$(awk -v new="$new_rate" -v base="$base_rate" \
    'BEGIN { printf "%+.1f%%", (new - base) / base * 100 }')"
  if awk -v new="$new_rate" -v base="$base_rate" -v pct="$gate_pct" \
      'BEGIN { exit !(new < (1 - pct / 100) * base) }'; then
    summarize "FAIL $name ($flavor): ${base_rate} -> ${new_rate} Msamples/s ($delta, >${gate_pct}% below baseline)"
    fail=1
  else
    summarize "ok   $name ($flavor): ${base_rate} -> ${new_rate} Msamples/s ($delta)"
  fi
done < <(rates "$baseline")

if [ "$fail" -ne 0 ]; then
  echo "bench regression gate failed against $baseline" >&2
  echo "(intentional? refresh with: ./scripts/bench_smoke.sh $baseline && git add $baseline)" >&2
  exit 1
fi
echo "bench regression gate passed against $baseline"
