#!/usr/bin/env bash
# Release-mode bench smoke: run the gateway bench once and render the
# results as JSON, optionally gating against a committed baseline.
#
# Usage:
#   ./scripts/bench_smoke.sh [OUT.json] [--check BASELINE.json]
#
#   OUT.json              where to write this run's results
#                         (default: BENCH_<short-sha>.json)
#   --check BASELINE.json fail (exit 1) when any bench's msamples_per_sec
#                         drops more than 15% below the baseline's
#
# Refreshing the committed baseline after an intentional perf change is one
# command — run it on a quiet machine and commit the result:
#
#   ./scripts/bench_smoke.sh BENCH_baseline.json
#
# The vendored criterion stub prints one line per bench:
#   <name>: <ns> ns/iter  (<rate> M/s)
# which this script turns into a JSON object keyed by bench name.
set -euo pipefail
cd "$(dirname "$0")/.."

# Locale-proof number formatting/parsing: decimal points, never commas.
export LC_ALL=C

out=""
baseline=""
while [ $# -gt 0 ]; do
  case "$1" in
    --check)
      baseline="${2:?--check needs a baseline file}"
      shift 2
      ;;
    *)
      out="$1"
      shift
      ;;
  esac
done
[ -n "$out" ] || out="BENCH_$(git rev-parse --short HEAD 2>/dev/null || echo local).json"

# Keep stderr attached to the terminal: a compile error or bench panic must
# show up in the CI log, so only stdout is captured and filtered.
bench_stdout="$(cargo bench -p ctc-bench --bench gateway)"
raw="$(grep 'ns/iter' <<<"$bench_stdout" || true)"
test -n "$raw" || { echo "no bench output captured" >&2; exit 1; }

{
  echo '{'
  echo '  "bench": "gateway",'
  echo '  "results": {'
  first=1
  while IFS= read -r line; do
    name="${line%%:*}"
    ns="$(echo "$line" | sed -n 's/.*: *\([0-9.]*\) ns\/iter.*/\1/p')"
    rate="$(echo "$line" | sed -n 's/.*(\([0-9.]*\) M\/s).*/\1/p')"
    [ "$first" -eq 1 ] && first=0 || echo ','
    printf '    "%s": {"ns_per_iter": %s, "msamples_per_sec": %s}' \
      "$name" "${ns:-0}" "${rate:-0}"
  done <<< "$raw"
  echo ''
  echo '  }'
  echo '}'
} > "$out"

echo "wrote $out"
cat "$out"

[ -n "$baseline" ] || exit 0

# --check: every baseline bench must still run within 15% of its recorded
# throughput. New benches (in $out but not the baseline) pass silently;
# a bench that disappeared is a failure.
test -f "$baseline" || { echo "baseline $baseline not found" >&2; exit 1; }

# "name rate" pairs from one of our result files.
rates() {
  sed -n 's/^ *"\([^"]*\)": {"ns_per_iter": [0-9.]*, "msamples_per_sec": \([0-9.]*\)}.*$/\1 \2/p' "$1"
}

fail=0
while read -r name base_rate; do
  new_rate="$(rates "$out" | awk -v n="$name" '$1 == n { print $2 }')"
  if [ -z "$new_rate" ]; then
    echo "FAIL $name: present in $baseline but missing from this run" >&2
    fail=1
    continue
  fi
  if awk -v new="$new_rate" -v base="$base_rate" \
      'BEGIN { exit !(new < 0.85 * base) }'; then
    echo "FAIL $name: ${new_rate} Msamples/s is >15% below baseline ${base_rate}" >&2
    fail=1
  else
    echo "ok   $name: ${new_rate} Msamples/s (baseline ${base_rate})"
  fi
done < <(rates "$baseline")

if [ "$fail" -ne 0 ]; then
  echo "bench regression gate failed against $baseline" >&2
  echo "(intentional? refresh with: ./scripts/bench_smoke.sh $baseline && git add $baseline)" >&2
  exit 1
fi
echo "bench regression gate passed against $baseline"
