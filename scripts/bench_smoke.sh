#!/usr/bin/env bash
# Release-mode bench smoke: run the gateway bench once and render the
# results as JSON so CI can archive a BENCH_<sha>.json trajectory point.
#
# The vendored criterion stub prints one line per bench:
#   <name>: <ns> ns/iter  (<rate> M/s)
# This script turns those lines into a JSON object keyed by bench name.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(git rev-parse --short HEAD 2>/dev/null || echo local).json}"

raw="$(cargo bench -p ctc-bench --bench gateway 2>/dev/null | grep 'ns/iter')"
test -n "$raw" || { echo "no bench output captured" >&2; exit 1; }

{
  echo '{'
  echo '  "bench": "gateway",'
  echo '  "results": {'
  first=1
  while IFS= read -r line; do
    name="${line%%:*}"
    ns="$(echo "$line" | sed -n 's/.*: *\([0-9.]*\) ns\/iter.*/\1/p')"
    rate="$(echo "$line" | sed -n 's/.*(\([0-9.]*\) M\/s).*/\1/p')"
    [ "$first" -eq 1 ] && first=0 || echo ','
    printf '    "%s": {"ns_per_iter": %s, "msamples_per_sec": %s}' \
      "$name" "${ns:-0}" "${rate:-0}"
  done <<< "$raw"
  echo ''
  echo '  }'
  echo '}'
} > "$out"

echo "wrote $out"
cat "$out"
