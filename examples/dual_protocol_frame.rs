//! The full-stack attack: craft ONE radio transmission that
//!
//! 1. a stock 802.11g receiver accepts as a perfectly legal WiFi frame
//!    (PLCP preamble, SIGNAL, SERVICE, tail — everything checks out), and
//! 2. a ZigBee device decodes as an authentic control frame.
//!
//! This extends the paper's attack (Sec. V emits bare OFDM payload symbols)
//! with constrained-Viterbi frame shaping; see
//! `ctc_core::attack::fullframe` for the construction.
//!
//! ```text
//! cargo run --release --example dual_protocol_frame
//! ```

use hide_and_seek::channel::Link;
use hide_and_seek::core::attack::FullFrameAttack;
use hide_and_seek::wifi::WifiReceiver;
use hide_and_seek::zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The recorded victim frame.
    let observed = Transmitter::new().transmit_payload(b"00000")?;
    println!("recorded ZigBee frame: {} samples at 4 MHz", observed.len());

    // Build the dual-protocol transmission.
    let attack = FullFrameAttack::new();
    let emulation = attack.emulate(&observed);
    println!(
        "crafted 802.11g frame: {} samples at 20 MHz\n\
         - PLCP preamble + SIGNAL + {} data symbols\n\
         - PSDU: {} bytes\n\
         - constrained-codeword distance: {}",
        emulation.wifi_waveform.len(),
        emulation.data_symbols,
        emulation.psdu.len(),
        emulation.codeword_distance,
    );

    // Side 1: a standard WiFi receiver.
    let wifi = WifiReceiver::new().receive(&emulation.wifi_waveform)?;
    println!(
        "\n[WiFi side] rate {} Mb/s, PSDU {} bytes, Viterbi distance {} -> {}",
        wifi.rate.mbps(),
        wifi.psdu_len,
        wifi.viterbi_distance,
        if wifi.psdu == emulation.psdu {
            "frame decodes EXACTLY"
        } else {
            "mismatch"
        },
    );
    assert_eq!(wifi.psdu, emulation.psdu);

    // Side 2: the ZigBee victim, over a noisy channel.
    let at_zigbee = attack.received_at_zigbee(&emulation);
    let mut rng = StdRng::seed_from_u64(7);
    let link = Link::awgn(13.0);
    let rx = Receiver::usrp().with_sync_search(160);
    let mut ok = 0;
    const TRIALS: usize = 20;
    for _ in 0..TRIALS {
        let r = rx.receive(&link.transmit(&at_zigbee, &mut rng));
        ok += usize::from(r.payload() == Some(&b"00000"[..]));
    }
    println!(
        "[ZigBee side] {} of {TRIALS} frames accepted at 13 dB SNR — the same \
         transmission controls the device",
        ok
    );
    assert!(ok >= 18);
    Ok(())
}
