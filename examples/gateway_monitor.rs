//! A defending ZigBee gateway in deployment form: continuously monitor the
//! channel, find every frame-shaped burst, decode it, and classify it as
//! authentic or emulated — including the strongest (dual-protocol) attacker.
//!
//! ```text
//! cargo run --release --example gateway_monitor
//! ```

use hide_and_seek::channel::noise::complex_gaussian;
use hide_and_seek::core::attack::{Emulator, EnergyDetector, FullFrameAttack};
use hide_and_seek::core::defense::{ChannelAssumption, Detector, StreamMonitor};
use hide_and_seek::dsp::metrics::normalize_power;
use hide_and_seek::zigbee::{Receiver, Transmitter};
use hide_and_seek::Complex;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let tx = Transmitter::new();

    // Build a day's worth of traffic (well, a few milliseconds of it):
    // authentic frames interleaved with two attacker generations.
    let authentic = tx.transmit_payload(b"00017")?;
    let baseline_attacker = Emulator::new();
    let forged_v1 = normalize_power(
        &baseline_attacker.received_at_zigbee(&baseline_attacker.emulate(&authentic)),
    );
    let fullframe_attacker = FullFrameAttack::new();
    let forged_v2 = normalize_power(
        &fullframe_attacker.received_at_zigbee(&fullframe_attacker.emulate(&authentic)),
    );

    let mut stream: Vec<Complex> = Vec::new();
    let mut truth = Vec::new();
    let noise = |n: usize, stream: &mut Vec<Complex>, rng: &mut StdRng| {
        stream.extend((0..n).map(|_| complex_gaussian(rng, 2e-3)));
    };
    for round in 0..3 {
        noise(700, &mut stream, &mut rng);
        stream.extend_from_slice(&authentic);
        truth.push("authentic");
        noise(700, &mut stream, &mut rng);
        stream.extend_from_slice(if round % 2 == 0 {
            &forged_v1
        } else {
            &forged_v2
        });
        truth.push(if round % 2 == 0 {
            "attack (baseline)"
        } else {
            "attack (dual-protocol)"
        });
    }
    noise(700, &mut stream, &mut rng);
    println!(
        "monitoring a {}-sample recording ({:.1} ms at 4 MHz) containing {} frames\n",
        stream.len(),
        stream.len() as f64 / 4000.0,
        truth.len()
    );

    let monitor = StreamMonitor::new(
        EnergyDetector::default(),
        Receiver::usrp().with_sync_search(200),
        Detector::new(ChannelAssumption::Ideal).with_threshold(0.25),
    );
    let events = monitor.scan(&stream);

    println!(
        "{:<10} {:>10} {:>12} {:>10}  verdict",
        "burst", "payload", "DE²", "truth"
    );
    let mut alarms = 0usize;
    for (event, truth) in events.iter().zip(&truth) {
        let verdict = event.verdict.expect("frames long enough for features");
        println!(
            "{:<10} {:>10} {:>12.4} {:>10}  {}",
            format!("@{}", event.burst.start),
            event
                .payload
                .as_deref()
                .map(|p| String::from_utf8_lossy(p).into_owned())
                .unwrap_or_else(|| "-".into()),
            verdict.de_squared,
            truth,
            if event.accepted_forgery() {
                alarms += 1;
                "!! ACCEPTED FORGERY — ALARM"
            } else if verdict.is_attack {
                "attack (rejected upstream)"
            } else {
                "authentic"
            }
        );
    }
    assert_eq!(events.len(), truth.len(), "every frame found");
    assert_eq!(alarms, 3, "all three forgeries flagged");
    println!(
        "\n{alarms} forged frames decoded by the stock stack and flagged by the \
         cumulant detector — the gateway knows exactly which commands to undo."
    );
    Ok(())
}
