//! Quickstart: run the full attack-and-defense loop in a dozen lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hide_and_seek::core::attack::Emulator;
use hide_and_seek::core::defense::{ChannelAssumption, Detector};
use hide_and_seek::zigbee::{Receiver, Transmitter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A ZigBee device transmits a control frame; the attacker records it.
    let observed = Transmitter::new().transmit_payload(b"00000")?;
    println!(
        "observed ZigBee waveform: {} samples at 4 MHz",
        observed.len()
    );

    // 2. The WiFi attacker emulates the waveform with its OFDM transmitter.
    let emulator = Emulator::new();
    let emulation = emulator.emulate(&observed);
    println!(
        "emulated as {} WiFi symbols, kept FFT bins {:?}, alpha = {:.3}",
        emulation.wifi_symbol_count(),
        emulation.kept_bins,
        emulation.alpha,
    );

    // 3. The ZigBee receiver's 2 MHz front-end captures the transmission...
    let captured = emulator.received_at_zigbee(&emulation);
    let reception = Receiver::usrp().receive(&captured);

    // 4. ...and decodes the forged frame as if it were authentic.
    println!(
        "decoded payload: {:?} (chip errors per symbol: max {})",
        reception.payload().map(String::from_utf8_lossy),
        reception.hamming_distances.iter().max().unwrap_or(&0),
    );
    assert_eq!(reception.payload(), Some(&b"00000"[..]));

    // 5. The constellation-statistics defense still catches it.
    let detector = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
    let verdict = detector.detect(&reception)?;
    println!(
        "defense verdict: DE² = {:.4} (Q = {:.2}) -> {}",
        verdict.de_squared,
        detector.threshold(),
        if verdict.is_attack {
            "WiFi ATTACKER"
        } else {
            "authentic ZigBee"
        },
    );
    assert!(verdict.is_attack);
    Ok(())
}
