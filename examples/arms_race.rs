//! The attack–defense arms race, interactively: the paper's attacker, the
//! CP-aware least-squares attacker that tries to shrink its cumulant
//! footprint, and the calibrated detector that still wins.
//!
//! ```text
//! cargo run --release --example arms_race
//! ```

use hide_and_seek::channel::Link;
use hide_and_seek::core::attack::{Emulator, LeastSquaresEmulator};
use hide_and_seek::core::defense::{features_from_reception, ChannelAssumption, Detector};
use hide_and_seek::zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let observed = Transmitter::new().transmit_payload(b"00000")?;
    let rx = Receiver::usrp();
    let link = Link::awgn(15.0);
    let mut rng = StdRng::seed_from_u64(1);

    // Round 0: the defender calibrates on the known (baseline) attack.
    let baseline = Emulator::new();
    let forged_v1 = baseline.received_at_zigbee(&baseline.emulate(&observed));
    let train = |wave: &[hide_and_seek::dsp::Complex], rng: &mut StdRng| {
        (0..30)
            .map(|_| rx.receive(&link.transmit(wave, rng)))
            .collect::<Vec<_>>()
    };
    let detector = Detector::calibrate(
        ChannelAssumption::Ideal,
        &train(&observed, &mut rng),
        &train(&forged_v1, &mut rng),
    );
    println!(
        "round 0: defender calibrates Q = {:.4} on the baseline attack",
        detector.threshold()
    );

    // Round 1: the baseline attacker strikes.
    let stats = |wave: &[hide_and_seek::dsp::Complex], rng: &mut StdRng| {
        let mut de = 0.0;
        let mut caught = 0usize;
        const N: usize = 30;
        for _ in 0..N {
            let r = rx.receive(&link.transmit(wave, rng));
            de += features_from_reception(&r).unwrap().de_squared_ideal();
            caught += usize::from(detector.detect(&r).unwrap().is_attack);
        }
        (de / N as f64, caught as f64 / N as f64)
    };
    let (de1, caught1) = stats(&forged_v1, &mut rng);
    println!(
        "round 1: baseline attack   — DE² {de1:.4}, detected {:.0}%",
        caught1 * 100.0
    );

    // Round 2: the attacker adapts — least-squares fit over the whole
    // 80-sample block, CP included, shrinking the defense's main signal.
    let ls = LeastSquaresEmulator::new();
    let forged_v2 = ls.received_at_zigbee(&ls.emulate(&observed));
    let (de2, caught2) = stats(&forged_v2, &mut rng);
    println!(
        "round 2: LS (CP-aware)     — DE² {de2:.4}, detected {:.0}%",
        caught2 * 100.0
    );

    // Reference: the authentic transmitter.
    let (de0, flagged0) = stats(&observed, &mut rng);
    println!(
        "reference: authentic       — DE² {de0:.4}, flagged  {:.0}%",
        flagged0 * 100.0
    );

    println!(
        "\nThe adaptive attacker cut its statistic by {:.0}% but remains {:.0}x\n\
         above the authentic class: the 7-subcarrier truncation and the QAM\n\
         grid put a floor under the footprint the detector thresholds on.",
        (1.0 - de2 / de1) * 100.0,
        de2 / de0,
    );
    assert!(de2 < de1, "the adaptation should help the attacker");
    assert!(caught2 > 0.5, "the defender should still win most rounds");
    Ok(())
}
