//! Anatomy of the emulation: walks the attack pipeline step by step and
//! prints what each stage does to the spectrum — the narrative of the
//! paper's Sec. V with live numbers (Table I's view, the two-step selection,
//! the alpha search of eq. (4), and the Parseval error budget of eq. (2)).
//!
//! ```text
//! cargo run --release --example spectrum_anatomy
//! ```

use hide_and_seek::core::attack::spectrum::{block_spectra, select_subcarriers};
use hide_and_seek::core::attack::{quantize_points, Emulator, SpectralMode};
use hide_and_seek::dsp::fft;
use hide_and_seek::dsp::resample::interpolate;
use hide_and_seek::zigbee::Transmitter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 0: the observed waveform.
    let observed = Transmitter::new().transmit_payload(b"00000")?;
    println!(
        "step 0  observed ZigBee frame: {} samples at 4 MHz ({} µs)",
        observed.len(),
        observed.len() as f64 / 4.0
    );

    // Step 1: x5 interpolation to the WiFi sample rate.
    let wide = interpolate(&observed, 5)?;
    println!(
        "step 1  interpolated x5 -> {} samples at 20 MHz = {} WiFi-symbol blocks",
        wide.len(),
        wide.len() / 80
    );

    // Step 2: per-block FFT (CP position skipped).
    let spectra = block_spectra(&wide);
    let example = &spectra[4];
    let mags = example.magnitudes();
    let mut order: Vec<usize> = (0..64).collect();
    order.sort_by(|&a, &b| mags[b].total_cmp(&mags[a]));
    println!("step 2  strongest bins of block 5: {:?}", &order[..8]);

    // Step 3: two-step subcarrier selection over all blocks.
    let bins = select_subcarriers(&spectra, 3.0, 7);
    let kept_energy: f64 = spectra
        .iter()
        .flat_map(|s| bins.iter().map(|&b| s.components[b].norm_sqr()))
        .sum();
    let total_energy: f64 = spectra
        .iter()
        .flat_map(|s| s.components.iter().map(|c| c.norm_sqr()))
        .sum();
    println!(
        "step 3  selected bins {:?} carry {:.1}% of the frame energy",
        bins,
        100.0 * kept_energy / total_energy
    );

    // Step 4: QAM quantization with the optimal scaler.
    let chosen: Vec<_> = spectra
        .iter()
        .flat_map(|s| bins.iter().map(|&b| s.components[b]))
        .collect();
    let q = quantize_points(&chosen, None);
    println!(
        "step 4  alpha* = {:.3} (paper's example: sqrt(26) = {:.3}); \
         quantization error = {:.1}",
        q.alpha,
        26f64.sqrt(),
        q.error
    );

    // Step 5: Parseval check (eq. (2)) — the frequency-domain quantization
    // error equals the time-domain distortion it will cause.
    let emulator = Emulator::new();
    let emulation = emulator.emulate(&observed);
    let mut time_err = 0.0;
    for (block, spec) in emulation.waveform_20mhz.chunks(80).zip(&spectra) {
        let body = fft::fft(&block[16..])?;
        let err: f64 = body
            .iter()
            .zip(&spec.components)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum();
        time_err += err / 64.0; // Parseval: time-domain energy = freq/N
    }
    println!(
        "step 5  total spectral deviation (all bins, incl. dropped): {:.1} \
         -> emulated waveform distortion energy {:.1} (Parseval, eq. (2))",
        time_err * 64.0,
        time_err
    );

    // Step 6: compare against the carrier-allocated deployment mode.
    let deployed = Emulator::new().with_spectral_mode(SpectralMode::CarrierAllocated);
    let em2 = deployed.emulate(&observed);
    println!(
        "step 6  carrier-allocated mode keeps subcarriers {:?} \
         (paper Sec. V-A4: data subcarriers [-20, -8] at 2440 MHz)",
        hide_and_seek::core::attack::kept_subcarrier_indices(&em2)
    );
    Ok(())
}
