//! The paper's motivating scenario end-to-end: a WiFi attacker hijacks a
//! ZigBee smart light bulb (or garage door, Sec. I) by replaying an
//! eavesdropped control frame as an emulated waveform — across a noisy
//! indoor channel, at increasing distance.
//!
//! ```text
//! cargo run --release --example smart_bulb_hijack
//! ```

use hide_and_seek::channel::Link;
use hide_and_seek::core::attack::Emulator;
use hide_and_seek::zigbee::app::Command;
use hide_and_seek::zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A toy smart bulb: applies any command whose frame decodes.
#[derive(Debug, Default)]
struct SmartBulb {
    on: bool,
    level: u8,
    commands_accepted: usize,
}

impl SmartBulb {
    fn handle(&mut self, payload: &[u8]) -> Option<Command> {
        let cmd = Command::from_payload(payload)?;
        match cmd {
            Command::TurnOn => self.on = true,
            Command::TurnOff => self.on = false,
            Command::SetLevel(v) => self.level = v,
            Command::Unlock => {}
        }
        self.commands_accepted += 1;
        Some(cmd)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2019);
    let gateway = Transmitter::new();
    let bulb_radio = Receiver::commodity(); // CC26x2R1-class device
    let mut bulb = SmartBulb::default();

    // --- Phase 1: the legitimate gateway turns the bulb on. The attacker,
    // parked nearby, records the waveform off the air.
    let control = Command::TurnOn.to_payload();
    let over_the_air = gateway.transmit_payload(&control)?;
    let eavesdropped = Link::real_indoor(2.0, 0.0).transmit(&over_the_air, &mut rng);
    println!("[t1] gateway sends TURN_ON; attacker eavesdrops from 2 m");

    let reception = bulb_radio.receive(&eavesdropped);
    if let Some(p) = reception.payload() {
        let cmd = bulb.handle(p).expect("gateway frames carry commands");
        println!("[t1] bulb applies {cmd}; state: on={}", bulb.on);
    }

    // --- Phase 2: later, the attacker replays the *recorded* (noisy!)
    // waveform as a WiFi emulation from several distances.
    let emulator = Emulator::new();
    let emulation = emulator.emulate(&eavesdropped);
    println!(
        "[t2] attacker builds the emulation: {} WiFi symbols, alpha = {:.2}, quantization error = {:.1}",
        emulation.wifi_symbol_count(),
        emulation.alpha,
        emulation.quantization_error
    );
    let forged = emulator.received_at_zigbee(&emulation);

    for distance in [1.0, 3.0, 5.0, 8.0] {
        let link = Link::real_indoor(distance, 0.0);
        let mut wins = 0;
        const ATTEMPTS: usize = 20;
        for _ in 0..ATTEMPTS {
            let rx_wave = link.transmit(&forged, &mut rng);
            let r = bulb_radio.receive(&rx_wave);
            if let Some(p) = r.payload() {
                if bulb.handle(p).is_some() {
                    wins += 1;
                }
            }
        }
        println!(
            "[t2] attack from {distance} m: {wins}/{ATTEMPTS} forged frames accepted \
             (link SNR {:.1} dB)",
            link.snr_db()
        );
    }

    println!(
        "\nbulb accepted {} commands total — every forged frame was \
         indistinguishable to the stock receiver stack.",
        bulb.commands_accepted
    );
    assert!(bulb.commands_accepted > 1, "the attack should land");
    Ok(())
}
