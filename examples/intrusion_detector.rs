//! Deploying the defense: a ZigBee receiver that calibrates the cumulant
//! detector online (paper Sec. VII-B: first 50 frames of each class train
//! the threshold) and then classifies live traffic from both transmitters
//! under a realistic indoor channel with phase offsets.
//!
//! ```text
//! cargo run --release --example intrusion_detector
//! ```

use hide_and_seek::channel::Link;
use hide_and_seek::core::attack::Emulator;
use hide_and_seek::core::defense::{ChannelAssumption, Detector};
use hide_and_seek::zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    let tx = Transmitter::new();
    let rx = Receiver::usrp();
    let link = Link::real_indoor(3.0, 0.0); // fading + CFO + random phase

    // Build both waveforms once.
    let authentic = tx.transmit_payload(b"00000")?;
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));

    // --- Calibration phase: 50 labelled frames per class.
    const TRAIN: usize = 50;
    let zig_train: Vec<_> = (0..TRAIN)
        .map(|_| rx.receive(&link.transmit(&authentic, &mut rng)))
        .collect();
    let emu_train: Vec<_> = (0..TRAIN)
        .map(|_| rx.receive(&link.transmit(&forged, &mut rng)))
        .collect();
    // The real channel rotates the constellation, so use the |C40| variant.
    let detector = Detector::calibrate(ChannelAssumption::Real, &zig_train, &emu_train);
    println!(
        "calibrated threshold Q = {:.4} from {TRAIN} frames per class",
        detector.threshold()
    );

    // --- Live phase: classify a mixed stream.
    const LIVE: usize = 100;
    let mut confusion = [[0usize; 2]; 2]; // [truth][verdict]
    for i in 0..LIVE {
        let is_attack = i % 3 == 0; // the attacker strikes every third frame
        let wave = if is_attack { &forged } else { &authentic };
        let reception = rx.receive(&link.transmit(wave, &mut rng));
        let verdict = detector.detect(&reception)?;
        confusion[usize::from(is_attack)][usize::from(verdict.is_attack)] += 1;
    }

    println!("\nconfusion matrix over {LIVE} live frames:");
    println!("                 verdict=zigbee  verdict=attack");
    println!(
        "truth=zigbee     {:>14}  {:>14}",
        confusion[0][0], confusion[0][1]
    );
    println!(
        "truth=attack     {:>14}  {:>14}",
        confusion[1][0], confusion[1][1]
    );

    let false_positives = confusion[0][1];
    let missed = confusion[1][0];
    println!(
        "\nfalse positives: {false_positives}, missed attacks: {missed} — the \
         higher-order-statistics defense separates the classes the paper's way."
    );
    assert_eq!(false_positives, 0, "authentic frames must pass");
    assert_eq!(missed, 0, "every attack must be flagged");
    Ok(())
}
