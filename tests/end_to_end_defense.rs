//! Integration: the cumulant defense across crates and channel conditions,
//! including the negative results for the naive strategies.

use hide_and_seek::channel::Link;
use hide_and_seek::core::attack::Emulator;
use hide_and_seek::core::defense::naive;
use hide_and_seek::core::defense::{ChannelAssumption, Detector};
use hide_and_seek::zigbee::{Receiver, Reception, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Setup {
    authentic: Vec<hide_and_seek::dsp::Complex>,
    forged: Vec<hide_and_seek::dsp::Complex>,
}

fn setup() -> Setup {
    let authentic = Transmitter::new().transmit_payload(b"00000").unwrap();
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
    Setup { authentic, forged }
}

fn receptions(
    wave: &[hide_and_seek::dsp::Complex],
    link: &Link,
    n: usize,
    seed: u64,
) -> Vec<Reception> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rx = Receiver::usrp();
    (0..n)
        .map(|_| rx.receive(&link.transmit(wave, &mut rng)))
        .collect()
}

#[test]
fn calibrated_detector_is_perfect_on_awgn() {
    // At 7 dB the per-frame DE² distributions are close enough that a
    // 20-frame calibration occasionally misplaces the midpoint (the paper
    // trains on 50 frames and its larger emulation distortion widens the
    // gap); from 9 dB up separation is total.
    let s = setup();
    for snr in [9.0, 12.0, 17.0] {
        let link = Link::awgn(snr);
        let zig_train = receptions(&s.authentic, &link, 20, 10);
        let emu_train = receptions(&s.forged, &link, 20, 11);
        let det = Detector::calibrate(ChannelAssumption::Ideal, &zig_train, &emu_train);
        for r in receptions(&s.authentic, &link, 20, 12) {
            assert!(
                !det.detect(&r).unwrap().is_attack,
                "false positive at {snr} dB"
            );
        }
        for r in receptions(&s.forged, &link, 20, 13) {
            assert!(det.detect(&r).unwrap().is_attack, "miss at {snr} dB");
        }
    }
}

#[test]
fn real_channel_detector_survives_phase_and_cfo() {
    let s = setup();
    let link = Link::real_indoor(3.0, 0.0);
    let zig_train = receptions(&s.authentic, &link, 20, 20);
    let emu_train = receptions(&s.forged, &link, 20, 21);
    let det = Detector::calibrate(ChannelAssumption::Real, &zig_train, &emu_train);
    let mut fp = 0;
    let mut miss = 0;
    for r in receptions(&s.authentic, &link, 30, 22) {
        fp += usize::from(det.detect(&r).unwrap().is_attack);
    }
    for r in receptions(&s.forged, &link, 30, 23) {
        miss += usize::from(!det.detect(&r).unwrap().is_attack);
    }
    assert_eq!(fp, 0, "{fp} false positives under fading");
    assert_eq!(miss, 0, "{miss} missed attacks under fading");
}

#[test]
fn ideal_detector_fails_under_rotation_but_real_does_not() {
    // The motivating asymmetry of Sec. VI-C.
    let s = setup();
    let rotated = hide_and_seek::channel::impairments::apply_phase(&s.authentic, 0.6);
    let r = Receiver::usrp()
        .with_phase_correction(false)
        .receive(&rotated);
    let ideal = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
    let real = Detector::new(ChannelAssumption::Real).with_threshold(0.25);
    assert!(
        ideal.detect(&r).unwrap().is_attack,
        "Re(C40) should break under rotation"
    );
    assert!(
        !real.detect(&r).unwrap().is_attack,
        "|C40| should survive rotation"
    );
}

#[test]
fn defense_works_at_table_v_distances() {
    let s = setup();
    for d in [1.0, 3.0, 6.0] {
        let link = Link::real_indoor(d, 0.0);
        let det = Detector::new(ChannelAssumption::Real).with_threshold(0.1);
        for r in receptions(&s.authentic, &link, 10, 30) {
            let v = det.detect(&r).unwrap();
            assert!(!v.is_attack, "{d} m: authentic DE² {}", v.de_squared);
        }
        for r in receptions(&s.forged, &link, 10, 31) {
            let v = det.detect(&r).unwrap();
            assert!(v.is_attack, "{d} m: forged DE² {}", v.de_squared);
        }
    }
}

#[test]
fn naive_cp_strategy_collapses_without_block_alignment() {
    // The defender does not know where the attacker's 4 µs blocks start (the
    // ZigBee receiver has no WiFi symbol clock). Even a few samples of
    // misalignment destroy the CP statistic's margin — one of the reasons
    // "this methodology is not reliable" (Sec. VI-A1).
    let s = setup();
    let aligned = naive::cp_similarity_4mhz(&s.forged).unwrap();
    let zig_baseline = naive::cp_similarity_4mhz(&s.authentic).unwrap();
    assert!(
        aligned > zig_baseline,
        "sanity: aligned emulated must score higher"
    );
    let mut misaligned_max = f64::MIN;
    for off in [3usize, 5, 8, 11, 13] {
        let shifted = naive::cp_similarity_4mhz(&s.forged[off..]).unwrap();
        misaligned_max = misaligned_max.max(shifted);
    }
    assert!(
        misaligned_max < aligned - 0.1,
        "misalignment should erase most of the CP margin: aligned {aligned}, \
         misaligned max {misaligned_max}"
    );
}

#[test]
fn naive_chip_strategy_sees_no_symbol_difference() {
    let s = setup();
    let rx = Receiver::usrp();
    let n = s.authentic.len().min(s.forged.len());
    let ra = rx.receive(&s.authentic[..n]);
    let rb = rx.receive(&s.forged[..n]);
    let cmp = naive::compare_chip_streams(&ra, &rb);
    assert!(cmp.chip_groups_differing > 0.5);
    assert_eq!(cmp.symbols_differing, 0.0);
}

#[test]
fn defense_survives_walking_speed_doppler() {
    // "During the experiment, there are human activities such as walking"
    // (Sec. VII-D): ~8 Hz of Doppler at 2.4 GHz. The channel is essentially
    // static within one 0.4 ms frame, so the detector must be unaffected.
    use hide_and_seek::channel::fading::JakesFading;
    let s = setup();
    let det = Detector::new(ChannelAssumption::Real).with_threshold(0.1);
    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..10 {
        let fader = JakesFading::new(8.0, 4.0e6, 5.0, 12, &mut rng);
        // Sample the channel at a random point in its fading cycle by
        // offsetting the frame start.
        let offset = trial * 40_000;
        let faded_auth: Vec<hide_and_seek::dsp::Complex> = s
            .authentic
            .iter()
            .enumerate()
            .map(|(n, &v)| v * fader.gain_at(offset + n))
            .collect();
        let faded_forged: Vec<hide_and_seek::dsp::Complex> = s
            .forged
            .iter()
            .enumerate()
            .map(|(n, &v)| v * fader.gain_at(offset + n))
            .collect();
        let rx = Receiver::usrp();
        let va = det.detect(&rx.receive(&faded_auth)).unwrap();
        let vf = det.detect(&rx.receive(&faded_forged)).unwrap();
        assert!(
            !va.is_attack,
            "trial {trial}: authentic flagged, DE² {}",
            va.de_squared
        );
        assert!(
            vf.is_attack,
            "trial {trial}: forgery missed, DE² {}",
            vf.de_squared
        );
    }
}

#[test]
fn detector_error_on_empty_reception() {
    let det = Detector::default();
    let r = Receiver::usrp().receive(&[]);
    assert!(det.detect(&r).is_err());
}

#[test]
fn verdict_carries_features() {
    let s = setup();
    let r = Receiver::usrp().receive(&s.forged);
    let v = Detector::new(ChannelAssumption::Ideal).detect(&r).unwrap();
    assert!(v.features.sample_count > 100);
    assert!(v.de_squared > 0.0);
}
