//! Integration: the streaming gateway end to end through the facade crate.
//!
//! Two guarantees pin the gateway to the inline defense it wraps:
//!
//! 1. **Chunking invariance** (property test): pushing a stream through
//!    `StreamMonitor` in arbitrarily-sized chunks yields exactly the
//!    events of a one-shot `scan` of the whole buffer.
//! 2. **Pipeline fidelity**: the multi-threaded gateway over the same
//!    capture reports the same bursts and verdicts as the inline monitor,
//!    via its JSONL surface.

// Pipeline fidelity is pinned against the deprecated single-stream
// `Gateway::run` on purpose: the wrapper must keep producing the exact
// legacy JSONL that this suite (and the golden corpus) encode.
#![allow(deprecated)]

use hide_and_seek::channel::noise::complex_gaussian;
use hide_and_seek::core::attack::Emulator;
use hide_and_seek::core::defense::{ChannelAssumption, Detector, StreamMonitor};
use hide_and_seek::dsp::io::write_cf32;
use hide_and_seek::dsp::Complex;
use hide_and_seek::gateway::{Gateway, GatewayConfig};
use hide_and_seek::zigbee::Transmitter;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// noise | authentic | noise | forged | noise — built once, reused by
/// every property-test case.
fn capture() -> &'static Vec<Complex> {
    static CAPTURE: OnceLock<Vec<Complex>> = OnceLock::new();
    CAPTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(41);
        let sigma2 = 1e-3;
        let authentic = Transmitter::new().transmit_payload(b"00000").unwrap();
        let emulator = Emulator::new();
        let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
        let mut stream = Vec::new();
        let mut noise = |n: usize, stream: &mut Vec<Complex>| {
            stream.extend((0..n).map(|_| complex_gaussian(&mut rng, sigma2)));
        };
        noise(800, &mut stream);
        stream.extend_from_slice(&authentic);
        noise(800, &mut stream);
        stream.extend_from_slice(&forged);
        noise(800, &mut stream);
        stream
    })
}

fn monitor() -> StreamMonitor {
    StreamMonitor::with_detector(Detector::new(ChannelAssumption::Ideal).with_threshold(0.25))
}

// Split the capture at random boundaries; every chunking must reproduce
// the whole-buffer scan exactly.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn any_chunking_matches_whole_buffer_scan(seed in 0u64..10_000) {
        let stream = capture();
        let reference = monitor().scan(stream);
        prop_assert_eq!(reference.len(), 2);

        let mut rng = StdRng::seed_from_u64(seed);
        let mut session = monitor();
        let mut events = Vec::new();
        let mut at = 0usize;
        while at < stream.len() {
            let step = rng.gen_range(1usize..4000).min(stream.len() - at);
            events.extend(session.push(&stream[at..at + step]));
            at += step;
        }
        events.extend(session.finish());

        prop_assert_eq!(events.len(), reference.len());
        for (e, r) in events.iter().zip(&reference) {
            prop_assert_eq!(e.burst, r.burst);
            prop_assert_eq!(&e.payload, &r.payload);
            prop_assert_eq!(e.truncated, r.truncated);
            let (ev, rv) = (e.verdict.unwrap(), r.verdict.unwrap());
            prop_assert_eq!(ev.is_attack, rv.is_attack);
            prop_assert_eq!(ev.de_squared, rv.de_squared);
        }
    }
}

/// The threaded gateway agrees with the inline monitor on the same bytes:
/// same burst offsets, payloads and verdicts, in order, nothing dropped.
#[test]
fn gateway_pipeline_matches_inline_monitor() {
    let stream = capture();
    let reference = monitor().scan(stream);
    assert_eq!(reference.len(), 2);

    let mut bytes = Vec::new();
    write_cf32(&mut bytes, stream).unwrap();
    let config = GatewayConfig {
        chunk_samples: 1000,
        detector: Detector::new(ChannelAssumption::Ideal).with_threshold(0.25),
        stats_interval: None,
        ..GatewayConfig::default()
    };
    let mut events = Vec::new();
    let report = Gateway::new(config)
        .run(&bytes[..], &mut events, &mut Vec::new())
        .unwrap();

    assert_eq!(report.metrics.samples_in as usize, stream.len());
    assert_eq!(report.metrics.bursts as usize, reference.len());
    assert_eq!(report.metrics.samples_dropped, 0);
    assert_eq!(report.metrics.forgeries, 1);
    assert!(report.forgery_detected());

    let events = String::from_utf8(events).unwrap();
    let frames: Vec<&str> = events
        .lines()
        .filter(|l| l.contains("\"type\":\"frame\""))
        .collect();
    assert_eq!(frames.len(), reference.len(), "events:\n{events}");
    for (line, r) in frames.iter().zip(&reference) {
        assert!(
            line.contains(&format!("\"burst_start\":{}", r.burst.start)),
            "offset mismatch: {line}"
        );
        let verdict = if r.verdict.unwrap().is_attack {
            "\"verdict\":\"attack\""
        } else {
            "\"verdict\":\"authentic\""
        };
        assert!(line.contains(verdict), "verdict mismatch: {line}");
        assert!(
            line.contains("\"payload_hex\":\"3030303030\""),
            "payload mismatch: {line}"
        );
    }
}
