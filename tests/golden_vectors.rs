//! The golden-vector regression gate, plus the self-tests that prove the
//! gate actually gates: a corpus with a single flipped sample (or chip, or
//! JSON field) must fail the check *and* name the right stage.

use hide_and_seek::vectors::{
    check_corpus, compare, generate, read_corpus, write_corpus, CheckError, CorpusSpec, Payload,
    Vector, STAGE_NAMES,
};
use std::path::{Path, PathBuf};

/// The committed corpus at the repository root.
fn committed_corpus() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("vectors")
}

/// Self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("golden-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The regression gate itself: the committed corpus must replay through the
/// live pipeline within every stage's tolerance. A failure here means a
/// code change altered an artifact the paper's pipeline is specified by —
/// either fix the regression or regenerate the corpus (`ctc vectors
/// generate`) and justify the new goldens in review.
#[test]
fn committed_corpus_replays_within_tolerance() {
    let reports = check_corpus(&committed_corpus()).unwrap_or_else(|e| {
        panic!("committed golden vectors diverged from the live pipeline:\n  {e}")
    });
    assert_eq!(reports.len(), STAGE_NAMES.len());
    let names: Vec<&str> = reports.iter().map(|r| r.stage.as_str()).collect();
    assert_eq!(names, STAGE_NAMES);
}

/// The committed corpus must be the default-spec corpus — otherwise
/// `ctc vectors generate` would silently produce a different one.
#[test]
fn committed_corpus_uses_the_default_spec() {
    let (spec, vectors) = read_corpus(&committed_corpus()).unwrap();
    assert_eq!(spec, CorpusSpec::default());
    assert_eq!(vectors.len(), STAGE_NAMES.len());
}

/// Rewrites one stage of a fresh corpus and returns the check error.
fn perturbed(tag: &str, mutate: impl FnOnce(&mut Vec<Vector>)) -> CheckError {
    let tmp = TempDir::new(tag);
    let spec = CorpusSpec::default();
    let mut vectors = generate(&spec).unwrap();
    mutate(&mut vectors);
    write_corpus(&tmp.0, &spec, &vectors).unwrap();
    check_corpus(&tmp.0).expect_err("perturbed corpus must fail the check")
}

/// Flipping a single float sample beyond tolerance must fail, naming the
/// perturbed stage and the exact sample index.
#[test]
fn single_sample_flip_fails_naming_stage_and_index() {
    let err = perturbed("sample", |vectors| {
        let v = vectors
            .iter_mut()
            .find(|v| v.name == "captured_4mhz")
            .unwrap();
        let Payload::Samples(s) = &mut v.payload else {
            panic!("captured_4mhz should be samples")
        };
        s[1234].re += 1e-3;
    });
    let CheckError::Diverged(d) = err else {
        panic!("expected a divergence, got {err}")
    };
    assert_eq!(d.divergence.stage, "captured_4mhz");
    assert_eq!(d.divergence.index, 1234);
    assert!(
        d.divergence.location.contains("sample 1234"),
        "{}",
        d.divergence.location
    );
    assert!(
        (d.divergence.magnitude - 1e-3).abs() < 1e-9,
        "magnitude {}",
        d.divergence.magnitude
    );
    // The failure also carries whole-stage statistics, and the flipped
    // sample is the worst deviation in the stage.
    let stats = d.stats.as_ref().expect("sample stages report stats");
    assert_eq!(stats.worst_index, 1234);
}

/// Digital stages are bit-exact: even a one-bit chip flip fails.
#[test]
fn single_chip_flip_fails_bit_exactly() {
    let err = perturbed("chip", |vectors| {
        let Payload::Bytes(chips) = &mut vectors[0].payload else {
            panic!("stage 0 should be chip bytes")
        };
        chips[77] ^= 1;
    });
    let CheckError::Diverged(d) = err else {
        panic!("expected a divergence, got {err}")
    };
    assert_eq!(d.divergence.stage, "zigbee_chips");
    assert_eq!(d.divergence.index, 77);
}

/// A changed JSONL field in the gateway event stream is pinpointed down to
/// the line and field.
#[test]
fn gateway_event_field_change_fails_naming_the_field() {
    let err = perturbed("event", |vectors| {
        let v = vectors
            .iter_mut()
            .find(|v| v.name == "gateway_events")
            .unwrap();
        let Payload::Text(text) = &mut v.payload else {
            panic!("gateway_events should be text")
        };
        let flipped = text.replacen("\"verdict\":\"attack\"", "\"verdict\":\"authentic\"", 1);
        assert_ne!(&flipped, text, "corpus should contain an attack verdict");
        *text = flipped;
    });
    let CheckError::Diverged(d) = err else {
        panic!("expected a divergence, got {err}")
    };
    assert_eq!(d.divergence.stage, "gateway_events");
    assert!(
        d.divergence.location.contains("verdict"),
        "{}",
        d.divergence.location
    );
}

/// Generation is a pure function of the spec: two runs agree bit-for-bit,
/// so any `check` failure is attributable to a code change, not noise.
#[test]
fn regeneration_is_bit_identical() {
    let spec = CorpusSpec::default();
    let a = generate(&spec).unwrap();
    let b = generate(&spec).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.checksum(), y.checksum(), "{}", x.name);
        let report = compare(x, y).unwrap();
        assert_eq!(report.max_ulps, 0, "{}", x.name);
    }
}
