//! Integration: the full attack pipeline across crates — ZigBee TX →
//! attacker emulation (both spectral modes, both synthesis modes) → channel
//! → ZigBee RX.

use hide_and_seek::channel::Link;
use hide_and_seek::core::attack::{Emulator, SpectralMode, SynthesisMode};
use hide_and_seek::zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn forged(payload: &[u8], emulator: &Emulator) -> Vec<hide_and_seek::dsp::Complex> {
    let observed = Transmitter::new().transmit_payload(payload).unwrap();
    emulator.received_at_zigbee(&emulator.emulate(&observed))
}

#[test]
fn attack_succeeds_noiseless_for_many_payloads() {
    let emulator = Emulator::new();
    let rx = Receiver::usrp();
    for payload in [&b"00000"[..], b"00099", b"hello", b"\x00\xff\x55\xaa"] {
        let wave = forged(payload, &emulator);
        let r = rx.receive(&wave);
        assert_eq!(r.payload(), Some(payload), "payload {payload:?}");
    }
}

#[test]
fn attack_succeeds_across_awgn_snrs() {
    let emulator = Emulator::new();
    let rx = Receiver::usrp();
    let wave = forged(b"00000", &emulator);
    let mut rng = StdRng::seed_from_u64(1);
    for snr in [9.0, 13.0, 17.0] {
        let link = Link::awgn(snr);
        let mut ok = 0;
        for _ in 0..25 {
            if rx.receive(&link.transmit(&wave, &mut rng)).payload() == Some(&b"00000"[..]) {
                ok += 1;
            }
        }
        assert!(ok >= 23, "SNR {snr}: only {ok}/25 forged packets accepted");
    }
}

#[test]
fn attack_succeeds_on_commodity_receiver() {
    let emulator = Emulator::new();
    let wave = forged(b"00042", &emulator);
    let r = Receiver::commodity().receive(&wave);
    assert_eq!(r.payload(), Some(&b"00042"[..]));
    assert!(r.packet_ok());
}

#[test]
fn carrier_allocated_attack_end_to_end() {
    let emulator = Emulator::new().with_spectral_mode(SpectralMode::CarrierAllocated);
    let wave = forged(b"00000", &emulator);
    let mut rng = StdRng::seed_from_u64(2);
    let noisy = Link::awgn(15.0).transmit(&wave, &mut rng);
    let r = Receiver::usrp().receive(&noisy);
    assert_eq!(r.payload(), Some(&b"00000"[..]));
}

#[test]
fn bitchain_attack_still_decodes() {
    // Even when the attacker restricts itself to valid 802.11g codewords
    // (extra distortion), DSSS tolerance lets the frame through noiselessly.
    let emulator = Emulator::new()
        .with_spectral_mode(SpectralMode::CarrierAllocated)
        .with_synthesis_mode(SynthesisMode::BitChain);
    let observed = Transmitter::new().transmit_payload(b"00000").unwrap();
    let emulation = emulator.emulate(&observed);
    assert!(emulation.codeword_distance.is_some());
    assert!(emulation.wifi_data_bits.is_some());
    let wave = emulator.received_at_zigbee(&emulation);
    let r = Receiver::commodity().receive(&wave);
    assert_eq!(
        r.payload(),
        Some(&b"00000"[..]),
        "distances: {:?}",
        r.hamming_distances
    );
}

#[test]
fn attack_works_from_noisy_recording() {
    // The attacker records over the air (with noise), then emulates the
    // *recording* — the realistic channel-listening phase of Sec. IV-A.
    let mut rng = StdRng::seed_from_u64(3);
    let clean = Transmitter::new().transmit_payload(b"00007").unwrap();
    let recorded = Link::awgn(20.0).transmit(&clean, &mut rng);
    let emulator = Emulator::new();
    let wave = emulator.received_at_zigbee(&emulator.emulate(&recorded));
    let r = Receiver::usrp().receive(&wave);
    assert_eq!(r.payload(), Some(&b"00007"[..]));
}

#[test]
fn attack_chip_errors_bounded_by_dsss_threshold() {
    // Paper Fig. 7: the emulation costs 4-8 chip errors per symbol, always
    // under the correlation threshold of 10.
    let emulator = Emulator::new();
    let rx = Receiver::usrp();
    for payload in [&b"00000"[..], b"00050", b"00099"] {
        let wave = forged(payload, &emulator);
        let r = rx.receive(&wave);
        let max = r.hamming_distances.iter().max().copied().unwrap();
        let mean: f64 = r.hamming_distances.iter().map(|&d| d as f64).sum::<f64>()
            / r.hamming_distances.len() as f64;
        assert!(max <= 10, "max chip errors {max}");
        assert!(
            (2.0..=9.0).contains(&mean),
            "mean chip errors {mean} outside the paper's 4-8 band (±tolerance)"
        );
    }
}

#[test]
fn emulated_waveform_has_wifi_structure() {
    // The transmitted artifact really is a WiFi waveform: 80-sample symbols
    // with a verbatim cyclic prefix.
    let emulator = Emulator::new();
    let observed = Transmitter::new().transmit_payload(b"00000").unwrap();
    let emulation = emulator.emulate(&observed);
    assert_eq!(emulation.waveform_20mhz.len() % 80, 0);
    for sym in emulation.waveform_20mhz.chunks(80) {
        for i in 0..16 {
            assert!((sym[i] - sym[64 + i]).norm() < 1e-9);
        }
    }
}

#[test]
fn fading_channel_attack() {
    let emulator = Emulator::new();
    let wave = forged(b"00000", &emulator);
    let link = Link::real_indoor(3.0, 0.0);
    let mut rng = StdRng::seed_from_u64(4);
    let mut ok = 0;
    for _ in 0..20 {
        if Receiver::commodity()
            .receive(&link.transmit(&wave, &mut rng))
            .payload()
            == Some(&b"00000"[..])
        {
            ok += 1;
        }
    }
    assert!(ok >= 18, "only {ok}/20 under fading at 3 m");
}
