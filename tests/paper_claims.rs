//! Integration: the paper's headline quantitative claims, as assertions.
//! Each test names the table/figure it guards. These are the same
//! computations the `experiments` binary reports, pinned at reduced trial
//! counts so regressions in any crate surface as failures here.

use hide_and_seek::channel::Link;
use hide_and_seek::core::attack::spectrum::{block_spectra, select_subcarriers};
use hide_and_seek::core::attack::Emulator;
use hide_and_seek::core::defense::{features_from_reception, ChannelAssumption, Detector};
use hide_and_seek::dsp::cumulants::Modulation;
use hide_and_seek::dsp::resample::interpolate;
use hide_and_seek::zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pair() -> (
    Vec<hide_and_seek::dsp::Complex>,
    Vec<hide_and_seek::dsp::Complex>,
) {
    let original = Transmitter::new().transmit_payload(b"00000").unwrap();
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&original));
    (original, forged)
}

#[test]
fn table1_selected_bins_match_paper() {
    // Paper Table I keeps 1-based bins {1,2,3,4,62,63,64} = 0-based
    // {0,1,2,3,61,62,63}.
    let (original, _) = pair();
    let wide = interpolate(&original, 5).unwrap();
    let bins = select_subcarriers(&block_spectra(&wide), 3.0, 7);
    assert_eq!(bins, vec![0, 1, 2, 3, 61, 62, 63]);
}

#[test]
fn table2_attack_success_monotone_and_saturating() {
    let (_, forged) = pair();
    let rx = Receiver::usrp();
    let mut rng = StdRng::seed_from_u64(1);
    let mut prev = 0.0;
    for snr in [0.0, 3.0, 6.0, 17.0] {
        let link = Link::awgn(snr);
        let mut ok = 0;
        const N: usize = 40;
        for _ in 0..N {
            ok += usize::from(
                rx.receive(&link.transmit(&forged, &mut rng)).payload() == Some(&b"00000"[..]),
            );
        }
        let rate = ok as f64 / N as f64;
        assert!(
            rate + 0.15 >= prev,
            "success rate should be (noisily) monotone: {rate} after {prev} at {snr} dB"
        );
        prev = rate;
    }
    assert!(prev == 1.0, "attack must reach 100% at 17 dB, got {prev}");
}

#[test]
fn table3_qpsk_and_qam64_rows() {
    // The two rows the defense actually uses.
    assert_eq!(Modulation::Qpsk.theoretical_c40(), 1.0);
    assert_eq!(Modulation::Qpsk.theoretical_c42(), -1.0);
    assert!((Modulation::Qam64.theoretical_c40() + 0.619).abs() < 1e-9);
    assert!((Modulation::Qam64.theoretical_c42() + 0.619).abs() < 1e-9);
}

#[test]
fn table4_de_squared_gap_at_all_snrs() {
    let (original, forged) = pair();
    let rx = Receiver::usrp();
    for (i, snr) in [7.0, 12.0, 17.0].into_iter().enumerate() {
        let link = Link::awgn(snr);
        let mut rng = StdRng::seed_from_u64(10 + i as u64);
        let mut zig = 0.0;
        let mut emu = 0.0;
        const N: usize = 10;
        for _ in 0..N {
            zig += features_from_reception(&rx.receive(&link.transmit(&original, &mut rng)))
                .unwrap()
                .de_squared_ideal();
            emu += features_from_reception(&rx.receive(&link.transmit(&forged, &mut rng)))
                .unwrap()
                .de_squared_ideal();
        }
        assert!(
            emu > zig * 1.8,
            "SNR {snr}: emulated mean {} not well above zigbee mean {}",
            emu / N as f64,
            zig / N as f64
        );
    }
}

#[test]
fn table5_real_channel_gap_at_all_distances() {
    let (original, forged) = pair();
    let rx = Receiver::usrp();
    for (i, d) in [1.0, 3.0, 6.0].into_iter().enumerate() {
        let link = Link::real_indoor(d, 0.0);
        let mut rng = StdRng::seed_from_u64(20 + i as u64);
        let mut zig: Vec<f64> = Vec::new();
        let mut emu: Vec<f64> = Vec::new();
        for _ in 0..10 {
            zig.push(
                features_from_reception(&rx.receive(&link.transmit(&original, &mut rng)))
                    .unwrap()
                    .de_squared_real(),
            );
            emu.push(
                features_from_reception(&rx.receive(&link.transmit(&forged, &mut rng)))
                    .unwrap()
                    .de_squared_real(),
            );
        }
        let zmax = zig.iter().copied().fold(f64::MIN, f64::max);
        let emin = emu.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            emin > zmax * 3.0,
            "{d} m: classes too close — max zig {zmax}, min emu {emin}"
        );
    }
}

#[test]
fn fig7_emulation_chip_error_band() {
    let (_, forged) = pair();
    let r = Receiver::usrp().receive(&forged);
    // Past the leading sync symbols, every payload symbol shows errors.
    let payload_distances = &r.hamming_distances[12..];
    assert!(payload_distances.iter().all(|&d| (1..=10).contains(&d)));
}

#[test]
fn fig12_calibrated_threshold_separates_train_and_test() {
    let (original, forged) = pair();
    let rx = Receiver::usrp();
    let link = Link::awgn(11.0);
    let collect = |wave: &[hide_and_seek::dsp::Complex], seed: u64, n: usize| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| rx.receive(&link.transmit(wave, &mut rng)))
            .collect::<Vec<_>>()
    };
    let det = Detector::calibrate(
        ChannelAssumption::Ideal,
        &collect(&original, 30, 15),
        &collect(&forged, 31, 15),
    );
    assert!(det.threshold() > 0.0 && det.threshold() < 1.0);
    for r in collect(&original, 32, 15) {
        assert!(!det.detect(&r).unwrap().is_attack);
    }
    for r in collect(&forged, 33, 15) {
        assert!(det.detect(&r).unwrap().is_attack);
    }
}

#[test]
fn fig14_commodity_outranges_usrp() {
    let (_, forged) = pair();
    // At the range limit the commodity receiver (soft + lower NF) must beat
    // the hard-decision USRP pipeline.
    let d = 8.0;
    let usrp_link = Link::real_indoor(d, -20.0);
    let commodity_link = usrp_link.clone().with_snr_db(usrp_link.snr_db() + 3.0);
    let mut rng = StdRng::seed_from_u64(40);
    let mut usrp_ok = 0;
    let mut comm_ok = 0;
    const N: usize = 40;
    for _ in 0..N {
        let w1 = usrp_link.transmit(&forged, &mut rng);
        let w2 = commodity_link.transmit(&forged, &mut rng);
        usrp_ok += usize::from(Receiver::usrp().receive(&w1).payload() == Some(&b"00000"[..]));
        comm_ok += usize::from(Receiver::commodity().receive(&w2).payload() == Some(&b"00000"[..]));
    }
    assert!(
        comm_ok > usrp_ok,
        "commodity ({comm_ok}/{N}) should outperform USRP ({usrp_ok}/{N}) at {d} m"
    );
}

#[test]
fn alpha_close_to_papers_sqrt26() {
    // The paper reports alpha = sqrt(26) ≈ 5.10 for its example; our global
    // search on the same waveform family lands in the same neighbourhood.
    let (original, _) = pair();
    let emulation = Emulator::new().emulate(&original);
    assert!(
        (3.5..=6.5).contains(&emulation.alpha),
        "alpha {} far from sqrt(26)",
        emulation.alpha
    );
}
