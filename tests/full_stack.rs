//! Integration: the extension subsystems working together — channel
//! listening, the dual-protocol frame, the adaptive attacker, the stream
//! monitor and interference.

use hide_and_seek::channel::interference::Interferer;
use hide_and_seek::channel::noise::complex_gaussian;
use hide_and_seek::channel::Link;
use hide_and_seek::core::attack::{
    clear_channel_assessment, Emulator, EnergyDetector, FullFrameAttack, LeastSquaresEmulator,
};
use hide_and_seek::core::defense::{ChannelAssumption, Detector, StreamMonitor};
use hide_and_seek::dsp::Complex;
use hide_and_seek::wifi::WifiReceiver;
use hide_and_seek::zigbee::{Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The complete kill chain of paper Sec. IV, started from a raw air
/// recording: listen → extract → CCA → emulate → transmit → control.
#[test]
fn kill_chain_from_raw_recording() {
    let mut rng = StdRng::seed_from_u64(1);
    // t1: victim transmits inside a noisy recording.
    let victim = Transmitter::new().transmit_payload(b"00000").unwrap();
    let sigma2 = 1e-2;
    let mut recording: Vec<Complex> = (0..700)
        .map(|_| complex_gaussian(&mut rng, sigma2))
        .collect();
    recording.extend(
        victim
            .iter()
            .map(|&v| v + complex_gaussian(&mut rng, sigma2)),
    );
    recording.extend((0..700).map(|_| complex_gaussian(&mut rng, sigma2)));

    // The attacker finds and extracts the frame.
    let detector = EnergyDetector::default();
    let captured = detector.extract_first(&recording).expect("frame present");

    // t2: channel idle check, then emulate and transmit.
    let idle: Vec<Complex> = (0..256)
        .map(|_| complex_gaussian(&mut rng, sigma2))
        .collect();
    assert!(clear_channel_assessment(&idle, 128, 0.2));
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(captured));
    let r = Receiver::usrp().with_sync_search(96).receive(&forged);
    assert_eq!(r.payload(), Some(&b"00000"[..]));
}

#[test]
fn gateway_monitor_catches_full_frame_attack() {
    // The strongest attacker (dual-protocol frame) against the deployed
    // stream monitor.
    let mut rng = StdRng::seed_from_u64(2);
    let victim = Transmitter::new().transmit_payload(b"00000").unwrap();
    let attack = FullFrameAttack::new();
    let em = attack.emulate(&victim);
    // Unit receive power (any AGC does this); the attacker transmits at
    // whatever gain reaches the victim.
    let at_zigbee = hide_and_seek::dsp::metrics::normalize_power(&attack.received_at_zigbee(&em));

    let mut stream: Vec<Complex> = (0..500).map(|_| complex_gaussian(&mut rng, 1e-3)).collect();
    stream.extend_from_slice(&at_zigbee);
    stream.extend((0..500).map(|_| complex_gaussian(&mut rng, 1e-3)));

    let monitor = StreamMonitor::new(
        EnergyDetector::default(),
        Receiver::usrp().with_sync_search(200),
        Detector::new(ChannelAssumption::Ideal).with_threshold(0.25),
    );
    let events = monitor.scan(&stream);
    assert_eq!(events.len(), 1, "one burst expected");
    assert_eq!(events[0].payload.as_deref(), Some(&b"00000"[..]));
    assert!(
        events[0].accepted_forgery(),
        "the dual-protocol frame must still be flagged: DE² {:?}",
        events[0].verdict.map(|v| v.de_squared)
    );
}

#[test]
fn full_frame_decodes_on_both_radios_after_noise() {
    let victim = Transmitter::new().transmit_payload(b"00042").unwrap();
    let attack = FullFrameAttack::new();
    let em = attack.emulate(&victim);
    let mut rng = StdRng::seed_from_u64(3);

    // WiFi side with noise.
    let noisy_wifi =
        hide_and_seek::channel::noise::awgn_measured(&em.wifi_waveform, 25.0, &mut rng);
    let wifi_rx = WifiReceiver::new().receive(&noisy_wifi).unwrap();
    assert_eq!(wifi_rx.psdu, em.psdu);

    // ZigBee side with noise.
    let at_zigbee = attack.received_at_zigbee(&em);
    let link = Link::awgn(15.0);
    let r = Receiver::usrp()
        .with_sync_search(160)
        .receive(&link.transmit(&at_zigbee, &mut rng));
    assert_eq!(r.payload(), Some(&b"00042"[..]));
}

#[test]
fn adaptive_attacker_beats_naive_threshold_sometimes_but_not_calibration() {
    let victim = Transmitter::new().transmit_payload(b"00000").unwrap();
    let baseline = Emulator::new();
    let v1 = baseline.received_at_zigbee(&baseline.emulate(&victim));
    let ls = LeastSquaresEmulator::new();
    let v2 = ls.received_at_zigbee(&ls.emulate(&victim));

    let rx = Receiver::usrp();
    let link = Link::awgn(15.0);
    let mut rng = StdRng::seed_from_u64(4);
    let collect = |wave: &[Complex], rng: &mut StdRng| {
        (0..15)
            .map(|_| rx.receive(&link.transmit(wave, rng)))
            .collect::<Vec<_>>()
    };
    // Calibrate on BOTH attack variants (defender update after round 2).
    let mut attack_training = collect(&v1, &mut rng);
    attack_training.extend(collect(&v2, &mut rng));
    let det = Detector::calibrate(
        ChannelAssumption::Ideal,
        &collect(&victim, &mut rng),
        &attack_training,
    );
    let mut missed = 0;
    for r in collect(&v2, &mut rng) {
        missed += usize::from(!det.detect(&r).unwrap().is_attack);
    }
    assert_eq!(
        missed, 0,
        "re-calibrated defender must catch the LS attacker"
    );
    let mut fp = 0;
    for r in collect(&victim, &mut rng) {
        fp += usize::from(det.detect(&r).unwrap().is_attack);
    }
    assert_eq!(fp, 0, "re-calibration must not cost false positives");
}

#[test]
fn attack_and_defense_under_interference() {
    let victim = Transmitter::new().transmit_payload(b"00000").unwrap();
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&victim));
    let interferer = Interferer::zigbee_like(0.3, 0.05); // 13 dB SIR
    let link = Link::awgn(14.0);
    let det = Detector::new(ChannelAssumption::Ideal).with_threshold(0.25);
    let rx = Receiver::usrp();
    let mut rng = StdRng::seed_from_u64(5);
    let mut ok = 0;
    let mut caught = 0;
    const N: usize = 15;
    for _ in 0..N {
        let w = interferer.apply(&link.transmit(&forged, &mut rng), &mut rng);
        let r = rx.receive(&w);
        ok += usize::from(r.payload() == Some(&b"00000"[..]));
        caught += usize::from(det.detect(&r).map(|v| v.is_attack).unwrap_or(false));
    }
    assert!(
        ok >= 13,
        "attack should survive mild interference: {ok}/{N}"
    );
    assert!(
        caught >= 13,
        "defense should survive mild interference: {caught}/{N}"
    );
}
