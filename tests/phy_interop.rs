//! Integration: PHY substrates interoperating — ZigBee link over every
//! channel model, WiFi chain integrity, and the spectral embed/capture path
//! between the two radios.

use hide_and_seek::channel::fading::Multipath;
use hide_and_seek::channel::Link;
use hide_and_seek::dsp::metrics::correlation;
use hide_and_seek::wifi::ofdm;
use hide_and_seek::wifi::WifiTransmitter;
use hide_and_seek::zigbee::frontend;
use hide_and_seek::zigbee::{Decision, Receiver, Transmitter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn zigbee_link_over_all_channel_models() {
    let tx = Transmitter::new();
    let wave = tx.transmit_payload(b"interop").unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let links = [
        Link::awgn(15.0),
        Link::awgn(15.0).with_fading(Some(5.0)),
        Link::awgn(15.0)
            .with_max_cfo_hz(300.0)
            .with_random_phase(true),
        Link::real_indoor(2.0, 0.0),
    ];
    for (i, link) in links.iter().enumerate() {
        let mut ok = 0;
        for _ in 0..10 {
            let r = Receiver::usrp().receive(&link.transmit(&wave, &mut rng));
            ok += usize::from(r.payload() == Some(&b"interop"[..]));
        }
        assert!(ok >= 9, "link {i}: {ok}/10");
    }
}

#[test]
fn zigbee_survives_mild_multipath() {
    let tx = Transmitter::new();
    let wave = tx.transmit_payload(b"mp").unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let mut ok = 0;
    for _ in 0..20 {
        // Two-tap channel with a weak echo.
        let ch = Multipath::from_taps(vec![
            hide_and_seek::dsp::Complex::from_re(0.95),
            hide_and_seek::dsp::Complex::new(rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2)),
        ]);
        let faded = ch.apply(&wave);
        let r = Receiver::usrp().receive(&faded);
        ok += usize::from(r.payload() == Some(&b"mp"[..]));
    }
    assert!(ok >= 18, "{ok}/20 under two-tap multipath");
}

#[test]
fn zigbee_with_timing_offset_and_noise() {
    let tx = Transmitter::new();
    let mut wave = vec![hide_and_seek::dsp::Complex::ZERO; 23];
    wave.extend(tx.transmit_payload(b"sync").unwrap());
    let mut rng = StdRng::seed_from_u64(3);
    let noisy = Link::awgn(14.0).transmit(&wave, &mut rng);
    let r = Receiver::usrp().with_sync_search(64).receive(&noisy);
    assert_eq!(r.sync.offset, 23);
    assert_eq!(r.payload(), Some(&b"sync"[..]));
}

#[test]
fn wifi_chain_bits_survive_ofdm_roundtrip() {
    let tx = WifiTransmitter::new();
    let mut rng = StdRng::seed_from_u64(4);
    let bits: Vec<u8> = (0..432).map(|_| rng.gen_range(0..2u8)).collect();
    let wave = tx.transmit_bits(&bits);
    // Demodulate symbol by symbol and invert the chain via the reverse path.
    let mut points = Vec::new();
    for sym in wave.chunks(ofdm::SYMBOL_LEN) {
        points.extend(ofdm::extract_data_subcarriers(&ofdm::analyze_symbol(sym)));
    }
    let rec = tx.recover_bits_for_points(&points);
    assert_eq!(rec.codeword_distance, 0);
    assert_eq!(&rec.data_bits[..bits.len()], &bits[..]);
}

#[test]
fn embed_capture_respects_spectral_positions() {
    // A ZigBee frame embedded at its real offset inside the WiFi baseband is
    // recoverable only by a front-end tuned to the ZigBee channel.
    let wave = Transmitter::new().transmit_payload(b"pos").unwrap();
    let wide = frontend::embed(&wave, 2.435e9, 4.0e6, 2.44e9, 20.0e6).unwrap();
    // Correctly tuned front-end:
    let good = frontend::capture(&wide, 2.44e9, 20.0e6, 2.435e9, 4.0e6).unwrap();
    let n = wave.len().min(good.len());
    assert!(correlation(&wave[40..n - 40], &good[40..n - 40]) > 0.97);
    // Mis-tuned by +10 MHz: almost nothing of the signal remains.
    let bad = frontend::capture(&wide, 2.44e9, 20.0e6, 2.445e9, 4.0e6).unwrap();
    let c = correlation(&wave[40..n - 40], &bad[40..n - 40]);
    assert!(
        c < 0.3,
        "mis-tuned capture should lose the signal, corr {c}"
    );
}

#[test]
fn soft_receiver_at_least_matches_hard_at_low_snr() {
    let tx = Transmitter::new();
    let wave = tx.transmit_payload(b"lowsnr").unwrap();
    let link = Link::awgn(2.0);
    let mut rng = StdRng::seed_from_u64(5);
    let hard = Receiver::usrp();
    let soft = Receiver::new().with_decision(Decision::Soft { min_score: 0.0 });
    let mut hard_ok = 0;
    let mut soft_ok = 0;
    for _ in 0..60 {
        let noisy = link.transmit(&wave, &mut rng);
        hard_ok += usize::from(hard.receive(&noisy).payload() == Some(&b"lowsnr"[..]));
        soft_ok += usize::from(soft.receive(&noisy).payload() == Some(&b"lowsnr"[..]));
    }
    assert!(soft_ok >= hard_ok, "soft {soft_ok} vs hard {hard_ok}");
}

#[test]
fn corpus_roundtrip_all_hundred_messages() {
    // The paper's APP-layer corpus, end to end, noiseless.
    let tx = Transmitter::new();
    let rx = Receiver::usrp();
    for (i, msg) in hide_and_seek::zigbee::app::numbered_messages(100)
        .into_iter()
        .enumerate()
    {
        let wave = tx.transmit_payload(&msg).unwrap();
        let r = rx.receive(&wave);
        assert_eq!(r.payload(), Some(&msg[..]), "message {i}");
        assert!(hide_and_seek::zigbee::app::verify_message(
            r.payload().unwrap(),
            i
        ));
    }
}
