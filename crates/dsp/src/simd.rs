//! Explicit-SIMD lane kernels for the complex multiply-accumulate hot path.
//!
//! Stable-Rust SIMD without `std::simd`: every kernel is written once as
//! *lane-structured* scalar code — fixed-width accumulator arrays
//! (`[f64; LANES]`), fixed-order reduction trees, and inner loops whose
//! arithmetic order does not depend on how the compiler vectorizes them.
//! The `kernels!` macro compiles that one body twice:
//!
//! - a plain build, always present — the scalar fallback;
//! - an `#[target_feature(enable = "avx2", enable = "fma")]` clone (only
//!   when the `simd` cargo feature is on and the target is x86_64), which
//!   the public dispatcher selects at runtime via
//!   `is_x86_feature_detected!`. Inside the clone, LLVM's SLP vectorizer
//!   turns the lane arrays into YMM registers.
//!
//! Because Rust never contracts (`a*b + c` → fma) or reassociates floating
//! point, both clones execute the *identical* arithmetic: the SIMD and
//! scalar builds are **bit-identical**, so one committed golden-vector
//! corpus serves both CI legs and the `simd` feature is purely a speed
//! knob.
//!
//! ## Tolerance policy
//!
//! Kernels that mirror a pre-existing scalar loop element-for-element
//! ([`dtft_norms`], [`fft_stage`], [`norm_sqr_into`],
//! [`phase_rotate_in_place`]) are bit-equal to the code they replaced.
//! Kernels that re-associate a reduction into per-lane partial sums
//! ([`cdot`], [`cdot_conj`], [`dot_real`], [`dot_f64`], [`sum_norm_sqr`],
//! [`cumulant_sums`], [`fir_interior`]) or re-seed phasors block-wise
//! ([`rotate_in_place`], [`cdot_conj_rotated`]) drift from the sequential
//! order by `O(n · ulp)` — far inside every golden-vector stage tolerance.
//! Property tests in `tests/simd_props.rs` pin each one against the
//! order-preserving models in [`mod@reference`] within a ULP-scaled band, on
//! random lengths including empty, single-sample, and non-lane-multiple
//! tails.
//!
//! ## Adding a kernel
//!
//! Declare the signature in the `kernels!` invocation, write the body as a
//! `pub fn` in the `body` module using `[f64; LANES]` accumulators with a
//! fixed reduction (`reduce`-style), add an order-preserving model to
//! [`mod@reference`], and a case to `tests/simd_props.rs`. Keep per-call work
//! coarse (a whole block, stage, or search — not one sample) so the
//! runtime-dispatch check amortizes.

use crate::complex::Complex;

/// Accumulator lane width. Eight `f64` lanes span two AVX2 YMM registers,
/// giving the out-of-order core independent dependency chains even when
/// only 256-bit vectors are available.
pub const LANES: usize = 8;

/// Samples between exact-`cis` phasor re-seeds in the rotating kernels,
/// bounding incremental-phasor drift to ~1e-13 over arbitrarily long
/// waveforms (matches the scalar `frequency_shift_in_place` policy).
const RESYNC: usize = 1024;

/// Raw power sums over one sample block, accumulated lane-parallel by
/// [`cumulant_sums`]. `Cumulants::estimate` turns these into the
/// paper's second- and fourth-order cumulants; they are exposed so batch
/// callers can combine blocks without touching the samples twice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CumulantSums {
    /// `Σ x²`.
    pub s2: Complex,
    /// `Σ |x|²`.
    pub sa2: f64,
    /// `Σ x⁴`.
    pub s4: Complex,
    /// `Σ x³·conj(x)`.
    pub s31: Complex,
    /// `Σ |x|⁴`.
    pub sa4: f64,
}

/// Scalar state advanced by [`gated_power_scan`]: the sliding-window power
/// sum (ring cursor + running total) and the idle-gated EWMA noise floor
/// with its cached decision gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateScanState {
    /// Ring slot the next sample overwrites.
    pub slot: usize,
    /// Running sum of the ring.
    pub acc: f64,
    /// EWMA noise-floor estimate.
    pub floor: f64,
    /// `floor * threshold`, kept in lockstep with `floor`.
    pub gate: f64,
    /// Power ratio over the floor that declares a sample active.
    pub threshold: f64,
    /// EWMA weight. MUST be a power of two: the kernel folds the update
    /// into `mul_add`, which only matches mul-then-add bitwise when the
    /// product is exact.
    pub alpha: f64,
    /// Lower clamp applied to the floor after every update.
    pub floor_eps: f64,
    /// `1/window` when the window length is a power of two (multiplying is
    /// then bit-identical to dividing), else `0.0` and the kernel divides.
    pub inv_w: f64,
}

/// Fixed-order pairwise reduction of an 8-lane accumulator. The tree shape
/// is part of the numeric contract: both compilations of a kernel reduce
/// in exactly this order.
#[inline(always)]
fn reduce(v: [f64; LANES]) -> f64 {
    ((v[0] + v[4]) + (v[2] + v[6])) + ((v[1] + v[5]) + (v[3] + v[7]))
}

/// Fixed-order reduction of a 4-lane accumulator (used where eight lanes
/// of complex fourth-power state would spill registers).
#[inline(always)]
fn reduce4(v: [f64; 4]) -> f64 {
    (v[0] + v[2]) + (v[1] + v[3])
}

/// One block-Horner term: `c[0] + c[1]·w + c[2]·w² + c[3]·w³` with the
/// trailing products dropped for short blocks. Mirrors the original
/// `Features::estimate` inner closure exactly (same operation order).
#[inline(always)]
fn dtft_block(c: &[Complex], w: Complex, w2: Complex, w3: Complex) -> Complex {
    let mut b = c[0];
    if c.len() > 1 {
        b += c[1] * w;
    }
    if c.len() > 2 {
        b += c[2] * w2;
    }
    if c.len() > 3 {
        b += c[3] * w3;
    }
    b
}

/// `|Σ_i z[i]·e^{-j·nu·i}|` by block Horner at a single frequency — the
/// scalar path [`dtft_norms`] reduces to, kept bit-equal to the original
/// `Features::estimate` implementation.
#[inline(always)]
fn dtft_one(z: &[Complex], nu: f64) -> f64 {
    let w = Complex::cis(-nu);
    let w2 = w * w;
    let w3 = w2 * w;
    let w4 = w2 * w2;
    let mut chunks = z.rchunks(4);
    let mut acc = match chunks.next() {
        Some(c) => dtft_block(c, w, w2, w3),
        None => return 0.0,
    };
    for c in chunks {
        let shift = match c.len() {
            4 => w4,
            3 => w3,
            2 => w2,
            _ => w,
        };
        acc = acc * shift + dtft_block(c, w, w2, w3);
    }
    acc.norm()
}

macro_rules! kernels {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident: $ty:ty),* $(,)?) $(-> $ret:ty)?;)*) => {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        mod avx2 {
            use super::{body, Complex, CumulantSums, GateScanState};
            $(
                /// # Safety
                ///
                /// Caller must ensure the CPU supports AVX2 and FMA.
                #[target_feature(enable = "avx2", enable = "fma")]
                pub unsafe fn $name($($arg: $ty),*) $(-> $ret)? {
                    body::$name($($arg),*)
                }
            )*
        }
        $(
            $(#[$meta])*
            #[inline]
            pub fn $name($($arg: $ty),*) $(-> $ret)? {
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                if std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
                {
                    // SAFETY: the required CPU features were just detected.
                    return unsafe { avx2::$name($($arg),*) };
                }
                body::$name($($arg),*)
            }
        )*
    };
}

kernels! {
    /// Complex dot product `Σ a[i]·b[i]` over `min(len)` elements.
    fn cdot(a: &[Complex], b: &[Complex]) -> Complex;

    /// Conjugate dot product `Σ a[i]·conj(b[i])` — the correlation form
    /// used by the ZigBee synchronizer.
    fn cdot_conj(a: &[Complex], b: &[Complex]) -> Complex;

    /// Rotated conjugate dot product `Σ (a[i]·e^{j·omega·i})·conj(b[i])`,
    /// fusing a CFO de-rotation into the correlation (one pass, no `cis`
    /// per sample).
    fn cdot_conj_rotated(a: &[Complex], b: &[Complex], omega: f64) -> Complex;

    /// Real-tap dot product `Σ taps[i]·x[i]` (FIR inner product).
    fn dot_real(taps: &[f64], x: &[Complex]) -> Complex;

    /// Real dot product `Σ a[i]·b[i]` (DSSS chip correlation).
    fn dot_f64(a: &[f64], b: &[f64]) -> f64;

    /// Sliding full-window FIR: `out[j] = Σ_i taps_rev[i]·x[j+i]` — the
    /// interior of a delay-compensated convolution, with `taps_rev` the
    /// time-reversed tap vector. One dispatch covers every interior output.
    fn fir_interior(taps_rev: &[f64], x: &[Complex], out: &mut [Complex]);

    /// `Σ |x[i]|²` — block energy.
    fn sum_norm_sqr(x: &[Complex]) -> f64;

    /// Writes `|x[i]|²` for every sample into `out` (cleared first).
    fn norm_sqr_into(x: &[Complex], out: &mut Vec<f64>);

    /// Multiplies `x[i]` by `e^{j·omega·i}` in place: frequency shift / CFO
    /// correction. Lane phasors advance by `e^{j·omega·LANES}` and re-seed
    /// from exact `cis` every `RESYNC` samples.
    fn rotate_in_place(x: &mut [Complex], omega: f64);

    /// Multiplies every sample by a constant phasor `r` in place.
    fn phase_rotate_in_place(x: &mut [Complex], r: Complex);

    /// Block-Horner DTFT magnitude `|Σ_i z[i]·e^{-j·nu·i}|` for a whole
    /// grid of frequencies, lane-parallel *across frequencies*; per-lane
    /// arithmetic is bit-equal to the scalar single-frequency evaluation.
    /// `out[k]` receives the magnitude at `nus[k]`.
    fn dtft_norms(z: &[Complex], nus: &[f64], out: &mut [f64]);

    /// One radix-2 FFT stage over the whole buffer: for each `len`-sized
    /// block, butterflies between the lower and upper halves with twiddles
    /// generated by the serial `w·wlen` recurrence — bit-identical to the
    /// classic nested-loop formulation.
    fn fft_stage(buf: &mut [Complex], len: usize, wlen: Complex);

    /// Lane-parallel power sums for fourth-order cumulant estimation.
    fn cumulant_sums(x: &[Complex]) -> CumulantSums;

    /// Advances a gated sliding-power scan by `x.len()` samples: each
    /// sample's power `|x|²` replaces the oldest ring entry, updates the
    /// running sum, forms the window mean, and is compared against the
    /// cached gate (`active[i] = 1` when above). Idle samples advance the
    /// EWMA noise floor. The recurrence is inherently serial; the wins are
    /// the norm computation hiding under the loop-carried chain and the
    /// `target_feature(fma)` clone, where the explicit `mul_add` becomes a
    /// 4-cycle `vfmadd` instead of a libm call — value-identical because
    /// `alpha` is a power of two, so the product is exact and fused and
    /// two-step rounding agree.
    fn gated_power_scan(x: &[Complex], ring: &mut [f64], state: &mut GateScanState, active: &mut [u8]);
}

/// Lane-structured kernel bodies: the single source of truth compiled both
/// with and without AVX2 enabled.
mod body {
    use super::{
        dtft_block, dtft_one, reduce, reduce4, Complex, CumulantSums, GateScanState, LANES, RESYNC,
    };

    #[inline(always)]
    pub fn cdot(a: &[Complex], b: &[Complex]) -> Complex {
        let n = a.len().min(b.len());
        let whole = n - n % LANES;
        let mut re = [0.0; LANES];
        let mut im = [0.0; LANES];
        for (ca, cb) in a[..whole]
            .chunks_exact(LANES)
            .zip(b[..whole].chunks_exact(LANES))
        {
            for k in 0..LANES {
                let (x, y) = (ca[k], cb[k]);
                re[k] += x.re * y.re - x.im * y.im;
                im[k] += x.re * y.im + x.im * y.re;
            }
        }
        let mut acc = Complex::new(reduce(re), reduce(im));
        for k in whole..n {
            acc += a[k] * b[k];
        }
        acc
    }

    #[inline(always)]
    pub fn cdot_conj(a: &[Complex], b: &[Complex]) -> Complex {
        let n = a.len().min(b.len());
        let whole = n - n % LANES;
        let mut re = [0.0; LANES];
        let mut im = [0.0; LANES];
        for (ca, cb) in a[..whole]
            .chunks_exact(LANES)
            .zip(b[..whole].chunks_exact(LANES))
        {
            for k in 0..LANES {
                let (x, y) = (ca[k], cb[k]);
                re[k] += x.re * y.re + x.im * y.im;
                im[k] += x.im * y.re - x.re * y.im;
            }
        }
        let mut acc = Complex::new(reduce(re), reduce(im));
        for k in whole..n {
            acc += a[k] * b[k].conj();
        }
        acc
    }

    #[inline(always)]
    pub fn cdot_conj_rotated(a: &[Complex], b: &[Complex], omega: f64) -> Complex {
        let n = a.len().min(b.len());
        let mut re = [0.0; LANES];
        let mut im = [0.0; LANES];
        let mut tail = Complex::ZERO;
        let step = Complex::cis(omega * LANES as f64);
        let mut base = 0;
        while base < n {
            let block = (n - base).min(RESYNC);
            let whole = block - block % LANES;
            let mut ph = [Complex::ZERO; LANES];
            for (k, p) in ph.iter_mut().enumerate() {
                *p = Complex::cis(omega * (base + k) as f64);
            }
            for (ca, cb) in a[base..base + whole]
                .chunks_exact(LANES)
                .zip(b[base..base + whole].chunks_exact(LANES))
            {
                for k in 0..LANES {
                    let x = ca[k] * ph[k];
                    let y = cb[k];
                    re[k] += x.re * y.re + x.im * y.im;
                    im[k] += x.im * y.re - x.re * y.im;
                    ph[k] *= step;
                }
            }
            for i in base + whole..base + block {
                tail += a[i] * Complex::cis(omega * i as f64) * b[i].conj();
            }
            base += block;
        }
        tail + Complex::new(reduce(re), reduce(im))
    }

    #[inline(always)]
    pub fn dot_real(taps: &[f64], x: &[Complex]) -> Complex {
        let n = taps.len().min(x.len());
        let whole = n - n % LANES;
        let mut re = [0.0; LANES];
        let mut im = [0.0; LANES];
        for (ct, cx) in taps[..whole]
            .chunks_exact(LANES)
            .zip(x[..whole].chunks_exact(LANES))
        {
            for k in 0..LANES {
                re[k] += ct[k] * cx[k].re;
                im[k] += ct[k] * cx[k].im;
            }
        }
        let mut acc = Complex::new(reduce(re), reduce(im));
        for k in whole..n {
            acc += x[k] * taps[k];
        }
        acc
    }

    #[inline(always)]
    pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let whole = n - n % LANES;
        let mut acc = [0.0; LANES];
        for (ca, cb) in a[..whole]
            .chunks_exact(LANES)
            .zip(b[..whole].chunks_exact(LANES))
        {
            for k in 0..LANES {
                acc[k] += ca[k] * cb[k];
            }
        }
        let mut s = reduce(acc);
        for k in whole..n {
            s += a[k] * b[k];
        }
        s
    }

    #[inline(always)]
    pub fn fir_interior(taps_rev: &[f64], x: &[Complex], out: &mut [Complex]) {
        let t = taps_rev.len();
        for (j, o) in out.iter_mut().enumerate() {
            *o = dot_real(taps_rev, &x[j..j + t]);
        }
    }

    #[inline(always)]
    pub fn sum_norm_sqr(x: &[Complex]) -> f64 {
        let whole = x.len() - x.len() % LANES;
        let mut acc = [0.0; LANES];
        for c in x[..whole].chunks_exact(LANES) {
            for k in 0..LANES {
                acc[k] += c[k].re * c[k].re + c[k].im * c[k].im;
            }
        }
        let mut s = reduce(acc);
        for v in &x[whole..] {
            s += v.norm_sqr();
        }
        s
    }

    #[inline(always)]
    pub fn norm_sqr_into(x: &[Complex], out: &mut Vec<f64>) {
        out.clear();
        out.resize(x.len(), 0.0);
        for (o, v) in out.iter_mut().zip(x) {
            *o = v.re * v.re + v.im * v.im;
        }
    }

    #[inline(always)]
    pub fn rotate_in_place(x: &mut [Complex], omega: f64) {
        let n = x.len();
        let step = Complex::cis(omega * LANES as f64);
        let mut base = 0;
        while base < n {
            let block = (n - base).min(RESYNC);
            let whole = block - block % LANES;
            let mut ph = [Complex::ZERO; LANES];
            for (k, p) in ph.iter_mut().enumerate() {
                *p = Complex::cis(omega * (base + k) as f64);
            }
            for c in x[base..base + whole].chunks_exact_mut(LANES) {
                for k in 0..LANES {
                    c[k] *= ph[k];
                    ph[k] *= step;
                }
            }
            for (k, v) in x[base + whole..base + block].iter_mut().enumerate() {
                *v *= Complex::cis(omega * (base + whole + k) as f64);
            }
            base += block;
        }
    }

    #[inline(always)]
    pub fn phase_rotate_in_place(x: &mut [Complex], r: Complex) {
        let whole = x.len() - x.len() % LANES;
        for c in x[..whole].chunks_exact_mut(LANES) {
            for v in c {
                *v *= r;
            }
        }
        for v in &mut x[whole..] {
            *v *= r;
        }
    }

    #[inline(always)]
    pub fn dtft_norms(z: &[Complex], nus: &[f64], out: &mut [f64]) {
        assert!(
            out.len() >= nus.len(),
            "dtft_norms output shorter than frequency grid"
        );
        if z.is_empty() {
            out[..nus.len()].fill(0.0);
            return;
        }
        let mut f = 0;
        while f + LANES <= nus.len() {
            let mut w = [Complex::ZERO; LANES];
            let mut w2 = [Complex::ZERO; LANES];
            let mut w3 = [Complex::ZERO; LANES];
            let mut w4 = [Complex::ZERO; LANES];
            for k in 0..LANES {
                w[k] = Complex::cis(-nus[f + k]);
                w2[k] = w[k] * w[k];
                w3[k] = w2[k] * w[k];
                w4[k] = w2[k] * w2[k];
            }
            let mut chunks = z.rchunks(4);
            let first = chunks.next().expect("z nonempty");
            let mut acc = [Complex::ZERO; LANES];
            for k in 0..LANES {
                acc[k] = dtft_block(first, w[k], w2[k], w3[k]);
            }
            for c in chunks {
                // Only the final (front) chunk can be short; the branch is
                // perfectly predicted and keeps the lane math identical to
                // the scalar path.
                match c.len() {
                    4 => {
                        for k in 0..LANES {
                            acc[k] = acc[k] * w4[k]
                                + ((c[0] + c[1] * w[k]) + c[2] * w2[k] + c[3] * w3[k]);
                        }
                    }
                    len => {
                        for k in 0..LANES {
                            let shift = match len {
                                3 => w3[k],
                                2 => w2[k],
                                _ => w[k],
                            };
                            acc[k] = acc[k] * shift + dtft_block(c, w[k], w2[k], w3[k]);
                        }
                    }
                }
            }
            for k in 0..LANES {
                out[f + k] = acc[k].norm();
            }
            f += LANES;
        }
        for (o, &nu) in out[f..nus.len()].iter_mut().zip(&nus[f..]) {
            *o = dtft_one(z, nu);
        }
    }

    #[inline(always)]
    pub fn fft_stage(buf: &mut [Complex], len: usize, wlen: Complex) {
        let half = len / 2;
        let mut i = 0;
        while i + len <= buf.len() {
            let (lo, hi) = buf[i..i + len].split_at_mut(half);
            let whole = half - half % LANES;
            let mut w = Complex::ONE;
            for (cl, ch) in lo[..whole]
                .chunks_exact_mut(LANES)
                .zip(hi[..whole].chunks_exact_mut(LANES))
            {
                let mut tw = [Complex::ZERO; LANES];
                for t in &mut tw {
                    *t = w;
                    w *= wlen;
                }
                for k in 0..LANES {
                    let u = cl[k];
                    let v = ch[k] * tw[k];
                    cl[k] = u + v;
                    ch[k] = u - v;
                }
            }
            for k in whole..half {
                let u = lo[k];
                let v = hi[k] * w;
                lo[k] = u + v;
                hi[k] = u - v;
                w *= wlen;
            }
            i += len;
        }
    }

    #[inline(always)]
    pub fn cumulant_sums(x: &[Complex]) -> CumulantSums {
        // Four lanes: eight would need 32 live f64 accumulators plus the
        // per-element temporaries and spill on AVX2's 16 YMM registers.
        const L: usize = 4;
        let whole = x.len() - x.len() % L;
        let mut s2r = [0.0; L];
        let mut s2i = [0.0; L];
        let mut sa2 = [0.0; L];
        let mut s4r = [0.0; L];
        let mut s4i = [0.0; L];
        let mut s31r = [0.0; L];
        let mut s31i = [0.0; L];
        let mut sa4 = [0.0; L];
        for c in x[..whole].chunks_exact(L) {
            for k in 0..L {
                let v = c[k];
                let x2 = v * v;
                let a2 = v.re * v.re + v.im * v.im;
                let x4 = x2 * x2;
                let x31 = x2 * v * v.conj();
                s2r[k] += x2.re;
                s2i[k] += x2.im;
                sa2[k] += a2;
                s4r[k] += x4.re;
                s4i[k] += x4.im;
                s31r[k] += x31.re;
                s31i[k] += x31.im;
                sa4[k] += a2 * a2;
            }
        }
        let mut sums = CumulantSums {
            s2: Complex::new(reduce4(s2r), reduce4(s2i)),
            sa2: reduce4(sa2),
            s4: Complex::new(reduce4(s4r), reduce4(s4i)),
            s31: Complex::new(reduce4(s31r), reduce4(s31i)),
            sa4: reduce4(sa4),
        };
        for &v in &x[whole..] {
            let x2 = v * v;
            let a2 = v.norm_sqr();
            sums.s2 += x2;
            sums.sa2 += a2;
            sums.s4 += x2 * x2;
            sums.s31 += x2 * v * v.conj();
            sums.sa4 += a2 * a2;
        }
        sums
    }

    /// Out-of-line landing pad for the floor-eps clamp, keeping the
    /// compare-and-branch off [`gated_power_scan`]'s serial EWMA chain
    /// (a call defeats if-conversion into `maxsd`).
    #[cold]
    #[inline(never)]
    fn clamp_cold(eps: f64) -> f64 {
        eps
    }

    #[inline(always)]
    pub fn gated_power_scan(
        x: &[Complex],
        ring: &mut [f64],
        st: &mut GateScanState,
        active: &mut [u8],
    ) {
        assert!(active.len() >= x.len(), "active buffer shorter than input");
        assert!(!ring.is_empty(), "window must be positive");
        let w = ring.len() as f64;
        let mut slot = st.slot;
        let mut acc = st.acc;
        let mut floor = st.floor;
        let mut gate = st.gate;
        for (v, a) in x.iter().zip(active[..x.len()].iter_mut()) {
            let n = v.re * v.re + v.im * v.im;
            acc += n - ring[slot];
            ring[slot] = n;
            slot += 1;
            if slot == ring.len() {
                slot = 0;
            }
            let p = if st.inv_w != 0.0 {
                acc * st.inv_w
            } else {
                acc / w
            };
            if p > gate {
                *a = 1;
            } else {
                *a = 0;
                // `alpha` is a power of two, so `(p - floor) * alpha` is
                // exact and the fused form rounds once on the same value a
                // two-step mul-then-add would produce — bit-identical, but
                // a single 4-cycle vfmadd in the target_feature clone.
                floor = (p - floor).mul_add(st.alpha, floor);
                // The floor-eps clamp via an untaken cold branch rather
                // than a select: a `maxsd` would sit on the loop-carried
                // EWMA chain (+4 cycles every sample) to guard a case real
                // signals never hit. The negated comparison is load-bearing:
                // NaN lands in the clamp like `max` would put it.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(floor >= st.floor_eps) {
                    floor = clamp_cold(st.floor_eps);
                }
                gate = floor * st.threshold;
            }
        }
        st.slot = slot;
        st.acc = acc;
        st.floor = floor;
        st.gate = gate;
    }
}

/// Order-preserving sequential models of every kernel: one operation per
/// element, left-to-right, no lane partials. Property tests bound each
/// lane kernel against these within a ULP-scaled band.
#[doc(hidden)]
#[allow(missing_docs)]
pub mod reference {
    use super::{Complex, CumulantSums, GateScanState};

    pub fn cdot(a: &[Complex], b: &[Complex]) -> Complex {
        a.iter().zip(b).map(|(x, y)| *x * *y).sum()
    }

    pub fn cdot_conj(a: &[Complex], b: &[Complex]) -> Complex {
        a.iter().zip(b).map(|(x, y)| *x * y.conj()).sum()
    }

    pub fn cdot_conj_rotated(a: &[Complex], b: &[Complex], omega: f64) -> Complex {
        a.iter()
            .zip(b)
            .enumerate()
            .map(|(i, (x, y))| *x * Complex::cis(omega * i as f64) * y.conj())
            .sum()
    }

    pub fn dot_real(taps: &[f64], x: &[Complex]) -> Complex {
        taps.iter().zip(x).map(|(t, v)| *v * *t).sum()
    }

    pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    pub fn fir_interior(taps_rev: &[f64], x: &[Complex], out: &mut [Complex]) {
        let t = taps_rev.len();
        for (j, o) in out.iter_mut().enumerate() {
            *o = dot_real(taps_rev, &x[j..j + t]);
        }
    }

    pub fn sum_norm_sqr(x: &[Complex]) -> f64 {
        x.iter().map(|v| v.norm_sqr()).sum()
    }

    pub fn norm_sqr_into(x: &[Complex], out: &mut Vec<f64>) {
        out.clear();
        out.extend(x.iter().map(|v| v.norm_sqr()));
    }

    pub fn rotate_in_place(x: &mut [Complex], omega: f64) {
        for (i, v) in x.iter_mut().enumerate() {
            *v *= Complex::cis(omega * i as f64);
        }
    }

    pub fn phase_rotate_in_place(x: &mut [Complex], r: Complex) {
        for v in x.iter_mut() {
            *v *= r;
        }
    }

    /// Naive direct-sum DTFT (one `cis` per sample per frequency) — an
    /// independent oracle for the block-Horner lane kernel.
    pub fn dtft_norms(z: &[Complex], nus: &[f64], out: &mut [f64]) {
        for (o, &nu) in out.iter_mut().zip(nus) {
            let sum: Complex = z
                .iter()
                .enumerate()
                .map(|(i, &v)| v * Complex::cis(-nu * i as f64))
                .sum();
            *o = sum.norm();
        }
    }

    pub fn fft_stage(buf: &mut [Complex], len: usize, wlen: Complex) {
        let half = len / 2;
        let mut i = 0;
        while i + len <= buf.len() {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = buf[i + k];
                let v = buf[i + k + half] * w;
                buf[i + k] = u + v;
                buf[i + k + half] = u - v;
                w *= wlen;
            }
            i += len;
        }
    }

    /// Textbook per-sample form of the gated scan: window mean by division,
    /// EWMA as separate multiply-then-add, clamp via `f64::max`. Equal to
    /// the kernel whenever `alpha` is a power of two and `inv_w` is the
    /// exact reciprocal of the window (or 0.0).
    pub fn gated_power_scan(
        x: &[Complex],
        ring: &mut [f64],
        st: &mut GateScanState,
        active: &mut [u8],
    ) {
        let w = ring.len() as f64;
        for (v, a) in x.iter().zip(active.iter_mut()) {
            let n = v.norm_sqr();
            st.acc += n - ring[st.slot];
            ring[st.slot] = n;
            st.slot = (st.slot + 1) % ring.len();
            let p = st.acc / w;
            if p > st.floor * st.threshold {
                *a = 1;
            } else {
                *a = 0;
                st.floor = (st.floor + st.alpha * (p - st.floor)).max(st.floor_eps);
                st.gate = st.floor * st.threshold;
            }
        }
    }

    pub fn cumulant_sums(x: &[Complex]) -> CumulantSums {
        let mut s = CumulantSums {
            s2: Complex::ZERO,
            sa2: 0.0,
            s4: Complex::ZERO,
            s31: Complex::ZERO,
            sa4: 0.0,
        };
        for &v in x {
            let x2 = v * v;
            let a2 = v.norm_sqr();
            s.s2 += x2;
            s.sa2 += a2;
            s.s4 += x2 * x2;
            s.s31 += x2 * v * v.conj();
            s.sa4 += a2 * a2;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize, seed: u64) -> Vec<Complex> {
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        (0..n).map(|_| Complex::new(rnd(), rnd())).collect()
    }

    fn reals(n: usize, seed: u64) -> Vec<f64> {
        wave(n, seed).into_iter().map(|v| v.re).collect()
    }

    /// The public dispatcher (AVX2 on this hardware when the `simd` feature
    /// is on) must be bit-identical to the plain compilation of the same
    /// lane body — the property that lets one golden corpus cover both CI
    /// legs.
    #[test]
    fn dispatch_is_bit_identical_to_plain_body() {
        for n in [0usize, 1, 5, 8, 64, 1023, 4099] {
            let a = wave(n, 1);
            let b = wave(n, 2);
            let t = reals(n, 3);
            assert_eq!(cdot(&a, &b), body::cdot(&a, &b), "cdot n={n}");
            assert_eq!(cdot_conj(&a, &b), body::cdot_conj(&a, &b), "conj n={n}");
            assert_eq!(
                cdot_conj_rotated(&a, &b, 0.017),
                body::cdot_conj_rotated(&a, &b, 0.017),
                "rotated n={n}"
            );
            assert_eq!(dot_real(&t, &a), body::dot_real(&t, &a), "real n={n}");
            assert_eq!(
                dot_f64(&t, &reals(n, 4)),
                body::dot_f64(&t, &reals(n, 4)),
                "f64 n={n}"
            );
            assert_eq!(sum_norm_sqr(&a), body::sum_norm_sqr(&a), "energy n={n}");

            let mut x1 = a.clone();
            let mut x2 = a.clone();
            rotate_in_place(&mut x1, -0.031);
            body::rotate_in_place(&mut x2, -0.031);
            assert_eq!(x1, x2, "rotate n={n}");

            let nus: Vec<f64> = (0..19).map(|i| -0.3 + 0.033 * i as f64).collect();
            let mut m1 = vec![0.0; nus.len()];
            let mut m2 = vec![0.0; nus.len()];
            dtft_norms(&a, &nus, &mut m1);
            body::dtft_norms(&a, &nus, &mut m2);
            assert_eq!(m1, m2, "dtft n={n}");

            let s1 = cumulant_sums(&a);
            let s2 = body::cumulant_sums(&a);
            assert_eq!(s1, s2, "cumulants n={n}");

            if n > 0 {
                let mut st1 = gate_state(16);
                let mut st2 = st1;
                let mut ring1 = vec![0.0; 16];
                let mut ring2 = ring1.clone();
                let mut act1 = vec![0u8; n];
                let mut act2 = vec![0u8; n];
                gated_power_scan(&a, &mut ring1, &mut st1, &mut act1);
                body::gated_power_scan(&a, &mut ring2, &mut st2, &mut act2);
                assert_eq!(st1, st2, "gate state n={n}");
                assert_eq!(act1, act2, "gate flags n={n}");
                assert_eq!(ring1, ring2, "gate ring n={n}");
            }
        }
    }

    fn gate_state(window: usize) -> GateScanState {
        let inv_w = if window.is_power_of_two() {
            1.0 / window as f64
        } else {
            0.0
        };
        GateScanState {
            slot: 0,
            acc: 0.0,
            floor: 1e-3,
            gate: 1e-3 * 4.0,
            threshold: 4.0,
            alpha: 1.0 / 64.0,
            floor_eps: 1e-12,
            inv_w,
        }
    }

    /// The fused-EWMA kernel must be *bit-identical* to the textbook
    /// mul-then-add / divide formulation when `alpha` is a power of two and
    /// the window reciprocal is exact — the property that lets the gateway
    /// splitter move onto the kernel without perturbing golden-vector event
    /// boundaries.
    #[test]
    fn gated_power_scan_matches_reference_bitwise() {
        for window in [8usize, 16, 24, 64] {
            let x = wave(4099, window as u64);
            let mut st_k = gate_state(window);
            let mut st_r = st_k;
            let mut ring_k = vec![0.0; window];
            let mut ring_r = ring_k.clone();
            let mut act_k = vec![0u8; x.len()];
            let mut act_r = vec![0u8; x.len()];
            gated_power_scan(&x, &mut ring_k, &mut st_k, &mut act_k);
            reference::gated_power_scan(&x, &mut ring_r, &mut st_r, &mut act_r);
            assert_eq!(act_k, act_r, "window {window}");
            assert_eq!(
                st_k.floor.to_bits(),
                st_r.floor.to_bits(),
                "window {window}"
            );
            assert_eq!(st_k.acc.to_bits(), st_r.acc.to_bits(), "window {window}");
        }
    }

    /// Splitting one long scan into arbitrary sub-calls must produce the
    /// same flags and final state: all scan state lives in `GateScanState`
    /// and the ring, carried exactly across invocations.
    #[test]
    fn gated_power_scan_chunk_invariant() {
        let x = wave(2000, 9);
        let mut st_whole = gate_state(16);
        let mut ring_whole = vec![0.0; 16];
        let mut act_whole = vec![0u8; x.len()];
        gated_power_scan(&x, &mut ring_whole, &mut st_whole, &mut act_whole);

        for chunk in [1usize, 7, 16, 333] {
            let mut st = gate_state(16);
            let mut ring = vec![0.0; 16];
            let mut act = vec![0u8; x.len()];
            let mut done = 0;
            while done < x.len() {
                let end = (done + chunk).min(x.len());
                gated_power_scan(&x[done..end], &mut ring, &mut st, &mut act[done..end]);
                done = end;
            }
            assert_eq!(act, act_whole, "chunk {chunk}");
            assert_eq!(st, st_whole, "chunk {chunk}");
        }
    }

    #[test]
    fn dtft_norms_matches_single_frequency_path_bitwise() {
        // The lane-parallel grid evaluation must agree bit-for-bit with the
        // one-frequency scalar path (which is itself the pre-SIMD code).
        for n in [1usize, 2, 3, 4, 5, 96, 97, 98, 99, 428] {
            let z = wave(n, n as u64);
            let nus: Vec<f64> = (0..301)
                .map(|s| -0.3 + 2.0 * 0.3 * s as f64 / 300.0)
                .collect();
            let mut mags = vec![0.0; nus.len()];
            dtft_norms(&z, &nus, &mut mags);
            for (k, &nu) in nus.iter().enumerate() {
                assert_eq!(mags[k], dtft_one(&z, nu), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn dtft_norms_empty_input_is_all_zero() {
        let nus = [0.1, -0.2, 0.0];
        let mut mags = [1.0; 3];
        dtft_norms(&[], &nus, &mut mags);
        assert_eq!(mags, [0.0; 3]);
    }

    #[test]
    fn rotate_in_place_stays_near_exact_cis() {
        let n = 5000;
        let mut x = vec![Complex::ONE; n];
        rotate_in_place(&mut x, 0.1217);
        for (i, v) in x.iter().enumerate() {
            let exact = Complex::cis(0.1217 * i as f64);
            assert!((*v - exact).norm() < 1e-12, "sample {i} drifted");
        }
    }

    #[test]
    fn fft_stage_matches_reference_bitwise() {
        for n in [2usize, 8, 64, 256] {
            let mut len = 2;
            while len <= n {
                let ang = -2.0 * std::f64::consts::PI / len as f64;
                let wlen = Complex::cis(ang);
                let mut a = wave(n, len as u64);
                let mut b = a.clone();
                fft_stage(&mut a, len, wlen);
                reference::fft_stage(&mut b, len, wlen);
                assert_eq!(a, b, "n={n} len={len}");
                len <<= 1;
            }
        }
    }

    #[test]
    fn kernels_close_to_reference() {
        let a = wave(333, 7);
        let b = wave(333, 8);
        let d = cdot(&a, &b) - reference::cdot(&a, &b);
        assert!(d.norm() < 1e-12);
        let d = cdot_conj_rotated(&a, &b, 0.05) - reference::cdot_conj_rotated(&a, &b, 0.05);
        assert!(d.norm() < 1e-12);
        let s = cumulant_sums(&a);
        let r = reference::cumulant_sums(&a);
        assert!((s.s4 - r.s4).norm() < 1e-10);
        assert!((s.sa4 - r.sa4).abs() < 1e-10);
    }

    #[test]
    fn norm_sqr_into_reuses_capacity() {
        let x = wave(100, 11);
        let mut out = Vec::with_capacity(200);
        norm_sqr_into(&x, &mut out);
        assert_eq!(out.len(), 100);
        let ptr = out.as_ptr();
        norm_sqr_into(&x, &mut out);
        assert_eq!(ptr, out.as_ptr(), "steady-state refill must not realloc");
        for (o, v) in out.iter().zip(&x) {
            assert_eq!(*o, v.norm_sqr());
        }
    }
}
