//! Dense complex linear algebra, just enough for least-squares fitting.
//!
//! The stealthier attack variant fits a handful of OFDM subcarrier
//! coefficients to a whole 80-sample block (including the cyclic-prefix
//! copies) by solving the normal equations — a tiny Hermitian system per
//! emulation, so a dense solver with partial pivoting is plenty.

use crate::complex::Complex;

/// A dense row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

/// Errors from matrix operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// Dimensions incompatible for the requested operation.
    DimensionMismatch,
    /// The system matrix is singular (to working precision).
    Singular,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch => write!(f, "matrix dimensions incompatible"),
            LinalgError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Conjugate transpose.
    pub fn hermitian(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Matrix product.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] unless `self.cols == rhs.rows`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] unless `self.cols == v.len()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch);
        }
        Ok((0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect())
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting
    /// (consumes a copy of `A`).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] for non-square `A` or wrong `b`
    /// length; [`LinalgError::Singular`] when a pivot vanishes.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
        if self.rows != self.cols || b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].norm();
            for r in col + 1..n {
                let mag = a[r * n + col].norm();
                if mag > best {
                    best = mag;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return Err(LinalgError::Singular);
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            let inv = a[col * n + col].inv();
            for r in col + 1..n {
                let factor = a[r * n + col] * inv;
                if factor == Complex::ZERO {
                    continue;
                }
                for c in col..n {
                    let v = a[col * n + c];
                    a[r * n + c] -= factor * v;
                }
                let xc = x[col];
                x[r] -= factor * xc;
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in col + 1..n {
                acc -= a[col * n + c] * x[c];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }

    /// Least-squares solution of the overdetermined system `A x ≈ b` via the
    /// normal equations `(AᴴA) x = Aᴴ b`.
    ///
    /// # Errors
    ///
    /// Propagates [`Matrix::solve`] errors; `AᴴA` is singular when columns
    /// of `A` are linearly dependent.
    pub fn least_squares(&self, b: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let ah = self.hermitian();
        let aha = ah.mul(self)?;
        let ahb = ah.mul_vec(b)?;
        aha.solve(&ahb)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Complex;
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_solve() {
        let eye = Matrix::from_fn(
            3,
            3,
            |r, cc| if r == cc { Complex::ONE } else { Complex::ZERO },
        );
        let b = vec![c(1.0, 2.0), c(-3.0, 0.5), c(0.0, -1.0)];
        assert_eq!(eye.solve(&b).unwrap(), b);
    }

    #[test]
    fn known_2x2() {
        // [1 i; -i 2] x = [1+i; 0] -> solve and verify by substitution.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = Complex::ONE;
        a[(0, 1)] = Complex::I;
        a[(1, 0)] = -Complex::I;
        a[(1, 1)] = c(2.0, 0.0);
        let b = vec![c(1.0, 1.0), Complex::ZERO];
        let x = a.solve(&b).unwrap();
        let back = a.mul_vec(&x).unwrap();
        for (u, v) in back.iter().zip(&b) {
            assert!((*u - *v).norm() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_fn(2, 2, |_, _| Complex::ONE);
        assert_eq!(
            a.solve(&[Complex::ONE, Complex::ONE]),
            Err(LinalgError::Singular)
        );
    }

    #[test]
    fn dimension_checks() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(
            a.solve(&[Complex::ONE; 2]),
            Err(LinalgError::DimensionMismatch)
        );
        assert_eq!(
            a.mul_vec(&[Complex::ONE; 2]),
            Err(LinalgError::DimensionMismatch)
        );
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.mul(&b), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn hermitian_transpose() {
        let a = Matrix::from_fn(2, 3, |r, cc| c(r as f64, cc as f64));
        let h = a.hermitian();
        assert_eq!(h.rows(), 3);
        assert_eq!(h.cols(), 2);
        assert_eq!(h[(2, 1)], c(1.0, -2.0));
    }

    #[test]
    fn least_squares_exact_for_consistent_system() {
        // Tall matrix with known solution.
        let a = Matrix::from_fn(5, 2, |r, cc| c((r + cc) as f64, (r as f64) * 0.5));
        let x_true = vec![c(1.0, -1.0), c(0.5, 2.0)];
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.least_squares(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((*u - *v).norm() < 1e-9);
        }
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Perturb a consistent system; LS residual must not exceed the
        // residual of the unperturbed solution.
        let a = Matrix::from_fn(6, 2, |r, cc| c((r * 2 + cc) as f64 * 0.3, (r as f64) - 1.0));
        let x0 = vec![c(0.7, 0.1), c(-0.2, 0.4)];
        let mut b = a.mul_vec(&x0).unwrap();
        b[0] += c(0.5, -0.5);
        b[3] += c(-0.2, 0.1);
        let x = a.least_squares(&b).unwrap();
        let res_ls: f64 = a
            .mul_vec(&x)
            .unwrap()
            .iter()
            .zip(&b)
            .map(|(u, v)| (*u - *v).norm_sqr())
            .sum();
        let res_x0: f64 = a
            .mul_vec(&x0)
            .unwrap()
            .iter()
            .zip(&b)
            .map(|(u, v)| (*u - *v).norm_sqr())
            .sum();
        assert!(res_ls <= res_x0 + 1e-12);
    }

    proptest! {
        #[test]
        fn solve_then_substitute(seed in 0u64..200) {
            let mut s = seed.wrapping_add(99);
            let mut rnd = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let n = 4;
            // Diagonally dominant => well conditioned.
            let a = Matrix::from_fn(n, n, |r, cc| {
                if r == cc { c(4.0 + rnd().abs(), 0.0) } else { c(rnd() * 0.5, rnd() * 0.5) }
            });
            let b: Vec<Complex> = (0..n).map(|_| c(rnd(), rnd())).collect();
            let x = a.solve(&b).unwrap();
            let back = a.mul_vec(&x).unwrap();
            for (u, v) in back.iter().zip(&b) {
                prop_assert!((*u - *v).norm() < 1e-9);
            }
        }
    }
}
