//! # ctc-dsp
//!
//! Signal-processing substrate for the *Hide and Seek* (ICDCS 2019)
//! reproduction: complex IQ samples, radix-2 FFT/IFFT, FIR filtering,
//! integer-factor resampling, higher-order cumulants, waveform metrics and
//! k-means clustering.
//!
//! Everything operates on complex baseband sample vectors (`Vec<Complex>`)
//! and is deterministic; randomness only enters through caller-supplied
//! [`rand::Rng`] instances.
//!
//! ## Example: the paper's Parseval argument (eq. (2))
//!
//! Quantization error energy in the frequency domain equals waveform
//! distortion energy in the time domain:
//!
//! ```
//! use ctc_dsp::{fft, Complex};
//!
//! let x: Vec<Complex> = (0..64)
//!     .map(|i| Complex::new((i as f64 * 0.2).sin(), (i as f64 * 0.11).cos()))
//!     .collect();
//! let spec = fft::fft(&x)?;
//! let e_time = fft::energy(&x);
//! let e_freq = fft::energy(&spec) / 64.0;
//! assert!((e_time - e_freq).abs() < 1e-9);
//! # Ok::<(), ctc_dsp::fft::FftLenError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod complex;
pub mod cumulants;
pub mod fft;
pub mod filter;
pub mod fractional;
pub mod io;
pub mod kmeans;
pub mod linalg;
pub mod metrics;
pub mod psd;
pub mod resample;
pub mod simd;
pub mod spectrogram;

pub use buffer::{BufferPool, SampleBuf, Stage};
pub use complex::Complex;
pub use cumulants::{Cumulants, Modulation};
pub use fft::{fft64, ifft64};
pub use io::Cf32Reader;
pub use kmeans::{kmeans, Clustering};
