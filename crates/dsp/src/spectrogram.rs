//! Short-time Fourier transform (spectrogram).
//!
//! Time-frequency views of the attack artifacts: a full-frame attack shows
//! the WiFi preamble's wideband bursts followed by data symbols whose
//! −5 MHz region carries the ZigBee emulation — visible at a glance in a
//! spectrogram where PSD averages it away.

use crate::complex::Complex;
use crate::fft::fft;
use crate::psd::{PsdError, Window};

/// A spectrogram: `frames x bins` power matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    /// Power per frame per bin (bin 0 = DC; high bins = negative freqs).
    pub frames: Vec<Vec<f64>>,
    /// FFT size.
    pub fft_size: usize,
    /// Hop between frames in samples.
    pub hop: usize,
}

impl Spectrogram {
    /// Number of time frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frames were produced.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total power of frame `t` within the normalized band
    /// `center ± half_width` (cycles/sample, wrap-aware).
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn band_power(&self, t: usize, center: f64, half_width: f64) -> f64 {
        let n = self.fft_size as f64;
        self.frames[t]
            .iter()
            .enumerate()
            .filter(|(bin, _)| {
                let f = if *bin < self.fft_size / 2 {
                    *bin as f64 / n
                } else {
                    *bin as f64 / n - 1.0
                };
                let mut d = (f - center).abs();
                d = d
                    .min((f - center + 1.0).abs())
                    .min((f - center - 1.0).abs());
                d <= half_width
            })
            .map(|(_, p)| p)
            .sum()
    }

    /// The frame-by-frame total power trace (activity envelope).
    pub fn power_trace(&self) -> Vec<f64> {
        self.frames.iter().map(|f| f.iter().sum()).collect()
    }
}

/// Computes the spectrogram of a waveform.
///
/// # Errors
///
/// [`PsdError::BadSegmentLen`] unless `fft_size` is a power of two;
/// [`PsdError::TooShort`] when the waveform holds no complete frame.
///
/// # Panics
///
/// Panics if `hop == 0`.
pub fn spectrogram(
    x: &[Complex],
    fft_size: usize,
    hop: usize,
    window: Window,
) -> Result<Spectrogram, PsdError> {
    assert!(hop > 0, "hop must be positive");
    if fft_size == 0 || !fft_size.is_power_of_two() {
        return Err(PsdError::BadSegmentLen { len: fft_size });
    }
    if x.len() < fft_size {
        return Err(PsdError::TooShort);
    }
    let win: Vec<f64> = (0..fft_size).map(|i| window.value(i, fft_size)).collect();
    let win_power: f64 = win.iter().map(|w| w * w).sum();
    let mut frames = Vec::new();
    let mut start = 0usize;
    while start + fft_size <= x.len() {
        let seg: Vec<Complex> = x[start..start + fft_size]
            .iter()
            .zip(&win)
            .map(|(v, w)| *v * *w)
            .collect();
        let spec = fft(&seg).expect("fft_size validated");
        frames.push(spec.iter().map(|c| c.norm_sqr() / win_power).collect());
        start += hop;
    }
    Ok(Spectrogram {
        frames,
        fft_size,
        hop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        assert!(spectrogram(&[Complex::ONE; 100], 48, 16, Window::Hann).is_err());
        assert!(spectrogram(&[Complex::ONE; 10], 64, 16, Window::Hann).is_err());
    }

    #[test]
    fn frame_count() {
        let x = vec![Complex::ONE; 256];
        let s = spectrogram(&x, 64, 32, Window::Hann).unwrap();
        assert_eq!(s.len(), (256 - 64) / 32 + 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn chirp_moves_through_bins() {
        // Frequency ramps from 0.05 to 0.4 over the waveform; early frames
        // peak low, late frames peak high.
        let n = 4096;
        let x: Vec<Complex> = (0..n)
            .map(|t| {
                let tt = t as f64;
                let f = 0.05 + 0.35 * tt / n as f64;
                Complex::cis(2.0 * std::f64::consts::PI * f * tt)
            })
            .collect();
        let s = spectrogram(&x, 64, 64, Window::Hann).unwrap();
        let peak_bin = |frame: &Vec<f64>| {
            frame
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        let early = peak_bin(&s.frames[1]);
        let late = peak_bin(&s.frames[s.len() - 2]);
        assert!(early < 12, "early peak {early}");
        assert!(late > 24, "late peak {late}");
    }

    #[test]
    fn band_power_selects_band() {
        let n = 1024;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(-2.0 * std::f64::consts::PI * 0.25 * t as f64))
            .collect();
        let s = spectrogram(&x, 64, 64, Window::Rectangular).unwrap();
        let in_band = s.band_power(3, -0.25, 0.05);
        let out_band = s.band_power(3, 0.25, 0.05);
        assert!(in_band > out_band * 100.0, "{in_band} vs {out_band}");
    }

    #[test]
    fn power_trace_sees_bursts() {
        let mut x = vec![Complex::ZERO; 512];
        for v in x[192..320].iter_mut() {
            *v = Complex::ONE;
        }
        let s = spectrogram(&x, 64, 32, Window::Rectangular).unwrap();
        let trace = s.power_trace();
        let peak = trace.iter().cloned().fold(f64::MIN, f64::max);
        assert!(trace[0] < peak / 100.0, "quiet head");
        assert!(trace[7] > peak / 2.0, "burst centre hot");
    }
}
