//! IQ sample file I/O in the de-facto SDR interchange format: interleaved
//! little-endian `f32` I/Q pairs ("cf32", GNURadio's native file format).
//!
//! This is the bridge to real hardware: a ZigBee frame recorded with a
//! USRP + GNURadio file sink can be fed straight into the attack pipeline,
//! and an emulated waveform written here plays out of a GNURadio file
//! source.

use crate::complex::Complex;
use std::io::{self, Read, Write};

/// Default [`Cf32Reader`] chunk size in samples (512 KiB of cf32).
pub const DEFAULT_CHUNK_SAMPLES: usize = 65_536;

/// Incremental cf32 reader: pulls fixed-size chunks of samples from any
/// byte stream (file, stdin, TCP socket) without slurping it into memory.
///
/// A sample may straddle two underlying `read` calls — the reader carries
/// the partial bytes across calls, so any byte-level chunking of the
/// source yields the same samples. Only a partial sample at end-of-stream
/// is an error.
///
/// # Examples
///
/// ```
/// use ctc_dsp::io::{write_cf32, Cf32Reader};
/// use ctc_dsp::Complex;
///
/// let samples: Vec<Complex> = (0..100).map(|i| Complex::new(i as f64, 0.0)).collect();
/// let mut bytes = Vec::new();
/// write_cf32(&mut bytes, &samples)?;
///
/// let mut reader = Cf32Reader::new(&bytes[..]).with_chunk_samples(32);
/// let mut back = Vec::new();
/// let mut chunk = Vec::new();
/// while reader.read_chunk(&mut chunk)? > 0 {
///     assert!(chunk.len() <= 32);
///     back.extend_from_slice(&chunk);
/// }
/// assert_eq!(back, samples);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct Cf32Reader<R> {
    inner: R,
    chunk_samples: usize,
    /// Reusable byte scratch, grown once to chunk size and never shrunk, so
    /// steady-state reads perform zero allocations.
    buf: Vec<u8>,
    /// Bytes of an incomplete trailing sample from the previous read.
    carry: [u8; 8],
    carry_len: usize,
    samples_read: u64,
}

impl<R: Read> Cf32Reader<R> {
    /// Wraps a byte stream with the default chunk size
    /// ([`DEFAULT_CHUNK_SAMPLES`]).
    pub fn new(inner: R) -> Self {
        Cf32Reader {
            inner,
            chunk_samples: DEFAULT_CHUNK_SAMPLES,
            buf: Vec::new(),
            carry: [0; 8],
            carry_len: 0,
            samples_read: 0,
        }
    }

    /// Sets the chunk size in samples.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_chunk_samples(mut self, n: usize) -> Self {
        assert!(n > 0, "chunk size must be positive");
        self.chunk_samples = n;
        self
    }

    /// Total samples produced so far.
    pub fn samples_read(&self) -> u64 {
        self.samples_read
    }

    /// Reads the next chunk into `out` (cleared first), returning the
    /// number of samples read; `0` means end of stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; end-of-stream inside a sample (a byte count
    /// not divisible by 8) is an `InvalidData` error.
    pub fn read_chunk(&mut self, out: &mut Vec<Complex>) -> io::Result<usize> {
        out.clear();
        let want = self.carry_len + self.chunk_samples * 8;
        if self.buf.len() < want {
            // One-time grow (and zero-fill); steady-state calls reuse it and
            // only ever touch bytes that a `read` filled this call.
            self.buf.resize(want, 0);
        }
        let buf = &mut self.buf[..want];
        buf[..self.carry_len].copy_from_slice(&self.carry[..self.carry_len]);
        let mut filled = self.carry_len;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let whole = filled / 8 * 8;
        self.carry_len = filled - whole;
        self.carry[..self.carry_len].copy_from_slice(&buf[whole..filled]);
        if whole == 0 && self.carry_len != 0 {
            return Err(partial_sample_error(self.carry_len));
        }
        out.extend(buf[..whole].chunks_exact(8).map(|c| {
            let re = f32::from_le_bytes(c[..4].try_into().expect("4 bytes"));
            let im = f32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
            Complex::new(re as f64, im as f64)
        }));
        self.samples_read += out.len() as u64;
        Ok(out.len())
    }
}

/// Iterating yields owned chunks; the final chunk may be short.
impl<R: Read> Iterator for Cf32Reader<R> {
    type Item = io::Result<Vec<Complex>>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut chunk = Vec::new();
        match self.read_chunk(&mut chunk) {
            Ok(0) => None,
            Ok(_) => Some(Ok(chunk)),
            Err(e) => Some(Err(e)),
        }
    }
}

fn partial_sample_error(extra: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("cf32 stream ends inside a sample ({extra} trailing bytes; samples are 8 bytes)"),
    )
}

/// Reads cf32 samples from any reader until EOF.
///
/// Streams through [`Cf32Reader`] chunks, so peak memory is the sample
/// vector itself rather than samples plus a full byte copy.
///
/// # Errors
///
/// Propagates I/O errors; a trailing partial sample (fewer than 8 bytes)
/// is an `InvalidData` error.
///
/// # Examples
///
/// ```
/// use ctc_dsp::io::{read_cf32, write_cf32};
/// use ctc_dsp::Complex;
///
/// let samples = vec![Complex::new(1.0, -0.5), Complex::new(0.25, 2.0)];
/// let mut buf = Vec::new();
/// write_cf32(&mut buf, &samples)?;
/// let back = read_cf32(&buf[..])?;
/// assert_eq!(back, samples);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn read_cf32<R: Read>(reader: R) -> io::Result<Vec<Complex>> {
    let mut reader = Cf32Reader::new(reader);
    let mut all = Vec::new();
    let mut chunk = Vec::new();
    while reader.read_chunk(&mut chunk)? > 0 {
        all.extend_from_slice(&chunk);
    }
    Ok(all)
}

/// Writes samples as cf32 to any writer.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_cf32<W: Write>(mut writer: W, samples: &[Complex]) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(samples.len() * 8);
    for s in samples {
        bytes.extend_from_slice(&(s.re as f32).to_le_bytes());
        bytes.extend_from_slice(&(s.im as f32).to_le_bytes());
    }
    writer.write_all(&bytes)
}

/// Reads a cf32 file from disk.
///
/// # Errors
///
/// Propagates [`read_cf32`] and file-open errors.
pub fn read_cf32_file(path: &std::path::Path) -> io::Result<Vec<Complex>> {
    read_cf32(std::fs::File::open(path)?)
}

/// Writes a cf32 file to disk.
///
/// # Errors
///
/// Propagates [`write_cf32`] and file-create errors.
pub fn write_cf32_file(path: &std::path::Path, samples: &[Complex]) -> io::Result<()> {
    write_cf32(std::fs::File::create(path)?, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let samples: Vec<Complex> = (0..100)
            .map(|i| Complex::new(i as f64 * 0.25, -(i as f64) * 0.5))
            .collect();
        let mut buf = Vec::new();
        write_cf32(&mut buf, &samples).unwrap();
        assert_eq!(buf.len(), 800);
        assert_eq!(read_cf32(&buf[..]).unwrap(), samples);
    }

    #[test]
    fn empty_stream() {
        assert!(read_cf32(&[][..]).unwrap().is_empty());
        let mut buf = Vec::new();
        write_cf32(&mut buf, &[]).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_sample_rejected() {
        let err = read_cf32(&[0u8; 7][..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn layout_is_little_endian_iq() {
        let mut buf = Vec::new();
        write_cf32(&mut buf, &[Complex::new(1.0, 2.0)]).unwrap();
        assert_eq!(&buf[..4], &1.0f32.to_le_bytes());
        assert_eq!(&buf[4..], &2.0f32.to_le_bytes());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ctc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.cf32");
        let samples = vec![Complex::new(-0.5, 0.75); 16];
        write_cf32_file(&path, &samples).unwrap();
        assert_eq!(read_cf32_file(&path).unwrap(), samples);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn chunked_reader_matches_slurp_for_any_chunk_size() {
        let samples: Vec<Complex> = (0..1000)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let mut bytes = Vec::new();
        write_cf32(&mut bytes, &samples).unwrap();
        let samples = read_cf32(&bytes[..]).unwrap(); // f32-rounded reference
        for chunk_size in [1usize, 3, 64, 333, 1000, 4096] {
            let mut reader = Cf32Reader::new(&bytes[..]).with_chunk_samples(chunk_size);
            let mut back = Vec::new();
            let mut chunk = Vec::new();
            loop {
                let n = reader.read_chunk(&mut chunk).unwrap();
                if n == 0 {
                    break;
                }
                assert!(n <= chunk_size);
                back.extend_from_slice(&chunk);
            }
            assert_eq!(back, samples, "chunk size {chunk_size}");
            assert_eq!(reader.samples_read(), samples.len() as u64);
        }
    }

    /// A reader that dribbles bytes out in awkward sizes, splitting samples
    /// across `read` calls.
    struct Dribble<'a>(&'a [u8], usize);

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.1.min(self.0.len()).min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            self.1 = self.1 % 7 + 1; // cycle 1..=7, never sample-aligned
            Ok(n)
        }
    }

    #[test]
    fn chunked_reader_survives_partial_reads() {
        let samples: Vec<Complex> = (0..257).map(|i| Complex::new(i as f64, -1.0)).collect();
        let mut bytes = Vec::new();
        write_cf32(&mut bytes, &samples).unwrap();
        let reader = Cf32Reader::new(Dribble(&bytes, 3)).with_chunk_samples(100);
        let back: Vec<Complex> = reader.flat_map(|c| c.unwrap()).collect();
        assert_eq!(back, samples);
    }

    #[test]
    fn chunked_reader_rejects_trailing_partial_sample() {
        let mut bytes = Vec::new();
        write_cf32(&mut bytes, &[Complex::ONE; 10]).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]); // 3 stray bytes
        let mut reader = Cf32Reader::new(&bytes[..]).with_chunk_samples(4);
        let mut chunk = Vec::new();
        let err = loop {
            match reader.read_chunk(&mut chunk) {
                Ok(0) => panic!("partial trailing sample must error"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn iterator_yields_owned_chunks() {
        let samples = vec![Complex::new(2.0, 3.0); 10];
        let mut bytes = Vec::new();
        write_cf32(&mut bytes, &samples).unwrap();
        let chunks: Vec<Vec<Complex>> = Cf32Reader::new(&bytes[..])
            .with_chunk_samples(4)
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(
            chunks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
    }

    #[test]
    fn f32_precision_loss_is_bounded() {
        let original = vec![Complex::new(0.123456789012345, -0.987654321098765)];
        let mut buf = Vec::new();
        write_cf32(&mut buf, &original).unwrap();
        let back = read_cf32(&buf[..]).unwrap();
        assert!((back[0] - original[0]).norm() < 1e-7);
    }
}
