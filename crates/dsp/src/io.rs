//! IQ sample file I/O in the de-facto SDR interchange format: interleaved
//! little-endian `f32` I/Q pairs ("cf32", GNURadio's native file format).
//!
//! This is the bridge to real hardware: a ZigBee frame recorded with a
//! USRP + GNURadio file sink can be fed straight into the attack pipeline,
//! and an emulated waveform written here plays out of a GNURadio file
//! source.

use crate::complex::Complex;
use std::io::{self, Read, Write};

/// Reads cf32 samples from any reader until EOF.
///
/// # Errors
///
/// Propagates I/O errors; a trailing partial sample (fewer than 8 bytes)
/// is an `InvalidData` error.
///
/// # Examples
///
/// ```
/// use ctc_dsp::io::{read_cf32, write_cf32};
/// use ctc_dsp::Complex;
///
/// let samples = vec![Complex::new(1.0, -0.5), Complex::new(0.25, 2.0)];
/// let mut buf = Vec::new();
/// write_cf32(&mut buf, &samples)?;
/// let back = read_cf32(&buf[..])?;
/// assert_eq!(back, samples);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn read_cf32<R: Read>(mut reader: R) -> io::Result<Vec<Complex>> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() % 8 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "cf32 stream length {} is not a multiple of 8 bytes",
                bytes.len()
            ),
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            let re = f32::from_le_bytes(c[..4].try_into().expect("4 bytes"));
            let im = f32::from_le_bytes(c[4..].try_into().expect("4 bytes"));
            Complex::new(re as f64, im as f64)
        })
        .collect())
}

/// Writes samples as cf32 to any writer.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_cf32<W: Write>(mut writer: W, samples: &[Complex]) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(samples.len() * 8);
    for s in samples {
        bytes.extend_from_slice(&(s.re as f32).to_le_bytes());
        bytes.extend_from_slice(&(s.im as f32).to_le_bytes());
    }
    writer.write_all(&bytes)
}

/// Reads a cf32 file from disk.
///
/// # Errors
///
/// Propagates [`read_cf32`] and file-open errors.
pub fn read_cf32_file(path: &std::path::Path) -> io::Result<Vec<Complex>> {
    read_cf32(std::fs::File::open(path)?)
}

/// Writes a cf32 file to disk.
///
/// # Errors
///
/// Propagates [`write_cf32`] and file-create errors.
pub fn write_cf32_file(path: &std::path::Path, samples: &[Complex]) -> io::Result<()> {
    write_cf32(std::fs::File::create(path)?, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let samples: Vec<Complex> = (0..100)
            .map(|i| Complex::new(i as f64 * 0.25, -(i as f64) * 0.5))
            .collect();
        let mut buf = Vec::new();
        write_cf32(&mut buf, &samples).unwrap();
        assert_eq!(buf.len(), 800);
        assert_eq!(read_cf32(&buf[..]).unwrap(), samples);
    }

    #[test]
    fn empty_stream() {
        assert!(read_cf32(&[][..]).unwrap().is_empty());
        let mut buf = Vec::new();
        write_cf32(&mut buf, &[]).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_sample_rejected() {
        let err = read_cf32(&[0u8; 7][..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn layout_is_little_endian_iq() {
        let mut buf = Vec::new();
        write_cf32(&mut buf, &[Complex::new(1.0, 2.0)]).unwrap();
        assert_eq!(&buf[..4], &1.0f32.to_le_bytes());
        assert_eq!(&buf[4..], &2.0f32.to_le_bytes());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ctc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.cf32");
        let samples = vec![Complex::new(-0.5, 0.75); 16];
        write_cf32_file(&path, &samples).unwrap();
        assert_eq!(read_cf32_file(&path).unwrap(), samples);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn f32_precision_loss_is_bounded() {
        let original = vec![Complex::new(0.123456789012345, -0.987654321098765)];
        let mut buf = Vec::new();
        write_cf32(&mut buf, &original).unwrap();
        let back = read_cf32(&buf[..]).unwrap();
        assert!((back[0] - original[0]).norm() < 1e-7);
    }
}
