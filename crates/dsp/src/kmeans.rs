//! k-means clustering on the complex plane.
//!
//! The paper (Sec. VI-C, eq. (12)) clusters the received chip samples with
//! k-means (k = 4) to visualize the reconstructed constellation and its phase
//! rotation in the real environment. Initialization uses the k-means++
//! seeding of Bradley & Fayyad-style refinement so results are deterministic
//! given an RNG seed.

use crate::complex::Complex;
use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Final cluster centroids (length `k`).
    pub centroids: Vec<Complex>,
    /// For each input point, the index of its centroid.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squares (the objective of eq. (12)).
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Error cases for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KmeansError {
    /// `k` was zero.
    ZeroClusters,
    /// Fewer points than clusters.
    TooFewPoints {
        /// Number of points supplied.
        points: usize,
        /// Number of clusters requested.
        k: usize,
    },
}

impl std::fmt::Display for KmeansError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KmeansError::ZeroClusters => write!(f, "k must be at least 1"),
            KmeansError::TooFewPoints { points, k } => {
                write!(f, "need at least {k} points for {k} clusters, got {points}")
            }
        }
    }
}

impl std::error::Error for KmeansError {}

/// Runs Lloyd's algorithm with k-means++ initialization.
///
/// Deterministic for a given `rng` state. Converges when assignments stop
/// changing or after `max_iter` rounds.
///
/// # Errors
///
/// Returns [`KmeansError`] if `k == 0` or there are fewer points than
/// clusters.
///
/// # Examples
///
/// ```
/// use ctc_dsp::{kmeans::kmeans, Complex};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let pts = [
///     Complex::new(1.0, 1.0), Complex::new(1.1, 0.9),
///     Complex::new(-1.0, -1.0), Complex::new(-0.9, -1.1),
/// ];
/// let res = kmeans(&pts, 2, 100, &mut rng)?;
/// assert_eq!(res.centroids.len(), 2);
/// # Ok::<(), ctc_dsp::kmeans::KmeansError>(())
/// ```
pub fn kmeans<R: Rng>(
    points: &[Complex],
    k: usize,
    max_iter: usize,
    rng: &mut R,
) -> Result<Clustering, KmeansError> {
    if k == 0 {
        return Err(KmeansError::ZeroClusters);
    }
    if points.len() < k {
        return Err(KmeansError::TooFewPoints {
            points: points.len(),
            k,
        });
    }

    // --- k-means++ seeding ---
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())]);
    let mut dist2: Vec<f64> = points
        .iter()
        .map(|p| (*p - centroids[0]).norm_sqr())
        .collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points identical to an existing centroid; pick any.
            points[rng.gen_range(0..points.len())]
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dist2.iter().enumerate() {
                if target <= d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            points[chosen]
        };
        centroids.push(next);
        for (i, p) in points.iter().enumerate() {
            dist2[i] = dist2[i].min((*p - next).norm_sqr());
        }
    }

    // --- Lloyd iterations ---
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = (*p - *centroid).norm_sqr();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![Complex::ZERO; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            sums[assignments[i]] += *p;
            counts[assignments[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
            // Empty clusters keep their previous centroid.
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| (*p - centroids[a]).norm_sqr())
        .sum();

    Ok(Clustering {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quad_cloud(rot: f64, n_per: usize, noise: f64, seed: u64) -> Vec<Complex> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Complex> = (0..4)
            .map(|k| {
                Complex::cis(
                    std::f64::consts::FRAC_PI_4 + k as f64 * std::f64::consts::FRAC_PI_2 + rot,
                )
            })
            .collect();
        let mut pts = Vec::new();
        for &c in &centers {
            for _ in 0..n_per {
                pts.push(
                    c + Complex::new(rng.gen_range(-noise..noise), rng.gen_range(-noise..noise)),
                );
            }
        }
        pts
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            kmeans(&[Complex::ONE], 0, 10, &mut rng),
            Err(KmeansError::ZeroClusters)
        );
        assert!(matches!(
            kmeans(&[Complex::ONE], 2, 10, &mut rng),
            Err(KmeansError::TooFewPoints { points: 1, k: 2 })
        ));
    }

    #[test]
    fn finds_four_qpsk_clusters() {
        let pts = quad_cloud(0.0, 100, 0.15, 42);
        let mut rng = StdRng::seed_from_u64(1);
        let res = kmeans(&pts, 4, 200, &mut rng).unwrap();
        assert_eq!(res.centroids.len(), 4);
        // Each centroid should be within 0.1 of a true QPSK point.
        for c in &res.centroids {
            let best = (0..4)
                .map(|k| {
                    (Complex::cis(
                        std::f64::consts::FRAC_PI_4 + k as f64 * std::f64::consts::FRAC_PI_2,
                    ) - *c)
                        .norm()
                })
                .fold(f64::INFINITY, f64::min);
            assert!(best < 0.1, "centroid {c} far from any QPSK point");
        }
        // Inertia should be roughly 4 * n_per * E[noise^2].
        assert!(res.inertia < 400.0 * 0.15 * 0.15 * 2.0);
    }

    #[test]
    fn recovers_rotated_constellation() {
        let rot = 0.4;
        let pts = quad_cloud(rot, 80, 0.1, 7);
        let mut rng = StdRng::seed_from_u64(2);
        let res = kmeans(&pts, 4, 200, &mut rng).unwrap();
        // Mean centroid phase offset from pi/4 grid should recover rot.
        let mut offsets = Vec::new();
        for c in &res.centroids {
            let base = std::f64::consts::FRAC_PI_4;
            let ang = c.arg();
            let rel = (ang - base).rem_euclid(std::f64::consts::FRAC_PI_2);
            offsets.push(rel.min(std::f64::consts::FRAC_PI_2 - rel));
        }
        let mean_off: f64 = offsets.iter().sum::<f64>() / offsets.len() as f64;
        assert!(
            (mean_off - rot).abs() < 0.07,
            "estimated rotation {mean_off} vs {rot}"
        );
    }

    #[test]
    fn k_equals_points_gives_zero_inertia() {
        let pts = vec![
            Complex::new(0.0, 0.0),
            Complex::new(5.0, 0.0),
            Complex::new(0.0, 5.0),
        ];
        let mut rng = StdRng::seed_from_u64(3);
        let res = kmeans(&pts, 3, 50, &mut rng).unwrap();
        assert!(res.inertia < 1e-20);
    }

    #[test]
    fn identical_points_dont_hang() {
        let pts = vec![Complex::ONE; 10];
        let mut rng = StdRng::seed_from_u64(4);
        let res = kmeans(&pts, 3, 50, &mut rng).unwrap();
        assert!(res.inertia < 1e-20);
        assert!(res.iterations <= 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = quad_cloud(0.2, 50, 0.2, 9);
        let r1 = kmeans(&pts, 4, 100, &mut StdRng::seed_from_u64(5)).unwrap();
        let r2 = kmeans(&pts, 4, 100, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn assignments_match_nearest_centroid() {
        let pts = quad_cloud(0.0, 30, 0.1, 11);
        let mut rng = StdRng::seed_from_u64(6);
        let res = kmeans(&pts, 4, 100, &mut rng).unwrap();
        for (p, &a) in pts.iter().zip(&res.assignments) {
            let d_assigned = (*p - res.centroids[a]).norm_sqr();
            for c in &res.centroids {
                assert!(d_assigned <= (*p - *c).norm_sqr() + 1e-12);
            }
        }
    }
}
