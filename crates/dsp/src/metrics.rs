//! Waveform comparison metrics and power utilities.
//!
//! Supports the evaluation harness: normalized waveform power (the paper
//! normalizes transmit power and defines `SNR = 1/sigma^2`), RMS emulation
//! error (Fig. 5), and the cyclic-prefix self-similarity statistic used to
//! show that naive CP detection fails (Fig. 8 discussion).

use crate::complex::Complex;
use crate::simd;

/// Mean power `E[|x|^2]` of a waveform; zero for an empty slice.
pub fn mean_power(x: &[Complex]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    simd::sum_norm_sqr(x) / x.len() as f64
}

/// Scales a waveform to unit mean power. Leaves all-zero input untouched.
///
/// # Examples
///
/// ```
/// use ctc_dsp::{metrics::{normalize_power, mean_power}, Complex};
/// let x = vec![Complex::new(3.0, 0.0); 10];
/// let y = normalize_power(&x);
/// assert!((mean_power(&y) - 1.0).abs() < 1e-12);
/// ```
pub fn normalize_power(x: &[Complex]) -> Vec<Complex> {
    let p = mean_power(x);
    if p <= 0.0 {
        return x.to_vec();
    }
    let g = 1.0 / p.sqrt();
    x.iter().map(|&v| v * g).collect()
}

/// Root-mean-square error between two equal-length waveforms.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rms_error(a: &[Complex], b: &[Complex]) -> f64 {
    assert_eq!(a.len(), b.len(), "rms_error requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let e: f64 = a.iter().zip(b).map(|(x, y)| (*x - *y).norm_sqr()).sum();
    (e / a.len() as f64).sqrt()
}

/// Normalized mean-square error `sum|a-b|^2 / sum|a|^2` in dB
/// (`-inf` for identical signals; returns `f64::NEG_INFINITY`).
///
/// # Panics
///
/// Panics if lengths differ or the reference has zero energy.
pub fn nmse_db(reference: &[Complex], test: &[Complex]) -> f64 {
    assert_eq!(
        reference.len(),
        test.len(),
        "nmse_db requires equal lengths"
    );
    let sig: f64 = reference.iter().map(|v| v.norm_sqr()).sum();
    assert!(sig > 0.0, "nmse_db reference must have nonzero energy");
    let err: f64 = reference
        .iter()
        .zip(test)
        .map(|(x, y)| (*x - *y).norm_sqr())
        .sum();
    if err == 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * (err / sig).log10()
    }
}

/// Complex correlation coefficient between two waveforms
/// `|<a,b>| / sqrt(<a,a><b,b>)`, in `[0, 1]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn correlation(a: &[Complex], b: &[Complex]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation requires equal lengths");
    let cross = simd::cdot_conj(a, b);
    let pa = simd::sum_norm_sqr(a);
    let pb = simd::sum_norm_sqr(b);
    if pa == 0.0 || pb == 0.0 {
        return 0.0;
    }
    cross.norm() / (pa * pb).sqrt()
}

/// Cyclic-prefix self-similarity of an 80-sample OFDM symbol: the normalized
/// correlation between the first `cp_len` samples and the last `cp_len`.
///
/// A clean WiFi symbol scores ~1.0 (its CP is a copy of the tail); an
/// authentic ZigBee quarter-symbol scores much lower — but noise and fading
/// destroy the margin, which is why the paper rejects this defense.
///
/// # Panics
///
/// Panics if `symbol.len() < 2 * cp_len` or `cp_len == 0`.
pub fn cp_self_similarity(symbol: &[Complex], cp_len: usize) -> f64 {
    assert!(cp_len > 0, "cp_len must be positive");
    assert!(
        symbol.len() >= 2 * cp_len,
        "symbol too short for cp comparison"
    );
    let head = &symbol[..cp_len];
    let tail = &symbol[symbol.len() - cp_len..];
    correlation(head, tail)
}

/// Distance between two `f64` values in units in the last place: the
/// number of representable doubles strictly between them (0 for equal
/// values, including `-0.0` vs `0.0`).
///
/// Monotone total-order mapping: the bit pattern is flipped so negative
/// floats sort below positives, then distance is the integer gap. `NaN`
/// anywhere yields `u64::MAX` (never "close" to anything). This is the
/// float-band primitive behind the golden-vector comparator: a tolerance
/// in ULPs is scale-free, so it works identically for waveform samples
/// near 1.0 and near 1e-6.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Sign-magnitude bits -> monotone signed key. Both zeros map to 0, so
    // the negative ray is the exact mirror of the positive one.
    fn total_order_key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN - bits
        } else {
            bits
        }
    }
    total_order_key(a).abs_diff(total_order_key(b))
}

/// Linear SNR (`1/sigma^2` with unit signal power) to dB.
pub fn snr_to_db(snr_linear: f64) -> f64 {
    10.0 * snr_linear.log10()
}

/// dB to linear SNR.
pub fn db_to_snr(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_power_basics() {
        assert_eq!(mean_power(&[]), 0.0);
        let x = vec![Complex::new(1.0, 1.0); 4];
        assert!((mean_power(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_power_unit() {
        let x = vec![Complex::new(0.3, -0.4); 8];
        let y = normalize_power(&x);
        assert!((mean_power(&y) - 1.0).abs() < 1e-12);
        // Zero stays zero.
        let z = normalize_power(&[Complex::ZERO; 3]);
        assert!(z.iter().all(|v| *v == Complex::ZERO));
    }

    #[test]
    fn rms_error_zero_for_identical() {
        let x = vec![Complex::new(1.0, 2.0); 5];
        assert_eq!(rms_error(&x, &x), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn rms_error_length_mismatch_panics() {
        let _ = rms_error(&[Complex::ONE], &[Complex::ONE; 2]);
    }

    #[test]
    fn ulp_distance_counts_representable_gaps() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(
            ulp_distance(-1.0, f64::from_bits((-1.0f64).to_bits() + 1)),
            1
        );
        // Straddling zero: distance through both subnormal ranges.
        let tiny = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(tiny, -tiny), 2);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance(1.0, f64::NAN), u64::MAX);
        // Symmetric and monotone in magnitude.
        assert_eq!(ulp_distance(3.5, 3.75), ulp_distance(3.75, 3.5));
        assert!(ulp_distance(1.0, 2.0) < ulp_distance(1.0, 4.0));
    }

    #[test]
    fn nmse_db_scales() {
        let a = vec![Complex::ONE; 10];
        let b: Vec<Complex> = a.iter().map(|v| *v * 0.9).collect();
        // err = 0.01 * 10, sig = 10 -> -20 dB
        assert!((nmse_db(&a, &b) + 20.0).abs() < 1e-9);
        assert_eq!(nmse_db(&a, &a), f64::NEG_INFINITY);
    }

    #[test]
    fn correlation_bounds() {
        let a = vec![Complex::ONE, Complex::I, Complex::new(0.5, 0.5)];
        assert!((correlation(&a, &a) - 1.0).abs() < 1e-12);
        let rotated: Vec<Complex> = a.iter().map(|v| *v * Complex::cis(1.2)).collect();
        assert!((correlation(&a, &rotated) - 1.0).abs() < 1e-12);
        let orth = vec![Complex::ONE, Complex::ZERO, Complex::ZERO];
        let orth2 = vec![Complex::ZERO, Complex::ONE, Complex::ZERO];
        assert!(correlation(&orth, &orth2) < 1e-12);
        assert_eq!(correlation(&a, &[Complex::ZERO; 3]), 0.0);
    }

    #[test]
    fn cp_similarity_detects_true_cp() {
        // Build an 80-sample symbol whose first 16 == last 16.
        let mut sym = vec![Complex::ZERO; 80];
        for i in 0..64 {
            sym[16 + i] = Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.77).cos());
        }
        for i in 0..16 {
            sym[i] = sym[64 + i];
        }
        assert!((cp_self_similarity(&sym, 16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cp_similarity_low_without_cp() {
        let sym: Vec<Complex> = (0..80)
            .map(|i| Complex::new((i as f64 * 1.17).sin(), (i as f64 * 2.31).cos()))
            .collect();
        assert!(cp_self_similarity(&sym, 16) < 0.7);
    }

    #[test]
    fn snr_conversions_roundtrip() {
        for db in [-10.0, 0.0, 7.0, 17.0] {
            assert!((snr_to_db(db_to_snr(db)) - db).abs() < 1e-9);
        }
        assert!((db_to_snr(0.0) - 1.0).abs() < 1e-12);
        assert!((db_to_snr(10.0) - 10.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn correlation_symmetric(seed in 0u64..300) {
            let mut s = seed.wrapping_add(17);
            let mut rnd = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let a: Vec<Complex> = (0..24).map(|_| Complex::new(rnd(), rnd())).collect();
            let b: Vec<Complex> = (0..24).map(|_| Complex::new(rnd(), rnd())).collect();
            let c1 = correlation(&a, &b);
            let c2 = correlation(&b, &a);
            prop_assert!((c1 - c2).abs() < 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c1));
        }

        #[test]
        fn normalize_power_idempotent(scale in 0.01f64..50.0) {
            let x: Vec<Complex> = (0..32)
                .map(|i| Complex::new((i as f64).sin() * scale, (i as f64).cos() * scale))
                .collect();
            let once = normalize_power(&x);
            let twice = normalize_power(&once);
            for (a, b) in once.iter().zip(&twice) {
                prop_assert!((*a - *b).norm() < 1e-12);
            }
        }
    }
}
