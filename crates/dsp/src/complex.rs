//! Complex-valued IQ samples.
//!
//! Every waveform in this workspace is a sequence of [`Complex`] baseband
//! samples (in-phase on the real axis, quadrature on the imaginary axis).
//! The type is a deliberate minimal re-implementation: the paper's maths
//! (FFT, cumulants, QAM quantization) only needs field arithmetic, conjugation
//! and polar conversions, and keeping it local avoids an external num crate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number backed by two `f64` values.
///
/// # Examples
///
/// ```
/// use ctc_dsp::Complex;
///
/// let a = Complex::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a * Complex::I, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real (in-phase) part.
    pub re: f64,
    /// Imaginary (quadrature) part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ctc_dsp::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}`, a unit phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2` (cheaper than [`Complex::norm`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl From<(f64, f64)> for Complex {
    fn from((re, im): (f64, f64)) -> Self {
        Complex::new(re, im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-inverse
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl DivAssign<f64> for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn constructors() {
        assert_eq!(Complex::new(1.0, 2.0).re, 1.0);
        assert_eq!(Complex::from_re(3.0), Complex::new(3.0, 0.0));
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
        assert_eq!(Complex::from((1.0, -1.0)), Complex::new(1.0, -1.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(-3.0, 4.0);
        let back = Complex::from_polar(z.norm(), z.arg());
        assert!(close(z, back));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.25);
        assert!(close(a + Complex::ZERO, a));
        assert!(close(a * Complex::ONE, a));
        assert!(close(a - a, Complex::ZERO));
        assert!(close(a * a.inv(), Complex::ONE));
        assert!(close(-a + a, Complex::ZERO));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 4.0);
        // (2+3i)(-1+4i) = -2 + 8i - 3i + 12 i^2 = -14 + 5i
        assert!(close(a * b, Complex::new(-14.0, 5.0)));
    }

    #[test]
    fn division() {
        let a = Complex::new(4.0, 2.0);
        let b = Complex::new(1.0, -1.0);
        assert!(close(a / b * b, a));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, -4.0);
        assert_eq!(a.conj(), Complex::new(3.0, 4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert!(close(a * a.conj(), Complex::from_re(25.0)));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let th = k as f64 * 0.41;
            assert!((Complex::cis(th).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scalar_ops() {
        let a = Complex::new(1.0, 2.0);
        assert!(close(a * 2.0, Complex::new(2.0, 4.0)));
        assert!(close(2.0 * a, Complex::new(2.0, 4.0)));
        assert!(close(a / 2.0, Complex::new(0.5, 1.0)));
    }

    #[test]
    fn assign_ops() {
        let mut a = Complex::new(1.0, 1.0);
        a += Complex::ONE;
        assert!(close(a, Complex::new(2.0, 1.0)));
        a -= Complex::I;
        assert!(close(a, Complex::new(2.0, 0.0)));
        a *= Complex::I;
        assert!(close(a, Complex::new(0.0, 2.0)));
        a *= 0.5;
        assert!(close(a, Complex::new(0.0, 1.0)));
        a /= 2.0;
        assert!(close(a, Complex::new(0.0, 0.5)));
    }

    #[test]
    fn sum_iterators() {
        let v = [Complex::ONE, Complex::I, Complex::new(1.0, 1.0)];
        let owned: Complex = v.iter().copied().sum();
        let byref: Complex = v.iter().sum();
        assert!(close(owned, Complex::new(2.0, 2.0)));
        assert!(close(byref, owned));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn finite_check() {
        assert!(Complex::new(1.0, 2.0).is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex::new(0.0, f64::INFINITY).is_finite());
    }
}
