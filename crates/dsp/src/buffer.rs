//! Reusable sample buffers and the in-place [`Stage`] processing API.
//!
//! Every hop of the TX → channel → RX → detector path works on blocks of
//! complex baseband samples. Allocating a fresh `Vec<Complex>` per hop puts
//! the allocator — not the math — on the critical path of the streaming
//! gateway. This module provides the ownership model that removes it:
//!
//! * [`BufferPool`] — a thread-safe free-list of `Vec<Complex>` capacity.
//!   Checking out is a mutex-protected pop (a *hit*) or a fresh allocation
//!   (a *miss*); steady-state pipelines converge to all-hits.
//! * [`SampleBuf`] — an owned sample buffer that returns its capacity to the
//!   pool it came from on drop. Detached buffers (no pool) behave like a
//!   plain `Vec` and are always valid, so APIs taking `&mut SampleBuf` work
//!   with or without pooling.
//! * [`Stage`] — the processing contract: `process(input, out)` writes the
//!   result into a caller-supplied buffer, and `process_in_place(buf)` is a
//!   fast path for stages that preserve length (filters, impairments) or
//!   that can reuse the buffer through a pooled scratch swap.
//!
//! Ownership rule of thumb: *whoever checks a buffer out lets it drop* —
//! return-to-pool is automatic, never manual. Producers that hand samples
//! across threads move the `SampleBuf` itself (it is `Send`), and the
//! consumer's drop returns the capacity to the shared pool.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::complex::Complex;

/// Default cap on idle vectors retained by a [`BufferPool`].
const DEFAULT_MAX_IDLE: usize = 64;

#[derive(Debug)]
struct PoolInner {
    free: Mutex<Vec<Vec<Complex>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    max_idle: usize,
}

/// A thread-safe pool of reusable `Vec<Complex>` capacity.
///
/// Cloning a `BufferPool` is cheap (an `Arc` bump) and all clones share the
/// same free-list, so a pool can be handed to every worker in a pipeline.
///
/// # Examples
///
/// ```
/// use ctc_dsp::buffer::BufferPool;
///
/// let pool = BufferPool::new();
/// let mut buf = pool.checkout(1024);
/// buf.extend_from_slice(&[ctc_dsp::Complex::ONE; 8]);
/// let cap = buf.capacity();
/// drop(buf); // capacity returns to the pool
/// let again = pool.checkout(16);
/// assert!(again.capacity() >= cap); // reused, not reallocated
/// assert_eq!(pool.hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// Creates an empty pool with the default idle-buffer cap.
    pub fn new() -> Self {
        Self::with_max_idle(DEFAULT_MAX_IDLE)
    }

    /// Creates an empty pool that retains at most `max_idle` returned buffers;
    /// further returns are simply freed.
    pub fn with_max_idle(max_idle: usize) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                max_idle,
            }),
        }
    }

    /// Checks out an empty buffer with at least `capacity` reserved.
    ///
    /// Prefers the largest idle buffer (growing it if needed); allocates
    /// fresh on a pool miss. The returned [`SampleBuf`] gives its capacity
    /// back to this pool when dropped.
    pub fn checkout(&self, capacity: usize) -> SampleBuf {
        let recycled = {
            let mut free = self.inner.free.lock().expect("buffer pool poisoned");
            free.pop()
        };
        let data = match recycled {
            Some(mut v) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                v.clear();
                if v.capacity() < capacity {
                    v.reserve(capacity - v.len());
                }
                v
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        };
        SampleBuf {
            data,
            pool: Some(self.clone()),
        }
    }

    /// Number of checkouts served from the free-list.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Number of checkouts that had to allocate.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.inner.free.lock().expect("buffer pool poisoned").len()
    }

    fn give_back(&self, v: Vec<Complex>) {
        if v.capacity() == 0 {
            return;
        }
        let mut free = self.inner.free.lock().expect("buffer pool poisoned");
        if free.len() < self.inner.max_idle {
            free.push(v);
        }
    }
}

/// An owned block of complex samples whose capacity is recycled on drop.
///
/// Dereferences to `[Complex]`; grow with [`push`](SampleBuf::push),
/// [`extend_from_slice`](SampleBuf::extend_from_slice) or
/// [`resize`](SampleBuf::resize). A buffer checked out of a [`BufferPool`]
/// returns there on drop; a [detached](SampleBuf::detached) buffer frees
/// normally, so all APIs work identically either way.
#[derive(Debug)]
pub struct SampleBuf {
    data: Vec<Complex>,
    pool: Option<BufferPool>,
}

impl SampleBuf {
    /// Creates a pool-less buffer with the given capacity reserved.
    pub fn detached(capacity: usize) -> Self {
        SampleBuf {
            data: Vec::with_capacity(capacity),
            pool: None,
        }
    }

    /// Wraps an existing vector as a detached buffer.
    pub fn from_vec(data: Vec<Complex>) -> Self {
        SampleBuf { data, pool: None }
    }

    /// Empties the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends one sample.
    pub fn push(&mut self, v: Complex) {
        self.data.push(v);
    }

    /// Appends a slice of samples.
    pub fn extend_from_slice(&mut self, s: &[Complex]) {
        self.data.extend_from_slice(s);
    }

    /// Resizes to `len`, filling new slots with `value`.
    pub fn resize(&mut self, len: usize, value: Complex) {
        self.data.resize(len, value);
    }

    /// Reserves room for at least `additional` more samples.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Current capacity in samples.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Direct access to the backing vector (for `extend`/`truncate`-style
    /// call sites). The vector still returns to the pool on drop.
    pub fn as_vec_mut(&mut self) -> &mut Vec<Complex> {
        &mut self.data
    }

    /// Checks out an empty sibling buffer: same pool if pooled, detached
    /// otherwise. Used by scratch-swap in-place fallbacks.
    pub fn sibling(&self, capacity: usize) -> SampleBuf {
        match &self.pool {
            Some(pool) => pool.checkout(capacity),
            None => SampleBuf::detached(capacity),
        }
    }

    /// Swaps contents (and pool affiliation stays with each buffer).
    pub fn swap_data(&mut self, other: &mut SampleBuf) {
        std::mem::swap(&mut self.data, &mut other.data);
    }

    /// Detaches the backing vector; the capacity is *not* returned to the
    /// pool. Use at the pipeline boundary where a plain `Vec` must escape.
    pub fn into_vec(mut self) -> Vec<Complex> {
        std::mem::take(&mut self.data)
    }
}

impl Clone for SampleBuf {
    /// Clones the samples; the copy draws from (and returns to) the same
    /// pool when the original is pooled.
    fn clone(&self) -> Self {
        match &self.pool {
            Some(pool) => {
                let mut b = pool.checkout(self.data.len());
                b.extend_from_slice(&self.data);
                b
            }
            None => SampleBuf {
                data: self.data.clone(),
                pool: None,
            },
        }
    }
}

impl Deref for SampleBuf {
    type Target = [Complex];

    fn deref(&self) -> &[Complex] {
        &self.data
    }
}

impl DerefMut for SampleBuf {
    fn deref_mut(&mut self) -> &mut [Complex] {
        &mut self.data
    }
}

impl Drop for SampleBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.give_back(std::mem::take(&mut self.data));
        }
    }
}

impl Extend<Complex> for SampleBuf {
    fn extend<T: IntoIterator<Item = Complex>>(&mut self, iter: T) {
        self.data.extend(iter);
    }
}

/// A sample-block processing stage with an explicit-output API and an
/// in-place fast path.
///
/// Implementors must make `process` write the full result into `out`
/// (clearing it first); stages whose output length equals their input length
/// should also override [`process_in_place`](Stage::process_in_place) to skip
/// the copy entirely. The default `process_in_place` is a scratch-swap: it
/// checks a sibling buffer out of the same pool, processes into it, and swaps
/// — still allocation-free in steady state.
pub trait Stage {
    /// A short static name for telemetry (the `stage` label a profiler
    /// attaches to this stage's duration histogram). Defaults to `"stage"`;
    /// override to make instrumented pipelines readable.
    fn name(&self) -> &'static str {
        "stage"
    }

    /// Processes `input`, replacing the contents of `out` with the result.
    fn process(&mut self, input: &[Complex], out: &mut SampleBuf);

    /// Processes `buf`'s contents in place.
    ///
    /// Override when the stage can mutate samples directly (length-preserving
    /// filters, impairments); the default routes through a pooled scratch
    /// buffer and swaps.
    fn process_in_place(&mut self, buf: &mut SampleBuf) {
        let mut scratch = buf.sibling(buf.len());
        let data = std::mem::take(&mut buf.data);
        self.process(&data, &mut scratch);
        buf.data = data;
        buf.swap_data(&mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn checkout_miss_then_hit() {
        let pool = BufferPool::new();
        let b = pool.checkout(32);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 0);
        drop(b);
        assert_eq!(pool.idle(), 1);
        let b2 = pool.checkout(8);
        assert_eq!(pool.hits(), 1);
        assert!(b2.capacity() >= 32, "recycled capacity is kept");
    }

    #[test]
    fn into_vec_does_not_return_to_pool() {
        let pool = BufferPool::new();
        let mut b = pool.checkout(16);
        b.push(Complex::ONE);
        let v = b.into_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn max_idle_caps_retention() {
        let pool = BufferPool::with_max_idle(2);
        let bufs: Vec<SampleBuf> = (0..4).map(|_| pool.checkout(8)).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn detached_buf_is_plain_vec() {
        let mut b = SampleBuf::detached(4);
        b.extend_from_slice(&[Complex::I; 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.into_vec(), vec![Complex::I; 3]);
    }

    #[test]
    fn zero_capacity_buffers_not_pooled() {
        let pool = BufferPool::new();
        let b = pool.checkout(0);
        drop(b);
        assert_eq!(pool.idle(), 0, "empty vecs are not worth retaining");
    }

    struct Doubler;
    impl Stage for Doubler {
        fn process(&mut self, input: &[Complex], out: &mut SampleBuf) {
            out.clear();
            out.extend(input.iter().map(|&v| v * 2.0));
        }
    }

    #[test]
    fn stage_default_in_place_swaps_through_pool() {
        let pool = BufferPool::new();
        let mut buf = pool.checkout(4);
        buf.extend_from_slice(&[Complex::ONE; 4]);
        Doubler.process_in_place(&mut buf);
        assert!(buf
            .iter()
            .all(|&v| (v - Complex::new(2.0, 0.0)).norm() < 1e-12));
        drop(buf);
        // Both the original and the scratch buffer made it back.
        assert_eq!(pool.idle(), 2);
    }

    proptest! {
        // Checkout/return round-trips never lose capacity: a buffer grown
        // to `n` samples comes back from the pool with at least that
        // capacity.
        #[test]
        fn roundtrip_preserves_capacity(n in 1usize..4096) {
            let pool = BufferPool::new();
            let mut b = pool.checkout(0);
            b.resize(n, Complex::ZERO);
            let grown = b.capacity();
            prop_assert!(grown >= n);
            drop(b);
            let b2 = pool.checkout(0);
            prop_assert!(b2.capacity() >= grown);
            prop_assert_eq!(b2.len(), 0, "recycled buffers come back empty");
        }

        // Pool misses fall back to fresh allocation with the full requested
        // capacity, and hits+misses always equals total checkouts.
        #[test]
        fn misses_allocate_requested_capacity(caps in proptest::collection::vec(1usize..2048, 1..8)) {
            let pool = BufferPool::new();
            let bufs: Vec<SampleBuf> = caps.iter().map(|&c| pool.checkout(c)).collect();
            for (b, &c) in bufs.iter().zip(&caps) {
                prop_assert!(b.capacity() >= c);
            }
            prop_assert_eq!(pool.misses(), caps.len() as u64, "all live at once: every checkout is a miss");
            prop_assert_eq!(pool.hits(), 0);
        }
    }

    /// Under concurrent checkout/return, no two live buffers ever alias the
    /// same backing storage.
    #[test]
    fn concurrent_checkouts_never_alias() {
        let pool = BufferPool::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = pool.clone();
                thread::spawn(move || {
                    let mut ptrs = Vec::new();
                    for i in 0..200 {
                        let mut a = pool.checkout(64);
                        let mut b = pool.checkout(64);
                        a.resize(1, Complex::new(t as f64, i as f64));
                        b.resize(1, Complex::new(-(t as f64), i as f64));
                        let pa = a.as_ptr() as usize;
                        let pb = b.as_ptr() as usize;
                        assert_ne!(pa, pb, "two live buffers share storage");
                        // Writes through one handle are invisible to the other.
                        assert_eq!(a[0], Complex::new(t as f64, i as f64));
                        assert_eq!(b[0], Complex::new(-(t as f64), i as f64));
                        ptrs.push((pa, pb));
                    }
                    ptrs
                })
            })
            .collect();
        let mut live_pairs = 0usize;
        let mut seen = HashSet::new();
        for h in handles {
            for (pa, pb) in h.join().unwrap() {
                live_pairs += 1;
                seen.insert(pa);
                seen.insert(pb);
            }
        }
        assert_eq!(live_pairs, 800);
        assert!(!seen.is_empty());
    }
}
