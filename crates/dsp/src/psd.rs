//! Power spectral density estimation (Welch's method).
//!
//! Used by the evaluation to visualize spectral placement: the 2 MHz ZigBee
//! band inside the attacker's 20 MHz OFDM waveform, the spectral regrowth
//! caused by QAM quantization, and the receiver's channel filter.

use crate::complex::Complex;
use crate::fft::fft;

/// Window functions for spectral estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Window {
    /// Rectangular (no) window.
    Rectangular,
    /// Hann window — the default, good sidelobe/width trade-off.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
}

impl Window {
    /// Evaluates the window at position `i` of `n`.
    pub fn value(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = 2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 * (1.0 - x.cos()),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
        }
    }
}

/// A PSD estimate over `segment_len` frequency bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Psd {
    /// Power per bin (linear), bin 0 = DC, high bins = negative freqs.
    pub power: Vec<f64>,
    /// Number of averaged segments.
    pub segments: usize,
}

impl Psd {
    /// Power per bin in dB relative to the peak bin.
    pub fn db_rel_peak(&self) -> Vec<f64> {
        let peak = self.power.iter().copied().fold(f64::MIN, f64::max);
        self.power
            .iter()
            .map(|&p| 10.0 * (p / peak).max(1e-300).log10())
            .collect()
    }

    /// Reorders bins to natural frequency order (negative→positive), paired
    /// with the normalized frequency of each bin (cycles/sample).
    pub fn ordered(&self) -> Vec<(f64, f64)> {
        let n = self.power.len();
        let half = n / 2;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let bin = (i + half) % n;
            let f = (i as f64 - half as f64) / n as f64;
            out.push((f, self.power[bin]));
        }
        out
    }

    /// Fraction of total power within `|f| <= band` (normalized frequency).
    pub fn band_power_fraction(&self, band: f64) -> f64 {
        let total: f64 = self.power.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let in_band: f64 = self
            .ordered()
            .iter()
            .filter(|(f, _)| f.abs() <= band)
            .map(|(_, p)| p)
            .sum();
        in_band / total
    }
}

/// Errors for [`welch_psd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsdError {
    /// Segment length is not a nonzero power of two.
    BadSegmentLen {
        /// Requested length.
        len: usize,
    },
    /// Input shorter than one segment.
    TooShort,
}

impl std::fmt::Display for PsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsdError::BadSegmentLen { len } => {
                write!(f, "segment length must be a power of two, got {len}")
            }
            PsdError::TooShort => write!(f, "input shorter than one segment"),
        }
    }
}

impl std::error::Error for PsdError {}

/// Welch PSD: windowed, 50%-overlapped, averaged periodograms.
///
/// # Errors
///
/// [`PsdError::BadSegmentLen`] unless `segment_len` is a power of two;
/// [`PsdError::TooShort`] when `x.len() < segment_len`.
///
/// # Examples
///
/// ```
/// use ctc_dsp::{psd::{welch_psd, Window}, Complex};
/// let tone: Vec<Complex> = (0..1024)
///     .map(|n| Complex::cis(2.0 * std::f64::consts::PI * 0.25 * n as f64))
///     .collect();
/// let psd = welch_psd(&tone, 64, Window::Hann)?;
/// // A quarter-rate tone concentrates its power near f = 0.25.
/// assert!(psd.band_power_fraction(0.20) < 0.1);
/// # Ok::<(), ctc_dsp::psd::PsdError>(())
/// ```
pub fn welch_psd(x: &[Complex], segment_len: usize, window: Window) -> Result<Psd, PsdError> {
    if segment_len == 0 || !segment_len.is_power_of_two() {
        return Err(PsdError::BadSegmentLen { len: segment_len });
    }
    if x.len() < segment_len {
        return Err(PsdError::TooShort);
    }
    let hop = segment_len / 2;
    let win: Vec<f64> = (0..segment_len)
        .map(|i| window.value(i, segment_len))
        .collect();
    let win_power: f64 = win.iter().map(|w| w * w).sum();
    let mut power = vec![0.0f64; segment_len];
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + segment_len <= x.len() {
        let seg: Vec<Complex> = x[start..start + segment_len]
            .iter()
            .zip(&win)
            .map(|(v, w)| *v * *w)
            .collect();
        let spec = fft(&seg).expect("segment_len validated as power of two");
        for (p, s) in power.iter_mut().zip(&spec) {
            *p += s.norm_sqr() / win_power;
        }
        segments += 1;
        start += hop;
    }
    for p in &mut power {
        *p /= segments as f64;
    }
    Ok(Psd { power, segments })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, n: usize) -> Vec<Complex> {
        (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * f * t as f64))
            .collect()
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(welch_psd(&tone(0.1, 100), 48, Window::Hann).is_err());
        assert!(welch_psd(&tone(0.1, 10), 64, Window::Hann).is_err());
    }

    #[test]
    fn tone_peaks_at_right_bin() {
        let psd = welch_psd(&tone(0.125, 2048), 64, Window::Hann).unwrap();
        let peak_bin = psd
            .power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak_bin, 8); // 0.125 * 64
    }

    #[test]
    fn ordered_covers_full_band() {
        let psd = welch_psd(&tone(0.1, 512), 64, Window::Hann).unwrap();
        let ord = psd.ordered();
        assert_eq!(ord.len(), 64);
        assert!((ord[0].0 + 0.5).abs() < 1e-12);
        assert!((ord[63].0 - (31.0 / 64.0)).abs() < 1e-9);
    }

    #[test]
    fn band_power_of_narrowband_signal() {
        let psd = welch_psd(&tone(0.05, 4096), 128, Window::Hann).unwrap();
        assert!(psd.band_power_fraction(0.1) > 0.99);
        assert!(psd.band_power_fraction(0.02) < 0.2);
    }

    #[test]
    fn white_noise_is_flat() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let noise: Vec<Complex> = (0..16384)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let psd = welch_psd(&noise, 64, Window::Hann).unwrap();
        let mean: f64 = psd.power.iter().sum::<f64>() / 64.0;
        for &p in &psd.power {
            assert!((p / mean - 1.0).abs() < 0.5, "bin power {p} vs mean {mean}");
        }
    }

    #[test]
    fn db_rel_peak_zero_at_peak() {
        let psd = welch_psd(&tone(0.25, 1024), 64, Window::Hamming).unwrap();
        let db = psd.db_rel_peak();
        let max = db.iter().copied().fold(f64::MIN, f64::max);
        assert!((max - 0.0).abs() < 1e-12);
    }

    #[test]
    fn windows_evaluate() {
        assert_eq!(Window::Rectangular.value(3, 10), 1.0);
        assert!((Window::Hann.value(0, 64)).abs() < 1e-12);
        assert!((Window::Hamming.value(0, 64) - 0.08).abs() < 1e-12);
        assert_eq!(Window::Hann.value(0, 1), 1.0);
    }

    #[test]
    fn segment_count() {
        let psd = welch_psd(&tone(0.1, 256), 64, Window::Hann).unwrap();
        // 50% overlap: (256-64)/32 + 1 = 7 segments.
        assert_eq!(psd.segments, 7);
    }
}
