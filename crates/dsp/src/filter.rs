//! FIR filtering and windowed-sinc low-pass design.
//!
//! The ZigBee receiver front-end is a 2 MHz channel: when it digitizes a
//! 20 MHz-wide WiFi emulation waveform it only keeps the overlapping band.
//! We model that with a windowed-sinc low-pass followed by decimation (see
//! [`crate::resample`]). The filters here are deliberately plain — linear
//! phase, Hamming window — because the paper's effects come from *bandwidth*,
//! not filter family.

use crate::buffer::{SampleBuf, Stage};
use crate::complex::Complex;
use crate::simd;

/// A finite-impulse-response filter with real taps.
///
/// # Examples
///
/// ```
/// use ctc_dsp::filter::Fir;
/// use ctc_dsp::Complex;
///
/// // A 2-tap moving average.
/// let fir = Fir::new(vec![0.5, 0.5]).unwrap();
/// let y = fir.filter(&[Complex::ONE, Complex::ONE, Complex::ONE]);
/// assert!((y[1] - Complex::ONE).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fir {
    taps: Vec<f64>,
    /// `taps` reversed, cached so the full-window interior of
    /// [`Fir::filter_into`] is a contiguous forward dot product the SIMD
    /// kernel can stream.
    taps_rev: Vec<f64>,
}

/// Error returned when constructing a filter from an empty tap list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyTapsError;

impl std::fmt::Display for EmptyTapsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FIR filter requires at least one tap")
    }
}

impl std::error::Error for EmptyTapsError {}

impl Fir {
    /// Builds a filter from explicit taps.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyTapsError`] if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Result<Self, EmptyTapsError> {
        if taps.is_empty() {
            Err(EmptyTapsError)
        } else {
            Ok(Fir::from_taps(taps))
        }
    }

    fn from_taps(taps: Vec<f64>) -> Self {
        let taps_rev: Vec<f64> = taps.iter().rev().copied().collect();
        Fir { taps, taps_rev }
    }

    /// Designs a linear-phase low-pass via the windowed-sinc method.
    ///
    /// `cutoff` is the -6 dB edge as a fraction of the sample rate
    /// (`0 < cutoff < 0.5`); `num_taps` is forced odd so the filter has an
    /// integer group delay of `(num_taps-1)/2` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is outside `(0, 0.5)` or `num_taps == 0`.
    pub fn low_pass(cutoff: f64, num_taps: usize) -> Self {
        assert!(
            cutoff > 0.0 && cutoff < 0.5,
            "cutoff must be in (0, 0.5), got {cutoff}"
        );
        assert!(num_taps > 0, "num_taps must be positive");
        let n = if num_taps.is_multiple_of(2) {
            num_taps + 1
        } else {
            num_taps
        };
        let mid = (n - 1) as f64 / 2.0;
        let mut taps = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 - mid;
            let sinc = if t == 0.0 {
                2.0 * cutoff
            } else {
                (2.0 * std::f64::consts::PI * cutoff * t).sin() / (std::f64::consts::PI * t)
            };
            // Hamming window.
            let w = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64).cos();
            taps.push(sinc * w);
        }
        // Normalize to unity DC gain.
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Fir::from_taps(taps)
    }

    /// Filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples for the linear-phase designs produced by
    /// [`Fir::low_pass`].
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Convolves the input with the taps, returning a same-length output with
    /// the group delay removed (zero-padded edges).
    ///
    /// This keeps waveform timing aligned so block boundaries (WiFi symbols,
    /// ZigBee chips) stay where the transmit chain put them.
    pub fn filter(&self, x: &[Complex]) -> Vec<Complex> {
        let mut out = SampleBuf::detached(x.len());
        self.filter_into(x, &mut out);
        out.into_vec()
    }

    /// [`Fir::filter`] writing into a caller-supplied buffer.
    ///
    /// Computes only the `x.len()` delay-compensated output samples directly
    /// (no full-convolution temporary), so the hot path performs zero
    /// allocations when `out` has capacity.
    pub fn filter_into(&self, x: &[Complex], out: &mut SampleBuf) {
        out.clear();
        if x.is_empty() {
            return;
        }
        let delay = self.group_delay();
        let t = self.taps.len();
        out.reserve(x.len());
        // Full-window interior: outputs `lo..hi` see every tap with the
        // window entirely inside `x`, so y[k] is a contiguous dot product
        // of the reversed taps against x[k-lo..k-lo+t] — one SIMD kernel
        // dispatch covers all of them. Edges keep the scalar zero-padded
        // form.
        let lo = (t - 1 - delay).min(x.len());
        let hi = x.len().saturating_sub(delay).max(lo);
        for k in 0..lo {
            out.push(self.edge_output(x, k + delay, t));
        }
        out.resize(hi, Complex::ZERO);
        simd::fir_interior(&self.taps_rev, x, &mut out[lo..hi]);
        for k in hi..x.len() {
            out.push(self.edge_output(x, k + delay, t));
        }
    }

    /// One delay-compensated output at the zero-padded edges:
    /// `y[k] = sum_j taps[j] * x[i - j]` over the in-range taps,
    /// with `i = k + delay`.
    fn edge_output(&self, x: &[Complex], i: usize, t: usize) -> Complex {
        let j_lo = (i + 1).saturating_sub(x.len());
        let j_hi = i.min(t - 1);
        let mut acc = Complex::ZERO;
        for j in j_lo..=j_hi {
            acc += x[i - j] * self.taps[j];
        }
        acc
    }

    /// Full convolution (length `x.len() + taps.len() - 1`).
    pub fn convolve(&self, x: &[Complex]) -> Vec<Complex> {
        if x.is_empty() {
            return Vec::new();
        }
        let n = x.len() + self.taps.len() - 1;
        let mut out = vec![Complex::ZERO; n];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &tj) in self.taps.iter().enumerate() {
                out[i + j] += xi * tj;
            }
        }
        out
    }

    /// Magnitude response at a normalized frequency `f` (cycles/sample).
    pub fn magnitude_at(&self, f: f64) -> f64 {
        let mut acc = Complex::ZERO;
        for (i, &t) in self.taps.iter().enumerate() {
            acc += Complex::cis(-2.0 * std::f64::consts::PI * f * i as f64) * t;
        }
        acc.norm()
    }
}

/// Multiplies a waveform by `e^{j 2 pi f_offset t}`, shifting its spectrum by
/// `f_offset` (expressed as a fraction of the sample rate).
///
/// Used for: placing the 2 MHz ZigBee band inside the 20 MHz WiFi baseband
/// (and back), and for modelling carrier frequency offset in real channels.
///
/// # Examples
///
/// ```
/// use ctc_dsp::{filter::frequency_shift, Complex};
/// let x = vec![Complex::ONE; 4];
/// let y = frequency_shift(&x, 0.25); // quarter of the sample rate
/// assert!((y[1] - Complex::I).norm() < 1e-12);
/// ```
pub fn frequency_shift(x: &[Complex], f_offset: f64) -> Vec<Complex> {
    let mut out = x.to_vec();
    frequency_shift_in_place(&mut out, f_offset);
    out
}

/// [`frequency_shift`] mutating the waveform in place.
///
/// Uses an incrementally rotated phasor (one complex multiply per sample)
/// with a periodic exact resync, instead of a `sin`/`cos` pair per sample.
pub fn frequency_shift_in_place(x: &mut [Complex], f_offset: f64) {
    simd::rotate_in_place(x, 2.0 * std::f64::consts::PI * f_offset);
}

/// Applies a constant phase rotation `e^{j theta}` to every sample.
pub fn phase_rotate(x: &[Complex], theta: f64) -> Vec<Complex> {
    let mut out = x.to_vec();
    phase_rotate_in_place(&mut out, theta);
    out
}

/// [`phase_rotate`] mutating the waveform in place.
pub fn phase_rotate_in_place(x: &mut [Complex], theta: f64) {
    simd::phase_rotate_in_place(x, Complex::cis(theta));
}

/// [`Fir`] as a [`Stage`]: `process` is delay-compensated filtering into the
/// output buffer; the in-place path routes through a pooled scratch swap
/// (the convolution cannot safely overwrite its own history).
impl Stage for Fir {
    fn process(&mut self, input: &[Complex], out: &mut SampleBuf) {
        self.filter_into(input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_taps_rejected() {
        assert!(Fir::new(vec![]).is_err());
        assert!(Fir::new(vec![1.0]).is_ok());
    }

    #[test]
    fn low_pass_unity_dc_gain() {
        let f = Fir::low_pass(0.1, 63);
        let s: f64 = f.taps().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((f.magnitude_at(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_pass_attenuates_stopband() {
        let f = Fir::low_pass(0.1, 63);
        assert!(f.magnitude_at(0.05) > 0.9, "passband should be ~1");
        assert!(f.magnitude_at(0.25) < 0.01, "stopband should be attenuated");
        assert!(f.magnitude_at(0.4) < 0.01);
    }

    #[test]
    fn even_tap_request_becomes_odd() {
        let f = Fir::low_pass(0.2, 10);
        assert_eq!(f.taps().len() % 2, 1);
    }

    #[test]
    fn filter_preserves_length_and_alignment() {
        let f = Fir::low_pass(0.2, 31);
        // A DC signal should pass through with unit gain once edges settle.
        let x = vec![Complex::new(2.0, -1.0); 128];
        let y = f.filter(&x);
        assert_eq!(y.len(), x.len());
        // Center samples unaffected.
        assert!((y[64] - x[64]).norm() < 1e-6);
    }

    #[test]
    fn convolve_length() {
        let f = Fir::new(vec![1.0, 0.5]).unwrap();
        let y = f.convolve(&[Complex::ONE; 3]);
        assert_eq!(y.len(), 4);
        assert!((y[0] - Complex::ONE).norm() < 1e-12);
        assert!((y[3] - Complex::new(0.5, 0.0)).norm() < 1e-12);
        assert!(f.convolve(&[]).is_empty());
    }

    #[test]
    fn shift_then_unshift_is_identity() {
        let x: Vec<Complex> = (0..50)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let y = frequency_shift(&frequency_shift(&x, 0.13), -0.13);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn shift_moves_tone_bin() {
        use crate::fft::fft;
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * 3.0 * t as f64 / n as f64))
            .collect();
        let y = frequency_shift(&x, 5.0 / n as f64);
        let spec = fft(&y).unwrap();
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .unwrap()
            .0;
        assert_eq!(peak, 8);
    }

    #[test]
    fn filter_into_matches_convolve_path() {
        let f = Fir::low_pass(0.2, 31);
        let x: Vec<Complex> = (0..100)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let direct = f.filter(&x);
        let expected: Vec<Complex> = f
            .convolve(&x)
            .into_iter()
            .skip(f.group_delay())
            .take(x.len())
            .collect();
        assert_eq!(direct.len(), expected.len());
        for (a, b) in direct.iter().zip(&expected) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn incremental_shift_matches_per_sample_cis() {
        let n = 5000; // spans several phasor resync periods
        let x = vec![Complex::ONE; n];
        let y = frequency_shift(&x, 0.01937);
        for (i, v) in y.iter().enumerate() {
            let exact = Complex::cis(2.0 * std::f64::consts::PI * 0.01937 * i as f64);
            assert!((*v - exact).norm() < 1e-11, "sample {i} drifted");
        }
    }

    #[test]
    fn phase_rotate_rotates() {
        let x = vec![Complex::ONE];
        let y = phase_rotate(&x, std::f64::consts::FRAC_PI_2);
        assert!((y[0] - Complex::I).norm() < 1e-12);
    }

    proptest! {
        #[test]
        fn filter_is_linear(scale in 0.1f64..10.0, seed in 0u64..1000) {
            let mut s = seed;
            let mut rnd = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let x: Vec<Complex> = (0..40).map(|_| Complex::new(rnd(), rnd())).collect();
            let f = Fir::low_pass(0.2, 15);
            let y1: Vec<Complex> = f.filter(&x).iter().map(|v| *v * scale).collect();
            let xs: Vec<Complex> = x.iter().map(|v| *v * scale).collect();
            let y2 = f.filter(&xs);
            for (a, b) in y1.iter().zip(&y2) {
                prop_assert!((*a - *b).norm() < 1e-9 * scale.max(1.0));
            }
        }

        #[test]
        fn group_delay_consistent(taps in 3usize..41) {
            let f = Fir::low_pass(0.1, taps);
            prop_assert_eq!(f.group_delay(), (f.taps().len() - 1) / 2);
        }
    }
}
