//! Radix-2 decimation-in-time FFT/IFFT.
//!
//! The attack and the WiFi OFDM chain both revolve around the 64-point
//! transform (IEEE 802.11g uses 64 subcarriers), but the implementation is
//! generic over any power-of-two length so tests can cross-check against a
//! naive DFT at several sizes.
//!
//! Conventions match the paper's eq. (1): the *inverse* transform synthesizes
//! the time-domain waveform from frequency components with a `1/N` factor,
//! and the forward transform recovers the components, so
//! `fft(ifft(x)) == x` and Parseval's theorem holds as
//! `sum |x(n)|^2 == (1/N) sum |X(k)|^2`.

use crate::buffer::SampleBuf;
use crate::complex::Complex;
use crate::simd;

/// Error produced when a transform is requested for an unsupported length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftLenError {
    len: usize,
}

impl std::fmt::Display for FftLenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fft length must be a nonzero power of two, got {}",
            self.len
        )
    }
}

impl std::error::Error for FftLenError {}

fn check_len(len: usize) -> Result<(), FftLenError> {
    if len == 0 || !len.is_power_of_two() {
        Err(FftLenError { len })
    } else {
        Ok(())
    }
}

/// In-place iterative radix-2 butterfly; `sign` is -1 for forward, +1 for
/// inverse (no scaling applied here).
fn transform_in_place(buf: &mut [Complex], sign: f64) {
    let n = buf.len();
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        simd::fft_stage(buf, len, wlen);
        len <<= 1;
    }
}

/// Forward FFT: `X(k) = sum_n x(n) e^{-j 2 pi k n / N}`.
///
/// # Errors
///
/// Returns [`FftLenError`] unless `x.len()` is a nonzero power of two.
///
/// # Examples
///
/// ```
/// use ctc_dsp::{fft, Complex};
/// let x = vec![Complex::ONE; 4];
/// let spec = fft::fft(&x)?;
/// assert!((spec[0] - Complex::new(4.0, 0.0)).norm() < 1e-12);
/// assert!(spec[1].norm() < 1e-12);
/// # Ok::<(), ctc_dsp::fft::FftLenError>(())
/// ```
pub fn fft(x: &[Complex]) -> Result<Vec<Complex>, FftLenError> {
    let mut buf = x.to_vec();
    fft_in_place(&mut buf)?;
    Ok(buf)
}

/// Forward FFT transforming the buffer in place (no allocation).
///
/// # Errors
///
/// Returns [`FftLenError`] unless `buf.len()` is a nonzero power of two.
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), FftLenError> {
    check_len(buf.len())?;
    transform_in_place(buf, -1.0);
    Ok(())
}

/// Forward FFT writing into a caller-supplied buffer (cleared first).
///
/// # Errors
///
/// Returns [`FftLenError`] unless `x.len()` is a nonzero power of two.
pub fn fft_into(x: &[Complex], out: &mut SampleBuf) -> Result<(), FftLenError> {
    check_len(x.len())?;
    out.clear();
    out.extend_from_slice(x);
    transform_in_place(out, -1.0);
    Ok(())
}

/// Inverse FFT: `x(n) = (1/N) sum_k X(k) e^{+j 2 pi k n / N}`.
///
/// # Errors
///
/// Returns [`FftLenError`] unless `spectrum.len()` is a nonzero power of two.
pub fn ifft(spectrum: &[Complex]) -> Result<Vec<Complex>, FftLenError> {
    let mut buf = spectrum.to_vec();
    ifft_in_place(&mut buf)?;
    Ok(buf)
}

/// Inverse FFT transforming the buffer in place (no allocation).
///
/// # Errors
///
/// Returns [`FftLenError`] unless `buf.len()` is a nonzero power of two.
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), FftLenError> {
    check_len(buf.len())?;
    transform_in_place(buf, 1.0);
    let n = buf.len() as f64;
    for v in buf.iter_mut() {
        *v /= n;
    }
    Ok(())
}

/// Inverse FFT writing into a caller-supplied buffer (cleared first).
///
/// # Errors
///
/// Returns [`FftLenError`] unless `spectrum.len()` is a nonzero power of two.
pub fn ifft_into(spectrum: &[Complex], out: &mut SampleBuf) -> Result<(), FftLenError> {
    check_len(spectrum.len())?;
    out.clear();
    out.extend_from_slice(spectrum);
    ifft_in_place(out).expect("length already checked");
    Ok(())
}

/// Forward FFT of exactly 64 samples, the size used throughout the paper.
///
/// # Panics
///
/// Panics if `x.len() != 64`; the fixed size is part of the 802.11g contract.
pub fn fft64(x: &[Complex]) -> Vec<Complex> {
    assert_eq!(x.len(), 64, "fft64 requires exactly 64 samples");
    fft(x).expect("64 is a power of two")
}

/// Inverse FFT of exactly 64 frequency components.
///
/// # Panics
///
/// Panics if `spectrum.len() != 64`.
pub fn ifft64(spectrum: &[Complex]) -> Vec<Complex> {
    assert_eq!(spectrum.len(), 64, "ifft64 requires exactly 64 components");
    ifft(spectrum).expect("64 is a power of two")
}

/// Naive `O(N^2)` DFT used as a cross-check oracle in tests and benches.
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|t| {
                    x[t] * Complex::cis(-2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64)
                })
                .sum()
        })
        .collect()
}

/// Energy of a time-domain block (`sum |x|^2`).
pub fn energy(x: &[Complex]) -> f64 {
    simd::sum_norm_sqr(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close_vec(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (*x - *y).norm() < tol)
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(fft(&[]).is_err());
        assert!(fft(&[Complex::ONE; 3]).is_err());
        assert!(ifft(&[Complex::ONE; 6]).is_err());
        assert!(fft(&[Complex::ONE; 64]).is_ok());
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let spec = fft(&x).unwrap();
        for v in spec {
            assert!((v - Complex::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * (k0 * t) as f64 / n as f64))
            .collect();
        let spec = fft(&x).unwrap();
        for (k, v) in spec.iter().enumerate() {
            if k == k0 {
                assert!((v.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.norm() < 1e-9, "leakage at bin {k}: {}", v.norm());
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let fast = fft(&x).unwrap();
        let slow = dft_naive(&x);
        assert!(close_vec(&fast, &slow, 1e-9));
    }

    #[test]
    fn fft64_panics_on_wrong_len() {
        let r = std::panic::catch_unwind(|| fft64(&[Complex::ZERO; 32]));
        assert!(r.is_err());
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let b: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).cos(), 0.3))
            .collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fs = fft(&sum).unwrap();
        let fsum: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(close_vec(&fs, &fsum, 1e-9));
    }

    proptest! {
        #[test]
        fn roundtrip_fft_ifft(values in proptest::collection::vec(-100.0f64..100.0, 64)) {
            let x: Vec<Complex> = values.chunks(2)
                .map(|c| Complex::new(c[0], c.get(1).copied().unwrap_or(0.0)))
                .collect();
            // x has 32 entries; pad to 32 (power of two) — already is.
            let spec = fft(&x).unwrap();
            let back = ifft(&spec).unwrap();
            prop_assert!(close_vec(&x, &back, 1e-9));
        }

        #[test]
        fn parseval_holds(values in proptest::collection::vec(-10.0f64..10.0, 128)) {
            let x: Vec<Complex> = values.chunks(2).map(|c| Complex::new(c[0], c[1])).collect();
            let spec = fft(&x).unwrap();
            let et = energy(&x);
            let ef = energy(&spec) / x.len() as f64;
            prop_assert!((et - ef).abs() < 1e-6 * (1.0 + et));
        }

        #[test]
        fn random_matches_naive(values in proptest::collection::vec(-5.0f64..5.0, 32)) {
            let x: Vec<Complex> = values.chunks(2).map(|c| Complex::new(c[0], c[1])).collect();
            let fast = fft(&x).unwrap();
            let slow = dft_naive(&x);
            prop_assert!(close_vec(&fast, &slow, 1e-8));
        }
    }
}
