//! Integer-factor interpolation and decimation.
//!
//! The attacker records the ZigBee waveform at 4 MHz and must re-express it
//! at the WiFi sample rate of 20 MHz — "we interpolate the ZigBee waveform
//! with parameter 5, creating 80 points in each WiFi symbol duration"
//! (Sec. V-B1). The ZigBee receiver then consumes the 20 MHz emulated
//! waveform through a 2 MHz front-end, i.e. low-pass + decimate by 5.

use crate::buffer::{SampleBuf, Stage};
use crate::complex::Complex;
use crate::filter::Fir;

/// Error for zero resampling factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroFactorError;

impl std::fmt::Display for ZeroFactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "resampling factor must be nonzero")
    }
}

impl std::error::Error for ZeroFactorError {}

/// Upsamples by an integer `factor` using zero-stuffing followed by an
/// anti-imaging low-pass (windowed sinc, gain `factor`).
///
/// The output has `x.len() * factor` samples and preserves the signal's
/// shape: `interpolate(x, 1) == x`.
///
/// # Errors
///
/// Returns [`ZeroFactorError`] when `factor == 0`.
///
/// # Examples
///
/// ```
/// use ctc_dsp::{resample::interpolate, Complex};
/// let x = vec![Complex::ONE; 16];
/// let y = interpolate(&x, 5)?;
/// assert_eq!(y.len(), 80);
/// # Ok::<(), ctc_dsp::resample::ZeroFactorError>(())
/// ```
pub fn interpolate(x: &[Complex], factor: usize) -> Result<Vec<Complex>, ZeroFactorError> {
    let mut out = SampleBuf::detached(x.len() * factor.max(1));
    Interpolator::new(factor)?.interpolate_into(x, &mut out);
    Ok(out.into_vec())
}

/// An integer-factor interpolator with the anti-imaging filter designed once
/// and scratch storage reused across calls.
///
/// [`interpolate`] redesigns the windowed-sinc taps on every invocation;
/// per-block pipelines should construct an `Interpolator` and call
/// [`interpolate_into`](Interpolator::interpolate_into) instead.
#[derive(Debug, Clone)]
pub struct Interpolator {
    factor: usize,
    lp: Option<Fir>,
    stuffed: Vec<Complex>,
}

impl Interpolator {
    /// Designs the anti-imaging filter for the given factor.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroFactorError`] when `factor == 0`.
    pub fn new(factor: usize) -> Result<Self, ZeroFactorError> {
        if factor == 0 {
            return Err(ZeroFactorError);
        }
        let lp = (factor > 1).then(|| {
            let taps = (16 * factor + 1).max(65);
            Fir::low_pass(0.5 / factor as f64, taps)
        });
        Ok(Interpolator {
            factor,
            lp,
            stuffed: Vec::new(),
        })
    }

    /// Upsampling factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Upsamples `x` into `out` (cleared first); output length is
    /// `x.len() * factor`.
    pub fn interpolate_into(&mut self, x: &[Complex], out: &mut SampleBuf) {
        out.clear();
        if x.is_empty() {
            return;
        }
        let Some(lp) = &self.lp else {
            out.extend_from_slice(x);
            return;
        };
        // Zero-stuff into reusable scratch.
        self.stuffed.clear();
        self.stuffed.resize(x.len() * self.factor, Complex::ZERO);
        for (i, &v) in x.iter().enumerate() {
            self.stuffed[i * self.factor] = v;
        }
        // Anti-imaging filter: cutoff at 1/(2*factor) of the new rate,
        // gain `factor` to compensate zero-stuffing.
        lp.filter_into(&self.stuffed, out);
        let gain = self.factor as f64;
        for v in out.iter_mut() {
            *v *= gain;
        }
    }
}

impl Stage for Interpolator {
    fn process(&mut self, input: &[Complex], out: &mut SampleBuf) {
        self.interpolate_into(input, out);
    }
}

/// Downsamples by an integer `factor` with an anti-alias low-pass first.
///
/// Models a narrowband receiver front-end digesting a wideband signal: only
/// the band `|f| < fs/(2*factor)` survives. Output length is
/// `ceil(x.len() / factor)`.
///
/// # Errors
///
/// Returns [`ZeroFactorError`] when `factor == 0`.
pub fn decimate(x: &[Complex], factor: usize) -> Result<Vec<Complex>, ZeroFactorError> {
    let mut out = SampleBuf::detached(x.len() / factor.max(1) + 1);
    Decimator::new(factor)?.decimate_into(x, &mut out);
    Ok(out.into_vec())
}

/// An integer-factor decimator with the anti-alias filter designed once and
/// scratch storage reused across calls (the streaming analogue of
/// [`decimate`]).
#[derive(Debug, Clone)]
pub struct Decimator {
    factor: usize,
    lp: Option<Fir>,
    filtered: SampleBuf,
}

impl Decimator {
    /// Designs the anti-alias filter for the given factor.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroFactorError`] when `factor == 0`.
    pub fn new(factor: usize) -> Result<Self, ZeroFactorError> {
        if factor == 0 {
            return Err(ZeroFactorError);
        }
        let lp = (factor > 1).then(|| {
            let taps = (8 * factor + 1).max(33);
            Fir::low_pass(0.5 / factor as f64, taps)
        });
        Ok(Decimator {
            factor,
            lp,
            filtered: SampleBuf::detached(0),
        })
    }

    /// Downsampling factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Downsamples `x` into `out` (cleared first); output length is
    /// `ceil(x.len() / factor)`.
    pub fn decimate_into(&mut self, x: &[Complex], out: &mut SampleBuf) {
        out.clear();
        if x.is_empty() {
            return;
        }
        let Some(lp) = &self.lp else {
            out.extend_from_slice(x);
            return;
        };
        lp.filter_into(x, &mut self.filtered);
        out.reserve(self.filtered.len() / self.factor + 1);
        out.extend(self.filtered.iter().step_by(self.factor).copied());
    }
}

impl Stage for Decimator {
    fn process(&mut self, input: &[Complex], out: &mut SampleBuf) {
        self.decimate_into(input, out);
    }
}

/// Downsamples without filtering (pure sample dropping).
///
/// Useful when the input is already band-limited — e.g. picking chip-center
/// samples out of an oversampled chip waveform.
pub fn downsample(x: &[Complex], factor: usize) -> Result<Vec<Complex>, ZeroFactorError> {
    if factor == 0 {
        return Err(ZeroFactorError);
    }
    Ok(x.iter().step_by(factor).copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_factor_rejected() {
        assert!(interpolate(&[Complex::ONE], 0).is_err());
        assert!(decimate(&[Complex::ONE], 0).is_err());
        assert!(downsample(&[Complex::ONE], 0).is_err());
    }

    #[test]
    fn factor_one_is_identity() {
        let x = vec![Complex::new(1.0, 2.0), Complex::new(-0.5, 0.25)];
        assert_eq!(interpolate(&x, 1).unwrap(), x);
        assert_eq!(decimate(&x, 1).unwrap(), x);
    }

    #[test]
    fn interpolate_length() {
        let x = vec![Complex::ONE; 64];
        assert_eq!(interpolate(&x, 5).unwrap().len(), 320);
    }

    #[test]
    fn decimate_length() {
        let x = vec![Complex::ONE; 320];
        assert_eq!(decimate(&x, 5).unwrap().len(), 64);
    }

    #[test]
    fn dc_preserved_through_interpolation() {
        let x = vec![Complex::new(1.0, -0.5); 64];
        let y = interpolate(&x, 5).unwrap();
        // Away from edges the DC level must be preserved (gain compensated).
        // Hamming-window designs have ~0.2% passband ripple; that is far
        // below the distortions the attack itself introduces.
        for v in &y[80..240] {
            assert!((*v - x[0]).norm() < 5e-3, "got {v}");
        }
    }

    #[test]
    fn tone_preserved_through_round_trip() {
        // A tone at 1/16 cycles/sample survives x5 up + x5 down.
        let n = 256;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * t as f64 / 16.0))
            .collect();
        let up = interpolate(&x, 5).unwrap();
        let down = decimate(&up, 5).unwrap();
        // Compare mid-section (edges have filter transients).
        let mut err = 0.0;
        let mut count = 0;
        for i in 64..192 {
            err += (down[i] - x[i]).norm_sqr();
            count += 1;
        }
        let rmse = (err / count as f64).sqrt();
        assert!(rmse < 0.02, "round-trip rmse too high: {rmse}");
    }

    #[test]
    fn decimate_kills_out_of_band_tone() {
        // Tone at 0.3 cycles/sample is outside the 0.1 cutoff for factor 5.
        let n = 500;
        let x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * 0.3 * t as f64))
            .collect();
        let y = decimate(&x, 5).unwrap();
        let power: f64 = y[20..80].iter().map(|v| v.norm_sqr()).sum::<f64>() / 60.0;
        assert!(power < 1e-3, "out-of-band tone leaked: {power}");
    }

    #[test]
    fn downsample_picks_every_kth() {
        let x: Vec<Complex> = (0..10).map(|i| Complex::from_re(i as f64)).collect();
        let y = downsample(&x, 3).unwrap();
        assert_eq!(
            y,
            vec![
                Complex::from_re(0.0),
                Complex::from_re(3.0),
                Complex::from_re(6.0),
                Complex::from_re(9.0)
            ]
        );
    }

    proptest! {
        #[test]
        fn interpolation_length_always_scales(len in 1usize..100, factor in 1usize..8) {
            let x = vec![Complex::ONE; len];
            let y = interpolate(&x, factor).unwrap();
            prop_assert_eq!(y.len(), len * factor);
        }

        #[test]
        fn empty_inputs_stay_empty(factor in 1usize..8) {
            prop_assert!(interpolate(&[], factor).unwrap().is_empty());
            prop_assert!(decimate(&[], factor).unwrap().is_empty());
        }
    }
}
