//! Fractional-delay interpolation (cubic Lagrange / Farrow structure).
//!
//! Real receivers never sample exactly at the transmitter's instants; the
//! ZigBee receiver's timing recovery needs to evaluate the waveform between
//! its own samples. A 4-tap cubic Lagrange interpolator (the classic Farrow
//! implementation) is accurate to well below the channel noise floor for
//! signals oversampled 2x, like the 2 samples/chip O-QPSK waveform.

use crate::buffer::SampleBuf;
use crate::complex::Complex;

/// Evaluates the cubic-Lagrange interpolant of `x` at position
/// `index + mu` where `0 <= mu < 1`, using the taps
/// `x[index-1], x[index], x[index+1], x[index+2]` (edges clamp).
///
/// # Panics
///
/// Panics when `x` is empty or `mu` is outside `[0, 1)`.
pub fn sample_at(x: &[Complex], index: usize, mu: f64) -> Complex {
    assert!(!x.is_empty(), "cannot interpolate an empty waveform");
    assert!((0.0..1.0).contains(&mu), "mu must be in [0, 1), got {mu}");
    let get = |i: isize| -> Complex {
        let clamped = i.clamp(0, x.len() as isize - 1) as usize;
        x[clamped]
    };
    let i = index as isize;
    let xm1 = get(i - 1);
    let x0 = get(i);
    let x1 = get(i + 1);
    let x2 = get(i + 2);
    // Farrow coefficients for cubic Lagrange.
    let c0 = x0;
    let c1 = (x1 - xm1) * 0.5;
    let c2 = xm1 - x0 * 2.5 + x1 * 2.0 - x2 * 0.5;
    let c3 = (x2 - xm1) * 0.5 + (x0 - x1) * 1.5;
    ((c3 * mu + c2) * mu + c1) * mu + c0
}

/// Delays a waveform by a fractional number of samples
/// (`delay = d_int + mu`): output sample `n` equals the input evaluated at
/// `n - delay` (zero before the signal starts).
///
/// # Panics
///
/// Panics when `delay < 0`.
pub fn fractional_delay(x: &[Complex], delay: f64) -> Vec<Complex> {
    let mut out = SampleBuf::detached(x.len());
    fractional_delay_into(x, delay, &mut out);
    out.into_vec()
}

/// [`fractional_delay`] writing into a caller-supplied buffer (cleared
/// first).
///
/// # Panics
///
/// Panics when `delay < 0`.
pub fn fractional_delay_into(x: &[Complex], delay: f64, out: &mut SampleBuf) {
    assert!(delay >= 0.0, "delay must be nonnegative, got {delay}");
    out.clear();
    if x.is_empty() {
        return;
    }
    let d_int = delay.floor() as usize;
    let mu = delay - delay.floor();
    out.reserve(x.len());
    out.extend((0..x.len()).map(|n| {
        if n < d_int {
            return Complex::ZERO;
        }
        let base = n - d_int;
        if mu == 0.0 {
            x[base]
        } else if base == 0 {
            // Evaluating before the first sample: the signal is zero
            // there, so ramp in linearly from the zero padding.
            x[0] * (1.0 - mu)
        } else {
            // x evaluated at (base - mu) = interpolate between base-1
            // and base with fraction (1 - mu).
            sample_at(x, base - 1, 1.0 - mu)
        }
    }));
}

/// Advances (left-shifts) a waveform by a fractional number of samples:
/// output sample `n` equals the input at `n + advance` (clamped tail).
///
/// # Panics
///
/// Panics when `advance < 0`.
pub fn fractional_advance(x: &[Complex], advance: f64) -> Vec<Complex> {
    let mut out = SampleBuf::detached(x.len());
    fractional_advance_into(x, advance, &mut out);
    out.into_vec()
}

/// [`fractional_advance`] writing into a caller-supplied buffer (cleared
/// first).
///
/// # Panics
///
/// Panics when `advance < 0`.
pub fn fractional_advance_into(x: &[Complex], advance: f64, out: &mut SampleBuf) {
    assert!(advance >= 0.0, "advance must be nonnegative, got {advance}");
    out.clear();
    if x.is_empty() {
        return;
    }
    let a_int = advance.floor() as usize;
    let mu = advance - advance.floor();
    out.reserve(x.len());
    out.extend((0..x.len()).map(|n| {
        let base = n + a_int;
        if base >= x.len() {
            Complex::ZERO
        } else if mu == 0.0 {
            x[base]
        } else {
            sample_at(x, base, mu)
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, n: usize) -> Vec<Complex> {
        (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * f * t as f64))
            .collect()
    }

    #[test]
    fn zero_mu_is_identity() {
        let x = tone(0.05, 32);
        for i in 0..32 {
            assert_eq!(sample_at(&x, i, 0.0), x[i]);
        }
        assert_eq!(fractional_delay(&x, 0.0), x);
        assert_eq!(fractional_advance(&x, 0.0), x);
    }

    #[test]
    fn interpolates_smooth_tone_accurately() {
        // A tone at 0.1 cycles/sample (5x oversampled): cubic interpolation
        // error should be tiny.
        let x = tone(0.1, 64);
        for i in 4..60 {
            for &mu in &[0.25, 0.5, 0.75] {
                let est = sample_at(&x, i, mu);
                let truth = Complex::cis(2.0 * std::f64::consts::PI * 0.1 * (i as f64 + mu));
                // Cubic Lagrange at 10x... 2x-oversampled tones: error
                // O((2 pi f)^4 / 4!) ~ 5e-3 at f = 0.1.
                assert!(
                    (est - truth).norm() < 8e-3,
                    "i={i} mu={mu}: err {}",
                    (est - truth).norm()
                );
            }
        }
    }

    #[test]
    fn delay_then_advance_restores() {
        let x = tone(0.08, 128);
        let delayed = fractional_delay(&x, 2.3);
        let restored = fractional_advance(&delayed, 2.3);
        for i in 8..120 {
            assert!(
                (restored[i] - x[i]).norm() < 1e-2,
                "sample {i}: err {}",
                (restored[i] - x[i]).norm()
            );
        }
    }

    #[test]
    fn integer_delay_shifts_exactly() {
        let x = tone(0.07, 32);
        let d = fractional_delay(&x, 3.0);
        assert_eq!(d[0], Complex::ZERO);
        assert_eq!(d[2], Complex::ZERO);
        for i in 3..32 {
            assert_eq!(d[i], x[i - 3]);
        }
    }

    #[test]
    fn half_sample_delay_of_tone() {
        let x = tone(0.05, 64);
        let d = fractional_delay(&x, 0.5);
        for (i, &di) in d.iter().enumerate().take(60).skip(4) {
            let truth = Complex::cis(2.0 * std::f64::consts::PI * 0.05 * (i as f64 - 0.5));
            assert!((di - truth).norm() < 8e-3, "i={i}: {}", (di - truth).norm());
        }
    }

    #[test]
    #[should_panic(expected = "mu must be")]
    fn bad_mu_panics() {
        let _ = sample_at(&[Complex::ONE; 4], 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_delay_panics() {
        let _ = fractional_delay(&[Complex::ONE; 4], -0.5);
    }

    #[test]
    fn empty_inputs() {
        assert!(fractional_delay(&[], 1.5).is_empty());
        assert!(fractional_advance(&[], 1.5).is_empty());
    }
}
