//! Second-order moments and fourth-order cumulants of complex samples.
//!
//! These are the higher-order statistics the defense runs on the
//! reconstructed QPSK constellation (paper Sec. VI-B, eqs. (5)–(9)).
//! Sample estimators follow Swami & Sadler, "Hierarchical digital modulation
//! classification using cumulants" (the paper's ref. \[23\]):
//!
//! ```text
//! C20 = E[x^2]            C21 = E[|x|^2]
//! C40 = E[x^4]        - 3 C20^2
//! C41 = E[x^3 x*]     - 3 C20 C21
//! C42 = E[|x|^4]      - |C20|^2 - 2 C21^2
//! ```
//!
//! Normalized variants divide the fourth-order terms by `C21^2`, making the
//! features scale-invariant — essential because "the constellations are not
//! necessarily normalized after decoding at the ZigBee receiver in practice".

use crate::complex::Complex;
use crate::simd;

/// The full set of estimated moments and cumulants for one sample block.
///
/// # Examples
///
/// ```
/// use ctc_dsp::{cumulants::Cumulants, Complex};
/// // A clean axis-aligned QPSK constellation {1, i, -1, -i} has
/// // C40/C21^2 = 1 and C42/C21^2 = -1 (paper Table III).
/// let pts = [
///     Complex::new(1.0, 0.0), Complex::new(0.0, 1.0),
///     Complex::new(-1.0, 0.0), Complex::new(0.0, -1.0),
/// ];
/// let c = Cumulants::estimate(&pts).unwrap();
/// assert!((c.c40_normalized().re - 1.0).abs() < 1e-12);
/// assert!((c.c42_normalized() + 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cumulants {
    c20: Complex,
    c21: f64,
    c40: Complex,
    c41: Complex,
    c42: f64,
    len: usize,
}

/// Error returned when estimating statistics from an empty sample block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptySamplesError;

impl std::fmt::Display for EmptySamplesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cumulant estimation requires at least one sample")
    }
}

impl std::error::Error for EmptySamplesError {}

impl Cumulants {
    /// Estimates all moments/cumulants from a block of complex samples
    /// (paper eqs. (8)–(9)).
    ///
    /// # Errors
    ///
    /// Returns [`EmptySamplesError`] if `samples` is empty.
    pub fn estimate(samples: &[Complex]) -> Result<Self, EmptySamplesError> {
        if samples.is_empty() {
            return Err(EmptySamplesError);
        }
        let d = samples.len() as f64;
        let simd::CumulantSums {
            s2,
            sa2,
            s4,
            s31,
            sa4,
        } = simd::cumulant_sums(samples);
        let c20 = s2 / d;
        let c21 = sa2 / d;
        let c40 = s4 / d - 3.0 * (c20 * c20);
        let c41 = s31 / d - 3.0 * (c20 * c21);
        let c42 = sa4 / d - c20.norm_sqr() - 2.0 * c21 * c21;
        Ok(Cumulants {
            c20,
            c21,
            c40,
            c41,
            c42,
            len: samples.len(),
        })
    }

    /// Estimates cumulants for a whole batch of bursts in one call — the
    /// form the batch classifier uses so per-call dispatch and setup
    /// amortize across frames. Each burst is estimated independently;
    /// empty bursts yield [`EmptySamplesError`] in their slot.
    pub fn estimate_batch(bursts: &[&[Complex]]) -> Vec<Result<Self, EmptySamplesError>> {
        bursts.iter().map(|b| Self::estimate(b)).collect()
    }

    /// Second-order moment `C20 = E[x^2]`.
    pub fn c20(&self) -> Complex {
        self.c20
    }

    /// Signal power `C21 = E[|x|^2]`.
    pub fn c21(&self) -> f64 {
        self.c21
    }

    /// Raw fourth-order cumulant `C40`.
    pub fn c40(&self) -> Complex {
        self.c40
    }

    /// Raw fourth-order cumulant `C41`.
    pub fn c41(&self) -> Complex {
        self.c41
    }

    /// Raw fourth-order cumulant `C42` (always real).
    pub fn c42(&self) -> f64 {
        self.c42
    }

    /// Number of samples the estimate was computed from.
    pub fn sample_count(&self) -> usize {
        self.len
    }

    /// Scale-invariant `C40 / C21^2`.
    pub fn c40_normalized(&self) -> Complex {
        self.c40 / (self.c21 * self.c21)
    }

    /// Scale-invariant `C41 / C21^2`.
    pub fn c41_normalized(&self) -> Complex {
        self.c41 / (self.c21 * self.c21)
    }

    /// Scale-invariant `C42 / C21^2`.
    pub fn c42_normalized(&self) -> f64 {
        self.c42 / (self.c21 * self.c21)
    }
}

/// Theoretical cumulant values for common constellations at unit power
/// (`C21 = 1`) — the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Modulation {
    /// Binary phase-shift keying.
    Bpsk,
    /// Quadrature phase-shift keying (the reconstructed ZigBee constellation).
    Qpsk,
    /// Phase-shift keying with more than four points.
    PskAbove4,
    /// 4-level pulse amplitude modulation.
    Pam4,
    /// 8-level pulse amplitude modulation.
    Pam8,
    /// 16-level pulse amplitude modulation.
    Pam16,
    /// 16-point quadrature amplitude modulation.
    Qam16,
    /// 64-point quadrature amplitude modulation (the WiFi constellation).
    Qam64,
    /// 256-point quadrature amplitude modulation.
    Qam256,
}

impl Modulation {
    /// Theoretical `C20` for `C21 = 1` (Table III, first column).
    pub fn theoretical_c20(self) -> f64 {
        match self {
            Modulation::Bpsk | Modulation::Pam4 | Modulation::Pam8 | Modulation::Pam16 => 1.0,
            _ => 0.0,
        }
    }

    /// Theoretical `C40` for `C21 = 1` (Table III, second column).
    pub fn theoretical_c40(self) -> f64 {
        match self {
            Modulation::Bpsk => -2.0,
            Modulation::Qpsk => 1.0,
            Modulation::PskAbove4 => 0.0,
            Modulation::Pam4 => -1.36,
            Modulation::Pam8 => -1.2381,
            Modulation::Pam16 => -1.2094,
            Modulation::Qam16 => -0.68,
            Modulation::Qam64 => -0.6190,
            Modulation::Qam256 => -0.6047,
        }
    }

    /// Theoretical `C42` for `C21 = 1` (Table III, third column).
    pub fn theoretical_c42(self) -> f64 {
        match self {
            Modulation::Bpsk => -2.0,
            Modulation::Qpsk | Modulation::PskAbove4 => -1.0,
            Modulation::Pam4 => -1.36,
            Modulation::Pam8 => -1.2381,
            Modulation::Pam16 => -1.2094,
            Modulation::Qam16 => -0.68,
            Modulation::Qam64 => -0.6190,
            Modulation::Qam256 => -0.6047,
        }
    }

    /// All table rows, in the paper's order.
    pub fn all() -> [Modulation; 9] {
        [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::PskAbove4,
            Modulation::Pam4,
            Modulation::Pam8,
            Modulation::Pam16,
            Modulation::Qam16,
            Modulation::Qam64,
            Modulation::Qam256,
        ]
    }

    /// Unit-power constellation points for sampling-based verification.
    ///
    /// `PskAbove4` is represented by 8-PSK. The QPSK points are the
    /// axis-aligned set `{1, i, -1, -i}` — the orientation Table III's
    /// `C40 = +1` corresponds to (the pi/4-rotated square `{±1±i}/sqrt(2)`
    /// has `C40 = e^{j pi} = -1`; `|C40|` and `C42` are identical for both).
    pub fn constellation(self) -> Vec<Complex> {
        fn pam(levels: i32) -> Vec<Complex> {
            let pts: Vec<f64> = (0..levels).map(|i| (2 * i - levels + 1) as f64).collect();
            let p = pts.iter().map(|v| v * v).sum::<f64>() / levels as f64;
            pts.iter()
                .map(|&v| Complex::from_re(v / p.sqrt()))
                .collect()
        }
        fn qam(side: i32) -> Vec<Complex> {
            let mut pts = Vec::new();
            for i in 0..side {
                for q in 0..side {
                    pts.push(Complex::new(
                        (2 * i - side + 1) as f64,
                        (2 * q - side + 1) as f64,
                    ));
                }
            }
            let p = pts.iter().map(|v| v.norm_sqr()).sum::<f64>() / pts.len() as f64;
            pts.iter().map(|&v| v / p.sqrt()).collect()
        }
        fn psk(m: usize) -> Vec<Complex> {
            (0..m)
                .map(|k| Complex::cis(2.0 * std::f64::consts::PI * k as f64 / m as f64))
                .collect()
        }
        match self {
            Modulation::Bpsk => vec![Complex::from_re(1.0), Complex::from_re(-1.0)],
            Modulation::Qpsk => psk(4),
            Modulation::PskAbove4 => psk(8),
            Modulation::Pam4 => pam(4),
            Modulation::Pam8 => pam(8),
            Modulation::Pam16 => pam(16),
            Modulation::Qam16 => qam(4),
            Modulation::Qam64 => qam(8),
            Modulation::Qam256 => qam(16),
        }
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::PskAbove4 => "PSK(>4)",
            Modulation::Pam4 => "4-PAM",
            Modulation::Pam8 => "8-PAM",
            Modulation::Pam16 => "16-PAM",
            Modulation::Qam16 => "16-QAM",
            Modulation::Qam64 => "64-QAM",
            Modulation::Qam256 => "256-QAM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Estimate cumulants over the exact constellation points (each equally
    /// likely), which equals the expectation over the symbol distribution.
    fn exact(m: Modulation) -> Cumulants {
        Cumulants::estimate(&m.constellation()).unwrap()
    }

    #[test]
    fn empty_rejected() {
        assert!(Cumulants::estimate(&[]).is_err());
    }

    #[test]
    fn estimate_batch_matches_single() {
        let a = Modulation::Qpsk.constellation();
        let b = Modulation::Qam16.constellation();
        let batch = Cumulants::estimate_batch(&[&a, &[], &b]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].unwrap(), Cumulants::estimate(&a).unwrap());
        assert!(batch[1].is_err());
        assert_eq!(batch[2].unwrap(), Cumulants::estimate(&b).unwrap());
    }

    #[test]
    fn qpsk_matches_theory() {
        let c = exact(Modulation::Qpsk);
        assert!((c.c21() - 1.0).abs() < 1e-12);
        assert!(c.c20().norm() < 1e-12);
        assert!((c.c40_normalized().re - 1.0).abs() < 1e-9);
        assert!((c.c42_normalized() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_modulations_match_table_iii() {
        for m in Modulation::all() {
            let c = exact(m);
            assert!(
                (c.c21() - 1.0).abs() < 1e-9,
                "{m}: constellation not unit power"
            );
            assert!(
                (c.c20().norm() - m.theoretical_c20().abs()).abs() < 1e-6,
                "{m}: |C20| {} vs theory {}",
                c.c20().norm(),
                m.theoretical_c20()
            );
            // C40 of QPSK with pi/4 rotation is real; BPSK/PAM real; QAM real.
            assert!(
                (c.c40_normalized().re - m.theoretical_c40()).abs() < 5e-3,
                "{m}: C40 {} vs theory {}",
                c.c40_normalized().re,
                m.theoretical_c40()
            );
            assert!(
                (c.c42_normalized() - m.theoretical_c42()).abs() < 5e-3,
                "{m}: C42 {} vs theory {}",
                c.c42_normalized(),
                m.theoretical_c42()
            );
        }
    }

    #[test]
    fn qpsk_c40_rotation_behaviour() {
        // Rotating QPSK by theta scales C40 by e^{j4theta}; |C40| and C42 are
        // rotation invariant — the basis of the |C40| detector variant used
        // in the real-channel scenario (Sec. VI-C).
        let base = Modulation::Qpsk.constellation();
        for k in 0..8 {
            let theta = k as f64 * 0.2;
            let rotated: Vec<Complex> = base.iter().map(|&p| p * Complex::cis(theta)).collect();
            let c = Cumulants::estimate(&rotated).unwrap();
            assert!(
                (c.c40_normalized().norm() - 1.0).abs() < 1e-9,
                "|C40| should be rotation invariant"
            );
            assert!(
                (c.c42_normalized() + 1.0).abs() < 1e-9,
                "C42 should be rotation invariant"
            );
            // arg(C40) = 4*theta (mod 2pi) since the unrotated C40 is +1.
            let got = c.c40_normalized().arg();
            let diff = ((got - 4.0 * theta) % (2.0 * std::f64::consts::PI)
                + 3.0 * std::f64::consts::PI)
                % (2.0 * std::f64::consts::PI)
                - std::f64::consts::PI;
            assert!(
                diff.abs() < 1e-6,
                "C40 phase should track 4*theta, got {got} at theta {theta}"
            );
        }
    }

    #[test]
    fn gaussian_noise_has_zero_fourth_cumulant() {
        // Fourth-order cumulants of a Gaussian vanish; estimate over many
        // Box-Muller samples should be near zero.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
        let mut gauss = || {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let samples: Vec<Complex> = (0..200_000)
            .map(|_| Complex::new(gauss(), gauss()))
            .collect();
        let c = Cumulants::estimate(&samples).unwrap();
        assert!(c.c40_normalized().norm() < 0.05, "{:?}", c.c40_normalized());
        assert!(c.c42_normalized().abs() < 0.05, "{}", c.c42_normalized());
    }

    #[test]
    fn constellations_have_right_sizes() {
        assert_eq!(Modulation::Bpsk.constellation().len(), 2);
        assert_eq!(Modulation::Qpsk.constellation().len(), 4);
        assert_eq!(Modulation::Qam16.constellation().len(), 16);
        assert_eq!(Modulation::Qam64.constellation().len(), 64);
        assert_eq!(Modulation::Qam256.constellation().len(), 256);
        assert_eq!(Modulation::Pam16.constellation().len(), 16);
    }

    #[test]
    fn display_names() {
        assert_eq!(Modulation::Qam64.to_string(), "64-QAM");
        assert_eq!(Modulation::PskAbove4.to_string(), "PSK(>4)");
    }

    proptest! {
        #[test]
        fn scale_invariance_of_normalized_cumulants(scale in 0.01f64..100.0) {
            let pts: Vec<Complex> = Modulation::Qam16.constellation()
                .iter().map(|&p| p * scale).collect();
            let c = Cumulants::estimate(&pts).unwrap();
            prop_assert!((c.c40_normalized().re - (-0.68)).abs() < 1e-6);
            prop_assert!((c.c42_normalized() - (-0.68)).abs() < 1e-6);
        }

        #[test]
        fn c42_always_real_nonpositive_for_symmetric_sets(seed in 0u64..500) {
            // For any point set closed under negation, C42 <= 0 is not
            // guaranteed in general, but C21 > 0 and estimates finite are.
            let mut s = seed.wrapping_add(1);
            let mut rnd = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let mut pts = Vec::new();
            for _ in 0..64 {
                let p = Complex::new(rnd() + 0.01, rnd());
                pts.push(p);
                pts.push(-p);
            }
            let c = Cumulants::estimate(&pts).unwrap();
            prop_assert!(c.c21() > 0.0);
            prop_assert!(c.c40().is_finite());
            prop_assert!(c.c42().is_finite());
        }
    }
}
