//! Property tests bounding every lane kernel in [`ctc_dsp::simd`] against
//! its order-preserving sequential model in [`ctc_dsp::simd::reference`].
//!
//! The lane kernels reassociate: they split a length-`n` sum across
//! [`ctc_dsp::simd::LANES`] partial accumulators and fold the partials at
//! the end. IEEE addition is not associative, so the result may differ from
//! the left-to-right reference — but only by rounding, which is bounded by
//! an ULP-scaled band of `c · n · ε · ‖terms‖₁` (the classic reassociation
//! bound: each of the ~`n` additions contributes at most one rounding of a
//! partial sum, and every partial is bounded by the magnitude sum of the
//! terms). Kernels that perform *identical* per-element arithmetic in
//! identical order (phasor application, norm computation, butterfly
//! recurrence, the gated power scan with a power-of-two EWMA) must be
//! **bit-identical** to the reference and are asserted exactly.
//!
//! Lengths are drawn randomly and the fixed probes include the edge shapes
//! lane code gets wrong first: empty input, a single sample, and tails
//! shorter than one lane block.
//!
//! This suite runs on both CI legs — with the `simd` feature (AVX2+FMA
//! dispatch) and with `--no-default-features` (plain scalar compilation of
//! the same lane bodies) — so it pins the dispatcher *and* the fallback to
//! the same contract.

use ctc_dsp::simd::{self, reference, GateScanState, LANES};
use ctc_dsp::Complex;
use proptest::prelude::*;

/// Deterministic test waveform with entries in `[-1, 1)`.
fn wave(n: usize, seed: u64) -> Vec<Complex> {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut rnd = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    (0..n).map(|_| Complex::new(rnd(), rnd())).collect()
}

fn reals(n: usize, seed: u64) -> Vec<f64> {
    wave(n, seed).into_iter().map(|v| v.re).collect()
}

/// Lengths every property sweeps in addition to its random draw: empty,
/// one sample, a sub-lane tail, one exact lane block, a block plus a tail.
const EDGE_LENS: [usize; 6] = [0, 1, 3, LANES, LANES + 5, 4 * LANES + 7];

/// Reassociation band: `|got - want| ≤ c·n·ε·scale` where `scale` is the
/// magnitude sum of the summed terms. `c = 4` leaves headroom for the
/// fold of the lane partials and the final complex magnitude.
fn assert_close(label: &str, n: usize, scale: f64, want: f64, got: f64) {
    let tol = 4.0 * (n as f64 + 1.0) * f64::EPSILON * scale.max(f64::MIN_POSITIVE);
    assert!(
        (want - got).abs() <= tol,
        "{label}: n={n} want {want:.17e} got {got:.17e} (|Δ| {:.3e} > tol {:.3e})",
        (want - got).abs(),
        tol
    );
}

fn assert_close_c(label: &str, n: usize, scale: f64, want: Complex, got: Complex) {
    assert_close(&format!("{label}.re"), n, scale, want.re, got.re);
    assert_close(&format!("{label}.im"), n, scale, want.im, got.im);
}

fn check_dots(n: usize, seed: u64, omega: f64) {
    let a = wave(n, seed);
    let b = wave(n, seed ^ 0x5555);
    let scale: f64 = a.iter().zip(&b).map(|(x, y)| x.norm() * y.norm()).sum();

    assert_close_c(
        "cdot",
        n,
        scale,
        reference::cdot(&a, &b),
        simd::cdot(&a, &b),
    );
    assert_close_c(
        "cdot_conj",
        n,
        scale,
        reference::cdot_conj(&a, &b),
        simd::cdot_conj(&a, &b),
    );
    // The rotated form also carries the lane-phasor recurrence, which
    // drifts O(RESYNC·ε) from the exact per-index `cis` before re-seeding;
    // fold that into the scale via an extra length factor.
    assert_close_c(
        "cdot_conj_rotated",
        n + 1024,
        scale,
        reference::cdot_conj_rotated(&a, &b, omega),
        simd::cdot_conj_rotated(&a, &b, omega),
    );

    let t = reals(n, seed ^ 0xAAAA);
    let scale_t: f64 = t.iter().zip(&a).map(|(t, x)| t.abs() * x.norm()).sum();
    assert_close_c(
        "dot_real",
        n,
        scale_t,
        reference::dot_real(&t, &a),
        simd::dot_real(&t, &a),
    );

    let u = reals(n, seed ^ 0x3333);
    let scale_u: f64 = t.iter().zip(&u).map(|(x, y)| (x * y).abs()).sum();
    assert_close(
        "dot_f64",
        n,
        scale_u,
        reference::dot_f64(&t, &u),
        simd::dot_f64(&t, &u),
    );

    let scale_e: f64 = a.iter().map(|v| v.norm_sqr()).sum();
    assert_close(
        "sum_norm_sqr",
        n,
        scale_e,
        reference::sum_norm_sqr(&a),
        simd::sum_norm_sqr(&a),
    );
}

proptest! {
    #[test]
    fn dot_kernels_stay_in_reassociation_band(
        n in 0usize..400,
        seed in 0u64..1000,
        omega in -3.0f64..3.0,
    ) {
        check_dots(n, seed, omega);
        for len in EDGE_LENS {
            check_dots(len, seed, omega);
        }
    }

    #[test]
    fn fir_interior_matches_reference_per_output(
        taps in 1usize..48,
        extra in 0usize..80,
        seed in 0u64..1000,
    ) {
        let t = reals(taps, seed ^ 0xF1F1);
        let x = wave(taps + extra, seed);
        let outs = x.len() + 1 - t.len();
        let mut got = vec![Complex::ZERO; outs];
        let mut want = got.clone();
        simd::fir_interior(&t, &x, &mut got);
        reference::fir_interior(&t, &x, &mut want);
        let scale: f64 = t.iter().map(|v| v.abs()).sum::<f64>() * 2.0f64.sqrt();
        for (j, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_close_c(&format!("fir_interior[{j}]"), taps, scale, *w, *g);
        }
    }

    #[test]
    fn norm_sqr_into_is_bit_identical(n in 0usize..300, seed in 0u64..1000) {
        for len in EDGE_LENS.into_iter().chain([n]) {
            let x = wave(len, seed);
            let mut got = Vec::new();
            let mut want = Vec::new();
            simd::norm_sqr_into(&x, &mut got);
            reference::norm_sqr_into(&x, &mut want);
            // |x|² is one multiply-add per element in both forms: exact.
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn phase_rotate_is_bit_identical(n in 0usize..300, seed in 0u64..1000, th in -3.2f64..3.2) {
        let r = Complex::cis(th);
        for len in EDGE_LENS.into_iter().chain([n]) {
            let mut got = wave(len, seed);
            let mut want = got.clone();
            simd::phase_rotate_in_place(&mut got, r);
            reference::phase_rotate_in_place(&mut want, r);
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn rotate_stays_near_exact_phasors(n in 0usize..3000, seed in 0u64..1000, omega in -3.0f64..3.0) {
        let mut got = wave(n, seed);
        let mut want = got.clone();
        simd::rotate_in_place(&mut got, omega);
        reference::rotate_in_place(&mut want, omega);
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            // The lane phasor advances by a recurrence and re-seeds from
            // exact `cis` every RESYNC samples, so the drift is bounded by
            // O(RESYNC·ε) ≈ 1e-12 on a unit-magnitude value — the same
            // band the in-module `rotate_in_place` test holds the
            // dispatcher to.
            prop_assert!(
                (*w - *g).norm() <= 1e-12 * w.norm().max(1.0),
                "sample {i}: want {w:?} got {g:?}"
            );
        }
    }

    #[test]
    fn dtft_norms_stay_in_reassociation_band(
        n in 0usize..400,
        nfreq in 1usize..24,
        seed in 0u64..1000,
    ) {
        for len in EDGE_LENS.into_iter().chain([n]) {
            let z = wave(len, seed);
            let nus: Vec<f64> = (0..nfreq).map(|k| -0.4 + 0.037 * k as f64).collect();
            let mut got = vec![0.0; nfreq];
            let mut want = got.clone();
            simd::dtft_norms(&z, &nus, &mut got);
            reference::dtft_norms(&z, &nus, &mut want);
            let scale: f64 = z.iter().map(|v| v.norm()).sum();
            for (k, (w, g)) in want.iter().zip(&got).enumerate() {
                // Block-Horner vs direct sum: both are ~len operations on
                // terms bounded by ‖z‖₁; the shared phasor powers add a
                // few ULPs more, covered by the band's headroom factor.
                assert_close(&format!("dtft[{k}]"), len + 64, scale, *w, *g);
            }
        }
    }

    #[test]
    fn fft_stage_is_bit_identical(pow in 1u32..9, seed in 0u64..1000) {
        let n = 1usize << pow;
        let mut len = 2;
        while len <= n {
            let wlen = Complex::cis(-2.0 * std::f64::consts::PI / len as f64);
            let mut got = wave(n, seed ^ len as u64);
            let mut want = got.clone();
            simd::fft_stage(&mut got, len, wlen);
            reference::fft_stage(&mut want, len, wlen);
            // Identical butterfly arithmetic and twiddle recurrence: exact.
            prop_assert_eq!(&got, &want, "n={} len={}", n, len);
            len <<= 1;
        }
    }

    #[test]
    fn cumulant_sums_stay_in_reassociation_band(n in 0usize..400, seed in 0u64..1000) {
        for len in EDGE_LENS.into_iter().chain([n]) {
            let x = wave(len, seed);
            let got = simd::cumulant_sums(&x);
            let want = reference::cumulant_sums(&x);
            let s2: f64 = x.iter().map(|v| v.norm_sqr()).sum();
            let s4: f64 = x.iter().map(|v| v.norm_sqr() * v.norm_sqr()).sum();
            assert_close_c("s2", len, s2, want.s2, got.s2);
            assert_close("sa2", len, s2, want.sa2, got.sa2);
            assert_close_c("s4", len, s4, want.s4, got.s4);
            assert_close_c("s31", len, s4, want.s31, got.s31);
            assert_close("sa4", len, s4, want.sa4, got.sa4);
        }
    }

    #[test]
    fn gated_power_scan_is_bit_identical(
        n in 0usize..2000,
        window_pow in 1u32..8,
        non_pow2 in 0u32..2,
        seed in 0u64..1000,
    ) {
        // Cover both the exact-reciprocal (power-of-two window) fast path
        // and the divide fallback for odd windows.
        let window = if non_pow2 == 1 {
            (1usize << window_pow) + 1
        } else {
            1usize << window_pow
        };
        for len in EDGE_LENS.into_iter().chain([n]) {
            let x = wave(len, seed);
            let inv_w = if window.is_power_of_two() {
                1.0 / window as f64
            } else {
                0.0
            };
            let mut st_got = GateScanState {
                slot: 0,
                acc: 0.0,
                floor: 1e-3,
                gate: 4e-3,
                threshold: 4.0,
                alpha: 1.0 / 64.0,
                floor_eps: 1e-12,
                inv_w,
            };
            let mut st_want = st_got;
            let mut ring_got = vec![0.0; window];
            let mut ring_want = ring_got.clone();
            let mut act_got = vec![0u8; len];
            let mut act_want = vec![0u8; len];
            simd::gated_power_scan(&x, &mut ring_got, &mut st_got, &mut act_got);
            reference::gated_power_scan(&x, &mut ring_want, &mut st_want, &mut act_want);
            // alpha is a power of two, so the kernel's fused `mul_add`
            // EWMA rounds exactly like the textbook two-step form: the
            // whole scan must agree bit for bit.
            prop_assert_eq!(&act_got, &act_want, "flags len={} w={}", len, window);
            prop_assert_eq!(st_got, st_want, "state len={} w={}", len, window);
            prop_assert_eq!(&ring_got, &ring_want, "ring len={} w={}", len, window);
        }
    }
}
