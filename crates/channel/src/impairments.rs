//! Deterministic front-end impairments: carrier frequency offset and static
//! phase offset.
//!
//! In the paper's "real scenario" the received constellation shows "an
//! obvious phase offset compared to that in AWGN environment" (Fig. 6), and
//! `C40` is scaled by `e^{j(Δf + θ)}` — which is why the defense switches to
//! `|C40|` there (Sec. VI-C).

use ctc_dsp::Complex;

/// Applies a carrier frequency offset of `cfo_hz` to a waveform sampled at
/// `sample_rate_hz`, plus an initial phase `phase_rad`:
/// `y[n] = x[n] * e^{j(2 pi cfo n / fs + phase)}`.
///
/// # Panics
///
/// Panics if `sample_rate_hz <= 0`.
///
/// # Examples
///
/// ```
/// use ctc_channel::impairments::apply_cfo;
/// use ctc_dsp::Complex;
/// let x = vec![Complex::ONE; 4];
/// // fs/4 offset turns DC into a +90°/sample spiral.
/// let y = apply_cfo(&x, 1.0e6, 4.0e6, 0.0);
/// assert!((y[1] - Complex::I).norm() < 1e-12);
/// ```
pub fn apply_cfo(x: &[Complex], cfo_hz: f64, sample_rate_hz: f64, phase_rad: f64) -> Vec<Complex> {
    let mut out = x.to_vec();
    apply_cfo_in_place(&mut out, cfo_hz, sample_rate_hz, phase_rad);
    out
}

/// [`apply_cfo`] mutating the waveform in place — the impairment is
/// length-preserving, so streaming pipelines need no second buffer.
///
/// # Panics
///
/// Panics if `sample_rate_hz <= 0`.
pub fn apply_cfo_in_place(x: &mut [Complex], cfo_hz: f64, sample_rate_hz: f64, phase_rad: f64) {
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");
    let w = 2.0 * std::f64::consts::PI * cfo_hz / sample_rate_hz;
    for (n, v) in x.iter_mut().enumerate() {
        *v *= Complex::cis(w * n as f64 + phase_rad);
    }
}

/// Applies only a static phase rotation.
pub fn apply_phase(x: &[Complex], phase_rad: f64) -> Vec<Complex> {
    let mut out = x.to_vec();
    apply_phase_in_place(&mut out, phase_rad);
    out
}

/// [`apply_phase`] mutating the waveform in place.
pub fn apply_phase_in_place(x: &mut [Complex], phase_rad: f64) {
    let r = Complex::cis(phase_rad);
    for v in x.iter_mut() {
        *v *= r;
    }
}

/// Applies a flat complex gain (amplitude scale + phase), e.g. one fading
/// realization held constant over a packet (block fading).
pub fn apply_flat_gain(x: &[Complex], gain: Complex) -> Vec<Complex> {
    let mut out = x.to_vec();
    apply_flat_gain_in_place(&mut out, gain);
    out
}

/// [`apply_flat_gain`] mutating the waveform in place.
pub fn apply_flat_gain_in_place(x: &mut [Complex], gain: Complex) {
    for v in x.iter_mut() {
        *v *= gain;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cfo_zero_phase_is_identity() {
        let x = vec![Complex::new(1.0, -2.0), Complex::new(0.5, 0.5)];
        let y = apply_cfo(&x, 0.0, 4e6, 0.0);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm() < 1e-15);
        }
    }

    #[test]
    fn cfo_preserves_magnitude() {
        let x: Vec<Complex> = (0..100)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let y = apply_cfo(&x, 37_500.0, 4e6, 0.3);
        for (a, b) in x.iter().zip(&y) {
            assert!((a.norm() - b.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn cfo_accumulates_linearly() {
        let x = vec![Complex::ONE; 8];
        let f = 0.1e6;
        let fs = 4e6;
        let y = apply_cfo(&x, f, fs, 0.0);
        let w = 2.0 * std::f64::consts::PI * f / fs;
        for (n, v) in y.iter().enumerate() {
            assert!(
                (v.arg()
                    - (w * n as f64 + std::f64::consts::PI).rem_euclid(2.0 * std::f64::consts::PI)
                    + std::f64::consts::PI)
                    .abs()
                    < 1e-9
                    || (v.arg().rem_euclid(2.0 * std::f64::consts::PI)
                        - (w * n as f64).rem_euclid(2.0 * std::f64::consts::PI))
                    .abs()
                        < 1e-9
            );
        }
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn bad_sample_rate_panics() {
        let _ = apply_cfo(&[Complex::ONE], 100.0, 0.0, 0.0);
    }

    #[test]
    fn phase_only() {
        let y = apply_phase(&[Complex::ONE], std::f64::consts::PI);
        assert!((y[0] + Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn flat_gain() {
        let g = Complex::from_polar(0.5, 1.0);
        let y = apply_flat_gain(&[Complex::ONE, Complex::I], g);
        assert!((y[0] - g).norm() < 1e-15);
        assert!((y[1] - g * Complex::I).norm() < 1e-15);
    }
}
