//! Large-scale propagation: log-distance path loss and RSSI.
//!
//! Substitutes for the paper's over-the-air 1–8 m link (USRP N210 →
//! USRP/CC26x2R1). The paper reports attack feasibility as a function of
//! distance (Fig. 14) and RSSI at the commodity receiver; here distance maps
//! deterministically to received power / SNR through the standard
//! log-distance model
//!
//! ```text
//! PL(d) = PL(d0) + 10 n log10(d / d0)     [dB],  d0 = 1 m
//! ```
//!
//! with free-space reference loss at 2.4 GHz (`PL(1m) ≈ 40.05 dB`) and an
//! indoor exponent `n ≈ 2.6` by default.

/// Log-distance path-loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLoss {
    /// Reference loss at 1 m, dB.
    pub reference_db: f64,
    /// Path-loss exponent.
    pub exponent: f64,
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss::indoor_2_4ghz()
    }
}

impl PathLoss {
    /// Free-space reference at 2.4 GHz with an indoor LoS exponent of 2.6
    /// (typical office/lab value covering the paper's "human activities such
    /// as walking").
    pub fn indoor_2_4ghz() -> Self {
        PathLoss {
            reference_db: 40.05,
            exponent: 2.6,
        }
    }

    /// Free-space propagation (`n = 2`).
    pub fn free_space_2_4ghz() -> Self {
        PathLoss {
            reference_db: 40.05,
            exponent: 2.0,
        }
    }

    /// Path loss in dB at `distance_m` metres.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m <= 0`.
    pub fn loss_db(&self, distance_m: f64) -> f64 {
        assert!(distance_m > 0.0, "distance must be positive");
        self.reference_db + 10.0 * self.exponent * distance_m.log10()
    }

    /// Received power in dBm for a given transmit power.
    pub fn received_dbm(&self, tx_power_dbm: f64, distance_m: f64) -> f64 {
        tx_power_dbm - self.loss_db(distance_m)
    }

    /// Received SNR in dB given transmit power and a receiver noise floor.
    ///
    /// The 802.15.4 thermal noise floor over 2 MHz is about −111 dBm; real
    /// receivers add a noise figure, so −100 dBm is a practical default.
    pub fn snr_db(&self, tx_power_dbm: f64, noise_floor_dbm: f64, distance_m: f64) -> f64 {
        self.received_dbm(tx_power_dbm, distance_m) - noise_floor_dbm
    }
}

/// Receiver-reported RSSI (dBm): received power quantized to the 1 dB steps
/// commodity radios report, saturating at the chip's sensitivity range.
///
/// Mirrors the CC2652R datasheet behaviour (the paper's ref. \[29\]): readings
/// clamp to `[-100, 10]` dBm.
pub fn rssi_dbm(pathloss: &PathLoss, tx_power_dbm: f64, distance_m: f64) -> i32 {
    let rx = pathloss.received_dbm(tx_power_dbm, distance_m);
    (rx.round() as i32).clamp(-100, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_monotone_in_distance() {
        let pl = PathLoss::indoor_2_4ghz();
        let mut prev = f64::NEG_INFINITY;
        for d in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let l = pl.loss_db(d);
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn reference_at_1m() {
        let pl = PathLoss::indoor_2_4ghz();
        assert!((pl.loss_db(1.0) - 40.05).abs() < 1e-12);
    }

    #[test]
    fn free_space_slope_is_6db_per_octave() {
        let pl = PathLoss::free_space_2_4ghz();
        let slope = pl.loss_db(2.0) - pl.loss_db(1.0);
        assert!((slope - 6.02).abs() < 0.01);
    }

    #[test]
    fn snr_decreases_with_distance() {
        let pl = PathLoss::default();
        let s1 = pl.snr_db(0.0, -100.0, 1.0);
        let s8 = pl.snr_db(0.0, -100.0, 8.0);
        assert!(s1 > s8);
        // At 1 m with 0 dBm TX: SNR ≈ 100 − 40 = 60 dB — plenty.
        assert!(s1 > 50.0);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn zero_distance_panics() {
        let _ = PathLoss::default().loss_db(0.0);
    }

    #[test]
    fn rssi_clamps() {
        let pl = PathLoss::free_space_2_4ghz();
        assert_eq!(rssi_dbm(&pl, 100.0, 1.0), 10);
        assert_eq!(rssi_dbm(&pl, -100.0, 8.0), -100);
        let mid = rssi_dbm(&pl, 0.0, 2.0);
        assert!((-100..=10).contains(&mid));
    }

    #[test]
    fn rssi_monotone() {
        let pl = PathLoss::indoor_2_4ghz();
        let mut prev = i32::MAX;
        for d in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            let r = rssi_dbm(&pl, 0.0, d);
            assert!(r <= prev);
            prev = r;
        }
    }
}
