//! Additive white Gaussian noise.
//!
//! The paper's simulations normalize transmit power and define
//! `SNR = 1 / sigma^2` (Sec. VII-B), i.e. `sigma^2` is the *total* complex
//! noise variance. [`awgn`] follows that convention exactly: for a
//! unit-power waveform and `snr_db`, the added complex noise has
//! `E[|n|^2] = 10^(-snr_db/10)`.

use ctc_dsp::Complex;
use rand::Rng;

/// Draws one standard Gaussian via Box–Muller.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = ctc_channel::noise::standard_gaussian(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a circularly-symmetric complex Gaussian with total variance
/// `variance` (`E[|n|^2] = variance`, split evenly between I and Q).
pub fn complex_gaussian<R: Rng>(rng: &mut R, variance: f64) -> Complex {
    let s = (variance / 2.0).sqrt();
    Complex::new(s * standard_gaussian(rng), s * standard_gaussian(rng))
}

/// Adds AWGN at the given SNR (dB) assuming the input waveform has unit mean
/// power; the paper's `SNR = 1/sigma^2` convention.
///
/// For non-unit-power inputs use [`awgn_measured`], which measures the
/// input's power first.
pub fn awgn<R: Rng>(x: &[Complex], snr_db: f64, rng: &mut R) -> Vec<Complex> {
    let mut out = x.to_vec();
    awgn_in_place(&mut out, snr_db, rng);
    out
}

/// [`awgn`] mutating the waveform in place (unit-mean-power convention).
pub fn awgn_in_place<R: Rng>(x: &mut [Complex], snr_db: f64, rng: &mut R) {
    let sigma2 = 10f64.powf(-snr_db / 10.0);
    for v in x.iter_mut() {
        *v += complex_gaussian(rng, sigma2);
    }
}

/// Adds AWGN at the given SNR relative to the *measured* mean power of `x`.
///
/// Returns `x` unchanged when it has zero power (nothing to scale noise to).
pub fn awgn_measured<R: Rng>(x: &[Complex], snr_db: f64, rng: &mut R) -> Vec<Complex> {
    let mut out = x.to_vec();
    awgn_measured_in_place(&mut out, snr_db, rng);
    out
}

/// [`awgn_measured`] mutating the waveform in place; zero-power input is
/// left untouched.
pub fn awgn_measured_in_place<R: Rng>(x: &mut [Complex], snr_db: f64, rng: &mut R) {
    let p = ctc_dsp::metrics::mean_power(x);
    if p <= 0.0 {
        return;
    }
    let sigma2 = p * 10f64.powf(-snr_db / 10.0);
    for v in x.iter_mut() {
        *v += complex_gaussian(rng, sigma2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_dsp::metrics::mean_power;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn complex_gaussian_variance() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000;
        let var = 0.25;
        let p = (0..n)
            .map(|_| complex_gaussian(&mut rng, var).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - var).abs() < 0.01, "power {p}");
    }

    #[test]
    fn awgn_snr_convention_matches_paper() {
        // Unit-power signal + AWGN at 10 dB -> noise power 0.1.
        let mut rng = StdRng::seed_from_u64(13);
        let x = vec![Complex::ONE; 50_000];
        let y = awgn(&x, 10.0, &mut rng);
        let noise_power = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (*b - *a).norm_sqr())
            .sum::<f64>()
            / x.len() as f64;
        assert!(
            (noise_power - 0.1).abs() < 0.01,
            "noise power {noise_power}"
        );
    }

    #[test]
    fn awgn_measured_adapts_to_signal_power() {
        let mut rng = StdRng::seed_from_u64(14);
        let x = vec![Complex::new(3.0, 0.0); 50_000]; // power 9
        let y = awgn_measured(&x, 0.0, &mut rng); // SNR 0 dB -> noise power 9
        let noise_power = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (*b - *a).norm_sqr())
            .sum::<f64>()
            / x.len() as f64;
        assert!((noise_power - 9.0).abs() < 0.5, "noise power {noise_power}");
        // Zero-power input passes through.
        let z = awgn_measured(&[Complex::ZERO; 4], 0.0, &mut rng);
        assert!(z.iter().all(|v| *v == Complex::ZERO));
    }

    #[test]
    fn high_snr_barely_perturbs() {
        let mut rng = StdRng::seed_from_u64(15);
        let x = vec![Complex::ONE; 1000];
        let y = awgn(&x, 60.0, &mut rng);
        let p = mean_power(&x.iter().zip(&y).map(|(a, b)| *b - *a).collect::<Vec<_>>());
        assert!(p < 2e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = vec![Complex::ONE; 16];
        let a = awgn(&x, 5.0, &mut StdRng::seed_from_u64(7));
        let b = awgn(&x, 5.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
