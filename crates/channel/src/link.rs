//! End-to-end link model: the composition of every impairment a transmitted
//! waveform suffers before the receiver sees it.
//!
//! Two presets mirror the paper's two evaluation settings:
//!
//! - [`Link::awgn`] — the "ideal scenario": unit-power signal + AWGN at a
//!   given SNR, nothing else (Sec. VI-B, simulations of Sec. VII-C).
//! - [`Link::real_indoor`] — the "real scenario": log-distance path loss sets
//!   the SNR, block Rician fading, random carrier-frequency and phase offset
//!   per packet (Sec. VI-C, experiments of Sec. VII-D).

use crate::fading::rician_gain;
use crate::impairments::{apply_cfo, apply_flat_gain};
use crate::noise::awgn;
use crate::pathloss::PathLoss;
use ctc_dsp::metrics::normalize_power;
use ctc_dsp::Complex;
use rand::Rng;

/// A configured point-to-point channel.
///
/// Build with [`Link::awgn`] or [`Link::real_indoor`], refine with the
/// `with_*` methods, then call [`Link::transmit`] once per packet.
///
/// # Examples
///
/// ```
/// use ctc_channel::Link;
/// use ctc_dsp::Complex;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let link = Link::awgn(17.0);
/// let tx = vec![Complex::ONE; 64];
/// let rx = link.transmit(&tx, &mut rng);
/// assert_eq!(rx.len(), 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    snr_db: f64,
    fading_k: Option<f64>,
    max_cfo_hz: f64,
    random_phase: bool,
    sample_rate_hz: f64,
    normalize: bool,
}

impl Link {
    /// Pure-AWGN channel at `snr_db` with unit-power normalization — the
    /// paper's simulation setting (`SNR = 1/sigma^2`).
    pub fn awgn(snr_db: f64) -> Self {
        Link {
            snr_db,
            fading_k: None,
            max_cfo_hz: 0.0,
            random_phase: false,
            sample_rate_hz: 4.0e6,
            normalize: true,
        }
    }

    /// Indoor link at `distance_m` metres: path loss fixes the SNR, and each
    /// packet gets a Rician fading gain (K = 10), a residual CFO up to
    /// ±500 Hz (what survives front-end correction of a ±40 ppm oscillator),
    /// and a uniform random phase.
    ///
    /// The effective noise floor is −85 dBm: thermal noise over 2 MHz plus
    /// the noise figure and implementation losses of the paper's
    /// uncalibrated USRP receive chain (RX "power gain 0.75"). With
    /// `tx_power_dbm = 0` this reproduces the paper's defense regime
    /// (clean SNR at 1–6 m, RSSI −40 to −60 dBm); Fig. 14's range-limit
    /// regime uses a lower transmit power (see the experiment harness).
    ///
    /// # Panics
    ///
    /// Panics if `distance_m <= 0` (via [`PathLoss::loss_db`]).
    pub fn real_indoor(distance_m: f64, tx_power_dbm: f64) -> Self {
        let pl = PathLoss::indoor_2_4ghz();
        let snr_db = pl.snr_db(tx_power_dbm, -85.0, distance_m);
        Link {
            snr_db,
            fading_k: Some(10.0),
            max_cfo_hz: 500.0,
            random_phase: true,
            sample_rate_hz: 4.0e6,
            normalize: true,
        }
    }

    /// Overrides the SNR (dB).
    pub fn with_snr_db(mut self, snr_db: f64) -> Self {
        self.snr_db = snr_db;
        self
    }

    /// Enables block Rician fading with the given K-factor; `None` disables.
    pub fn with_fading(mut self, k_factor: Option<f64>) -> Self {
        self.fading_k = k_factor;
        self
    }

    /// Sets the maximum residual CFO magnitude (Hz); each packet draws
    /// uniformly from `[-max, max]`.
    pub fn with_max_cfo_hz(mut self, max_cfo_hz: f64) -> Self {
        self.max_cfo_hz = max_cfo_hz.abs();
        self
    }

    /// Enables/disables a uniform random phase per packet.
    pub fn with_random_phase(mut self, enabled: bool) -> Self {
        self.random_phase = enabled;
        self
    }

    /// Sets the sample rate the CFO is expressed against.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz <= 0`.
    pub fn with_sample_rate_hz(mut self, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        self.sample_rate_hz = sample_rate_hz;
        self
    }

    /// Enables/disables unit-power normalization of the input waveform.
    pub fn with_normalization(mut self, enabled: bool) -> Self {
        self.normalize = enabled;
        self
    }

    /// Configured SNR in dB.
    pub fn snr_db(&self) -> f64 {
        self.snr_db
    }

    /// Pushes one packet's waveform through the channel.
    ///
    /// Order of operations: normalize → fading gain → CFO + phase → AWGN.
    pub fn transmit<R: Rng>(&self, x: &[Complex], rng: &mut R) -> Vec<Complex> {
        let mut y = if self.normalize {
            normalize_power(x)
        } else {
            x.to_vec()
        };
        if let Some(k) = self.fading_k {
            let h = rician_gain(rng, k);
            y = apply_flat_gain(&y, h);
        }
        let cfo = if self.max_cfo_hz > 0.0 {
            rng.gen_range(-self.max_cfo_hz..=self.max_cfo_hz)
        } else {
            0.0
        };
        let phase = if self.random_phase {
            rng.gen_range(0.0..2.0 * std::f64::consts::PI)
        } else {
            0.0
        };
        if cfo != 0.0 || phase != 0.0 {
            y = apply_cfo(&y, cfo, self.sample_rate_hz, phase);
        }
        awgn(&y, self.snr_db, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_dsp::metrics::mean_power;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn awgn_link_is_noise_only() {
        let link = Link::awgn(40.0);
        let x = vec![Complex::ONE; 2048];
        let mut rng = StdRng::seed_from_u64(31);
        let y = link.transmit(&x, &mut rng);
        // High SNR: output close to normalized input (already unit power).
        let err: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (*b - *a).norm_sqr())
            .sum::<f64>()
            / x.len() as f64;
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn normalization_unitizes_power() {
        let link = Link::awgn(60.0);
        let x = vec![Complex::new(5.0, 0.0); 4096];
        let mut rng = StdRng::seed_from_u64(32);
        let y = link.transmit(&x, &mut rng);
        assert!((mean_power(&y) - 1.0).abs() < 0.01);
    }

    #[test]
    fn disabled_normalization_keeps_power() {
        let link = Link::awgn(60.0).with_normalization(false);
        let x = vec![Complex::new(5.0, 0.0); 4096];
        let mut rng = StdRng::seed_from_u64(33);
        let y = link.transmit(&x, &mut rng);
        assert!((mean_power(&y) - 25.0).abs() < 0.5);
    }

    #[test]
    fn real_link_snr_decreases_with_distance() {
        let near = Link::real_indoor(1.0, 0.0);
        let far = Link::real_indoor(8.0, 0.0);
        assert!(near.snr_db() > far.snr_db());
    }

    #[test]
    fn real_link_applies_phase_rotation() {
        // With fading + random phase, the average rotation across packets is
        // nonzero almost surely.
        let link = Link::real_indoor(1.0, 0.0).with_snr_db(60.0);
        let x = vec![Complex::ONE; 64];
        let mut rng = StdRng::seed_from_u64(34);
        let mut any_rotated = false;
        for _ in 0..8 {
            let y = link.transmit(&x, &mut rng);
            if y[0].arg().abs() > 0.1 {
                any_rotated = true;
            }
        }
        assert!(any_rotated, "random phase never rotated the packet");
    }

    #[test]
    fn builder_methods_chain() {
        let link = Link::awgn(10.0)
            .with_snr_db(12.0)
            .with_fading(Some(5.0))
            .with_max_cfo_hz(100.0)
            .with_random_phase(true)
            .with_sample_rate_hz(20.0e6)
            .with_normalization(false);
        assert_eq!(link.snr_db(), 12.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let link = Link::real_indoor(3.0, 0.0);
        let x = vec![Complex::ONE; 32];
        let a = link.transmit(&x, &mut StdRng::seed_from_u64(9));
        let b = link.transmit(&x, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
