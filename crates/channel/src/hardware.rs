//! Transmitter hardware impairments.
//!
//! Cheap IoT radios are not ideal: their I/Q paths are mismatched, their
//! oscillators jitter, and their power amplifiers compress. Each effect
//! distorts the constellation the defense analyzes — so the robustness
//! question is whether a *benign but imperfect* transmitter gets
//! false-flagged as an attacker. The `hardware` experiment quantifies it.

use crate::noise::standard_gaussian;
use ctc_dsp::Complex;
use rand::Rng;

/// I/Q imbalance: gain mismatch `epsilon` and quadrature phase error `phi`.
///
/// `y = cos(phi/2) x + j sin(phi/2) x*` scaled per-axis by `1 ± epsilon/2`
/// — the standard baseband image model. `epsilon` and `phi` of a decent
/// radio are below 0.05 / 0.05 rad; a terrible one reaches 0.2 / 0.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqImbalance {
    /// Fractional gain mismatch between I and Q paths.
    pub gain_mismatch: f64,
    /// Quadrature phase error in radians.
    pub phase_error_rad: f64,
}

impl IqImbalance {
    /// Applies the imbalance to a waveform.
    pub fn apply(&self, x: &[Complex]) -> Vec<Complex> {
        let g_i = 1.0 + self.gain_mismatch / 2.0;
        let g_q = 1.0 - self.gain_mismatch / 2.0;
        let (sin_p, cos_p) = (self.phase_error_rad / 2.0).sin_cos();
        x.iter()
            .map(|&v| {
                // Mismatched quadrature axes.
                let i = g_i * (v.re * cos_p - v.im * sin_p);
                let q = g_q * (v.im * cos_p - v.re * sin_p);
                Complex::new(i, q)
            })
            .collect()
    }

    /// Image rejection ratio (dB) implied by the imbalance — a familiar
    /// figure of merit (good radios: > 30 dB).
    pub fn image_rejection_db(&self) -> f64 {
        let e = self.gain_mismatch;
        let p = self.phase_error_rad;
        let num = e * e / 4.0 + p * p / 4.0;
        if num <= 0.0 {
            return f64::INFINITY;
        }
        -10.0 * num.log10()
    }
}

/// Oscillator phase noise: a Wiener (random-walk) phase process with the
/// given per-sample standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseNoise {
    /// Phase increment standard deviation per sample (radians).
    pub sigma_per_sample: f64,
}

impl PhaseNoise {
    /// Applies the random-walk phase to a waveform.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_per_sample < 0`.
    pub fn apply<R: Rng>(&self, x: &[Complex], rng: &mut R) -> Vec<Complex> {
        assert!(self.sigma_per_sample >= 0.0, "sigma must be nonnegative");
        let mut phase = 0.0f64;
        x.iter()
            .map(|&v| {
                phase += self.sigma_per_sample * standard_gaussian(rng);
                v * Complex::cis(phase)
            })
            .collect()
    }
}

/// Rapp-model power-amplifier compression (AM/AM only):
/// `g(r) = r / (1 + (r/sat)^{2p})^{1/(2p)}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaCompression {
    /// Saturation amplitude (input level where compression bites).
    pub saturation: f64,
    /// Smoothness exponent (2–3 for solid-state PAs).
    pub smoothness: f64,
}

impl PaCompression {
    /// Applies the AM/AM curve to a waveform.
    ///
    /// # Panics
    ///
    /// Panics unless `saturation > 0` and `smoothness > 0`.
    pub fn apply(&self, x: &[Complex]) -> Vec<Complex> {
        assert!(self.saturation > 0.0, "saturation must be positive");
        assert!(self.smoothness > 0.0, "smoothness must be positive");
        let p2 = 2.0 * self.smoothness;
        x.iter()
            .map(|&v| {
                let r = v.norm();
                if r == 0.0 {
                    return v;
                }
                let g = r / (1.0 + (r / self.saturation).powf(p2)).powf(1.0 / p2);
                v * (g / r)
            })
            .collect()
    }
}

/// A bundle of transmitter impairments applied in the physical order:
/// IQ imbalance → PA compression → phase noise.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TxImpairments {
    /// Optional I/Q imbalance.
    pub iq: Option<IqImbalance>,
    /// Optional PA compression.
    pub pa: Option<PaCompression>,
    /// Optional oscillator phase noise.
    pub phase_noise: Option<PhaseNoise>,
}

impl TxImpairments {
    /// A decent commodity radio: 35 dB image rejection, gentle compression,
    /// mild phase noise.
    pub fn typical_iot() -> Self {
        TxImpairments {
            iq: Some(IqImbalance {
                gain_mismatch: 0.02,
                phase_error_rad: 0.02,
            }),
            pa: Some(PaCompression {
                saturation: 2.0,
                smoothness: 3.0,
            }),
            phase_noise: Some(PhaseNoise {
                sigma_per_sample: 0.002,
            }),
        }
    }

    /// A terrible radio, well beyond spec.
    pub fn worst_case() -> Self {
        TxImpairments {
            iq: Some(IqImbalance {
                gain_mismatch: 0.15,
                phase_error_rad: 0.15,
            }),
            pa: Some(PaCompression {
                saturation: 1.1,
                smoothness: 2.0,
            }),
            phase_noise: Some(PhaseNoise {
                sigma_per_sample: 0.01,
            }),
        }
    }

    /// Applies the configured impairments.
    pub fn apply<R: Rng>(&self, x: &[Complex], rng: &mut R) -> Vec<Complex> {
        let mut y = x.to_vec();
        if let Some(iq) = self.iq {
            y = iq.apply(&y);
        }
        if let Some(pa) = self.pa {
            y = pa.apply(&y);
        }
        if let Some(pn) = self.phase_noise {
            y = pn.apply(&y, rng);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_imbalance_is_identity() {
        let iq = IqImbalance {
            gain_mismatch: 0.0,
            phase_error_rad: 0.0,
        };
        let x = vec![Complex::new(1.0, -2.0), Complex::new(0.3, 0.4)];
        let y = iq.apply(&x);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm() < 1e-12);
        }
        assert_eq!(iq.image_rejection_db(), f64::INFINITY);
    }

    #[test]
    fn imbalance_creates_image() {
        use ctc_dsp::fft::fft;
        // A positive-frequency tone grows a negative-frequency image.
        let n = 64;
        let tone: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * 5.0 * t as f64 / n as f64))
            .collect();
        let iq = IqImbalance {
            gain_mismatch: 0.1,
            phase_error_rad: 0.1,
        };
        let spec = fft(&iq.apply(&tone)).unwrap();
        let main = spec[5].norm();
        let image = spec[n - 5].norm();
        assert!(image > 1e-3, "image should appear");
        assert!(main > image * 5.0, "main tone should dominate");
        // IRR figure of merit is sane.
        let irr = iq.image_rejection_db();
        assert!((20.0..32.0).contains(&irr), "IRR {irr}");
    }

    #[test]
    fn phase_noise_preserves_magnitude() {
        let mut rng = StdRng::seed_from_u64(1);
        let pn = PhaseNoise {
            sigma_per_sample: 0.01,
        };
        let x = vec![Complex::new(0.6, 0.8); 100];
        let y = pn.apply(&x, &mut rng);
        for v in &y {
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
        // Phase must actually drift.
        assert!((y[99].arg() - x[99].arg()).abs() > 1e-3);
    }

    #[test]
    fn pa_compresses_large_signals_only() {
        let pa = PaCompression {
            saturation: 1.0,
            smoothness: 3.0,
        };
        let y = pa.apply(&[Complex::from_re(0.1), Complex::from_re(3.0)]);
        assert!((y[0].re - 0.1).abs() < 1e-3, "small signal untouched");
        assert!(y[1].re < 1.1, "large signal clamped toward saturation");
        assert!(y[1].re > 0.9);
    }

    #[test]
    #[should_panic(expected = "saturation")]
    fn pa_rejects_bad_saturation() {
        let pa = PaCompression {
            saturation: 0.0,
            smoothness: 2.0,
        };
        let _ = pa.apply(&[Complex::ONE]);
    }

    #[test]
    fn bundle_applies_all() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = vec![Complex::new(0.7, 0.7); 64];
        let y = TxImpairments::typical_iot().apply(&x, &mut rng);
        assert_eq!(y.len(), 64);
        let moved = x.iter().zip(&y).map(|(a, b)| (*a - *b).norm()).sum::<f64>();
        assert!(moved > 0.01, "impairments should perturb the waveform");
        // Default bundle is a no-op.
        let z = TxImpairments::default().apply(&x, &mut rng);
        assert_eq!(z, x);
    }
}
