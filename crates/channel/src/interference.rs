//! Cross-technology interference sources.
//!
//! The ISM-band coexistence that motivates CTC (paper Sec. I) also colors
//! the "real environment": the 2.4 GHz band carries other WiFi and ZigBee
//! traffic. These generators synthesize interferers at configurable spectral
//! offsets and duty cycles so experiments can study the attack and defense
//! under realistic co-channel activity.

use crate::noise::complex_gaussian;
use ctc_dsp::filter::frequency_shift;
use ctc_dsp::Complex;
use rand::Rng;

/// A bursty band-limited interferer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// Centre-frequency offset relative to the victim receiver, as a
    /// fraction of the victim sample rate.
    pub frequency_offset: f64,
    /// Occupied bandwidth as a fraction of the victim sample rate.
    pub bandwidth: f64,
    /// Average power relative to a unit-power victim signal (linear).
    pub power: f64,
    /// Fraction of time the interferer is on (burst duty cycle).
    pub duty_cycle: f64,
    /// Mean burst length in samples.
    pub burst_len: usize,
}

impl Interferer {
    /// A WiFi-like wideband interferer: bandwidth wider than the victim's
    /// band, moderate duty cycle.
    pub fn wifi_like(frequency_offset: f64, power: f64) -> Self {
        Interferer {
            frequency_offset,
            bandwidth: 0.8,
            power,
            duty_cycle: 0.3,
            burst_len: 400,
        }
    }

    /// A ZigBee-like narrowband interferer on an adjacent channel.
    pub fn zigbee_like(frequency_offset: f64, power: f64) -> Self {
        Interferer {
            frequency_offset,
            bandwidth: 0.25,
            power,
            duty_cycle: 0.1,
            burst_len: 1600,
        }
    }

    /// Synthesizes `len` samples of the interference waveform.
    ///
    /// Band-limited Gaussian bursts: white complex noise low-passed by a
    /// moving average sized to the bandwidth, shifted to the frequency
    /// offset, gated by a two-state burst process.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < bandwidth <= 1`, `0 <= duty_cycle <= 1` and
    /// `burst_len > 0`.
    pub fn generate<R: Rng>(&self, len: usize, rng: &mut R) -> Vec<Complex> {
        assert!(
            self.bandwidth > 0.0 && self.bandwidth <= 1.0,
            "bandwidth must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.duty_cycle),
            "duty cycle must be in [0, 1]"
        );
        assert!(self.burst_len > 0, "burst length must be positive");
        if len == 0 || self.duty_cycle == 0.0 || self.power <= 0.0 {
            return vec![Complex::ZERO; len];
        }
        // Band-limit white noise with a moving average of width ~1/bandwidth.
        let ma = ((1.0 / self.bandwidth).round() as usize).max(1);
        let white: Vec<Complex> = (0..len + ma).map(|_| complex_gaussian(rng, 1.0)).collect();
        let mut filtered = Vec::with_capacity(len);
        let mut acc = Complex::ZERO;
        for (i, &w) in white.iter().enumerate() {
            acc += w;
            if i >= ma {
                acc -= white[i - ma];
            }
            if i >= ma - 1 && filtered.len() < len {
                filtered.push(acc / (ma as f64).sqrt());
            }
        }
        // Burst gating: alternate on/off with exponential-ish durations.
        let mut gated = vec![Complex::ZERO; len];
        let mut pos = 0usize;
        let mut on = rng.gen::<f64>() < self.duty_cycle;
        while pos < len {
            let mean = if on {
                (self.burst_len as f64 * self.duty_cycle).max(1.0)
            } else {
                (self.burst_len as f64 * (1.0 - self.duty_cycle)).max(1.0)
            };
            let dur = (1.0 + rng.gen::<f64>() * 2.0 * mean) as usize;
            if on {
                let end = (pos + dur).min(len);
                gated[pos..end].copy_from_slice(&filtered[pos..end]);
            }
            pos += dur;
            on = !on;
        }
        // Scale so the *on* samples carry `power`, then shift in frequency.
        let on_power: f64 = gated.iter().map(|v| v.norm_sqr()).sum::<f64>()
            / gated.iter().filter(|v| v.norm_sqr() > 0.0).count().max(1) as f64;
        let gain = if on_power > 0.0 {
            (self.power / on_power).sqrt()
        } else {
            0.0
        };
        let scaled: Vec<Complex> = gated.iter().map(|&v| v * gain).collect();
        if self.frequency_offset != 0.0 {
            frequency_shift(&scaled, self.frequency_offset)
        } else {
            scaled
        }
    }

    /// Adds this interferer's waveform to a victim signal.
    pub fn apply<R: Rng>(&self, x: &[Complex], rng: &mut R) -> Vec<Complex> {
        let interference = self.generate(x.len(), rng);
        x.iter().zip(&interference).map(|(a, b)| *a + *b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_dsp::psd::{welch_psd, Window};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_duty_cycle_is_silent() {
        let mut rng = StdRng::seed_from_u64(1);
        let i = Interferer {
            duty_cycle: 0.0,
            ..Interferer::wifi_like(0.0, 1.0)
        };
        assert!(i
            .generate(100, &mut rng)
            .iter()
            .all(|v| *v == Complex::ZERO));
    }

    #[test]
    fn power_scaling_approximate() {
        let mut rng = StdRng::seed_from_u64(2);
        let i = Interferer {
            duty_cycle: 1.0,
            ..Interferer::zigbee_like(0.0, 0.5)
        };
        let w = i.generate(50_000, &mut rng);
        let p = w.iter().map(|v| v.norm_sqr()).sum::<f64>() / w.len() as f64;
        assert!((p - 0.5).abs() < 0.1, "power {p}");
    }

    #[test]
    fn frequency_offset_moves_spectrum() {
        let mut rng = StdRng::seed_from_u64(3);
        let i = Interferer {
            duty_cycle: 1.0,
            frequency_offset: 0.25,
            bandwidth: 0.1,
            power: 1.0,
            burst_len: 100,
        };
        let w = i.generate(8192, &mut rng);
        let psd = welch_psd(&w, 64, Window::Hann).unwrap();
        // Power should concentrate around +0.25, not DC.
        let near_dc: f64 = psd
            .ordered()
            .iter()
            .filter(|(f, _)| f.abs() < 0.1)
            .map(|(_, p)| p)
            .sum();
        let near_offset: f64 = psd
            .ordered()
            .iter()
            .filter(|(f, _)| (f - 0.25).abs() < 0.1)
            .map(|(_, p)| p)
            .sum();
        assert!(near_offset > near_dc * 5.0);
    }

    #[test]
    fn duty_cycle_gates_bursts() {
        let mut rng = StdRng::seed_from_u64(4);
        let i = Interferer {
            duty_cycle: 0.2,
            burst_len: 200,
            ..Interferer::wifi_like(0.0, 1.0)
        };
        let w = i.generate(100_000, &mut rng);
        let active = w.iter().filter(|v| v.norm_sqr() > 0.0).count() as f64 / w.len() as f64;
        assert!((0.05..0.5).contains(&active), "active fraction {active}");
    }

    #[test]
    fn apply_adds() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = vec![Complex::ONE; 64];
        let i = Interferer {
            duty_cycle: 0.0,
            ..Interferer::wifi_like(0.0, 1.0)
        };
        assert_eq!(i.apply(&x, &mut rng), x);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn bad_bandwidth_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let i = Interferer {
            bandwidth: 0.0,
            ..Interferer::wifi_like(0.0, 1.0)
        };
        let _ = i.generate(10, &mut rng);
    }
}
