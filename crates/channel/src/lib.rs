//! # ctc-channel
//!
//! Channel models for the *Hide and Seek* (ICDCS 2019) reproduction. Every
//! over-the-air element of the paper's testbed (USRP front-ends, 1–8 m
//! indoor propagation, human movement) is replaced by explicit, seeded
//! baseband models:
//!
//! - [`noise`] — AWGN with the paper's `SNR = 1/sigma^2` convention
//! - [`hardware`] — TX impairments: I/Q imbalance, PA compression, phase noise
//! - [`impairments`] — carrier frequency offset and phase offset
//! - [`fading`] — Rayleigh/Rician block fading and multipath FIR channels
//! - [`interference`] — bursty co-channel WiFi/ZigBee interferers
//! - [`pathloss`] — log-distance path loss and commodity-radio RSSI
//! - [`link`] — composed per-packet channel ([`Link::awgn`] for the ideal
//!   scenario, [`Link::real_indoor`] for the real one)

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fading;
pub mod hardware;
pub mod impairments;
pub mod interference;
pub mod link;
pub mod noise;
pub mod pathloss;

pub use link::Link;
pub use pathloss::PathLoss;
