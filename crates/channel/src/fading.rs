//! Small-scale fading models.
//!
//! The paper's indoor experiments (1–8 m, line-of-sight with human movement)
//! are modelled as block fading: one complex channel gain per packet, drawn
//! from a Rician distribution (strong LoS component plus scattered energy).
//! A Rayleigh draw (`k_factor = 0`) covers the non-LoS worst case, and a
//! short exponential-profile multipath FIR is available for
//! frequency-selective studies.

use crate::noise::standard_gaussian;
use ctc_dsp::Complex;
use rand::Rng;

/// Draws one Rayleigh-fading complex gain with unit average power
/// (`E[|h|^2] = 1`).
pub fn rayleigh_gain<R: Rng>(rng: &mut R) -> Complex {
    let s = (0.5f64).sqrt();
    Complex::new(s * standard_gaussian(rng), s * standard_gaussian(rng))
}

/// Draws one Rician-fading complex gain with unit average power and the
/// given K-factor (ratio of LoS power to scattered power, linear).
///
/// `k_factor = 0` reduces to Rayleigh; large `k_factor` approaches a pure
/// LoS channel (`h -> 1`).
///
/// # Panics
///
/// Panics if `k_factor < 0`.
pub fn rician_gain<R: Rng>(rng: &mut R, k_factor: f64) -> Complex {
    assert!(k_factor >= 0.0, "K-factor must be nonnegative");
    let los = (k_factor / (k_factor + 1.0)).sqrt();
    let scatter = (1.0 / (k_factor + 1.0)).sqrt();
    Complex::from_re(los) + rayleigh_gain(rng) * scatter
}

/// A frequency-selective multipath channel: an FIR with exponentially
/// decaying tap powers, normalized to unit total power.
#[derive(Debug, Clone, PartialEq)]
pub struct Multipath {
    taps: Vec<Complex>,
}

impl Multipath {
    /// Draws a random `num_taps`-tap channel whose tap powers decay as
    /// `e^{-n/decay}`.
    ///
    /// # Panics
    ///
    /// Panics if `num_taps == 0` or `decay <= 0`.
    pub fn random<R: Rng>(num_taps: usize, decay: f64, rng: &mut R) -> Self {
        assert!(num_taps > 0, "need at least one tap");
        assert!(decay > 0.0, "decay must be positive");
        let mut taps: Vec<Complex> = (0..num_taps)
            .map(|n| {
                let p = (-(n as f64) / decay).exp();
                rayleigh_gain(rng) * p.sqrt()
            })
            .collect();
        let total: f64 = taps.iter().map(|t| t.norm_sqr()).sum();
        if total > 0.0 {
            let g = 1.0 / total.sqrt();
            for t in &mut taps {
                *t *= g;
            }
        }
        Multipath { taps }
    }

    /// Builds a channel from explicit taps (not normalized).
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn from_taps(taps: Vec<Complex>) -> Self {
        assert!(!taps.is_empty(), "need at least one tap");
        Multipath { taps }
    }

    /// Channel impulse response.
    pub fn taps(&self) -> &[Complex] {
        &self.taps
    }

    /// Convolves the waveform with the channel (same-length output,
    /// truncated tail).
    pub fn apply(&self, x: &[Complex]) -> Vec<Complex> {
        let mut y = vec![Complex::ZERO; x.len()];
        for (i, &xi) in x.iter().enumerate() {
            for (j, &h) in self.taps.iter().enumerate() {
                if i + j < y.len() {
                    y[i + j] += xi * h;
                }
            }
        }
        y
    }
}

/// Time-varying flat fading with a Jakes-style Doppler spectrum: a sum of
/// low-frequency sinusoidal scatterers whose maximum Doppler shift models
/// motion in the environment — the paper's "human activities such as
/// walking" (a ~1 m/s scatterer at 2.4 GHz gives ~8 Hz of Doppler).
#[derive(Debug, Clone, PartialEq)]
pub struct JakesFading {
    oscillators: Vec<(f64, f64, f64)>, // (doppler rad/sample, phase, weight)
    los: f64,
    scatter: f64,
}

impl JakesFading {
    /// Builds a fader with `max_doppler_hz` at `sample_rate_hz`, Rician
    /// K-factor `k_factor`, and `paths` scatterers (8–16 is plenty).
    ///
    /// # Panics
    ///
    /// Panics when `paths == 0`, `sample_rate_hz <= 0`, `max_doppler_hz < 0`
    /// or `k_factor < 0`.
    pub fn new<R: Rng>(
        max_doppler_hz: f64,
        sample_rate_hz: f64,
        k_factor: f64,
        paths: usize,
        rng: &mut R,
    ) -> Self {
        assert!(paths > 0, "need at least one scatterer");
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        assert!(max_doppler_hz >= 0.0, "Doppler must be nonnegative");
        assert!(k_factor >= 0.0, "K-factor must be nonnegative");
        let wd = 2.0 * std::f64::consts::PI * max_doppler_hz / sample_rate_hz;
        let weight = (1.0 / paths as f64).sqrt();
        let oscillators = (0..paths)
            .map(|_| {
                // Jakes: Doppler of each path is wd*cos(arrival angle).
                let angle: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
                let phase: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
                (wd * angle.cos(), phase, weight)
            })
            .collect();
        JakesFading {
            oscillators,
            los: (k_factor / (k_factor + 1.0)).sqrt(),
            scatter: (1.0 / (k_factor + 1.0)).sqrt(),
        }
    }

    /// The channel gain at sample index `n`.
    pub fn gain_at(&self, n: usize) -> Complex {
        let mut acc = Complex::ZERO;
        for &(w, phi, weight) in &self.oscillators {
            acc += Complex::cis(w * n as f64 + phi) * weight;
        }
        Complex::from_re(self.los) + acc * self.scatter
    }

    /// Applies the time-varying gain to a waveform.
    pub fn apply(&self, x: &[Complex]) -> Vec<Complex> {
        x.iter()
            .enumerate()
            .map(|(n, &v)| v * self.gain_at(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rayleigh_unit_average_power() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 100_000;
        let p = (0..n)
            .map(|_| rayleigh_gain(&mut rng).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - 1.0).abs() < 0.02, "avg power {p}");
    }

    #[test]
    fn rician_unit_average_power_any_k() {
        let mut rng = StdRng::seed_from_u64(22);
        for k in [0.0, 1.0, 5.0, 20.0] {
            let n = 50_000;
            let p = (0..n)
                .map(|_| rician_gain(&mut rng, k).norm_sqr())
                .sum::<f64>()
                / n as f64;
            assert!((p - 1.0).abs() < 0.03, "K={k}: avg power {p}");
        }
    }

    #[test]
    fn rician_large_k_is_nearly_los() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..100 {
            let h = rician_gain(&mut rng, 1e6);
            assert!((h - Complex::ONE).norm() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "K-factor")]
    fn negative_k_panics() {
        let mut rng = StdRng::seed_from_u64(24);
        let _ = rician_gain(&mut rng, -1.0);
    }

    #[test]
    fn multipath_normalized() {
        let mut rng = StdRng::seed_from_u64(25);
        let ch = Multipath::random(4, 1.5, &mut rng);
        let total: f64 = ch.taps().iter().map(|t| t.norm_sqr()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_tap_multipath_is_flat_gain() {
        let ch = Multipath::from_taps(vec![Complex::new(0.0, 1.0)]);
        let x = vec![Complex::ONE, Complex::new(2.0, 0.0)];
        let y = ch.apply(&x);
        assert!((y[0] - Complex::I).norm() < 1e-15);
        assert!((y[1] - Complex::new(0.0, 2.0)).norm() < 1e-15);
    }

    #[test]
    fn multipath_smears_impulse() {
        let ch = Multipath::from_taps(vec![
            Complex::from_re(0.8),
            Complex::from_re(0.5),
            Complex::from_re(0.3),
        ]);
        let mut x = vec![Complex::ZERO; 6];
        x[0] = Complex::ONE;
        let y = ch.apply(&x);
        assert!((y[0].re - 0.8).abs() < 1e-12);
        assert!((y[1].re - 0.5).abs() < 1e-12);
        assert!((y[2].re - 0.3).abs() < 1e-12);
        assert!(y[3].norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_panics() {
        let _ = Multipath::from_taps(vec![]);
    }

    #[test]
    fn jakes_unit_average_power() {
        // Use a fast Doppler so the averaging window spans many fading
        // cycles (at 8 Hz the window would cover only ~4 — unconverged).
        let mut rng = StdRng::seed_from_u64(31);
        let fader = JakesFading::new(5_000.0, 4.0e6, 0.0, 16, &mut rng);
        let n = 2_000_000;
        let step = 997; // decorrelate the samples
        let p: f64 = (0..n / step)
            .map(|i| fader.gain_at(i * step).norm_sqr())
            .sum::<f64>()
            / (n / step) as f64;
        assert!((p - 1.0).abs() < 0.25, "avg power {p}");
    }

    #[test]
    fn jakes_zero_doppler_is_static() {
        let mut rng = StdRng::seed_from_u64(32);
        let fader = JakesFading::new(0.0, 4.0e6, 5.0, 8, &mut rng);
        let g0 = fader.gain_at(0);
        let g1 = fader.gain_at(100_000);
        assert!((g0 - g1).norm() < 1e-9, "zero Doppler must not vary");
    }

    #[test]
    fn jakes_varies_slowly_at_walking_speed() {
        // 8 Hz Doppler at 4 MHz: essentially constant within one frame
        // (1666 samples = 0.4 ms) but decorrelated after ~60 ms.
        let mut rng = StdRng::seed_from_u64(33);
        let fader = JakesFading::new(8.0, 4.0e6, 0.0, 16, &mut rng);
        let within_frame = (fader.gain_at(0) - fader.gain_at(1666)).norm();
        assert!(within_frame < 0.1, "intra-frame variation {within_frame}");
        let mut far = 0.0f64;
        for k in 1..6 {
            far = far.max((fader.gain_at(0) - fader.gain_at(k * 400_000)).norm());
        }
        assert!(
            far > 0.3,
            "channel should decorrelate over tens of ms: {far}"
        );
    }

    #[test]
    fn jakes_applies_per_sample() {
        let mut rng = StdRng::seed_from_u64(34);
        let fader = JakesFading::new(100.0, 4.0e6, 10.0, 8, &mut rng);
        let x = vec![Complex::ONE; 64];
        let y = fader.apply(&x);
        assert_eq!(y.len(), 64);
        for (n, v) in y.iter().enumerate() {
            assert!((*v - fader.gain_at(n)).norm() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "scatterer")]
    fn jakes_rejects_zero_paths() {
        let mut rng = StdRng::seed_from_u64(35);
        let _ = JakesFading::new(8.0, 4.0e6, 0.0, 0, &mut rng);
    }
}
