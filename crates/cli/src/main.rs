//! `ctc` — command-line front end for the Hide-and-Seek reproduction.
//!
//! Works on cf32 IQ files (GNURadio's interleaved little-endian f32
//! format), so recordings from real SDR hardware drop straight in:
//!
//! ```text
//! ctc generate --payload 00000 --out zigbee.cf32
//! ctc emulate  --input zigbee.cf32 --out attack.cf32
//! ctc capture  --input attack.cf32 --out at_receiver.cf32
//! ctc decode   --input at_receiver.cf32
//! ctc detect   --input at_receiver.cf32
//! ctc listen   --input long_recording.cf32
//! ctc monitor  --input - --threshold 0.25
//! ctc spectrum --input attack.cf32 --segment 64
//! ```
//!
//! `decode`, `detect`, `listen` and `monitor` also accept `--input -`
//! (stdin) and `--input tcp://host:port`, so captures pipe straight in:
//!
//! ```text
//! ctc generate --payload 00000 --out - | ctc decode --input -
//! ```

use ctc_core::attack::{Emulator, EnergyDetector, SpectralMode, SynthesisMode};
use ctc_core::defense::pipeline::de2_feature;
use ctc_core::defense::{
    train_logistic, train_stumps, ChannelAssumption, DetectionPipeline, Detector, FeatureInput,
    FeatureVector, LabelledSample, Roc,
};
use ctc_dsp::io::{write_cf32_file, Cf32Reader};
use ctc_dsp::psd::{welch_psd, Window};
use ctc_dsp::Complex;
use ctc_gateway::{
    GatewayConfig, GatewayError, GatewayServer, Input, Listener, NamedStream, ServerConfig,
};
use ctc_loadgen::{
    render_fleet, render_soak, run_fleet, run_soak, FleetSpec, Mix, SoakConfig, Target,
};
use ctc_obs::{Registry, TraceSink};
use ctc_zigbee::{Receiver, Transmitter};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Exit code when a decoded frame was attributed to the attacker, so shell
/// pipelines can branch on detection (`ctc detect ... || alarm`).
const EXIT_FORGERY: u8 = 3;

/// Exit code when `ctc loadgen` finishes but an SLO check (or a stream)
/// failed — distinct from the gateway's own codes (3–10) so CI can tell
/// "capacity regression" from "gateway broke".
const EXIT_SLO_BREACH: u8 = 12;

/// Exit code when `ctc detector eval --gate` finds the fused ensemble's
/// AUC below the single-feature DE² baseline — the detector-quality
/// regression gate, distinct from the load/SLO code above.
const EXIT_DETECTOR_GATE: u8 = 13;

const USAGE: &str = "\
ctc — CTC waveform emulation attack & defense toolkit (cf32 IQ files)

USAGE: ctc <command> [--key value]...

COMMANDS
  generate  --payload <text> --out <file> [--zeros N]
            Synthesize a ZigBee frame waveform (4 MHz baseband).
  emulate   --input <file> --out <file> [--mode baseband|carrier]
            [--bitchain] [--subcarriers N] [--alpha X]
            Run the waveform-emulation attack on a recorded frame (4 MHz in,
            20 MHz out).
  capture   --input <file> --out <file> [--mode baseband|carrier]
            The ZigBee receiver front-end's 4 MHz view of a 20 MHz waveform.
  decode    --input <src> [--soft] [--search N] [--fractional]
            Decode a 4 MHz waveform with the 802.15.4 receiver.
  detect    --input <src> [--real] [--threshold Q] [--search N]
            Run the cumulant detector on a 4 MHz waveform. Exits 3 when the
            frame is attributed to the WiFi attacker.
  listen    --input <src>
            Energy-detect frame bursts in a stream of any length (bounded
            memory; bursts print as they complete).
  monitor   --input <src> | --listen <addr> [--real] [--threshold Q]
            [--detector cumulant|features|model:<path>]
            [--workers N] [--chunk N] [--queue N] [--stats SECS]
            [--max-burst N] [--max-streams N] [--shards N] [--stop-after N]
            [--metrics-addr HOST:PORT] [--trace-out FILE]
            Streaming detection gateway: JSONL frame events on stdout,
            periodic stats on stderr. Exits 3 when a forgery was accepted;
            other failures get distinct codes (bad address 4, bind/accept
            5, session limit 6, sink 7, input 9, config 10).
            --listen (tcp://host:port or unix:///path.sock) serves many
            concurrent streams, each a session with a `stream`-tagged
            event sequence and per-stream metrics; --max-streams caps
            concurrency, --stop-after N exits after N sessions, --shards
            sets worker shards (0 = one per worker). The bound address
            prints on stderr as a single `listening <addr>` line, so
            port 0 works in scripts (`sed -n 's/^listening //p'`).
            --metrics-addr serves Prometheus text at /metrics for the run
            (port 0 picks a free port; the bound address prints on stderr);
            --trace-out writes one JSONL span record per pipeline stage.
            The flight recorder journals every burst, stage, verdict and
            drop into a bounded in-memory ring (--flight-capacity N
            events, default 1024; 0 disables). --flight-out FILE arms
            incident snapshots: the first accepted forgery, a session
            exhausting --flight-drop-budget N dropped bursts, or SIGUSR1
            each dump a self-contained JSON snapshot (last
            --flight-events journal events, registry + delta, per-stage
            latency, session table, config) for `ctc obs report`.
            --detector selects the classification stage: `cumulant` (the
            default single-statistic DE² threshold, byte-identical legacy
            output), `features` (the full extractor ensemble thresholding
            the same DE² statistic, with per-feature scores on every
            frame line and as ctc_detector_score{feature=...} gauges), or
            `model:<path>` (a model file from `ctc detector train`).
  detector  train --out <file> [--kind logistic|stumps] [--rounds N]
            [--per-class N] [--seed N] [--real] [--threshold Q]
            Train a feature-ensemble classifier on synthetic labelled
            receptions (authentic ZigBee vs WiFi-emulated forgeries over
            a seeded AWGN SNR sweep) and write a versioned model file
            for `ctc monitor --detector model:<file>`.
  detector  eval [--per-class N] [--seed N] [--rounds N] [--real]
            [--threshold Q] [--model <file>] [--report FILE] [--gate]
            ROC evaluation on a seeded SNR sweep: AUC, EER and
            TPR@FPR=1% for the single-feature DE² baseline and the
            trained ensembles (or --model), plus per-feature AUCs, as one
            JSON report on stdout (--report also writes it to FILE).
            --gate exits 13 when the best ensemble AUC falls below the
            DE² baseline — the CI detector-quality regression gate.
  loadgen   --connect <tcp://host:port|unix:///path.sock> [--streams N]
            [--events N] [--mix A:F:N] [--rate MSPS] [--gap N] [--seed N]
            [--soak DUR --metrics-addr HOST:PORT [--interval DUR]
            [--warmup DUR] [--slo-p99-ms F] [--slo-drop-rate F]
            [--slo-recall F] [--slo-pool-misses N] [--slo-rss-growth F]
            [--incident-out FILE]]
            [--report FILE]
            Fleet-scale traffic generator against `ctc monitor --listen`:
            N concurrent seeded streams of mixed authentic / WiFi-forged /
            noise bursts (--mix, default 6:2:2) paced at --rate Msamples/s
            per stream (0 = line rate). Default: a fixed number of events
            per stream, then a JSON report on stdout. --soak streams for
            DUR (e.g. 60s) while scraping the monitor's --metrics-addr
            and asserts SLOs (p99 latency, drop budgets, forgery recall
            vs ground truth, steady-state pool misses, RSS growth); the
            JSON capacity report carries the per-SLO verdict. On breach,
            --incident-out FILE writes an incident snapshot (for
            `ctc obs report`) and embeds its path in the report.
            --report also writes the JSON to FILE. Exits 12 when a
            stream failed or an SLO was breached.
  spectrum  --input <file> [--segment N]
            Welch PSD of a waveform, printed as text.
  obs       dump [--addr HOST:PORT] [--json]
            One-shot metrics snapshot. With --addr, scrapes a running
            monitor's endpoint; without, prints the canonical gateway
            metric schema at zero. --json renders the samples as the
            same JSON array incident snapshots embed.
  obs       report <incident.json>
            Render a flight-recorder incident snapshot (from
            `ctc monitor --flight-out` or `ctc loadgen --incident-out`)
            human-readable: trigger, journal tail, per-stage latency,
            session table, registry delta.
  obs       top --addr HOST:PORT [--interval DUR] [--count N]
            Live terminal view over a monitor's metrics endpoint:
            throughput, interval p50/p99 latency, per-stream frame and
            drop counts, detector-score movement. Repaints in place on a
            terminal; --count N prints N frames then exits.
  vectors   <generate|check|diff> [--dir DIR] [--seed N]
            Golden-vector regression corpus (default DIR: vectors).
            generate: run the pipeline, write corpus + manifest.
            check: replay through the live code; exits 1 at the first
            out-of-tolerance divergence (stage, index, magnitude).
            diff: per-stage max deviation report, even when passing.

  <src> is a cf32 file path, `-` for stdin, `tcp://host:port` to accept
  one connection and stream from it, or `unix:///path.sock` likewise.
";

struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument {a:?}"))?;
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Args { values, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }
}

/// Reads a whole waveform from an input spec (file, `-`, `tcp://addr`),
/// streaming through [`Cf32Reader`] so even stdin never double-buffers.
fn load(spec: &str) -> Result<Vec<Complex>, String> {
    let input = Input::parse(spec).map_err(|e| e.to_string())?;
    let reader = input.open().map_err(|e| e.to_string())?;
    let mut reader = Cf32Reader::new(reader);
    let mut samples = Vec::new();
    let mut chunk = Vec::new();
    loop {
        let n = reader
            .read_chunk(&mut chunk)
            .map_err(|e| format!("reading {input}: {e}"))?;
        if n == 0 {
            return Ok(samples);
        }
        samples.extend_from_slice(&chunk);
    }
}

/// Writes a waveform to a file, or to stdout when the spec is `-`.
fn save(spec: &str, samples: &[Complex]) -> Result<(), String> {
    if spec == "-" {
        ctc_dsp::io::write_cf32(std::io::stdout().lock(), samples)
            .map_err(|e| format!("writing stdout: {e}"))
    } else {
        write_cf32_file(Path::new(spec), samples).map_err(|e| format!("writing {spec}: {e}"))
    }
}

/// Status text goes to stdout normally, but to stderr when the waveform
/// itself is being piped to stdout.
fn note(out_spec: &str, msg: String) {
    if out_spec == "-" {
        eprintln!("{msg}");
    } else {
        println!("{msg}");
    }
}

fn emulator_from(args: &Args) -> Result<Emulator, String> {
    let mut emulator = Emulator::new();
    match args.get("mode").unwrap_or("baseband") {
        "baseband" => {}
        "carrier" => {
            emulator = emulator.with_spectral_mode(SpectralMode::CarrierAllocated);
        }
        other => return Err(format!("--mode must be baseband or carrier, got {other:?}")),
    }
    if args.flag("bitchain") {
        emulator = emulator
            .with_spectral_mode(SpectralMode::CarrierAllocated)
            .with_synthesis_mode(SynthesisMode::BitChain);
    }
    if let Some(n) = args.parse_num::<usize>("subcarriers")? {
        emulator = emulator.with_kept_subcarriers(n);
    }
    if let Some(a) = args.parse_num::<f64>("alpha")? {
        emulator = emulator.with_fixed_alpha(Some(a));
    }
    Ok(emulator)
}

fn receiver_from(args: &Args) -> Result<Receiver, String> {
    let mut rx = if args.flag("soft") {
        Receiver::commodity()
    } else {
        Receiver::usrp()
    };
    if let Some(n) = args.parse_num::<usize>("search")? {
        rx = rx.with_sync_search(n);
    }
    if args.flag("fractional") {
        rx = rx.with_fractional_timing(true);
    }
    Ok(rx)
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let payload = args.require("payload")?.as_bytes().to_vec();
    let zeros = args.parse_num::<usize>("zeros")?.unwrap_or(0);
    let tx = Transmitter::new().with_leading_zero_samples(zeros);
    let wave = tx
        .transmit_payload(&payload)
        .map_err(|e| format!("building frame: {e}"))?;
    let out = args.require("out")?;
    save(out, &wave)?;
    note(
        out,
        format!(
            "wrote {} samples (4 MHz, {:.1} µs) for payload {:?}",
            wave.len(),
            wave.len() as f64 / 4.0,
            String::from_utf8_lossy(&payload)
        ),
    );
    Ok(())
}

fn cmd_emulate(args: &Args) -> Result<(), String> {
    let observed = load(args.require("input")?)?;
    let emulator = emulator_from(args)?;
    let em = emulator.emulate(&observed);
    let out = args.require("out")?;
    save(out, &em.waveform_20mhz)?;
    note(
        out,
        format!(
            "emulated {} WiFi symbols (20 MHz, {} samples)",
            em.wifi_symbol_count(),
            em.waveform_20mhz.len()
        ),
    );
    note(out, format!("kept FFT bins: {:?}", em.kept_bins));
    note(
        out,
        format!(
            "alpha = {:.4}, quantization error = {:.1}",
            em.alpha, em.quantization_error
        ),
    );
    if let Some(d) = em.codeword_distance {
        note(out, format!("bit-chain codeword distance = {d}"));
    }
    Ok(())
}

fn cmd_capture(args: &Args) -> Result<(), String> {
    let wide = load(args.require("input")?)?;
    let (in_center, out_center) = match args.get("mode").unwrap_or("baseband") {
        "baseband" => (2.435e9, 2.435e9),
        "carrier" => (2.44e9, 2.435e9),
        other => return Err(format!("--mode must be baseband or carrier, got {other:?}")),
    };
    let captured = ctc_zigbee::frontend::capture(&wide, in_center, 20.0e6, out_center, 4.0e6)
        .map_err(|e| format!("capture failed: {e}"))?;
    let out = args.require("out")?;
    save(out, &captured)?;
    note(out, format!("captured {} samples at 4 MHz", captured.len()));
    Ok(())
}

fn cmd_decode(args: &Args) -> Result<(), String> {
    let wave = load(args.require("input")?)?;
    let rx = receiver_from(args)?;
    let r = rx.receive(&wave);
    println!(
        "sync: offset {}, peak correlation {:.3}, CFO {:.2e} rad/sample",
        r.sync.offset, r.sync.peak_correlation, r.sync.cfo_per_sample
    );
    println!("symbols decoded: {}", r.symbols.len());
    if let Some(max) = r.hamming_distances.iter().max() {
        let mean: f64 = r.hamming_distances.iter().map(|&d| d as f64).sum::<f64>()
            / r.hamming_distances.len().max(1) as f64;
        println!("chip errors per symbol: mean {mean:.2}, max {max}");
    }
    match r.payload() {
        Some(p) => println!(
            "payload ({} bytes): {:?}  [packet_ok = {}]",
            p.len(),
            String::from_utf8_lossy(p),
            r.packet_ok()
        ),
        None => println!("frame did not decode: {:?}", r.frame.err()),
    }
    Ok(())
}

/// The `--real`/`--threshold` options shared by `detect` and `monitor`.
fn detector_from(args: &Args) -> Result<Detector, String> {
    let assumption = if args.flag("real") {
        ChannelAssumption::Real
    } else {
        ChannelAssumption::Ideal
    };
    let mut detector = Detector::new(assumption);
    if let Some(q) = args.parse_num::<f64>("threshold")? {
        detector = detector.with_threshold(q);
    }
    Ok(detector)
}

/// Parses the `--flight-*` flags into the gateway's flight-recorder
/// options. The recorder is always on at its default ring capacity;
/// `--flight-capacity 0` turns it off entirely (returns `None`).
fn flight_options_from(args: &Args) -> Result<Option<ctc_gateway::FlightOptions>, String> {
    let mut options = ctc_gateway::FlightOptions::default();
    if let Some(n) = args.parse_num::<usize>("flight-capacity")? {
        if n == 0 {
            return Ok(None);
        }
        options.capacity = n;
    }
    if let Some(n) = args.parse_num::<usize>("flight-events")? {
        options.max_events = n;
    }
    if let Some(n) = args.parse_num::<u64>("flight-drop-budget")? {
        options.drop_budget = Some(n);
    }
    if let Some(path) = args.get("flight-out") {
        options.out = Some(path.into());
    }
    Ok(Some(options))
}

/// Parses `--detector cumulant|features|model:<path>` into the optional
/// detection pipeline layered over the `--real`/`--threshold` detector.
/// `cumulant` (the default) returns `None`: the legacy single-statistic
/// path, byte-identical output.
fn pipeline_from(args: &Args, detector: Detector) -> Result<Option<DetectionPipeline>, String> {
    match args.get("detector") {
        None | Some("cumulant") => Ok(None),
        Some("features") => Ok(Some(DetectionPipeline::standard(detector))),
        Some(spec) => match spec.strip_prefix("model:") {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading model {path}: {e}"))?;
                DetectionPipeline::from_model_str(&text)
                    .map(Some)
                    .map_err(|e| format!("parsing model {path}: {e}"))
            }
            None => Err(format!(
                "--detector expects cumulant, features, or model:<path>, got {spec:?}"
            )),
        },
    }
}

fn cmd_detect(args: &Args) -> Result<ExitCode, String> {
    let wave = load(args.require("input")?)?;
    let rx = receiver_from(args)?;
    let detector = detector_from(args)?;
    let r = rx.receive(&wave);
    let v = detector
        .detect(&r)
        .map_err(|e| format!("detection failed: {e}"))?;
    println!(
        "Ĉ40 = {:.4}{:+.4}i  |Ĉ40| = {:.4}  Ĉ42 = {:.4}  ({} chip pairs)",
        v.features.c40.re,
        v.features.c40.im,
        v.features.c40_magnitude,
        v.features.c42,
        v.features.sample_count
    );
    println!(
        "DE² = {:.4} vs Q = {:.3}  ->  {}",
        v.de_squared,
        detector.threshold(),
        if v.is_attack {
            "WiFi ATTACKER (H1)"
        } else {
            "authentic ZigBee (H0)"
        }
    );
    Ok(if v.is_attack {
        ExitCode::from(EXIT_FORGERY)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_listen(args: &Args) -> Result<(), String> {
    fn print_burst(i: usize, sb: &ctc_core::attack::StreamedBurst) {
        let b = &sb.burst;
        println!(
            "  #{i}: samples {}..{} ({} samples, {:.1} µs){}",
            b.start,
            b.end,
            b.len(),
            b.len() as f64 / 4.0,
            if sb.truncated() { "  [truncated]" } else { "" }
        );
    }

    let input = Input::parse(args.require("input")?).map_err(|e| e.to_string())?;
    let reader = input.open().map_err(|e| e.to_string())?;
    let mut reader = Cf32Reader::new(reader);
    let mut stream = EnergyDetector::default().stream();
    let mut chunk = Vec::new();
    let mut count = 0usize;
    let mut total = 0usize;
    let mut energy = 0.0f64;
    loop {
        let n = reader
            .read_chunk(&mut chunk)
            .map_err(|e| format!("reading {input}: {e}"))?;
        if n == 0 {
            break;
        }
        total += n;
        energy += chunk.iter().map(|c| c.norm_sqr()).sum::<f64>();
        for sb in stream.push(&chunk) {
            print_burst(count, &sb);
            count += 1;
        }
    }
    if let Some(sb) = stream.finish() {
        print_burst(count, &sb);
        count += 1;
    }
    println!("{count} burst(s) in {total} samples");
    if count == 0 && energy > 0.0 {
        println!(
            "  (energy detection baselines on quiet gaps; a stream that is all\n\
             signal has no noise floor to rise above — record with margins)"
        );
    }
    Ok(())
}

/// Prints a gateway error and converts it to its process exit code, so
/// shell pipelines can distinguish a bad address (4) from a bind/accept
/// failure (5), the session limit (6), a broken sink (7), and so on —
/// forgery detection keeps its reserved code 3.
fn gateway_exit(context: &str, e: &GatewayError) -> ExitCode {
    eprintln!("{context}: {e}");
    ExitCode::from(e.exit_code())
}

fn cmd_monitor(args: &Args) -> Result<ExitCode, String> {
    let mut receiver = receiver_from(args)?;
    if args.get("search").is_none() {
        // Burst captures start up to a margin before the preamble, so the
        // gateway always needs a timing search window.
        receiver = receiver.with_sync_search(96);
    }
    let detector = detector_from(args)?;
    let mut builder = GatewayConfig::builder()
        .receiver(receiver)
        .detector(detector);
    if let Some(pipeline) = pipeline_from(args, detector)? {
        builder = builder.detection_pipeline(pipeline.shared());
    }
    if let Some(n) = args.parse_num::<usize>("workers")? {
        builder = builder.workers(n);
    }
    if let Some(n) = args.parse_num::<usize>("chunk")? {
        builder = builder.chunk_samples(n);
    }
    if let Some(n) = args.parse_num::<usize>("queue")? {
        builder = builder.queue_depth(n);
    }
    if let Some(n) = args.parse_num::<usize>("max-burst")? {
        builder = builder.max_burst(n);
    }
    if let Some(secs) = args.parse_num::<f64>("stats")? {
        builder = builder.stats_interval(if secs > 0.0 {
            Some(Duration::from_secs_f64(secs))
        } else {
            None
        });
    }
    let config = match builder.build() {
        Ok(config) => config,
        Err(e) => return Ok(gateway_exit("monitor configuration", &e)),
    };

    let registry = Arc::new(Registry::new());
    // Resident-memory gauge for soak testing (`ctc loadgen --soak`
    // asserts bounded RSS growth from scrapes). Returns false off-Linux;
    // the soak check is simply skipped then.
    let _ = ctc_obs::register_process_metrics(&registry);
    // Serve the run's registry for the lifetime of the process. The
    // handle must stay bound (not `_`-dropped) so the listener is
    // reachable for as long as the monitor runs.
    let _metrics_server = match args.get("metrics-addr") {
        Some(addr) => {
            let server = ctc_obs::http::serve(addr, Arc::clone(&registry))
                .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
            eprintln!("metrics: serving http://{}/metrics", server.addr());
            Some(server)
        }
        None => None,
    };
    let trace = match args.get("trace-out") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("creating trace log {path}: {e}"))?;
            Some(Arc::new(TraceSink::new(Box::new(std::io::BufWriter::new(
                file,
            )))))
        }
        None => None,
    };
    // The flight recorder journals the run regardless; snapshots are only
    // written when --flight-out names a path. SIGUSR1 then dumps one on
    // demand for live forensics (`kill -USR1 <pid>`).
    let flight = flight_options_from(args)?;
    if flight.as_ref().is_some_and(|f| f.out.is_some()) {
        ctc_obs::flight::install_sigusr1_handler();
    }

    // Server mode: accept many concurrent streams on a listener, each one
    // a labelled session multiplexed through the shared worker pool.
    if let Some(spec) = args.get("listen") {
        let mut server_config = ServerConfig::from(config);
        if let Some(n) = args.parse_num::<usize>("max-streams")? {
            server_config.max_streams = n.max(1);
        }
        if let Some(n) = args.parse_num::<usize>("shards")? {
            server_config.shards = n;
        }
        if let Some(n) = args.parse_num::<u64>("stop-after")? {
            server_config.stop_after = Some(n);
        }
        let input = match Input::parse(spec) {
            Ok(input) => input,
            Err(e) => return Ok(gateway_exit("parsing --listen", &e)),
        };
        let listener = match Listener::bind(&input) {
            Ok(listener) => listener,
            Err(e) => return Ok(gateway_exit(&format!("binding {input}"), &e)),
        };
        // The bound address prints on stderr as a single parseable
        // `listening <addr>` line (documented in USAGE), so scripts and
        // load generators binding port 0 can discover where to connect
        // with a plain `sed -n 's/^listening //p'`.
        eprintln!("listening {}", listener.local_display());

        let mut server = GatewayServer::new(server_config).with_registry(Arc::clone(&registry));
        if let Some(sink) = &trace {
            server = server.with_trace_sink(Arc::clone(sink));
        }
        if let Some(options) = flight.clone() {
            server = server.with_flight(options);
        }
        let report = match server.serve(listener, &mut std::io::stdout(), &mut std::io::stderr()) {
            Ok(report) => report,
            Err(e) => return Ok(gateway_exit("gateway server", &e)),
        };
        if let Some(trace) = &trace {
            trace.flush();
        }
        eprintln!(
            "gateway: {} session(s) served, {} refused, {} errored",
            report.server.sessions_opened,
            report.server.sessions_refused,
            report.server.sessions_errored
        );
        return Ok(if report.forgery_detected() {
            ExitCode::from(EXIT_FORGERY)
        } else {
            ExitCode::SUCCESS
        });
    }

    // Single-stream mode: one input, unlabelled event stream. Runs on
    // the multi-stream server pinned to a single shard, which keeps the
    // event and stats output byte-identical to the legacy single-stream
    // gateway while sharing one code path with `--listen`.
    let input = match Input::parse(args.require("input")?) {
        Ok(input) => input,
        Err(e) => return Ok(gateway_exit("parsing --input", &e)),
    };
    let server_config = ServerConfig {
        shards: 1,
        ..ServerConfig::from(config)
    };
    let mut server = GatewayServer::new(server_config).with_registry(Arc::clone(&registry));
    if let Some(sink) = &trace {
        server = server.with_trace_sink(Arc::clone(sink));
    }
    if let Some(options) = flight {
        server = server.with_flight(options);
    }
    let reader = match input.open() {
        Ok(reader) => reader,
        Err(e) => return Ok(gateway_exit("opening input", &e)),
    };
    let result = server.run_streams(
        vec![NamedStream::unlabelled(reader)],
        &mut std::io::stdout(),
        &mut std::io::stderr(),
    );
    let report = match result {
        Ok(report) => report,
        Err(e) => return Ok(gateway_exit(&format!("gateway on {input}"), &e)),
    };

    // Exit-code path audit: the forgery exit (code 3) must never race the
    // telemetry buffers. `run_streams()` has joined every pipeline thread
    // by now, and the span log is flushed *here*, before the ExitCode is
    // even constructed — not left to drop order on the way out of `main`
    // (and never skipped the way a `process::exit` would skip it). The
    // sink also flushes on drop, so the non-forgery path is covered twice.
    if let Some(trace) = &trace {
        trace.flush();
    }
    Ok(if report.forgery_detected() {
        ExitCode::from(EXIT_FORGERY)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_spectrum(args: &Args) -> Result<(), String> {
    let wave = load(args.require("input")?)?;
    let segment = args.parse_num::<usize>("segment")?.unwrap_or(64);
    let psd = welch_psd(&wave, segment, Window::Hann).map_err(|e| format!("psd failed: {e}"))?;
    let db = psd.db_rel_peak();
    let ordered = psd.ordered();
    println!("Welch PSD ({} segments of {segment}):", psd.segments);
    for (i, (f, _)) in ordered.iter().enumerate() {
        let bin = (i + segment / 2) % segment;
        let level = db[bin];
        let bar = "#".repeat(((level + 60.0).max(0.0) / 2.0) as usize);
        println!("{f:>8.3} | {level:>7.1} dB | {bar}");
    }
    Ok(())
}

/// Parses a human duration: `60s`, `1500ms`, `2m`, or a bare number of
/// seconds (`10`, `0.5`).
fn parse_duration(text: &str) -> Result<Duration, String> {
    let (digits, scale) = if let Some(d) = text.strip_suffix("ms") {
        (d, 1e-3)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1.0)
    } else if let Some(d) = text.strip_suffix('m') {
        (d, 60.0)
    } else {
        (text, 1.0)
    };
    let secs: f64 = digits
        .parse()
        .map_err(|_| format!("expected a duration like 60s, 500ms or 2m, got {text:?}"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!("duration must be positive, got {text:?}"));
    }
    Ok(Duration::from_secs_f64(secs * scale))
}

/// Applies the `--streams/--events/--mix/--rate/--gap/--seed` flags over
/// the default [`FleetSpec`].
fn fleet_spec_from(args: &Args) -> Result<FleetSpec, String> {
    let mut spec = FleetSpec::default();
    if let Some(n) = args.parse_num::<usize>("streams")? {
        spec.streams = n;
    }
    if let Some(n) = args.parse_num::<usize>("events")? {
        spec.events_per_stream = n;
    }
    if let Some(mix) = args.get("mix") {
        spec.mix = Mix::parse(mix).map_err(|e| format!("--mix: {e}"))?;
    }
    if let Some(r) = args.parse_num::<f64>("rate")? {
        spec.rate_msps = r;
    }
    if let Some(n) = args.parse_num::<usize>("gap")? {
        spec.gap_samples = n;
    }
    if let Some(seed) = args.parse_num::<u64>("seed")? {
        spec.seed = seed;
    }
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

fn cmd_loadgen(args: &Args) -> Result<ExitCode, String> {
    let target = Target::parse(args.require("connect")?).map_err(|e| e.to_string())?;
    let spec = fleet_spec_from(args)?;

    let (line, pass) = match args.get("soak") {
        // Soak: sustain the fleet for a duration, scrape the monitor's
        // metrics endpoint, assert the SLOs.
        Some(soak) => {
            let duration = parse_duration(soak)?;
            let metrics_addr = args
                .get("metrics-addr")
                .ok_or("--soak needs --metrics-addr (the monitor's metrics endpoint)")?;
            let mut config = SoakConfig::new(spec, metrics_addr, duration);
            if let Some(v) = args.get("interval") {
                config.interval = parse_duration(v)?;
            }
            if let Some(v) = args.get("warmup") {
                config.warmup = parse_duration(v)?;
            }
            if let Some(ms) = args.parse_num::<f64>("slo-p99-ms")? {
                config.slo.p99_latency_us = Some(ms * 1000.0);
            }
            if let Some(v) = args.parse_num::<f64>("slo-drop-rate")? {
                config.slo.max_drop_rate = Some(v);
            }
            if let Some(v) = args.parse_num::<f64>("slo-recall")? {
                config.slo.min_recall = Some(v);
            }
            if let Some(v) = args.parse_num::<f64>("slo-pool-misses")? {
                config.slo.max_steady_pool_misses = Some(v);
            }
            if let Some(v) = args.parse_num::<f64>("slo-rss-growth")? {
                config.slo.max_rss_growth = Some(v);
            }
            if let Some(path) = args.get("incident-out") {
                config.incident_out = Some(path.into());
            }
            eprintln!(
                "loadgen: soaking {} stream(s) against {target} for {:.0?} (scraping {})",
                config.fleet.streams, config.duration, config.metrics_addr
            );
            let outcome = run_soak(&config, &target).map_err(|e| e.to_string())?;
            for check in &outcome.checks {
                let verdict = if check.skipped {
                    "skip"
                } else if check.pass {
                    "ok  "
                } else {
                    "FAIL"
                };
                let value = match check.value {
                    Some(v) => format!("{v:.4}"),
                    None => "n/a".to_string(),
                };
                eprintln!(
                    "loadgen: slo {verdict} {:<24} {value} {} {}",
                    check.name, check.op, check.bound
                );
            }
            let pass = outcome.pass;
            (render_soak(&config, &target, &outcome), pass)
        }
        // Fixed: send the spec'd number of events per stream, report the
        // ground truth. Pass iff every stream connected and drained.
        None => {
            let report = run_fleet(&spec, &target, None).map_err(|e| e.to_string())?;
            for stream in &report.streams {
                if let Some(err) = &stream.error {
                    eprintln!("loadgen: stream {} failed: {err}", stream.index);
                }
            }
            let pass = report.errors() == 0;
            (render_fleet(&spec, &target, &report), pass)
        }
    };

    println!("{line}");
    if let Some(path) = args.get("report") {
        std::fs::write(path, format!("{line}\n"))
            .map_err(|e| format!("writing report {path}: {e}"))?;
    }
    Ok(if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_SLO_BREACH)
    })
}

/// SNR sweep (dB) for `ctc detector train|eval` sample synthesis: dips
/// below the paper's evaluated range so the ROC has borderline operating
/// points, not just saturated ones.
const DETECTOR_SNRS: [f64; 4] = [0.0, 3.0, 6.0, 9.0];

/// Synthesizes one labelled feature vector per (SNR, trial, class):
/// authentic ZigBee frames and WiFi-emulated forgeries through the same
/// seeded AWGN link, extracted with `pipeline`'s feature set.
fn synthesize_samples(
    pipeline: &DetectionPipeline,
    snrs: &[f64],
    per_class: usize,
    seed: u64,
) -> Result<Vec<LabelledSample>, String> {
    use ctc_channel::Link;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let authentic = Transmitter::new()
        .transmit_payload(b"train")
        .map_err(|e| format!("building training frame: {e}"))?;
    let emulator = Emulator::new();
    let forged = emulator.received_at_zigbee(&emulator.emulate(&authentic));
    let rx = Receiver::usrp();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    for &snr in snrs {
        let link = Link::awgn(snr);
        for _ in 0..per_class {
            for (wave, is_attack) in [(&authentic, false), (&forged, true)] {
                let received = link.transmit(wave, &mut rng);
                let reception = rx.receive(&received);
                let input = FeatureInput::with_samples(&reception, &received);
                let features = pipeline
                    .extract(&input)
                    .map_err(|e| format!("feature extraction: {e}"))?;
                samples.push(LabelledSample {
                    features,
                    is_attack,
                });
            }
        }
    }
    Ok(samples)
}

/// Splits per-class score lists out of a labelled set under `score`.
fn class_scores(
    samples: &[LabelledSample],
    score: impl Fn(&FeatureVector) -> f64,
) -> (Vec<f64>, Vec<f64>) {
    let mut authentic = Vec::new();
    let mut attack = Vec::new();
    for s in samples {
        let v = score(&s.features);
        if s.is_attack {
            attack.push(v);
        } else {
            authentic.push(v);
        }
    }
    (authentic, attack)
}

/// Renders one ROC summary as a JSON object body.
fn roc_json(roc: &Roc) -> String {
    ctc_gateway::json::JsonObject::new()
        .float("auc", roc.auc)
        .float("eer", roc.eer())
        .float("tpr_at_fpr_1pct", roc.tpr_at_fpr(0.01))
        .finish()
}

fn cmd_detector(argv: &[String]) -> Result<ExitCode, String> {
    use ctc_gateway::json::JsonObject;

    let Some((action, rest)) = argv.split_first() else {
        return Err("detector needs an action: train or eval".into());
    };
    let args = Args::parse(rest)?;
    let detector = detector_from(&args)?;
    let assumption = if args.flag("real") {
        ChannelAssumption::Real
    } else {
        ChannelAssumption::Ideal
    };
    let per_class = args.parse_num::<usize>("per-class")?.unwrap_or(24);
    let seed = args.parse_num::<u64>("seed")?.unwrap_or(0xC7C5);
    let rounds = args.parse_num::<usize>("rounds")?.unwrap_or(24);
    let extractor = DetectionPipeline::standard(detector);

    match action.as_str() {
        "train" => {
            let out = args.require("out")?;
            let samples = synthesize_samples(&extractor, &DETECTOR_SNRS, per_class, seed)?;
            let classifier = match args.get("kind").unwrap_or("logistic") {
                "logistic" => train_logistic(&samples).map_err(|e| format!("training: {e}"))?,
                "stumps" => train_stumps(&samples, rounds).map_err(|e| format!("training: {e}"))?,
                other => return Err(format!("--kind must be logistic or stumps, got {other:?}")),
            };
            let trained = extractor.with_classifier(classifier);
            std::fs::write(out, trained.to_model_string())
                .map_err(|e| format!("writing model {out}: {e}"))?;
            println!(
                "wrote {} model over {} features ({} labelled samples, seed {seed}) to {out}",
                trained.classifier().kind(),
                trained.feature_names().len(),
                2 * per_class * DETECTOR_SNRS.len(),
            );
            Ok(ExitCode::SUCCESS)
        }
        "eval" => {
            let samples = synthesize_samples(&extractor, &DETECTOR_SNRS, per_class, seed)?;
            // Alternate (authentic, attack) pairs between the halves:
            // train on one half, measure every curve on the held-out
            // half so the ensemble/baseline comparison is fair.
            let mut train: Vec<LabelledSample> = Vec::new();
            let mut test: Vec<LabelledSample> = Vec::new();
            for (i, pair) in samples.chunks(2).enumerate() {
                if i % 2 == 0 {
                    train.extend_from_slice(pair);
                } else {
                    test.extend_from_slice(pair);
                }
            }

            let de2 = de2_feature(assumption);
            let (auth, att) = class_scores(&test, |fv| fv.get(de2).unwrap_or(0.0));
            let baseline = Roc::from_scores(&auth, &att);

            let mut report = JsonObject::new()
                .string("type", "detector_eval")
                .uint("seed", seed)
                .uint("per_class", per_class as u64)
                .uint("snr_cells", DETECTOR_SNRS.len() as u64)
                .string("baseline_feature", de2)
                .raw("baseline", &roc_json(&baseline));

            let (ensemble_auc, ensemble_name) = match args.get("model") {
                // Evaluate a trained model file on the full sample set.
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("reading model {path}: {e}"))?;
                    let model = DetectionPipeline::from_model_str(&text)
                        .map_err(|e| format!("parsing model {path}: {e}"))?;
                    let (auth, att) = class_scores(&test, |fv| model.classifier().decide(fv).0);
                    let roc = Roc::from_scores(&auth, &att);
                    report = report.raw("model", &roc_json(&roc));
                    (roc.auc, model.classifier().kind())
                }
                // Train both ensembles on the spot; the better one gates.
                None => {
                    let logistic = train_logistic(&train).map_err(|e| format!("training: {e}"))?;
                    let stumps =
                        train_stumps(&train, rounds).map_err(|e| format!("training: {e}"))?;
                    let (auth, att) = class_scores(&test, |fv| logistic.decide(fv).0);
                    let roc_logistic = Roc::from_scores(&auth, &att);
                    let (auth, att) = class_scores(&test, |fv| stumps.decide(fv).0);
                    let roc_stumps = Roc::from_scores(&auth, &att);
                    report = report
                        .raw("logistic", &roc_json(&roc_logistic))
                        .raw("stumps", &roc_json(&roc_stumps));
                    if roc_logistic.auc >= roc_stumps.auc {
                        (roc_logistic.auc, "logistic")
                    } else {
                        (roc_stumps.auc, "stumps")
                    }
                }
            };

            // Per-feature discriminative power on the held-out half,
            // orientation-folded so "lower = attack" features still rank.
            let mut features = JsonObject::new();
            for name in extractor.feature_names() {
                let (auth, att) = class_scores(&test, |fv| fv.get(name).unwrap_or(0.0));
                features = features.float(name, Roc::from_scores(&auth, &att).oriented_auc());
            }
            let gate_pass = ensemble_auc >= baseline.auc;
            let line = report
                .raw("feature_auc", &features.finish())
                .string("ensemble", ensemble_name)
                .float("ensemble_auc", ensemble_auc)
                .bool("gate_pass", gate_pass)
                .finish();
            println!("{line}");
            if let Some(path) = args.get("report") {
                std::fs::write(path, format!("{line}\n"))
                    .map_err(|e| format!("writing report {path}: {e}"))?;
            }
            if args.flag("gate") && !gate_pass {
                eprintln!(
                    "detector eval: ensemble AUC {ensemble_auc:.4} fell below the \
                     DE² baseline {:.4}",
                    baseline.auc
                );
                return Ok(ExitCode::from(EXIT_DETECTOR_GATE));
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown detector action {other:?} (expected train or eval)"
        )),
    }
}

fn cmd_obs(argv: &[String]) -> Result<ExitCode, String> {
    let Some((action, rest)) = argv.split_first() else {
        return Err("obs needs an action: dump, report, or top".into());
    };
    match action.as_str() {
        "dump" => cmd_obs_dump(&Args::parse(rest)?),
        "report" => cmd_obs_report(rest),
        "top" => cmd_obs_top(&Args::parse(rest)?),
        other => Err(format!(
            "unknown obs action {other:?} (expected dump, report, or top)"
        )),
    }
}

fn cmd_obs_dump(args: &Args) -> Result<ExitCode, String> {
    // Exposition text: scraped from a live monitor, or the canonical
    // gateway schema (every metric name, help string and type) at zero —
    // what a scrape of an idle run would return.
    let text = match args.get("addr") {
        Some(addr) => {
            ctc_obs::http::fetch_text(addr).map_err(|e| format!("scraping {addr}: {e}"))?
        }
        None => {
            let registry = Registry::new();
            ctc_gateway::obs::register_run(
                &registry,
                &ctc_gateway::Metrics::new(),
                &ctc_dsp::BufferPool::new(),
            );
            registry.render()
        }
    };
    if args.flag("json") {
        // The same serializer incident snapshots use for their registry
        // section, so one jq recipe works on both.
        let scrape = ctc_obs::Scrape::parse(&text).map_err(|e| format!("parsing scrape: {e}"))?;
        println!("{}", ctc_obs::snapshot::registry_json(&scrape));
    } else {
        print!("{text}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `obs report <incident.json>`: renders a flight-recorder incident
/// snapshot human-readable. The path may be positional or `--input`.
fn cmd_obs_report(argv: &[String]) -> Result<ExitCode, String> {
    let (path, rest) = match argv.split_first() {
        Some((first, rest)) if !first.starts_with("--") => (first.clone(), rest),
        _ => {
            let args = Args::parse(argv)?;
            (args.require("input")?.to_string(), &[] as &[String])
        }
    };
    Args::parse(rest)?; // reject trailing junk with the usual message
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading snapshot {path}: {e}"))?;
    let doc = ctc_gateway::json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    print!("{}", render_incident(&doc)?);
    Ok(ExitCode::SUCCESS)
}

/// One human-readable line per journal event (the JSON field set varies
/// by kind; everything beyond the common header prints as `key=value`).
fn render_event(ev: &ctc_gateway::JsonValue) -> String {
    let num = |key: &str| ev.get(key).and_then(ctc_gateway::JsonValue::as_f64);
    let mut line = format!(
        "  [{:>10} µs] {:<13} session={} seq={}",
        num("t_us").unwrap_or(0.0) as u64,
        ev.get("kind").and_then(|k| k.as_str()).unwrap_or("?"),
        num("session").unwrap_or(0.0) as u64,
        num("seq").unwrap_or(0.0) as u64,
    );
    if let Some(fields) = ev.as_object() {
        for (key, value) in fields {
            if matches!(key.as_str(), "t_us" | "kind" | "session" | "seq") {
                continue;
            }
            match (value.as_str(), value.as_bool(), value.as_f64()) {
                (Some(s), _, _) => line.push_str(&format!(" {key}={s}")),
                (_, Some(b), _) => line.push_str(&format!(" {key}={b}")),
                (_, _, Some(v)) => line.push_str(&format!(" {key}={v:.4}")),
                _ => {
                    if let Some(scores) = value.as_object() {
                        line.push_str(&format!(" {key}="));
                        let rendered: Vec<String> = scores
                            .iter()
                            .map(|(name, v)| {
                                format!("{name}:{:.4}", v.as_f64().unwrap_or(f64::NAN))
                            })
                            .collect();
                        line.push_str(&rendered.join(","));
                    }
                }
            }
        }
    }
    line.push('\n');
    line
}

/// The human-readable rendering behind `ctc obs report`.
fn render_incident(doc: &ctc_gateway::JsonValue) -> Result<String, String> {
    if doc.get("type").and_then(|t| t.as_str()) != Some("ctc_incident") {
        return Err("not an incident snapshot (missing type: ctc_incident)".into());
    }
    let num =
        |v: &ctc_gateway::JsonValue, key: &str| v.get(key).and_then(ctc_gateway::JsonValue::as_f64);
    let mut out = String::new();
    out.push_str(&format!(
        "incident: trigger={} at t={} µs (dump #{})\n",
        doc.get("trigger").and_then(|t| t.as_str()).unwrap_or("?"),
        num(doc, "t_us").unwrap_or(0.0) as u64,
        num(doc, "dump_seq").unwrap_or(0.0) as u64,
    ));
    if let Some(ring) = doc.get("ring") {
        out.push_str(&format!(
            "ring: {} events recorded, capacity {}\n",
            num(ring, "recorded").unwrap_or(0.0) as u64,
            num(ring, "capacity").unwrap_or(0.0) as u64,
        ));
    }
    if let Some(config) = doc.get("config").and_then(|c| c.as_object()) {
        out.push_str("config:");
        for (key, value) in config {
            match (value.as_f64(), value.as_str()) {
                (Some(v), _) => out.push_str(&format!(" {key}={v}")),
                (_, Some(s)) => out.push_str(&format!(" {key}={s}")),
                _ => {}
            }
        }
        out.push('\n');
    }
    if let Some(sessions) = doc.get("sessions").and_then(|s| s.as_array()) {
        out.push_str(&format!("sessions ({}):\n", sessions.len()));
        for s in sessions {
            out.push_str(&format!(
                "  #{} stream={} shard={} samples_in={} bursts={} frames={} \
                 forgeries={} dropped={}\n",
                num(s, "id").unwrap_or(0.0) as u64,
                s.get("stream").and_then(|v| v.as_str()).unwrap_or("-"),
                num(s, "shard").unwrap_or(0.0) as u64,
                num(s, "samples_in").unwrap_or(0.0) as u64,
                num(s, "bursts").unwrap_or(0.0) as u64,
                num(s, "frames_decoded").unwrap_or(0.0) as u64,
                num(s, "forgeries").unwrap_or(0.0) as u64,
                num(s, "bursts_dropped").unwrap_or(0.0) as u64,
            ));
        }
    }
    if let Some(stages) = doc.get("stages").and_then(|s| s.as_object()) {
        out.push_str("stage latency (µs):\n");
        for (name, stats) in stages {
            out.push_str(&format!(
                "  {name:<9} count={:<6} p50={:<8} p99={:<8} max={}\n",
                num(stats, "count").unwrap_or(0.0) as u64,
                num(stats, "p50_us").unwrap_or(0.0) as u64,
                num(stats, "p99_us").unwrap_or(0.0) as u64,
                num(stats, "max_us").unwrap_or(0.0) as u64,
            ));
        }
    }
    if let Some(events) = doc.get("events").and_then(|e| e.as_array()) {
        out.push_str(&format!(
            "journal ({} events, newest last):\n",
            events.len()
        ));
        for ev in events {
            out.push_str(&render_event(ev));
        }
    }
    if let Some(delta) = doc.get("delta").and_then(|d| d.as_array()) {
        out.push_str(&format!(
            "registry delta since run start ({}):\n",
            delta.len()
        ));
        for d in delta {
            let labels = d
                .get("labels")
                .and_then(|l| l.as_object())
                .map(|pairs| {
                    pairs
                        .iter()
                        .map(|(k, v)| format!("{k}={:?}", v.as_str().unwrap_or("")))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .filter(|s| !s.is_empty())
                .map(|s| format!("{{{s}}}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {}{labels} {} -> {} ({:+})\n",
                d.get("name").and_then(|n| n.as_str()).unwrap_or("?"),
                num(d, "before").unwrap_or(0.0),
                num(d, "after").unwrap_or(0.0),
                num(d, "delta").unwrap_or(0.0),
            ));
        }
    }
    Ok(out)
}

/// One `obs top` frame from the current scrape plus (optionally) the
/// previous scrape and the wall time between them for rate and movement
/// columns.
fn render_top(scrape: &ctc_obs::Scrape, prev: Option<(&ctc_obs::Scrape, Duration)>) -> String {
    let value = |s: &ctc_obs::Scrape, name: &str| s.value(name, &[]).unwrap_or(0.0);
    let rate = |name: &str| -> Option<f64> {
        let (before, dt) = prev?;
        let secs = dt.as_secs_f64();
        (secs > 0.0).then(|| (value(scrape, name) - value(before, name)) / secs)
    };
    let fmt_rate = |r: Option<f64>| match r {
        Some(r) => format!("{r:>12.0}/s"),
        None => format!("{:>14}", "—"),
    };

    let mut out = String::new();
    out.push_str("ctc obs top — gateway live view\n\n");
    out.push_str(&format!(
        "  samples   {:>14} total {}\n",
        value(scrape, "ctc_gateway_samples_total") as u64,
        fmt_rate(rate("ctc_gateway_samples_total")),
    ));
    out.push_str(&format!(
        "  bursts    {:>14} total {}\n",
        value(scrape, "ctc_gateway_bursts_total") as u64,
        fmt_rate(rate("ctc_gateway_bursts_total")),
    ));
    let forgeries = scrape
        .value("ctc_gateway_frames_total", &[("verdict", "attack")])
        .unwrap_or(0.0);
    // The frames family is split by verdict; the aggregate (no stream
    // label) is their sum.
    let frames_total: f64 = scrape
        .family("ctc_gateway_frames_total")
        .filter(|s| s.label("stream").is_none())
        .map(|s| s.value)
        .sum();
    out.push_str(&format!(
        "  frames    {:>14} total   ({} forgeries)\n",
        frames_total as u64, forgeries as u64,
    ));
    out.push_str(&format!(
        "  sessions  {:>14} active\n",
        value(scrape, "ctc_sessions_active") as u64,
    ));

    // Latency: interval percentiles when a previous scrape exists (the
    // histogram delta isolates just the last interval's observations),
    // all-time otherwise.
    if let Some(hist) = scrape.histogram("ctc_gateway_latency_us", &[]) {
        let (window, tag) = match prev.and_then(|(s, _)| s.histogram("ctc_gateway_latency_us", &[]))
        {
            Some(base) => (hist.delta_from(&base), "interval"),
            None => (Some(hist), "all-time"),
        };
        match window.filter(|h| h.count() > 0) {
            Some(h) => out.push_str(&format!(
                "  latency   p50 {:.0} µs   p99 {:.0} µs   ({} bursts, {tag})\n",
                h.quantile(0.5).unwrap_or(0.0),
                h.quantile(0.99).unwrap_or(0.0),
                h.count(),
            )),
            None => out.push_str(&format!("  latency   (no bursts this {tag})\n")),
        }
    }

    // Per-stream table: everything carrying a {stream="..."} label.
    let streams = scrape.label_values("ctc_gateway_samples_total", "stream");
    if !streams.is_empty() {
        out.push_str("\n  stream                 samples     frames  forgeries      drops\n");
        for stream in &streams {
            let labels: &[(&str, &str)] = &[("stream", stream)];
            let frames: f64 = scrape
                .family("ctc_gateway_frames_total")
                .filter(|s| s.label("stream") == Some(stream))
                .map(|s| s.value)
                .sum();
            out.push_str(&format!(
                "  {stream:<20} {:>9} {:>10} {:>10} {:>10}\n",
                scrape
                    .value("ctc_gateway_samples_total", labels)
                    .unwrap_or(0.0) as u64,
                frames as u64,
                scrape
                    .value(
                        "ctc_gateway_frames_total",
                        &[("stream", stream), ("verdict", "attack")]
                    )
                    .unwrap_or(0.0) as u64,
                scrape
                    .value("ctc_queue_dropped_total", labels)
                    .unwrap_or(0.0) as u64,
            ));
        }
    }

    // Detector-score movement: latest gauge per feature, with the change
    // since the previous frame when one exists.
    let features = scrape.label_values("ctc_detector_score", "feature");
    if !features.is_empty() {
        out.push_str("\n  feature                  score   movement\n");
        for feature in &features {
            let labels: &[(&str, &str)] = &[("feature", feature)];
            let now = scrape.value("ctc_detector_score", labels).unwrap_or(0.0);
            let movement = match prev {
                Some((before, _)) => {
                    let delta = now - before.value("ctc_detector_score", labels).unwrap_or(0.0);
                    format!("{delta:+10.4}")
                }
                None => format!("{:>10}", "—"),
            };
            out.push_str(&format!("  {feature:<20} {now:>9.4} {movement}\n"));
        }
    }
    out
}

/// `obs top --addr HOST:PORT`: live terminal view over a monitor's
/// Prometheus endpoint.
fn cmd_obs_top(args: &Args) -> Result<ExitCode, String> {
    use std::io::{IsTerminal, Write};

    let addr = args.require("addr")?;
    let interval = match args.get("interval") {
        Some(v) => parse_duration(v)?,
        None => Duration::from_secs(2),
    };
    // --count N renders N frames then exits (scripts/tests); the default
    // is to run until interrupted.
    let count = args.parse_num::<u64>("count")?;
    let clear = std::io::stdout().is_terminal();

    let mut prev: Option<(ctc_obs::Scrape, std::time::Instant)> = None;
    let mut frames = 0u64;
    loop {
        let scrape = ctc_obs::Scrape::fetch(addr).map_err(|e| format!("scraping {addr}: {e}"))?;
        let now = std::time::Instant::now();
        let frame = render_top(&scrape, prev.as_ref().map(|(s, t)| (s, now - *t)));
        let mut stdout = std::io::stdout().lock();
        if clear {
            // Clear + home: repaint in place like top(1). Piped output
            // gets plain frames back to back instead.
            let _ = write!(stdout, "\x1b[2J\x1b[H");
        }
        let _ = stdout.write_all(frame.as_bytes());
        let _ = stdout.flush();
        drop(stdout);
        prev = Some((scrape, now));
        frames += 1;
        if count.is_some_and(|c| frames >= c) {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(interval);
    }
}

fn cmd_vectors(argv: &[String]) -> Result<ExitCode, String> {
    let Some((action, rest)) = argv.split_first() else {
        return Err("vectors needs an action: generate, check, or diff".into());
    };
    let args = Args::parse(rest)?;
    let dir = Path::new(args.get("dir").unwrap_or("vectors")).to_path_buf();
    match action.as_str() {
        "generate" => {
            let mut spec = ctc_vectors::CorpusSpec::default();
            if let Some(seed) = args.parse_num::<u64>("seed")? {
                spec.seed = seed;
            }
            let vectors =
                ctc_vectors::generate(&spec).map_err(|e| format!("generation failed: {e}"))?;
            ctc_vectors::write_corpus(&dir, &spec, &vectors)
                .map_err(|e| format!("writing {}: {e}", dir.display()))?;
            println!(
                "wrote {} vectors + manifest to {} (seed {})",
                vectors.len(),
                dir.display(),
                spec.seed
            );
            for v in &vectors {
                println!(
                    "  {:<18} {:>8} {:<8} [{}]",
                    v.name,
                    v.payload.len(),
                    v.payload.kind().name(),
                    v.tolerance.describe()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => match ctc_vectors::check_corpus(&dir) {
            Ok(reports) => {
                for r in &reports {
                    println!("ok  {r}");
                }
                println!("{} stages within tolerance", reports.len());
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => Err(format!("golden-vector check FAILED: {e}")),
        },
        "diff" => {
            let diffs = ctc_vectors::diff_corpus(&dir).map_err(|e| format!("diff failed: {e}"))?;
            let mut diverged = 0usize;
            for d in &diffs {
                match (&d.report, &d.first_divergence) {
                    (Some(r), None) => println!("ok    {r}"),
                    (Some(r), Some(first)) => {
                        diverged += 1;
                        println!("DIFF  {r}");
                        println!("      {first}");
                    }
                    (None, Some(first)) => {
                        diverged += 1;
                        println!("DIFF  {first}");
                    }
                    (None, None) => unreachable!("deviation yields a report or a divergence"),
                }
            }
            if diverged == 0 {
                println!("{} stages bit-compatible or within tolerance", diffs.len());
                Ok(ExitCode::SUCCESS)
            } else {
                Ok(ExitCode::FAILURE)
            }
        }
        other => Err(format!(
            "unknown vectors action {other:?} (expected generate, check, or diff)"
        )),
    }
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(USAGE.into());
    };
    // `vectors` and `obs` take a positional action, so they parse their
    // own tails.
    if cmd == "vectors" {
        return cmd_vectors(rest);
    }
    if cmd == "obs" {
        return cmd_obs(rest);
    }
    if cmd == "detector" {
        return cmd_detector(rest);
    }
    let args = Args::parse(rest)?;
    let ok = |()| ExitCode::SUCCESS;
    match cmd.as_str() {
        "generate" => cmd_generate(&args).map(ok),
        "emulate" => cmd_emulate(&args).map(ok),
        "capture" => cmd_capture(&args).map(ok),
        "decode" => cmd_decode(&args).map(ok),
        "detect" => cmd_detect(&args),
        "listen" => cmd_listen(&args).map(ok),
        "monitor" => cmd_monitor(&args),
        "loadgen" => cmd_loadgen(&args),
        "spectrum" => cmd_spectrum(&args).map(ok),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args(&["--input", "x.cf32", "--soft", "--search", "96"]);
        assert_eq!(a.get("input"), Some("x.cf32"));
        assert!(a.flag("soft"));
        assert_eq!(a.parse_num::<usize>("search").unwrap(), Some(96));
        assert_eq!(a.get("missing"), None);
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn rejects_positional_arguments() {
        let r = Args::parse(&["oops".to_string()]);
        assert!(r.is_err());
    }

    #[test]
    fn bad_number_reports_key() {
        let a = args(&["--threshold", "abc"]);
        let e = a.parse_num::<f64>("threshold").unwrap_err();
        assert!(e.contains("threshold"));
    }

    #[test]
    fn emulator_mode_validation() {
        let a = args(&["--mode", "nonsense"]);
        assert!(emulator_from(&a).is_err());
        let a = args(&["--mode", "carrier", "--subcarriers", "5"]);
        assert!(emulator_from(&a).is_ok());
    }

    #[test]
    fn receiver_options() {
        let a = args(&["--soft", "--fractional", "--search", "64"]);
        assert!(receiver_from(&a).is_ok());
    }

    #[test]
    fn duration_suffixes() {
        assert_eq!(parse_duration("60s").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("0.5").unwrap(), Duration::from_secs_f64(0.5));
        assert!(parse_duration("0s").is_err());
        assert!(parse_duration("-3s").is_err());
        assert!(parse_duration("soon").is_err());
    }

    #[test]
    fn detector_spec_parsing() {
        let det = Detector::default();
        assert!(pipeline_from(&args(&[]), det).unwrap().is_none());
        let a = args(&["--detector", "cumulant"]);
        assert!(pipeline_from(&a, det).unwrap().is_none());
        let a = args(&["--detector", "features"]);
        assert!(pipeline_from(&a, det).unwrap().is_some());
        let a = args(&["--detector", "nonsense"]);
        assert!(pipeline_from(&a, det).is_err());
        let a = args(&["--detector", "model:/no/such/file"]);
        assert!(pipeline_from(&a, det)
            .unwrap_err()
            .contains("reading model"));
    }

    #[test]
    fn flight_flags() {
        let options = flight_options_from(&args(&[])).unwrap().unwrap();
        assert!(options.out.is_none());
        assert_eq!(options.capacity, ctc_obs::FlightRecorder::DEFAULT_CAPACITY);

        let a = args(&[
            "--flight-out",
            "x.json",
            "--flight-capacity",
            "64",
            "--flight-events",
            "16",
            "--flight-drop-budget",
            "8",
        ]);
        let options = flight_options_from(&a).unwrap().unwrap();
        assert_eq!(options.out.as_deref(), Some(Path::new("x.json")));
        assert_eq!(options.capacity, 64);
        assert_eq!(options.max_events, 16);
        assert_eq!(options.drop_budget, Some(8));

        // Capacity 0 compiles the recorder out of the run entirely.
        let a = args(&["--flight-capacity", "0"]);
        assert!(flight_options_from(&a).unwrap().is_none());
    }

    #[test]
    fn incident_report_renders_every_section() {
        let doc = ctc_gateway::json::parse(
            r#"{"type":"ctc_incident","version":1,"trigger":"forgery","t_us":5120,
                "ring":{"capacity":1024,"recorded":7},
                "events":[
                  {"t_us":100,"kind":"session_open","session":1,"seq":0,"shard":0},
                  {"t_us":200,"kind":"burst","session":1,"seq":0,"start":700,"samples":520},
                  {"t_us":300,"kind":"stage","session":1,"seq":0,"stage":"decode","dur_us":40},
                  {"t_us":400,"kind":"verdict","session":1,"seq":0,"decoded":true,
                   "attack":true,"accepted_forgery":true,"de2":0.41,"fused":0.87,
                   "scores":{"de2_ideal":0.41}}],
                "stages":{"decode":{"count":1,"p50_us":40,"p99_us":40,"max_us":40}},
                "registry":[{"name":"ctc_gateway_bursts_total","labels":{},"value":1}],
                "delta":[{"name":"ctc_gateway_frames_total",
                          "labels":{"verdict":"attack"},"before":0,"after":1,"delta":1}],
                "sessions":[{"id":1,"stream":"uplink","shard":0,"samples_in":4096,
                             "bursts":1,"frames_decoded":1,"forgeries":1,"bursts_dropped":0}],
                "config":{"workers":2,"queue_depth":16},
                "dump_seq":1}"#,
        )
        .unwrap();
        let text = render_incident(&doc).unwrap();
        assert!(text.contains("trigger=forgery"), "{text}");
        assert!(text.contains("dump #1"), "{text}");
        assert!(text.contains("stream=uplink"), "{text}");
        assert!(text.contains("decode"), "{text}");
        assert!(text.contains("p50=40"), "{text}");
        assert!(text.contains("accepted_forgery=true"), "{text}");
        assert!(text.contains("de2_ideal:0.4100"), "{text}");
        assert!(
            text.contains("ctc_gateway_frames_total{verdict=\"attack\"} 0 -> 1 (+1)"),
            "{text}"
        );
        assert!(render_incident(&ctc_gateway::json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn top_renders_rates_and_streams_from_scrape_pairs() {
        let before = ctc_obs::Scrape::parse(
            "ctc_gateway_samples_total 1000\n\
             ctc_gateway_bursts_total 1\n\
             ctc_gateway_frames_total{verdict=\"authentic\"} 1\n\
             ctc_gateway_frames_total{verdict=\"attack\"} 0\n\
             ctc_sessions_active 1\n\
             ctc_detector_score{feature=\"de2_ideal\"} 0.10\n\
             ctc_gateway_latency_us_bucket{le=\"100\"} 1\n\
             ctc_gateway_latency_us_bucket{le=\"+Inf\"} 1\n\
             ctc_gateway_latency_us_sum 80\n\
             ctc_gateway_latency_us_count 1\n",
        )
        .unwrap();
        let after = ctc_obs::Scrape::parse(
            "ctc_gateway_samples_total 3000\n\
             ctc_gateway_bursts_total 3\n\
             ctc_gateway_frames_total{verdict=\"authentic\"} 2\n\
             ctc_gateway_frames_total{verdict=\"attack\"} 1\n\
             ctc_gateway_samples_total{stream=\"uplink\"} 3000\n\
             ctc_gateway_frames_total{stream=\"uplink\",verdict=\"attack\"} 1\n\
             ctc_queue_dropped_total{stream=\"uplink\"} 2\n\
             ctc_sessions_active 1\n\
             ctc_detector_score{feature=\"de2_ideal\"} 0.45\n\
             ctc_gateway_latency_us_bucket{le=\"100\"} 3\n\
             ctc_gateway_latency_us_bucket{le=\"+Inf\"} 3\n\
             ctc_gateway_latency_us_sum 240\n\
             ctc_gateway_latency_us_count 3\n",
        )
        .unwrap();

        // First frame: totals only, no rate column yet.
        let first = render_top(&after, None);
        assert!(first.contains("3000"), "{first}");
        assert!(first.contains("(1 forgeries)"), "{first}");
        assert!(first.contains("uplink"), "{first}");
        assert!(first.contains("all-time"), "{first}");

        // Second frame: 2000 samples over 2 s = 1000/s, score moved.
        let frame = render_top(&after, Some((&before, Duration::from_secs(2))));
        assert!(frame.contains("1000/s"), "{frame}");
        assert!(frame.contains("interval"), "{frame}");
        assert!(frame.contains("+0.3500"), "{frame}");
    }

    #[test]
    fn loadgen_spec_flags() {
        let a = args(&[
            "--connect",
            "tcp://127.0.0.1:9000",
            "--streams",
            "32",
            "--mix",
            "1:1:0",
            "--rate",
            "0",
            "--seed",
            "42",
        ]);
        let spec = fleet_spec_from(&a).unwrap();
        assert_eq!(spec.streams, 32);
        assert_eq!(spec.mix.to_string(), "1:1:0");
        assert_eq!(spec.rate_msps, 0.0);
        assert_eq!(spec.seed, 42);

        let bad = args(&["--mix", "1:2"]);
        assert!(fleet_spec_from(&bad).unwrap_err().contains("--mix"));
        let bad = args(&["--streams", "0"]);
        assert!(fleet_spec_from(&bad).is_err());
    }
}
