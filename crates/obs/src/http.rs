//! A tiny blocking HTTP responder for metrics exposition, plus a one-shot
//! client for `ctc obs dump --addr`.
//!
//! This is deliberately not a web framework: one listener thread, one
//! request per connection, `GET /metrics` (and `/`) answered with the
//! registry rendered as Prometheus text, anything else a 404. That is all
//! a scraper needs, and it keeps the dependency count at zero.

use crate::registry::Registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running metrics endpoint. The listener thread is detached and serves
/// until the process exits or [`shutdown`](MetricsServer::shutdown) is
/// called; dropping the handle does *not* stop it (the monitor serves for
/// its whole lifetime).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl MetricsServer {
    /// The bound address — useful when serving on port `0`.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the listener thread to exit after its next accepted (or
    /// self-made) connection.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9100`; port `0` picks a free port) and
/// serves `registry` from a detached thread.
pub fn serve(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    std::thread::Builder::new()
        .name("ctc-obs-http".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // One slow scraper must not wedge the endpoint forever.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let _ = handle(stream, &registry);
            }
        })
        .expect("spawn metrics listener");
    Ok(MetricsServer { addr: bound, stop })
}

fn handle(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so the client sees a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "method not allowed\n",
        );
    }
    let path = path.split('?').next().unwrap_or("");
    if path == "/metrics" || path == "/" {
        respond(&mut stream, "200 OK", &registry.render())
    } else {
        respond(&mut stream, "404 Not Found", "try /metrics\n")
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Fetches `/metrics` from a running endpoint and returns the body
/// (one-shot HTTP/1.0-style client for `ctc obs dump --addr`).
pub fn fetch_text(addr: &str) -> std::io::Result<String> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
    })?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::other(format!("endpoint returned {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let registry = Arc::new(Registry::new());
        registry
            .counter("ctc_http_test_total", "Exercised by the HTTP test.")
            .add(42);
        let server = serve("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
        let addr = server.addr().to_string();

        let body = fetch_text(&addr).expect("fetch");
        assert!(body.contains("ctc_http_test_total 42"), "{body}");
        assert!(body.contains("# TYPE ctc_http_test_total counter"));

        // A scrape sees updated values, not a snapshot from serve() time.
        registry.counter("ctc_http_test_total", "").add(1);
        assert!(fetch_text(&addr)
            .unwrap()
            .contains("ctc_http_test_total 43"));

        // Non-/metrics paths 404 but keep the connection protocol intact.
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(stream, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");

        server.shutdown();
    }
}
