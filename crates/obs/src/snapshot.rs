//! The incident-snapshot format: one self-contained JSON document
//! describing what the system was doing when a trigger fired.
//!
//! A snapshot bundles everything an operator needs to answer "why did
//! the detector fire (or miss)?" after the fact, without shell access
//! to the box that produced it:
//!
//! - the last N [`flight`](crate::flight) journal events, ending at the
//!   triggering event (verdicts carry their per-feature scores inline),
//! - a per-stage latency breakdown computed from the journaled stage
//!   events,
//! - a full registry snapshot (every sample of the Prometheus
//!   exposition, as typed JSON) plus a delta against the run's
//!   baseline scrape, isolating what moved,
//! - caller-provided raw sections (session table, effective config).
//!
//! [`registry_json`] is the single serializer for exposition samples:
//! incident snapshots, loadgen breach reports, and `ctc obs dump
//! --json` all emit the same shape. The writer here is deliberately
//! minimal — `ctc-obs` sits below the gateway, so it cannot borrow the
//! gateway's JSON builder.

use crate::flight::{stage_name, EventKind, FlightEvent, FlightRecorder, STAGE_NAMES};
use crate::scrape::{Scrape, ScrapeSample};
use std::collections::BTreeMap;

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number; non-finite values (legal in Prometheus
/// exposition, illegal in JSON) become `null`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_labels(out: &mut String, labels: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, k);
        out.push(':');
        push_json_string(out, v);
    }
    out.push('}');
}

fn push_sample(out: &mut String, s: &ScrapeSample) {
    out.push_str("{\"name\":");
    push_json_string(out, &s.name);
    out.push_str(",\"labels\":");
    push_labels(out, &s.labels);
    out.push_str(",\"value\":");
    push_json_f64(out, s.value);
    out.push('}');
}

/// Serializes every sample of a scrape as a JSON array — the registry
/// section of incident snapshots, and the body of `ctc obs dump --json`.
pub fn registry_json(scrape: &Scrape) -> String {
    let mut out = String::from("[");
    for (i, s) in scrape.samples().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_sample(&mut out, s);
    }
    out.push(']');
    out
}

/// A stable identity for one sample: name plus sorted label pairs.
fn sample_key(s: &ScrapeSample) -> String {
    let mut labels: Vec<(&str, &str)> = s
        .labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    labels.sort_unstable();
    let mut key = s.name.clone();
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

/// Serializes the samples that *changed* between two scrapes of the
/// same registry, as `{"name","labels","before","after","delta"}`
/// objects. Samples absent from the baseline report `"before": 0`.
pub fn registry_delta_json(baseline: &Scrape, now: &Scrape) -> String {
    let base: BTreeMap<String, f64> = baseline
        .samples()
        .iter()
        .map(|s| (sample_key(s), s.value))
        .collect();
    let mut out = String::from("[");
    let mut first = true;
    for s in now.samples() {
        let before = base.get(&sample_key(s)).copied().unwrap_or(0.0);
        let same = s.value == before || (s.value.is_nan() && before.is_nan());
        if same {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        push_json_string(&mut out, &s.name);
        out.push_str(",\"labels\":");
        push_labels(&mut out, &s.labels);
        out.push_str(",\"before\":");
        push_json_f64(&mut out, before);
        out.push_str(",\"after\":");
        push_json_f64(&mut out, s.value);
        out.push_str(",\"delta\":");
        push_json_f64(&mut out, s.value - before);
        out.push('}');
    }
    out.push(']');
    out
}

/// Serializes one journal event with kind-specific field names (stage
/// ids become names, verdict flag bits become booleans, per-feature
/// scores are keyed by `feature_names` where available).
pub fn event_json(ev: &FlightEvent, feature_names: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\"t_us\":");
    out.push_str(&ev.t_us.to_string());
    out.push_str(",\"kind\":");
    push_json_string(&mut out, ev.kind.name());
    out.push_str(",\"session\":");
    out.push_str(&ev.session.to_string());
    out.push_str(",\"seq\":");
    out.push_str(&ev.seq.to_string());
    match ev.kind {
        EventKind::SessionOpen => {
            out.push_str(",\"shard\":");
            out.push_str(&ev.a.to_string());
        }
        EventKind::SessionClose => {
            out.push_str(",\"error\":");
            out.push_str(if ev.a == 1 { "true" } else { "false" });
        }
        EventKind::Burst => {
            out.push_str(",\"start\":");
            out.push_str(&ev.a.to_string());
            out.push_str(",\"samples\":");
            out.push_str(&ev.b.to_string());
        }
        EventKind::Stage => {
            out.push_str(",\"stage\":");
            push_json_string(&mut out, stage_name(ev.a));
            out.push_str(",\"dur_us\":");
            out.push_str(&ev.b.to_string());
        }
        EventKind::Verdict => {
            out.push_str(",\"decoded\":");
            out.push_str(bool_str(ev.a & FlightEvent::VERDICT_DECODED != 0));
            out.push_str(",\"attack\":");
            out.push_str(bool_str(ev.a & FlightEvent::VERDICT_ATTACK != 0));
            out.push_str(",\"accepted_forgery\":");
            out.push_str(bool_str(ev.a & FlightEvent::VERDICT_ACCEPTED != 0));
            out.push_str(",\"de2\":");
            push_json_f64(&mut out, f64::from_bits(ev.b));
            out.push_str(",\"fused\":");
            push_json_f64(&mut out, ev.fused);
            out.push_str(",\"scores\":{");
            for (i, v) in ev.feature_scores().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match feature_names.get(i) {
                    Some(name) => push_json_string(&mut out, name),
                    None => push_json_string(&mut out, &format!("f{i}")),
                }
                out.push(':');
                push_json_f64(&mut out, *v);
            }
            out.push('}');
        }
        EventKind::Drop => {
            out.push_str(",\"samples\":");
            out.push_str(&ev.a.to_string());
            out.push_str(",\"queued_us\":");
            out.push_str(&ev.b.to_string());
        }
        EventKind::QueueDepth => {
            out.push_str(",\"depth\":");
            out.push_str(&ev.a.to_string());
            out.push_str(",\"shard\":");
            out.push_str(&ev.b.to_string());
        }
        EventKind::SloCheck => {
            out.push_str(",\"pass\":");
            out.push_str(bool_str(ev.a == 1));
            out.push_str(",\"value\":");
            push_json_f64(&mut out, f64::from_bits(ev.b));
        }
    }
    out.push('}');
    out
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

/// Per-stage latency summary computed from the journaled [`EventKind::
/// Stage`] durations in the snapshot window.
fn stages_json(events: &[FlightEvent]) -> String {
    let mut per_stage: Vec<Vec<u64>> = vec![Vec::new(); STAGE_NAMES.len()];
    for ev in events {
        if ev.kind == EventKind::Stage {
            if let Some(durs) = per_stage.get_mut(ev.a as usize) {
                durs.push(ev.b);
            }
        }
    }
    let mut out = String::from("{");
    let mut first = true;
    for (id, durs) in per_stage.iter_mut().enumerate() {
        if durs.is_empty() {
            continue;
        }
        durs.sort_unstable();
        // Nearest-rank percentile: the smallest duration with at least
        // q·n observations at or below it.
        let pct = |q: f64| {
            let rank = ((q * durs.len() as f64).ceil() as usize).max(1);
            durs[rank.min(durs.len()) - 1]
        };
        if !first {
            out.push(',');
        }
        first = false;
        push_json_string(&mut out, stage_name(id as u64));
        out.push_str(&format!(
            ":{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            durs.len(),
            pct(0.50),
            pct(0.99),
            durs[durs.len() - 1]
        ));
    }
    out.push('}');
    out
}

/// Builds one incident snapshot from a recorder plus whatever context
/// the caller has: current exposition, baseline exposition, raw JSON
/// sections (session table, effective config). [`render`](
/// SnapshotBuilder::render) produces the final document.
pub struct SnapshotBuilder<'a> {
    recorder: &'a FlightRecorder,
    trigger: String,
    until: Option<u64>,
    max_events: usize,
    now_text: Option<String>,
    baseline_text: Option<String>,
    sections: Vec<(String, String)>,
}

impl<'a> SnapshotBuilder<'a> {
    /// Default cap on events embedded per snapshot.
    pub const DEFAULT_MAX_EVENTS: usize = 256;

    /// A snapshot of `recorder`, attributed to `trigger` (`"forgery"`,
    /// `"drop_budget"`, `"slo_breach"`, `"sigusr1"`).
    pub fn new(recorder: &'a FlightRecorder, trigger: &str) -> SnapshotBuilder<'a> {
        SnapshotBuilder {
            recorder,
            trigger: trigger.to_string(),
            until: None,
            max_events: SnapshotBuilder::DEFAULT_MAX_EVENTS,
            now_text: None,
            baseline_text: None,
            sections: Vec::new(),
        }
    }

    /// Ends the journal window at `ticket` (the triggering event), so
    /// the last embedded event is the trigger even while other threads
    /// keep journaling.
    pub fn until_ticket(mut self, ticket: u64) -> SnapshotBuilder<'a> {
        self.until = Some(ticket);
        self
    }

    /// Caps how many journal events the snapshot embeds (the newest
    /// survive).
    pub fn max_events(mut self, n: usize) -> SnapshotBuilder<'a> {
        self.max_events = n.max(1);
        self
    }

    /// Attaches the current registry exposition text; parsed into the
    /// snapshot's `registry` section.
    pub fn exposition(mut self, text: &str) -> SnapshotBuilder<'a> {
        self.now_text = Some(text.to_string());
        self
    }

    /// Attaches the run's baseline exposition text; combined with
    /// [`exposition`](SnapshotBuilder::exposition) into the `delta`
    /// section.
    pub fn baseline(mut self, text: &str) -> SnapshotBuilder<'a> {
        self.baseline_text = Some(text.to_string());
        self
    }

    /// Adds a raw pre-rendered JSON value under `key` (session table,
    /// effective config, dump sequence…). The value is embedded
    /// verbatim — it must already be valid JSON.
    pub fn section(mut self, key: &str, raw_json: &str) -> SnapshotBuilder<'a> {
        self.sections.push((key.to_string(), raw_json.to_string()));
        self
    }

    /// Renders the snapshot document.
    pub fn render(&self) -> String {
        let mut events = self.recorder.events_until(self.until);
        if events.len() > self.max_events {
            events.drain(..events.len() - self.max_events);
        }
        let names = self.recorder.feature_names();

        let mut out = String::from("{\"type\":\"ctc_incident\",\"version\":1,\"trigger\":");
        push_json_string(&mut out, &self.trigger);
        out.push_str(&format!(
            ",\"t_us\":{},\"ring\":{{\"capacity\":{},\"recorded\":{}}}",
            self.recorder.now_us(),
            self.recorder.capacity(),
            self.recorder.recorded()
        ));
        out.push_str(",\"events\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event_json(ev, &names));
        }
        out.push(']');
        out.push_str(",\"stages\":");
        out.push_str(&stages_json(&events));
        let parsed_now = self.now_text.as_deref().map(Scrape::parse);
        let parsed_base = self.baseline_text.as_deref().map(Scrape::parse);
        if let Some(Ok(now)) = &parsed_now {
            out.push_str(",\"registry\":");
            out.push_str(&registry_json(now));
            if let Some(Ok(base)) = &parsed_base {
                out.push_str(",\"delta\":");
                out.push_str(&registry_delta_json(base, now));
            }
        }
        for (key, raw) in &self.sections {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            out.push_str(raw);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::EventKind;
    use crate::Registry;

    #[test]
    fn registry_json_carries_every_sample() {
        let r = Registry::new();
        r.counter_with("ctc_frames_total", "", &[("verdict", "attack")])
            .add(2);
        r.gauge("ctc_depth", "").set(9);
        let scrape = Scrape::parse(&r.render()).unwrap();
        let json = registry_json(&scrape);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(
            "{\"name\":\"ctc_frames_total\",\"labels\":{\"verdict\":\"attack\"},\"value\":2}"
        ));
        assert!(json.contains("{\"name\":\"ctc_depth\",\"labels\":{},\"value\":9}"));
    }

    #[test]
    fn non_finite_sample_values_become_null() {
        let scrape = Scrape::parse("x_score NaN\ny_score +Inf\n").unwrap();
        let json = registry_json(&scrape);
        assert!(json.contains("{\"name\":\"x_score\",\"labels\":{},\"value\":null}"));
        assert!(json.contains("{\"name\":\"y_score\",\"labels\":{},\"value\":null}"));
    }

    #[test]
    fn delta_reports_only_what_moved() {
        let base = Scrape::parse("a_total 1\nb_total 5\n").unwrap();
        let now = Scrape::parse("a_total 1\nb_total 9\nc_total 2\n").unwrap();
        let json = registry_delta_json(&base, &now);
        assert!(!json.contains("a_total"), "unchanged sample leaked: {json}");
        assert!(json
            .contains("{\"name\":\"b_total\",\"labels\":{},\"before\":5,\"after\":9,\"delta\":4}"));
        assert!(json
            .contains("{\"name\":\"c_total\",\"labels\":{},\"before\":0,\"after\":2,\"delta\":2}"));
    }

    #[test]
    fn verdict_events_render_named_scores() {
        let rec = FlightRecorder::with_capacity(8);
        rec.set_feature_names(vec!["de2_ideal".into(), "psd_flatness".into()]);
        let ev = FlightEvent::new(EventKind::Verdict, 3, 7, 42)
            .with_args(
                FlightEvent::VERDICT_DECODED
                    | FlightEvent::VERDICT_ATTACK
                    | FlightEvent::VERDICT_ACCEPTED,
                0.5f64.to_bits(),
            )
            .with_scores(0.51, [0.5, 0.6, 0.7]);
        let json = event_json(&ev, &rec.feature_names());
        assert!(json.contains("\"kind\":\"verdict\""));
        assert!(json.contains("\"accepted_forgery\":true"));
        assert!(json.contains("\"de2\":0.5"));
        assert!(json.contains("\"scores\":{\"de2_ideal\":0.5,\"psd_flatness\":0.6,\"f2\":0.7}"));
    }

    #[test]
    fn snapshot_bounds_at_trigger_and_summarizes_stages() {
        let rec = FlightRecorder::with_capacity(32);
        rec.record(FlightEvent::new(EventKind::Stage, 1, 0, 5).with_args(2, 40));
        rec.record(FlightEvent::new(EventKind::Stage, 1, 0, 6).with_args(2, 60));
        let trigger = rec.record(
            FlightEvent::new(EventKind::Verdict, 1, 0, 7)
                .with_args(FlightEvent::VERDICT_ACCEPTED, 0),
        );
        rec.record(FlightEvent::new(EventKind::Burst, 1, 1, 8));

        let json = SnapshotBuilder::new(&rec, "forgery")
            .until_ticket(trigger)
            .section("dump_seq", "1")
            .render();
        assert!(json.contains("\"trigger\":\"forgery\""));
        assert!(
            !json.contains("\"kind\":\"burst\""),
            "post-trigger event leaked"
        );
        assert!(
            json.trim_end_matches('}').contains("\"kind\":\"verdict\""),
            "trigger verdict missing"
        );
        // The verdict is the LAST event in the array.
        let events_part = json.split("\"events\":[").nth(1).unwrap();
        let events_part = events_part.split("],\"stages\"").next().unwrap();
        assert!(events_part.ends_with('}'));
        assert!(events_part.rsplit('{').next().is_some());
        let last_obj = &events_part[events_part.rfind("{\"t_us\"").unwrap()..];
        assert!(last_obj.contains("\"kind\":\"verdict\""));
        assert!(json.contains("\"decode\":{\"count\":2,\"p50_us\":40,\"p99_us\":60,\"max_us\":60}"));
        assert!(json.contains("\"dump_seq\":1"));
    }

    #[test]
    fn snapshot_embeds_registry_and_delta() {
        let rec = FlightRecorder::with_capacity(8);
        let json = SnapshotBuilder::new(&rec, "sigusr1")
            .baseline("x_total 1\n")
            .exposition("x_total 4\n")
            .render();
        assert!(json.contains("\"registry\":[{\"name\":\"x_total\",\"labels\":{},\"value\":4}]"));
        assert!(json.contains(
            "\"delta\":[{\"name\":\"x_total\",\"labels\":{},\"before\":1,\"after\":4,\"delta\":3}]"
        ));
    }
}
