//! Always-on, bounded-memory flight recorder: a lock-free ring journal
//! of compact structured events, dumped as an incident snapshot when
//! something goes wrong.
//!
//! Aggregate counters answer "how much"; they cannot answer "what was
//! the system doing in the seconds before the detector fired?". The
//! [`FlightRecorder`] keeps the last `capacity` events — burst arrivals,
//! per-stage span boundaries, detector verdicts with per-feature scores,
//! queue-depth samples, drops, session opens/closes — in a fixed block
//! of atomics, overwriting the oldest. Recording is wait-free and
//! allocation-free: a writer claims a ticket with one `fetch_add`, then
//! publishes the event's words through a per-slot sequence stamp
//! (seqlock style), so readers detect and discard slots torn by a
//! concurrent overwrite instead of locking writers out.
//!
//! Memory is bounded by construction: `capacity × ~200 bytes`,
//! allocated once. The default capacity ([`FlightRecorder::
//! DEFAULT_CAPACITY`]) journals roughly the last thousand events —
//! several seconds of context at gateway burst rates — for ~200 KiB.
//!
//! Reading ([`FlightRecorder::events`]) is the cold path: it copies
//! whatever window of tickets is still live, validating each slot's
//! stamp before and after the copy. [`FlightRecorder::events_until`]
//! bounds the window at a specific ticket, so an incident snapshot can
//! end *exactly* at its triggering event even while other threads keep
//! journaling.
//!
//! ```
//! use ctc_obs::flight::{EventKind, FlightEvent, FlightRecorder};
//!
//! let rec = FlightRecorder::with_capacity(64);
//! let ticket = rec.record(
//!     FlightEvent::new(EventKind::Verdict, 1, 7, rec.now_us()).with_args(0b11, 0),
//! );
//! let events = rec.events_until(Some(ticket));
//! assert_eq!(events.last().unwrap().kind, EventKind::Verdict);
//! ```

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum per-feature scores carried inline by one event. The detector
/// ensemble has 16 named features; anything past that is truncated
/// rather than allocated.
pub const MAX_EVENT_SCORES: usize = 16;

/// Words per slot: timestamp, kind, session, seq, two kind-specific
/// args, the fused score, a score count, and the inline score array.
const SLOT_WORDS: usize = 8 + MAX_EVENT_SCORES;

const W_T_US: usize = 0;
const W_KIND: usize = 1;
const W_SESSION: usize = 2;
const W_SEQ: usize = 3;
const W_A: usize = 4;
const W_B: usize = 5;
const W_FUSED: usize = 6;
const W_NSCORES: usize = 7;
const W_SCORES: usize = 8;

/// What one journal entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A stream session opened (`a` = shard index).
    SessionOpen = 1,
    /// A stream session closed (`a` = 1 when it ended in error).
    SessionClose = 2,
    /// A burst capture closed at ingest (`a` = start sample offset,
    /// `b` = samples in the capture).
    Burst = 3,
    /// One pipeline stage boundary (`a` = stage id, see [`stage_name`];
    /// `b` = duration in µs).
    Stage = 4,
    /// A detector verdict (`a` = flag bits, see [`FlightEvent::
    /// VERDICT_DECODED`] and friends; `b` = DE² statistic bits; fused
    /// score and per-feature scores inline).
    Verdict = 5,
    /// A burst shed by the drop-oldest queue (`a` = samples lost,
    /// `b` = µs it sat queued before being shed).
    Drop = 6,
    /// A queue-depth sample at enqueue time (`a` = depth after the
    /// push, `b` = shard index).
    QueueDepth = 7,
    /// One loadgen SLO check evaluation (`a` = 1 when the check passed,
    /// `b` = observed value bits; `seq` = check index).
    SloCheck = 8,
}

impl EventKind {
    /// Stable lowercase name used in snapshot JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SessionOpen => "session_open",
            EventKind::SessionClose => "session_close",
            EventKind::Burst => "burst",
            EventKind::Stage => "stage",
            EventKind::Verdict => "verdict",
            EventKind::Drop => "drop",
            EventKind::QueueDepth => "queue_depth",
            EventKind::SloCheck => "slo_check",
        }
    }

    fn from_u64(w: u64) -> Option<EventKind> {
        Some(match w {
            1 => EventKind::SessionOpen,
            2 => EventKind::SessionClose,
            3 => EventKind::Burst,
            4 => EventKind::Stage,
            5 => EventKind::Verdict,
            6 => EventKind::Drop,
            7 => EventKind::QueueDepth,
            8 => EventKind::SloCheck,
            _ => return None,
        })
    }
}

/// Pipeline stage ids carried by [`EventKind::Stage`] events. The table
/// mirrors the span stages the trace sink records.
pub const STAGE_NAMES: [&str; 6] = ["ingest", "queue", "decode", "classify", "emit", "drop"];

/// The id of a named pipeline stage (unknown names map to the last id).
pub fn stage_id(name: &str) -> u64 {
    STAGE_NAMES
        .iter()
        .position(|s| *s == name)
        .unwrap_or(STAGE_NAMES.len() - 1) as u64
}

/// The name of a stage id (out-of-range ids render as `"stage?"`).
pub fn stage_name(id: u64) -> &'static str {
    STAGE_NAMES.get(id as usize).copied().unwrap_or("stage?")
}

/// One decoded journal entry. Fixed-size and `Copy`: events are built
/// on the stack and stored wordwise, never boxed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Microseconds since the recorder's epoch (its construction).
    pub t_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// The session the event belongs to (0 when process-wide).
    pub session: u64,
    /// The burst sequence number within the session (0 when n/a).
    pub seq: u64,
    /// First kind-specific argument (see [`EventKind`]).
    pub a: u64,
    /// Second kind-specific argument (see [`EventKind`]).
    pub b: u64,
    /// Fused detector score ([`EventKind::Verdict`] only).
    pub fused: f64,
    /// How many entries of `scores` are live.
    pub nscores: usize,
    /// Inline per-feature scores, `scores[..nscores]` valid.
    pub scores: [f64; MAX_EVENT_SCORES],
}

impl FlightEvent {
    /// Verdict flag: the burst decoded to a frame.
    pub const VERDICT_DECODED: u64 = 1;
    /// Verdict flag: the detector classified the frame as an attack.
    pub const VERDICT_ATTACK: u64 = 1 << 1;
    /// Verdict flag: a forgery was *accepted* for counting (decoded and
    /// classified as attack) — the exit-3 condition.
    pub const VERDICT_ACCEPTED: u64 = 1 << 2;

    /// A new event at `t_us` (use [`FlightRecorder::now_us`]) with no
    /// kind-specific payload yet.
    pub fn new(kind: EventKind, session: u64, seq: u64, t_us: u64) -> FlightEvent {
        FlightEvent {
            t_us,
            kind,
            session,
            seq,
            a: 0,
            b: 0,
            fused: 0.0,
            nscores: 0,
            scores: [0.0; MAX_EVENT_SCORES],
        }
    }

    /// Sets both kind-specific arguments.
    pub fn with_args(mut self, a: u64, b: u64) -> FlightEvent {
        self.a = a;
        self.b = b;
        self
    }

    /// Attaches the fused score and up to [`MAX_EVENT_SCORES`]
    /// per-feature scores (extras are silently truncated, not boxed).
    pub fn with_scores(mut self, fused: f64, scores: impl IntoIterator<Item = f64>) -> FlightEvent {
        self.fused = fused;
        self.nscores = 0;
        for v in scores.into_iter().take(MAX_EVENT_SCORES) {
            self.scores[self.nscores] = v;
            self.nscores += 1;
        }
        self
    }

    /// The live per-feature scores.
    pub fn feature_scores(&self) -> &[f64] {
        &self.scores[..self.nscores]
    }

    fn store(&self, words: &[AtomicU64; SLOT_WORDS]) {
        words[W_T_US].store(self.t_us, Ordering::Relaxed);
        words[W_KIND].store(self.kind as u64, Ordering::Relaxed);
        words[W_SESSION].store(self.session, Ordering::Relaxed);
        words[W_SEQ].store(self.seq, Ordering::Relaxed);
        words[W_A].store(self.a, Ordering::Relaxed);
        words[W_B].store(self.b, Ordering::Relaxed);
        words[W_FUSED].store(self.fused.to_bits(), Ordering::Relaxed);
        words[W_NSCORES].store(self.nscores as u64, Ordering::Relaxed);
        for i in 0..self.nscores {
            words[W_SCORES + i].store(self.scores[i].to_bits(), Ordering::Relaxed);
        }
    }

    fn load(words: &[AtomicU64; SLOT_WORDS]) -> Option<FlightEvent> {
        let kind = EventKind::from_u64(words[W_KIND].load(Ordering::Relaxed))?;
        let nscores = (words[W_NSCORES].load(Ordering::Relaxed) as usize).min(MAX_EVENT_SCORES);
        let mut scores = [0.0; MAX_EVENT_SCORES];
        for (i, slot) in scores.iter_mut().enumerate().take(nscores) {
            *slot = f64::from_bits(words[W_SCORES + i].load(Ordering::Relaxed));
        }
        Some(FlightEvent {
            t_us: words[W_T_US].load(Ordering::Relaxed),
            kind,
            session: words[W_SESSION].load(Ordering::Relaxed),
            seq: words[W_SEQ].load(Ordering::Relaxed),
            a: words[W_A].load(Ordering::Relaxed),
            b: words[W_B].load(Ordering::Relaxed),
            fused: f64::from_bits(words[W_FUSED].load(Ordering::Relaxed)),
            nscores,
            scores,
        })
    }
}

/// One ring slot: a sequence stamp plus the event words. The stamp is
/// `2·ticket + 1` while a write is in flight and `2·ticket + 2` once
/// published; a reader keeps a copy only when the stamp reads the same
/// published value before and after.
struct Slot {
    stamp: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; SLOT_WORDS],
        }
    }
}

struct Inner {
    slots: Vec<Slot>,
    head: AtomicU64,
    epoch: Instant,
    /// Feature names for rendering verdict scores; set once at startup
    /// (cold path), never touched while recording.
    feature_names: Mutex<Vec<String>>,
}

/// The lock-free ring journal. Cheap to clone (`Arc` inside); all
/// methods take `&self`, so one recorder is shared across every worker,
/// sink, and supervisor thread of a run.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl FlightRecorder {
    /// Default ring capacity: ~1k events ≈ 200 KiB, several seconds of
    /// journal at typical gateway burst rates.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A recorder with the default capacity.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(FlightRecorder::DEFAULT_CAPACITY)
    }

    /// A recorder holding the last `capacity` events (minimum 1). All
    /// memory is allocated here; recording never allocates.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Inner {
                slots: (0..capacity).map(|_| Slot::new()).collect(),
                head: AtomicU64::new(0),
                epoch: Instant::now(),
                feature_names: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Total events ever recorded (recorded − capacity have been
    /// overwritten once past the first lap).
    pub fn recorded(&self) -> u64 {
        self.inner.head.load(Ordering::Relaxed)
    }

    /// Microseconds since this recorder was constructed — the timestamp
    /// base every event uses.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Names for verdict per-feature scores, in score order. Cold path:
    /// call once at startup, before traffic.
    pub fn set_feature_names(&self, names: Vec<String>) {
        *self.inner.feature_names.lock().unwrap() = names;
    }

    /// The configured feature names (empty until set).
    pub fn feature_names(&self) -> Vec<String> {
        self.inner.feature_names.lock().unwrap().clone()
    }

    /// Journals one event and returns its ticket (its position in the
    /// all-time event sequence). Wait-free, allocation-free: one
    /// `fetch_add` to claim the slot, then plain atomic stores.
    pub fn record(&self, event: FlightEvent) -> u64 {
        let ticket = self.inner.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.inner.slots[(ticket % self.inner.slots.len() as u64) as usize];
        slot.stamp.store(ticket * 2 + 1, Ordering::Relaxed);
        // Order the odd stamp before the payload words, and the payload
        // before the even stamp, so a reader that sees a stable even
        // stamp saw a complete event.
        fence(Ordering::Release);
        event.store(&slot.words);
        fence(Ordering::Release);
        slot.stamp.store(ticket * 2 + 2, Ordering::Release);
        ticket
    }

    /// Every live journal event in ticket order (oldest first).
    pub fn events(&self) -> Vec<FlightEvent> {
        self.events_until(None)
    }

    /// Live journal events up to and including `last_ticket` (all of
    /// them when `None`), oldest first. Slots torn by a concurrent
    /// overwrite are skipped, not misread: each copy is validated
    /// against the slot's sequence stamp before being kept.
    pub fn events_until(&self, last_ticket: Option<u64>) -> Vec<FlightEvent> {
        let cap = self.inner.slots.len() as u64;
        let head = self.inner.head.load(Ordering::Acquire);
        let end = match last_ticket {
            Some(t) => (t + 1).min(head),
            None => head,
        };
        let start = end.saturating_sub(cap);
        let mut out = Vec::with_capacity((end - start) as usize);
        for ticket in start..end {
            let slot = &self.inner.slots[(ticket % cap) as usize];
            let before = slot.stamp.load(Ordering::Acquire);
            if before != ticket * 2 + 2 {
                continue; // overwritten or mid-write: not this ticket's data
            }
            fence(Ordering::Acquire);
            let event = FlightEvent::load(&slot.words);
            fence(Ordering::Acquire);
            let after = slot.stamp.load(Ordering::Acquire);
            if after == before {
                if let Some(event) = event {
                    out.push(event);
                }
            }
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static SIGUSR1_SEEN: AtomicBool = AtomicBool::new(false);

    pub(super) extern "C" fn on_sigusr1(_signum: i32) {
        // The only async-signal-safe thing worth doing: set a flag the
        // supervisor loop polls.
        SIGUSR1_SEEN.store(true, Ordering::Relaxed);
    }

    #[cfg(any(target_os = "macos", target_os = "ios", target_os = "freebsd"))]
    pub(super) const SIGUSR1: i32 = 30;
    #[cfg(not(any(target_os = "macos", target_os = "ios", target_os = "freebsd")))]
    pub(super) const SIGUSR1: i32 = 10;

    extern "C" {
        // libc's signal(2); the symbol is always linked via std.
        pub(super) fn signal(signum: i32, handler: usize) -> usize;
    }
}

/// Installs a `SIGUSR1` handler that latches a flag readable via
/// [`take_sigusr1`]. Returns `false` on non-unix targets (no signals)
/// or if installation failed. Safe to call more than once.
pub fn install_sigusr1_handler() -> bool {
    #[cfg(unix)]
    {
        const SIG_ERR: usize = usize::MAX;
        // SAFETY: the handler only stores to an AtomicBool, which is
        // async-signal-safe; `signal` is the libc prototype.
        let handler = sig::on_sigusr1 as extern "C" fn(i32);
        let prev = unsafe { sig::signal(sig::SIGUSR1, handler as usize) };
        prev != SIG_ERR
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// True once per `SIGUSR1` received since the last call (the flag is
/// cleared on read). Always `false` on non-unix targets.
pub fn take_sigusr1() -> bool {
    #[cfg(unix)]
    {
        sig::SIGUSR1_SEEN.swap(false, std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_in_order() {
        let rec = FlightRecorder::with_capacity(8);
        for seq in 0..5u64 {
            rec.record(
                FlightEvent::new(EventKind::Burst, 1, seq, rec.now_us()).with_args(seq * 100, 600),
            );
        }
        let events = rec.events();
        assert_eq!(events.len(), 5);
        for (seq, ev) in events.iter().enumerate() {
            assert_eq!(ev.kind, EventKind::Burst);
            assert_eq!(ev.seq, seq as u64);
            assert_eq!(ev.a, seq as u64 * 100);
            assert_eq!(ev.b, 600);
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let rec = FlightRecorder::with_capacity(4);
        for seq in 0..10u64 {
            rec.record(FlightEvent::new(EventKind::QueueDepth, 0, seq, 0).with_args(seq, 0));
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(rec.recorded(), 10);
    }

    /// The trigger contract: a snapshot bounded at a ticket ends at that
    /// event even when later events have already been journaled.
    #[test]
    fn events_until_bounds_at_the_trigger() {
        let rec = FlightRecorder::with_capacity(16);
        rec.record(FlightEvent::new(EventKind::Burst, 1, 0, 10));
        let trigger = rec.record(
            FlightEvent::new(EventKind::Verdict, 1, 0, 20)
                .with_args(FlightEvent::VERDICT_ACCEPTED, 0)
                .with_scores(0.51, [0.5, 0.6]),
        );
        rec.record(FlightEvent::new(EventKind::Stage, 1, 0, 30));
        rec.record(FlightEvent::new(EventKind::Burst, 1, 1, 40));

        let events = rec.events_until(Some(trigger));
        assert_eq!(events.len(), 2);
        let last = events.last().unwrap();
        assert_eq!(last.kind, EventKind::Verdict);
        assert_eq!(last.fused, 0.51);
        assert_eq!(last.feature_scores(), &[0.5, 0.6]);
    }

    #[test]
    fn scores_truncate_at_capacity_without_allocation() {
        let ev = FlightEvent::new(EventKind::Verdict, 0, 0, 0)
            .with_scores(1.0, (0..40).map(|i| i as f64));
        assert_eq!(ev.nscores, MAX_EVENT_SCORES);
        assert_eq!(ev.feature_scores()[15], 15.0);
    }

    #[test]
    fn concurrent_writers_never_tear_reads() {
        let rec = FlightRecorder::with_capacity(32);
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        // Each writer's events carry a self-consistent
                        // signature: a == session * 1_000_000 + seq.
                        rec.record(
                            FlightEvent::new(EventKind::Burst, w, i, 0)
                                .with_args(w * 1_000_000 + i, w),
                        );
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for ev in rec.events() {
                assert_eq!(ev.a, ev.session * 1_000_000 + ev.seq, "torn event: {ev:?}");
                assert_eq!(ev.b, ev.session);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(rec.recorded(), 8000);
        assert_eq!(rec.events().len(), 32);
    }

    #[test]
    fn stage_table_round_trips() {
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            assert_eq!(stage_id(name), i as u64);
            assert_eq!(stage_name(i as u64), *name);
        }
        assert_eq!(stage_name(99), "stage?");
    }

    #[cfg(unix)]
    #[test]
    fn sigusr1_flag_latches_and_clears() {
        assert!(install_sigusr1_handler());
        assert!(!take_sigusr1());
        // Raise the signal at ourselves; the handler must latch the flag.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        unsafe { raise(super::sig::SIGUSR1) };
        assert!(take_sigusr1());
        assert!(!take_sigusr1());
    }
}
