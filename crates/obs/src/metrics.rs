//! Wait-free metric primitives: counters, gauges and a log-scale
//! fixed-bucket histogram, all plain atomics so hot paths never contend.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two histogram buckets (bucket `i` covers
/// `[2^i, 2^(i+1))`; the last bucket is open-ended).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, pool idle count).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Histogram over `u64` observations (canonically microseconds), with
/// power-of-two buckets: bucket `i` counts values in `[2^i, 2^(i+1))`,
/// the last bucket is open-ended, and zero lands in the first bucket.
///
/// Recording is wait-free (one relaxed `fetch_add` for the bucket, one for
/// the running sum) — what a per-frame hot path wants. Quantiles are
/// linearly interpolated inside the selected bucket (see
/// [`quantile`](Histogram::quantile)).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A point-in-time copy of a [`Histogram`], ready for exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub counts: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The bucket's inclusive upper bound as exposed to Prometheus
    /// (`le` label): `2^(i+1)`.
    pub fn upper_bound(i: usize) -> u64 {
        1u64 << (i + 1).min(63)
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let bucket = (u64::BITS - value.max(1).leading_zeros() - 1) as usize;
        let bucket = bucket.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the bucket counts and sum at once (relaxed-consistent).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// The value at quantile `q` in `[0, 1]`, or `None` when nothing was
    /// recorded.
    ///
    /// The rank-`r` observation of the `c` in bucket `[lo, hi)` is
    /// estimated as `lo + (hi - lo) · r/c` — a linear interpolation over
    /// the bucket's range, so quantiles inside a well-populated bucket
    /// resolve finer than a factor of two. The open-ended last bucket has
    /// no upper edge to interpolate toward and reports its nominal bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let snap = self.snapshot();
        let total = snap.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in snap.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let upper = HistogramSnapshot::upper_bound(i);
                if i == HISTOGRAM_BUCKETS - 1 {
                    return Some(upper);
                }
                let lower = 1u64 << i;
                let frac = (rank - seen) as f64 / c as f64;
                return Some((lower as f64 + frac * (upper - lower) as f64).round() as u64);
            }
            seen += c;
        }
        Some(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(17);
        assert_eq!(g.get(), 17);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_tracks_sum_and_count() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum, 60);
    }

    /// The PR 5 interpolation fix: quantiles inside a populated bucket are
    /// a linear estimate over the bucket range, not its upper edge.
    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        let h = Histogram::new();
        // Four observations, all in bucket 3 = [8, 16).
        for v in [9u64, 10, 12, 14] {
            h.record(v);
        }
        // rank 1 of 4 -> 8 + 8·(1/4) = 10; rank 2 -> 12; rank 4 -> 16.
        assert_eq!(h.quantile(0.25), Some(10));
        assert_eq!(h.quantile(0.5), Some(12));
        assert_eq!(h.quantile(1.0), Some(16));
    }

    #[test]
    fn interpolation_spans_multiple_buckets() {
        let h = Histogram::new();
        h.record(10); // bucket 3
        h.record(10); // bucket 3
        h.record(100); // bucket 6 = [64, 128)
        h.record(100); // bucket 6
                       // rank 1 -> bucket 3, frac 1/2 -> 8 + 4 = 12.
        assert_eq!(h.quantile(0.25), Some(12));
        // rank 3 -> bucket 6, frac 1/2 -> 64 + 32 = 96.
        assert_eq!(h.quantile(0.75), Some(96));
        assert_eq!(h.quantile(1.0), Some(128));
    }

    #[test]
    fn open_ended_bucket_reports_nominal_bound() {
        let h = Histogram::new();
        h.record(1u64 << (HISTOGRAM_BUCKETS - 1));
        h.record(u64::MAX);
        // No upper edge to interpolate toward: every quantile is the
        // nominal bound.
        assert_eq!(h.quantile(0.0), Some(1u64 << HISTOGRAM_BUCKETS));
        assert_eq!(h.quantile(1.0), Some(1u64 << HISTOGRAM_BUCKETS));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(Histogram::new().quantile(0.5), None);
    }
}
