//! The metrics registry: named, labelled metric families behind cheap
//! handles.
//!
//! Registration is the cold path — it takes the registry lock once and
//! hands back an `Arc` to the metric. The hot path (incrementing through
//! the handle) is a relaxed atomic and never touches the lock. Exposition
//! walks the families under the lock, which is fine at scrape frequency.
//!
//! Two registration styles coexist:
//!
//! - **owned metrics** ([`counter`](Registry::counter),
//!   [`gauge`](Registry::gauge), [`histogram`](Registry::histogram) and
//!   their `_with` label variants) — the registry owns the metric, callers
//!   increment through the returned handle. Registering the same
//!   name + labels twice returns the *same* handle.
//! - **collectors** ([`counter_fn`](Registry::counter_fn),
//!   [`gauge_fn`](Registry::gauge_fn),
//!   [`histogram_fn`](Registry::histogram_fn)) — the value already lives
//!   somewhere else (a pipeline's atomics, a buffer pool's hit counter);
//!   the registry samples it through a closure at exposition time, so the
//!   hot path is untouched and nothing is counted twice. Re-registering a
//!   collector replaces the previous one — a fresh gateway run takes over
//!   the canonical names.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A sorted label set; the `BTreeMap` key, so exposition order is stable.
pub(crate) type Labels = Vec<(String, String)>;

/// What a family's children are (one kind per family, enforced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (`_total` names by convention).
    Counter,
    /// A value that can move both ways.
    Gauge,
    /// Fixed-bucket log-scale histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

pub(crate) enum Child {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeF64Fn(Box<dyn Fn() -> f64 + Send + Sync>),
    HistogramFn(Box<dyn Fn() -> HistogramSnapshot + Send + Sync>),
}

impl Child {
    pub(crate) fn kind(&self) -> MetricKind {
        match self {
            Child::Counter(_) | Child::CounterFn(_) => MetricKind::Counter,
            Child::Gauge(_) | Child::GaugeFn(_) | Child::GaugeF64Fn(_) => MetricKind::Gauge,
            Child::Histogram(_) | Child::HistogramFn(_) => MetricKind::Histogram,
        }
    }
}

pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    pub(crate) children: BTreeMap<Labels, Child>,
}

/// A registry of metric families, shareable across threads.
///
/// See the [module docs](self) for the registration styles. Rendering
/// ([`render`](Registry::render)) produces Prometheus text format with
/// families sorted by name and children by label set.
#[derive(Default)]
pub struct Registry {
    pub(crate) families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self
            .families
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect();
        f.debug_struct("Registry")
            .field("families", &names)
            .finish()
    }
}

fn to_labels(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry (for components without a natural owner,
    /// like the bench engine). Long-running services such as the gateway
    /// monitor prefer a registry of their own.
    pub fn global() -> Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Registry::new())).clone()
    }

    fn child<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Child,
        get: impl Fn(&Child) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            children: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric family {name:?} already registered as a {}",
            family.kind.as_str()
        );
        let child = family
            .children
            .entry(to_labels(labels))
            .or_insert_with(make);
        get(child).unwrap_or_else(|| {
            panic!(
                "metric {name:?} already registered as a {}",
                child.kind().as_str()
            )
        })
    }

    /// An unlabelled counter (returns the existing handle when already
    /// registered).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// A labelled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.child(
            name,
            help,
            labels,
            MetricKind::Counter,
            || Child::Counter(Arc::new(Counter::new())),
            |c| match c {
                Child::Counter(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// An unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// A labelled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.child(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || Child::Gauge(Arc::new(Gauge::new())),
            |c| match c {
                Child::Gauge(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// An unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// A labelled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.child(
            name,
            help,
            labels,
            MetricKind::Histogram,
            || Child::Histogram(Arc::new(Histogram::new())),
            |c| match c {
                Child::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    fn collect(&self, name: &str, help: &str, labels: &[(&str, &str)], child: Child) {
        let mut families = self.families.lock().expect("registry poisoned");
        let kind = child.kind();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            children: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric family {name:?} already registered as a {}",
            family.kind.as_str()
        );
        // Collectors replace: a new gateway run takes over the name.
        family.children.insert(to_labels(labels), child);
    }

    /// Registers a pull-based counter: `f` is sampled at exposition time.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.collect(name, help, labels, Child::CounterFn(Box::new(f)));
    }

    /// Registers a pull-based gauge.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.collect(name, help, labels, Child::GaugeFn(Box::new(f)));
    }

    /// Registers a pull-based floating-point gauge — for scores and ratios
    /// (detector feature scores, AUC) that have no natural integer unit.
    pub fn gauge_f64_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.collect(name, help, labels, Child::GaugeF64Fn(Box::new(f)));
    }

    /// Registers a pull-based histogram: `f` snapshots the histogram at
    /// exposition time.
    pub fn histogram_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> HistogramSnapshot + Send + Sync + 'static,
    ) {
        self.collect(name, help, labels, Child::HistogramFn(Box::new(f)));
    }

    /// Renders the registry in Prometheus text format (see [`crate::expo`]).
    pub fn render(&self) -> String {
        crate::expo::render(self)
    }

    /// A view of this registry that stamps `base` labels onto every
    /// registration made through it — the idiom for per-stream telemetry,
    /// where one component registers the same metric schema many times
    /// under different `{stream="..."}` label sets:
    ///
    /// ```
    /// let registry = ctc_obs::Registry::new();
    /// let scoped = registry.scoped(&[("stream", "s1")]);
    /// scoped.counter_fn("ctc_gateway_samples_total", "IQ samples.", &[], || 7);
    /// assert!(registry
    ///     .render()
    ///     .contains("ctc_gateway_samples_total{stream=\"s1\"} 7"));
    /// ```
    pub fn scoped<'r>(&'r self, base: &[(&str, &str)]) -> ScopedRegistry<'r> {
        ScopedRegistry {
            registry: self,
            base: to_labels(base),
        }
    }
}

/// A registry handle carrying a fixed base label set (see
/// [`Registry::scoped`]). Extra labels passed per registration are merged
/// with the base; on a key collision the per-registration label wins.
pub struct ScopedRegistry<'r> {
    registry: &'r Registry,
    base: Labels,
}

impl ScopedRegistry<'_> {
    /// The base labels merged with `extra`, per-registration keys winning.
    fn merged<'a>(&'a self, extra: &'a [(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
        let mut all: Vec<(&str, &str)> = self
            .base
            .iter()
            .filter(|(k, _)| !extra.iter().any(|(ek, _)| ek == k))
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        all.extend_from_slice(extra);
        all
    }

    /// A labelled counter under the base labels.
    pub fn counter(&self, name: &str, help: &str, extra: &[(&str, &str)]) -> Arc<Counter> {
        self.registry.counter_with(name, help, &self.merged(extra))
    }

    /// A labelled gauge under the base labels.
    pub fn gauge(&self, name: &str, help: &str, extra: &[(&str, &str)]) -> Arc<Gauge> {
        self.registry.gauge_with(name, help, &self.merged(extra))
    }

    /// A labelled histogram under the base labels.
    pub fn histogram(&self, name: &str, help: &str, extra: &[(&str, &str)]) -> Arc<Histogram> {
        self.registry
            .histogram_with(name, help, &self.merged(extra))
    }

    /// A pull-based counter under the base labels.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        extra: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.registry.counter_fn(name, help, &self.merged(extra), f);
    }

    /// A pull-based gauge under the base labels.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        extra: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.registry.gauge_fn(name, help, &self.merged(extra), f);
    }

    /// A pull-based floating-point gauge under the base labels.
    pub fn gauge_f64_fn(
        &self,
        name: &str,
        help: &str,
        extra: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.registry
            .gauge_f64_fn(name, help, &self.merged(extra), f);
    }

    /// A pull-based histogram under the base labels.
    pub fn histogram_fn(
        &self,
        name: &str,
        help: &str,
        extra: &[(&str, &str)],
        f: impl Fn() -> HistogramSnapshot + Send + Sync + 'static,
    ) {
        self.registry
            .histogram_fn(name, help, &self.merged(extra), f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn same_name_and_labels_share_a_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_labels_are_different_children() {
        let r = Registry::new();
        let a = r.counter_with("y_total", "y", &[("k", "a")]);
        let b = r.counter_with("y_total", "y", &[("k", "b")]);
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter_with("z_total", "z", &[("a", "1"), ("b", "2")]);
        let b = r.counter_with("z_total", "z", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("w", "w");
        let _ = r.gauge("w", "w");
    }

    #[test]
    fn collector_replaces_previous_registration() {
        let r = Registry::new();
        r.counter_fn("c_total", "c", &[], || 1);
        r.counter_fn("c_total", "c", &[], || 2);
        assert!(r.render().contains("c_total 2"));
    }

    /// The satellite hammer test: concurrent increments through shared and
    /// per-thread handles never lose an update.
    #[test]
    fn concurrent_increments_are_exact() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 20_000;
        let r = Arc::new(Registry::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    // Each thread re-registers: all get the same child.
                    let c = r.counter("hammer_total", "hammered");
                    let lab = r.counter_with(
                        "hammer_labelled_total",
                        "hammered",
                        &[("thread", if t % 2 == 0 { "even" } else { "odd" })],
                    );
                    let h = r.histogram("hammer_us", "hammered");
                    for i in 0..PER_THREAD {
                        c.inc();
                        lab.inc();
                        h.record(i % 1000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("hammer_total", "").get(), THREADS * PER_THREAD);
        let even = r.counter_with("hammer_labelled_total", "", &[("thread", "even")]);
        let odd = r.counter_with("hammer_labelled_total", "", &[("thread", "odd")]);
        assert_eq!(even.get(), THREADS / 2 * PER_THREAD);
        assert_eq!(odd.get(), THREADS / 2 * PER_THREAD);
        let h = r.histogram("hammer_us", "");
        assert_eq!(h.count(), THREADS * PER_THREAD);
        let expected_sum: u64 = (0..PER_THREAD).map(|i| i % 1000).sum::<u64>() * THREADS;
        assert_eq!(h.sum(), expected_sum);
    }
}
