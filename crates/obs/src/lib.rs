//! # ctc-obs
//!
//! Unified telemetry layer for the *Hide and Seek* (ICDCS 2019)
//! reproduction. The defense lives or dies on timing and decision
//! statistics, so every long-running component — the streaming gateway,
//! the buffer pool, the Monte-Carlo bench engine — reports into one
//! scrapeable surface instead of keeping private counters:
//!
//! - [`metrics`] — the wait-free primitives: [`Counter`], [`Gauge`] and a
//!   fixed-bucket log-scale [`Histogram`]. Recording is a relaxed atomic
//!   add; no locks ever sit on a hot path.
//! - [`registry`] — a process-wide (or per-run) [`Registry`] of named,
//!   labelled metric families. Registration takes a lock once (cold
//!   path); handles are plain `Arc`s. Pull-based collectors
//!   ([`Registry::counter_fn`] and friends) expose counters that already
//!   exist elsewhere — the gateway's pipeline atomics, a
//!   [`BufferPool`](ctc_dsp::BufferPool)'s hit/miss counts — without
//!   double-counting on the hot path.
//! - [`expo`] — Prometheus text exposition (stable name and label
//!   ordering, histogram `_bucket`/`_sum`/`_count` triples).
//! - [`http`] — a tiny blocking responder serving `GET /metrics`, plus a
//!   one-shot [`http::fetch_text`] client for `ctc obs dump`.
//! - [`scrape`] — the client-side inverse of [`expo`]: parse a scraped
//!   exposition body back into typed samples and reassembled histograms
//!   ([`Scrape`], [`ScrapedHistogram`]) so harnesses can assert SLOs
//!   against a live endpoint numerically.
//! - [`process`] — process-level collectors (resident memory), so memory
//!   stability is checkable from the same scrape.
//! - [`flight`] — an always-on, bounded-memory flight recorder: a
//!   lock-free ring journal ([`FlightRecorder`]) of compact structured
//!   events (bursts, stage boundaries, verdicts with per-feature
//!   scores, drops), recorded wait-free and allocation-free.
//! - [`snapshot`] — the incident-snapshot format: journal tail +
//!   per-stage latency breakdown + registry snapshot/delta rendered as
//!   one self-contained JSON document ([`SnapshotBuilder`]), shared by
//!   the gateway's trigger dumps, loadgen breach reports, and `ctc obs
//!   dump --json`.
//! - [`trace`] — lightweight structured tracing: span IDs allocated per
//!   burst at ingest, per-stage durations recorded as JSONL records, so a
//!   single frame's end-to-end path is reconstructable offline.
//! - [`stage`] — [`Profiled`], a [`Stage`](ctc_dsp::Stage) combinator
//!   that records per-call durations of any DSP stage into a registry.
//!
//! ```
//! use ctc_obs::Registry;
//!
//! let registry = Registry::new();
//! let frames = registry.counter_with(
//!     "ctc_gateway_frames_total",
//!     "Frames decoded, by verdict.",
//!     &[("verdict", "authentic")],
//! );
//! frames.inc();
//! let text = registry.render();
//! assert!(text.contains("ctc_gateway_frames_total{verdict=\"authentic\"} 1"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expo;
pub mod flight;
pub mod http;
pub mod metrics;
pub mod process;
pub mod registry;
pub mod scrape;
pub mod snapshot;
pub mod stage;
pub mod trace;

pub use flight::{EventKind, FlightEvent, FlightRecorder};
pub use http::MetricsServer;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use process::register_process_metrics;
pub use registry::{Registry, ScopedRegistry};
pub use scrape::{Scrape, ScrapeError, ScrapeSample, ScrapedHistogram};
pub use snapshot::SnapshotBuilder;
pub use stage::Profiled;
pub use trace::{next_span_id, TraceSink};
