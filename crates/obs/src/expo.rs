//! Prometheus text exposition format.
//!
//! Output ordering is fully deterministic: families sort by metric name and
//! children by (sorted) label set — both `BTreeMap`s in the registry — so
//! golden tests can compare rendered text byte-for-byte.

use crate::metrics::{HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::registry::{Child, Registry};
use std::fmt::Write;

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

/// Writes `{k="v",...}` (or nothing for an empty set); `extra` is appended
/// last, used for the histogram `le` label.
fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label(v, out);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label(v, out);
        out.push('"');
    }
    out.push('}');
}

fn write_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    // Buckets 0..30 have finite upper bounds; the open-ended bucket 31
    // folds into `+Inf`.
    for (i, &c) in snap.counts.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
        cumulative += c;
        let le = HistogramSnapshot::upper_bound(i).to_string();
        let _ = write!(out, "{name}_bucket");
        write_labels(out, labels, Some(("le", &le)));
        let _ = writeln!(out, " {cumulative}");
    }
    cumulative += snap.counts[HISTOGRAM_BUCKETS - 1];
    let _ = write!(out, "{name}_bucket");
    write_labels(out, labels, Some(("le", "+Inf")));
    let _ = writeln!(out, " {cumulative}");
    let _ = write!(out, "{name}_sum");
    write_labels(out, labels, None);
    let _ = writeln!(out, " {}", snap.sum);
    let _ = write!(out, "{name}_count");
    write_labels(out, labels, None);
    let _ = writeln!(out, " {cumulative}");
}

/// Renders every family in `registry` as Prometheus text format.
pub fn render(registry: &Registry) -> String {
    let families = registry.families.lock().expect("registry poisoned");
    let mut out = String::new();
    for (name, family) in families.iter() {
        if !family.help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
        }
        let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
        for (labels, child) in &family.children {
            match child {
                Child::Counter(c) => {
                    out.push_str(name);
                    write_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {}", c.get());
                }
                Child::CounterFn(f) => {
                    out.push_str(name);
                    write_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {}", f());
                }
                Child::Gauge(g) => {
                    out.push_str(name);
                    write_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {}", g.get());
                }
                Child::GaugeFn(f) => {
                    out.push_str(name);
                    write_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {}", f());
                }
                Child::GaugeF64Fn(f) => {
                    out.push_str(name);
                    write_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {}", f());
                }
                Child::Histogram(h) => {
                    write_histogram(&mut out, name, labels, &h.snapshot());
                }
                Child::HistogramFn(f) => {
                    write_histogram(&mut out, name, labels, &f());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("esc_total", "e", &[("v", "a\"b\\c\nd")])
            .inc();
        let text = r.render();
        assert!(text.contains(r#"esc_total{v="a\"b\\c\nd"} 1"#), "{text}");
    }

    /// The satellite golden test: rendered output is byte-stable — families
    /// sorted by name, children by label set, histograms as cumulative
    /// `_bucket`/`_sum`/`_count` triples.
    #[test]
    fn exposition_golden() {
        let r = Registry::new();
        // Registered deliberately out of final order.
        r.gauge("ctc_queue_depth", "Chunks waiting in the gateway queue.")
            .set(3);
        let attack = r.counter_with(
            "ctc_gateway_frames_total",
            "Frames decoded, by verdict.",
            &[("verdict", "attack")],
        );
        let authentic = r.counter_with(
            "ctc_gateway_frames_total",
            "Frames decoded, by verdict.",
            &[("verdict", "authentic")],
        );
        attack.inc();
        authentic.add(2);
        let h = r.histogram("ctc_gateway_latency_us", "Per-frame latency.");
        h.record(3); // bucket 1 = [2, 4)
        h.record(100); // bucket 6 = [64, 128)
        h.record(u64::MAX); // open-ended bucket

        let text = r.render();
        let expected_head = "\
# HELP ctc_gateway_frames_total Frames decoded, by verdict.
# TYPE ctc_gateway_frames_total counter
ctc_gateway_frames_total{verdict=\"attack\"} 1
ctc_gateway_frames_total{verdict=\"authentic\"} 2
# HELP ctc_gateway_latency_us Per-frame latency.
# TYPE ctc_gateway_latency_us histogram
ctc_gateway_latency_us_bucket{le=\"2\"} 0
ctc_gateway_latency_us_bucket{le=\"4\"} 1
";
        assert!(
            text.starts_with(expected_head),
            "rendered text diverged from golden:\n{text}"
        );
        // Cumulative counts carry through every finite bucket into +Inf.
        assert!(text.contains("ctc_gateway_latency_us_bucket{le=\"128\"} 2\n"));
        assert!(text.contains("ctc_gateway_latency_us_bucket{le=\"2147483648\"} 2\n"));
        assert!(text.contains("ctc_gateway_latency_us_bucket{le=\"+Inf\"} 3\n"));
        // The sum counter wraps (relaxed fetch_add semantics).
        assert!(text.contains(&format!(
            "ctc_gateway_latency_us_sum {}\n",
            3u64.wrapping_add(100).wrapping_add(u64::MAX)
        )));
        assert!(text.contains("ctc_gateway_latency_us_count 3\n"));
        // The gauge family renders after the histogram (name order).
        let gauge_at = text.find("# TYPE ctc_queue_depth gauge").unwrap();
        let hist_at = text
            .find("# TYPE ctc_gateway_latency_us histogram")
            .unwrap();
        assert!(hist_at < gauge_at);
        assert!(text.ends_with("ctc_queue_depth 3\n"));
    }

    #[test]
    fn f64_gauge_renders_shortest_round_trip() {
        let r = Registry::new();
        r.gauge_f64_fn(
            "ctc_detector_score",
            "Latest per-feature detector score.",
            &[("feature", "de2_ideal")],
            || 0.062_5,
        );
        r.gauge_f64_fn(
            "ctc_detector_score",
            "Latest per-feature detector score.",
            &[("feature", "fused")],
            || 1.0,
        );
        let text = r.render();
        assert!(text.contains("# TYPE ctc_detector_score gauge"), "{text}");
        assert!(
            text.contains("ctc_detector_score{feature=\"de2_ideal\"} 0.0625\n"),
            "{text}"
        );
        assert!(
            text.contains("ctc_detector_score{feature=\"fused\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn rendering_twice_is_identical() {
        let r = Registry::new();
        r.counter_with("a_total", "a", &[("x", "1"), ("y", "2")])
            .inc();
        r.counter_fn("b_total", "b", &[], || 7);
        assert_eq!(r.render(), r.render());
    }
}
