//! Client-side parsing of Prometheus text exposition — the other half of
//! [`expo`](crate::expo).
//!
//! The soak harness (`ctc loadgen --soak`) asserts SLOs against a live
//! gateway by scraping its `/metrics` endpoint at intervals; that only
//! works if scrape output can be read back as *numbers*, not grepped as
//! text. [`Scrape::parse`] turns an exposition body into typed samples,
//! and [`ScrapedHistogram`] reconstructs a histogram family
//! (`_bucket`/`_sum`/`_count`) well enough to answer quantile queries with
//! the same in-bucket interpolation the server-side
//! [`Histogram`](crate::Histogram) uses — so p99 computed from a scrape
//! agrees with p99 computed in-process.
//!
//! Counters scraped twice can be differenced ([`ScrapedHistogram::
//! delta_from`] does it for whole histograms), which is how a soak run
//! isolates its own traffic from whatever the gateway served before it.

use std::collections::BTreeSet;
use std::fmt;

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapeSample {
    /// The metric name (for histograms: the `_bucket`/`_sum`/`_count`
    /// series name as exposed).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value. `+Inf`-bound bucket labels stay in `labels`;
    /// the value itself is always finite in well-formed exposition.
    pub value: f64,
}

impl ScrapeSample {
    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True when this sample's labels, ignoring `ignore`, equal `want`
    /// exactly (order-insensitive, no extra labels either way).
    fn labels_match(&self, want: &[(&str, &str)], ignore: &str) -> bool {
        let mine: BTreeSet<(&str, &str)> = self
            .labels
            .iter()
            .filter(|(k, _)| k != ignore)
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let theirs: BTreeSet<(&str, &str)> = want.iter().copied().collect();
        mine == theirs
    }
}

/// A parse failure, pointing at the offending line.
#[derive(Debug, Clone)]
pub struct ScrapeError {
    /// 1-based line number in the exposition body.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ScrapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scrape line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ScrapeError {}

/// A parsed exposition body: every sample line, queryable by name and
/// label set.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    samples: Vec<ScrapeSample>,
}

impl Scrape {
    /// Parses a Prometheus text-format body (`# HELP`/`# TYPE` lines and
    /// blanks are skipped; every other line must be a sample). Bodies
    /// with *no* `# TYPE` metadata at all parse fine — samples carry
    /// their own shape. Non-finite values (`NaN`, `±Inf`) are legal
    /// exposition and parse to the matching [`f64`] specials.
    ///
    /// # Errors
    ///
    /// [`ScrapeError`] with the line number on the first malformed
    /// line, or on a duplicate sample (same name and label set twice —
    /// a scrape like that is ambiguous, and silently keeping either
    /// copy would corrupt SLO math downstream).
    pub fn parse(text: &str) -> Result<Scrape, ScrapeError> {
        let mut samples = Vec::new();
        let mut seen = BTreeSet::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let sample = parse_sample(line).map_err(|reason| ScrapeError {
                line: i + 1,
                reason,
            })?;
            if !seen.insert(sample_identity(&sample)) {
                return Err(ScrapeError {
                    line: i + 1,
                    reason: format!("duplicate sample {:?}", sample.name),
                });
            }
            samples.push(sample);
        }
        Ok(Scrape { samples })
    }

    /// Scrapes `addr`'s `/metrics` endpoint and parses the body.
    ///
    /// # Errors
    ///
    /// Connection/read errors from [`fetch_text`](crate::http::fetch_text)
    /// verbatim; a malformed body as [`std::io::ErrorKind::InvalidData`].
    pub fn fetch(addr: &str) -> std::io::Result<Scrape> {
        let body = crate::http::fetch_text(addr)?;
        Scrape::parse(&body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Every parsed sample, in exposition order.
    pub fn samples(&self) -> &[ScrapeSample] {
        &self.samples
    }

    /// The sample whose name and *exact* label set match (no extra labels
    /// on either side).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels_match(labels, ""))
            .map(|s| s.value)
    }

    /// All samples of one family (prefix-exact on the name).
    pub fn family<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a ScrapeSample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// Distinct values of one label across a family, sorted — e.g. every
    /// `stream` label the gateway exposes.
    pub fn label_values(&self, name: &str, key: &str) -> Vec<String> {
        let set: BTreeSet<String> = self
            .family(name)
            .filter_map(|s| s.label(key).map(str::to_string))
            .collect();
        set.into_iter().collect()
    }

    /// Reassembles the histogram family `name` with the given non-`le`
    /// label set; `None` when no buckets match.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<ScrapedHistogram> {
        let bucket_name = format!("{name}_bucket");
        let mut buckets: Vec<(f64, u64)> = self
            .samples
            .iter()
            .filter(|s| s.name == bucket_name && s.labels_match(labels, "le"))
            .filter_map(|s| {
                let le = s.label("le")?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().ok()?
                };
                Some((bound, s.value as u64))
            })
            .collect();
        if buckets.is_empty() {
            return None;
        }
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are ordered"));
        let sum = self
            .value(&format!("{name}_sum"), labels)
            .unwrap_or_default();
        Some(ScrapedHistogram {
            bounds: buckets.iter().map(|&(b, _)| b).collect(),
            cumulative: buckets.iter().map(|&(_, c)| c).collect(),
            sum,
        })
    }
}

/// A histogram reconstructed from `_bucket` scrape lines: cumulative
/// counts per upper bound (the final bound is `+Inf`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedHistogram {
    /// Ascending bucket upper bounds; the last is `+Inf`.
    pub bounds: Vec<f64>,
    /// Cumulative observation counts, one per bound.
    pub cumulative: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
}

impl ScrapedHistogram {
    /// Total observations (the `+Inf` cumulative count).
    pub fn count(&self) -> u64 {
        self.cumulative.last().copied().unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`, linearly interpolated inside
    /// the selected bucket — the same estimate the server-side
    /// [`Histogram::quantile`](crate::Histogram::quantile) makes, so
    /// scraped and in-process quantiles agree. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut lower = 0.0f64;
        let mut below = 0u64;
        for (&bound, &cum) in self.bounds.iter().zip(&self.cumulative) {
            if cum >= rank {
                let in_bucket = cum - below;
                if bound.is_infinite() {
                    // No upper edge to interpolate toward: report the last
                    // finite bound, like the server side does.
                    return Some(lower);
                }
                let frac = (rank - below) as f64 / in_bucket.max(1) as f64;
                return Some(lower + frac * (bound - lower));
            }
            below = cum;
            if bound.is_finite() {
                lower = bound;
            }
        }
        Some(lower)
    }

    /// This histogram minus `baseline` (two scrapes of the same family):
    /// the observations recorded *between* the scrapes. `None` when the
    /// bucket layouts differ (not the same family).
    pub fn delta_from(&self, baseline: &ScrapedHistogram) -> Option<ScrapedHistogram> {
        if self.bounds != baseline.bounds {
            return None;
        }
        Some(ScrapedHistogram {
            bounds: self.bounds.clone(),
            cumulative: self
                .cumulative
                .iter()
                .zip(&baseline.cumulative)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            sum: self.sum - baseline.sum,
        })
    }
}

/// A sample's identity — name plus *sorted* label pairs — used to
/// reject duplicates regardless of label order.
fn sample_identity(s: &ScrapeSample) -> (String, Vec<(String, String)>) {
    let mut labels = s.labels.clone();
    labels.sort_unstable();
    (s.name.clone(), labels)
}

/// Parses one sample line: `name`, optional `{k="v",...}`, a value.
fn parse_sample(line: &str) -> Result<ScrapeSample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| format!("no value in {line:?}"))?;
    let name = &line[..name_end];
    if name.is_empty() {
        return Err(format!("empty metric name in {line:?}"));
    }
    let rest = &line[name_end..];
    let (labels, value_text) = if let Some(inner) = rest.strip_prefix('{') {
        let (labels, after) = parse_labels(inner)?;
        (labels, after)
    } else {
        (Vec::new(), rest)
    };
    let value_text = value_text.trim();
    let value = match value_text {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse()
            .map_err(|_| format!("bad value {value_text:?} in {line:?}"))?,
    };
    Ok(ScrapeSample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses `k="v",...}` (the opening brace already consumed); returns the
/// labels and the text after the closing brace.
#[allow(clippy::type_complexity)]
fn parse_labels(mut s: &str) -> Result<(Vec<(String, String)>, &str), String> {
    let mut labels = Vec::new();
    loop {
        s = s.trim_start_matches([',', ' ']);
        if let Some(rest) = s.strip_prefix('}') {
            return Ok((labels, rest));
        }
        let eq = s.find('=').ok_or("label without '='")?;
        let key = s[..eq].trim().to_string();
        s = s[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value must be quoted")?;
        let mut value = String::new();
        let mut chars = s.char_indices();
        let after = loop {
            let (i, c) = chars.next().ok_or("unterminated label value")?;
            match c {
                '"' => break &s[i + 1..],
                '\\' => {
                    let (_, esc) = chars.next().ok_or("dangling escape")?;
                    value.push(match esc {
                        'n' => '\n',
                        '\\' => '\\',
                        '"' => '"',
                        other => other,
                    });
                }
                other => value.push(other),
            }
        };
        labels.push((key, value));
        s = after;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    /// Round-trip: whatever the registry renders, the scraper reads back.
    #[test]
    fn parses_rendered_exposition() {
        let r = Registry::new();
        r.counter("ctc_scrape_test_total", "help text").add(41);
        r.counter_with("ctc_frames_total", "by verdict", &[("verdict", "attack")])
            .add(3);
        r.gauge("ctc_depth", "").set(9);
        r.counter_with("esc_total", "", &[("v", "a\"b\\c\nd")])
            .inc();

        let scrape = Scrape::parse(&r.render()).unwrap();
        assert_eq!(scrape.value("ctc_scrape_test_total", &[]), Some(41.0));
        assert_eq!(
            scrape.value("ctc_frames_total", &[("verdict", "attack")]),
            Some(3.0)
        );
        // Exact-match semantics: the labelled sample is not the unlabelled one.
        assert_eq!(scrape.value("ctc_frames_total", &[]), None);
        assert_eq!(scrape.value("ctc_depth", &[]), Some(9.0));
        assert_eq!(scrape.value("esc_total", &[("v", "a\"b\\c\nd")]), Some(1.0));
        assert_eq!(scrape.value("missing", &[]), None);
    }

    #[test]
    fn label_values_enumerate_a_family() {
        let r = Registry::new();
        for s in ["s2", "s1", "s1"] {
            r.counter_with("ctc_gateway_samples_total", "", &[("stream", s)])
                .inc();
        }
        r.counter("ctc_gateway_samples_total", "").add(5);
        let scrape = Scrape::parse(&r.render()).unwrap();
        assert_eq!(
            scrape.label_values("ctc_gateway_samples_total", "stream"),
            vec!["s1".to_string(), "s2".to_string()]
        );
    }

    /// Scraped quantiles agree with the server-side histogram's own.
    #[test]
    fn scraped_quantiles_match_in_process() {
        let r = Registry::new();
        let h = r.histogram("ctc_lat_us", "");
        for v in [9u64, 10, 12, 14, 100, 100, 3000] {
            h.record(v);
        }
        let scrape = Scrape::parse(&r.render()).unwrap();
        let sh = scrape.histogram("ctc_lat_us", &[]).unwrap();
        assert_eq!(sh.count(), 7);
        for q in [0.25, 0.5, 0.9, 0.99] {
            let in_process = h.quantile(q).unwrap() as f64;
            let scraped = sh.quantile(q).unwrap();
            assert!(
                (in_process - scraped).abs() <= 1.0,
                "q={q}: in-process {in_process} vs scraped {scraped}"
            );
        }
    }

    #[test]
    fn histogram_delta_isolates_new_observations() {
        let r = Registry::new();
        let h = r.histogram("ctc_lat_us", "");
        h.record(10);
        let before = Scrape::parse(&r.render())
            .unwrap()
            .histogram("ctc_lat_us", &[])
            .unwrap();
        h.record(100);
        h.record(100);
        let after = Scrape::parse(&r.render())
            .unwrap()
            .histogram("ctc_lat_us", &[])
            .unwrap();
        let delta = after.delta_from(&before).unwrap();
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum, 200.0);
        // Both new observations landed in [64, 128).
        assert!(delta.quantile(0.5).unwrap() <= 128.0);
        assert!(delta.quantile(0.5).unwrap() > 64.0);
    }

    #[test]
    fn empty_and_open_ended_edge_cases() {
        let empty = ScrapedHistogram {
            bounds: vec![f64::INFINITY],
            cumulative: vec![0],
            sum: 0.0,
        };
        assert_eq!(empty.quantile(0.5), None);

        let r = Registry::new();
        let h = r.histogram("ctc_big_us", "");
        h.record(u64::MAX);
        let sh = Scrape::parse(&r.render())
            .unwrap()
            .histogram("ctc_big_us", &[])
            .unwrap();
        // Everything in the open-ended bucket: quantile reports the last
        // finite bound rather than infinity.
        assert!(sh.quantile(0.99).unwrap().is_finite());
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let err = Scrape::parse("ok_total 1\nbroken{\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(Scrape::parse("name_only\n").is_err());
        assert!(Scrape::parse("x 12notanumber\n").is_err());
    }

    /// Non-finite values are legal exposition (an empty histogram's
    /// average, a score gauge before first traffic) and must parse to
    /// the matching f64 specials, not error or silently skip.
    #[test]
    fn non_finite_values_parse_to_f64_specials() {
        let scrape = Scrape::parse("a NaN\nb +Inf\nc Inf\nd -Inf\n").unwrap();
        assert!(scrape.value("a", &[]).unwrap().is_nan());
        assert_eq!(scrape.value("b", &[]), Some(f64::INFINITY));
        assert_eq!(scrape.value("c", &[]), Some(f64::INFINITY));
        assert_eq!(scrape.value("d", &[]), Some(f64::NEG_INFINITY));
        assert_eq!(scrape.samples().len(), 4, "nothing silently dropped");
    }

    /// A body with no `# TYPE` metadata at all is still a valid scrape:
    /// samples carry their own shape, comments are advisory.
    #[test]
    fn missing_type_metadata_is_tolerated() {
        let bare =
            "ctc_gateway_bursts_total 7\nctc_lat_us_bucket{le=\"+Inf\"} 7\nctc_lat_us_sum 70\n";
        let scrape = Scrape::parse(bare).unwrap();
        assert_eq!(scrape.value("ctc_gateway_bursts_total", &[]), Some(7.0));
        let h = scrape.histogram("ctc_lat_us", &[]).unwrap();
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum, 70.0);
    }

    /// The same sample twice is ambiguous — `value()` would silently
    /// pick the first — so the parser rejects it, pointing at the line.
    #[test]
    fn duplicate_samples_are_rejected_with_line_number() {
        let err = Scrape::parse("x_total 1\nx_total 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("duplicate"), "{}", err.reason);

        // Label *order* does not make two samples distinct.
        let err =
            Scrape::parse("f_total{a=\"1\",b=\"2\"} 1\nf_total{b=\"2\",a=\"1\"} 3\n").unwrap_err();
        assert_eq!(err.line, 2);

        // Different label values ARE distinct samples; so are different
        // names with equal labels.
        let ok = "f_total{s=\"a\"} 1\nf_total{s=\"b\"} 2\ng_total{s=\"a\"} 3\nf_total 4\n";
        assert_eq!(Scrape::parse(ok).unwrap().samples().len(), 4);
    }

    /// Fields the gateway actually exposes parse with labels intact.
    #[test]
    fn gateway_shaped_lines_parse() {
        let text = "\
ctc_gateway_frames_total{stream=\"s1\",verdict=\"attack\"} 2
ctc_gateway_latency_us_bucket{le=\"+Inf\"} 7
ctc_sessions_active 3
";
        let scrape = Scrape::parse(text).unwrap();
        assert_eq!(
            scrape.value(
                "ctc_gateway_frames_total",
                &[("verdict", "attack"), ("stream", "s1")]
            ),
            Some(2.0)
        );
        let s = &scrape.samples()[1];
        assert_eq!(s.label("le"), Some("+Inf"));
        assert_eq!(scrape.value("ctc_sessions_active", &[]), Some(3.0));
    }
}
