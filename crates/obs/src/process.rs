//! Process-level collectors: memory footprint of the *process itself*,
//! scraped alongside the pipeline's own counters.
//!
//! The soak harness asserts "no monotonic memory growth over minutes of
//! sustained load" — which is only checkable if the gateway exposes its
//! resident set size on the same `/metrics` endpoint the harness already
//! scrapes. [`register_process_metrics`] wires a `gauge_fn` that reads
//! `/proc/self/status` on each scrape (cold path; a scrape every few
//! seconds costs one small file read).

use crate::registry::Registry;

/// Gauge name under which the resident set size is exposed, in bytes
/// (the conventional Prometheus process-metric name).
pub const RSS_GAUGE: &str = "process_resident_memory_bytes";

/// Registers process-level gauges (currently [`RSS_GAUGE`]) into
/// `registry`. Returns `true` when the platform supports them; on
/// non-Linux targets nothing is registered and the soak harness reports
/// its memory check as skipped rather than failing.
pub fn register_process_metrics(registry: &Registry) -> bool {
    if resident_bytes().is_none() {
        return false;
    }
    registry.gauge_fn(
        RSS_GAUGE,
        "Resident set size of this process in bytes.",
        &[],
        || resident_bytes().unwrap_or(0),
    );
    true
}

/// Current resident set size in bytes, or `None` where `/proc` is
/// unavailable.
pub fn resident_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    // "VmRSS:      1234 kB" — kB regardless of page size.
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn exposes_a_positive_rss() {
        let registry = Registry::new();
        assert!(register_process_metrics(&registry));
        let text = registry.render();
        let value: f64 = text
            .lines()
            .find(|l| l.starts_with(RSS_GAUGE))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .expect("RSS gauge rendered");
        assert!(value > 0.0, "{text}");
    }
}
