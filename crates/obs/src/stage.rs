//! [`Profiled`]: a [`Stage`] combinator that times every call.
//!
//! Wrapping a DSP stage records each `process`/`process_in_place` call's
//! wall-clock duration (microseconds) into a registry histogram named
//! `ctc_stage_duration_us{stage="<name>"}`, where `<name>` comes from
//! [`Stage::name`]. The wrapped stage is otherwise untouched — `Profiled`
//! forwards both methods, so in-place fast paths stay in place.

use crate::metrics::Histogram;
use crate::registry::Registry;
use ctc_dsp::buffer::{SampleBuf, Stage};
use ctc_dsp::Complex;
use std::sync::Arc;
use std::time::Instant;

/// Histogram family name used for all profiled stages.
pub const STAGE_DURATION_METRIC: &str = "ctc_stage_duration_us";

/// A [`Stage`] wrapper recording per-call durations into a [`Registry`].
#[derive(Debug)]
pub struct Profiled<S> {
    inner: S,
    durations: Arc<Histogram>,
}

impl<S: Stage> Profiled<S> {
    /// Wraps `stage`, registering its duration histogram in `registry`
    /// under the stage's [`name`](Stage::name).
    pub fn new(stage: S, registry: &Registry) -> Self {
        let durations = registry.histogram_with(
            STAGE_DURATION_METRIC,
            "Per-call processing time of instrumented DSP stages, in microseconds.",
            &[("stage", stage.name())],
        );
        Profiled {
            inner: stage,
            durations,
        }
    }

    /// The wrapped stage.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn observe(&self, started: Instant) {
        self.durations.record(started.elapsed().as_micros() as u64);
    }
}

impl<S: Stage> Stage for Profiled<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn process(&mut self, input: &[Complex], out: &mut SampleBuf) {
        let started = Instant::now();
        self.inner.process(input, out);
        self.observe(started);
    }

    fn process_in_place(&mut self, buf: &mut SampleBuf) {
        let started = Instant::now();
        self.inner.process_in_place(buf);
        self.observe(started);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Negate;
    impl Stage for Negate {
        fn name(&self) -> &'static str {
            "negate"
        }
        fn process(&mut self, input: &[Complex], out: &mut SampleBuf) {
            out.clear();
            out.extend(input.iter().map(|&v| v * -1.0));
        }
    }

    #[test]
    fn profiled_stage_counts_every_call() {
        let registry = Registry::new();
        let mut stage = Profiled::new(Negate, &registry);
        assert_eq!(stage.name(), "negate");

        let mut out = SampleBuf::detached(4);
        stage.process(&[Complex::ONE; 4], &mut out);
        assert_eq!(out.len(), 4);
        assert!((out[0] + Complex::ONE).norm() < 1e-12);

        let mut buf = SampleBuf::detached(2);
        buf.extend_from_slice(&[Complex::I; 2]);
        stage.process_in_place(&mut buf);
        assert!((buf[0] + Complex::I).norm() < 1e-12);

        let h = registry.histogram_with(STAGE_DURATION_METRIC, "", &[("stage", "negate")]);
        assert_eq!(h.count(), 2);
        let text = registry.render();
        assert!(
            text.contains("ctc_stage_duration_us_count{stage=\"negate\"} 2"),
            "{text}"
        );
    }
}
