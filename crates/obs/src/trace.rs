//! Lightweight structured tracing for the sample path.
//!
//! A *span* is one burst's journey through the pipeline. The ingest thread
//! allocates a span ID ([`next_span_id`]) when a burst closes, and every
//! downstream stage records a `(span, stage, start, end)` interval into a
//! shared [`TraceSink`]. Each record becomes one JSONL line:
//!
//! ```json
//! {"span":7,"seq":3,"stage":"decode","start_us":1042,"end_us":1981}
//! ```
//!
//! `start_us`/`end_us` are microseconds since the sink's construction, so
//! offline tools can rebuild a per-frame stage chain and check contiguity
//! (stage N's `end_us` is stage N+1's `start_us` when the pipeline hands
//! the same `Instant` across the boundary — which the gateway does).
//!
//! Span ID `0` is reserved as the "tracing disabled" sentinel; sinks ignore
//! records carrying it, so instrumented code can record unconditionally.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Allocates a fresh process-unique span ID (never `0`).
pub fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

struct SinkInner {
    out: Box<dyn Write + Send>,
    /// Reused line buffer: formatting a record makes no steady-state
    /// allocations once the buffer has grown to a typical line length.
    line: String,
}

/// A shared, append-only span log writing JSONL records.
///
/// Thread-safe: pipeline workers call [`record`](TraceSink::record)
/// concurrently; a mutex serialises line formatting and the write. Tracing
/// is off the hot path by construction — the gateway only creates a sink
/// when `--trace-out` is given.
pub struct TraceSink {
    epoch: Instant,
    inner: Mutex<SinkInner>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl TraceSink {
    /// A sink writing JSONL records to `out`. Timestamps are relative to
    /// this call.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        TraceSink {
            epoch: Instant::now(),
            inner: Mutex::new(SinkInner {
                out,
                line: String::with_capacity(128),
            }),
        }
    }

    /// The sink's epoch: the `Instant` that `start_us`/`end_us` are
    /// measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records one stage interval for `span` (sequence number `seq` ties
    /// the span to the emitted frame line). Records with `span == 0` are
    /// dropped — that is the "tracing disabled" sentinel.
    pub fn record(&self, span: u64, seq: u64, stage: &str, start: Instant, end: Instant) {
        if span == 0 {
            return;
        }
        let start_us = end_us_since(self.epoch, start);
        let end_us = end_us_since(self.epoch, end);
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        let inner = &mut *inner;
        inner.line.clear();
        use std::fmt::Write as _;
        let _ = writeln!(
            inner.line,
            "{{\"span\":{span},\"seq\":{seq},\"stage\":\"{stage}\",\"start_us\":{start_us},\"end_us\":{end_us}}}",
        );
        let _ = inner.out.write_all(inner.line.as_bytes());
    }

    /// Flushes the underlying writer. Call before process exit so no span
    /// records are lost (also done on drop).
    pub fn flush(&self) {
        let _ = self.inner.lock().expect("trace sink poisoned").out.flush();
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.get_mut() {
            let _ = inner.out.flush();
        }
    }
}

fn end_us_since(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    /// A write target the test can inspect after the sink flushes.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let id = next_span_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn records_become_jsonl_lines_relative_to_epoch() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(Box::new(buf.clone()));
        let t0 = sink.epoch() + Duration::from_micros(10);
        let t1 = sink.epoch() + Duration::from_micros(25);
        sink.record(7, 3, "decode", t0, t1);
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"span\":7,\"seq\":3,\"stage\":\"decode\",\"start_us\":10,\"end_us\":25}\n"
        );
    }

    #[test]
    fn span_zero_is_dropped() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(Box::new(buf.clone()));
        let now = Instant::now();
        sink.record(0, 0, "ingest", now, now);
        sink.flush();
        assert!(buf.0.lock().unwrap().is_empty());
    }

    #[test]
    fn concurrent_records_never_interleave_within_a_line() {
        let buf = SharedBuf::default();
        let sink = Arc::new(TraceSink::new(Box::new(buf.clone())));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    let now = Instant::now();
                    for i in 0..200 {
                        sink.record(t + 1, i, "stage", now, now);
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 800);
        for line in lines {
            assert!(line.starts_with("{\"span\":"), "mangled line: {line}");
            assert!(line.ends_with('}'), "mangled line: {line}");
        }
    }
}
