//! # ctc-zigbee
//!
//! IEEE 802.15.4 2.4 GHz PHY + minimal MAC, written from scratch for the
//! *Hide and Seek* (ICDCS 2019) reproduction. This is the victim stack: the
//! ZigBee transmitter whose waveform the WiFi attacker records, and the
//! ZigBee receiver the emulated waveform must fool.
//!
//! Pipeline (paper Fig. 1):
//!
//! ```text
//! TX: payload -> frame symbols -> DSSS spread (16x32 chips) -> O-QPSK half-sine
//! RX: sync -> O-QPSK demod -> clock recovery -> hard/soft DSSS despread -> frame
//! ```
//!
//! ## Quick start
//!
//! ```
//! use ctc_zigbee::{Receiver, Transmitter};
//!
//! let tx = Transmitter::new();
//! let wave = tx.transmit_payload(b"00000")?;
//! let reception = Receiver::usrp().receive(&wave);
//! assert_eq!(reception.payload(), Some(&b"00000"[..]));
//! # Ok::<(), ctc_zigbee::frame::FrameError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod channels;
pub mod chipmap;
pub mod frame;
pub mod frontend;
pub mod mac;
pub mod modem;
pub mod rx;
pub mod tx;

pub use channels::{WifiChannel, ZigbeeChannel};
pub use modem::ChipSamples;
pub use rx::{Decision, Receiver, Reception};
pub use tx::Transmitter;
