//! The 2.4 GHz channel plan (IEEE 802.15.4 channels 11–26 and the 802.11
//! channels they coexist with).
//!
//! The attack's spectral precondition (paper Sec. IV) is that the victim's
//! 2 MHz ZigBee channel lies inside the attacker's 20 MHz WiFi band: the
//! paper's example pairs ZigBee channel 17 (2435 MHz) with a WiFi carrier
//! at 2440 MHz. This module enumerates the plan so experiments can sweep
//! which victim channels a given attacker can reach.

/// An IEEE 802.15.4 2.4 GHz channel (11–26).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZigbeeChannel(u8);

/// Error for out-of-range channel numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidChannelError {
    number: u8,
}

impl std::fmt::Display for InvalidChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "802.15.4 2.4 GHz channels are 11..=26, got {}",
            self.number
        )
    }
}

impl std::error::Error for InvalidChannelError {}

impl ZigbeeChannel {
    /// Creates a channel from its number.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] outside 11–26.
    pub fn new(number: u8) -> Result<Self, InvalidChannelError> {
        if (11..=26).contains(&number) {
            Ok(ZigbeeChannel(number))
        } else {
            Err(InvalidChannelError { number })
        }
    }

    /// The paper's channel 17.
    pub fn paper_channel() -> Self {
        ZigbeeChannel(17)
    }

    /// Channel number (11–26).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Centre frequency in Hz: `2405 + 5 (k - 11)` MHz.
    pub fn center_hz(self) -> f64 {
        (2405.0 + 5.0 * (self.0 as f64 - 11.0)) * 1e6
    }

    /// Occupied bandwidth in Hz.
    pub fn bandwidth_hz(self) -> f64 {
        2.0e6
    }

    /// All sixteen channels.
    pub fn all() -> Vec<ZigbeeChannel> {
        (11..=26).map(ZigbeeChannel).collect()
    }
}

impl std::fmt::Display for ZigbeeChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ZigBee ch.{} ({:.0} MHz)",
            self.0,
            self.center_hz() / 1e6
        )
    }
}

/// An IEEE 802.11 2.4 GHz channel (1–13, 5 MHz raster from 2412 MHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WifiChannel(u8);

impl WifiChannel {
    /// Creates a channel from its number.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] outside 1–13.
    pub fn new(number: u8) -> Result<Self, InvalidChannelError> {
        if (1..=13).contains(&number) {
            Ok(WifiChannel(number))
        } else {
            Err(InvalidChannelError { number })
        }
    }

    /// The channel centred at 2440 MHz the paper's attacker uses (ch. 6 is
    /// 2437; the paper parks the carrier at 2440, between 6 and 7 — we
    /// expose both the raster and a free-tuning constructor).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Centre frequency in Hz: `2407 + 5 k` MHz.
    pub fn center_hz(self) -> f64 {
        (2407.0 + 5.0 * self.0 as f64) * 1e6
    }

    /// Occupied bandwidth in Hz (OFDM: 52 used subcarriers ≈ 16.6 MHz, but
    /// the channel allocation is 20 MHz).
    pub fn bandwidth_hz(self) -> f64 {
        20.0e6
    }

    /// All thirteen channels.
    pub fn all() -> Vec<WifiChannel> {
        (1..=13).map(WifiChannel).collect()
    }
}

impl std::fmt::Display for WifiChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WiFi ch.{} ({:.0} MHz)", self.0, self.center_hz() / 1e6)
    }
}

/// Whether a ZigBee channel's full 2 MHz band lies inside the *usable*
/// subcarrier span of a WiFi transmission centred at `wifi_center_hz`.
///
/// The usable span is the data-subcarrier region `±26 × 0.3125 MHz ≈
/// ±8.1 MHz`; a margin of one subcarrier keeps the edge bins available.
pub fn attackable(zigbee: ZigbeeChannel, wifi_center_hz: f64) -> bool {
    let span = 25.0 * 0.3125e6; // +- usable, one-bin margin
    let lo = wifi_center_hz - span;
    let hi = wifi_center_hz + span;
    let z_lo = zigbee.center_hz() - zigbee.bandwidth_hz() / 2.0;
    let z_hi = zigbee.center_hz() + zigbee.bandwidth_hz() / 2.0;
    z_lo >= lo && z_hi <= hi
}

/// All ZigBee channels attackable from a WiFi carrier at `wifi_center_hz`.
pub fn attackable_channels(wifi_center_hz: f64) -> Vec<ZigbeeChannel> {
    ZigbeeChannel::all()
        .into_iter()
        .filter(|&z| attackable(z, wifi_center_hz))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_17_matches_paper() {
        let ch = ZigbeeChannel::paper_channel();
        assert_eq!(ch.number(), 17);
        assert_eq!(ch.center_hz(), 2.435e9);
        assert_eq!(ch.to_string(), "ZigBee ch.17 (2435 MHz)");
    }

    #[test]
    fn channel_bounds() {
        assert!(ZigbeeChannel::new(10).is_err());
        assert!(ZigbeeChannel::new(27).is_err());
        assert!(ZigbeeChannel::new(11).is_ok());
        assert!(ZigbeeChannel::new(26).is_ok());
        assert!(WifiChannel::new(0).is_err());
        assert!(WifiChannel::new(14).is_err());
    }

    #[test]
    fn wifi_raster() {
        assert_eq!(WifiChannel::new(1).unwrap().center_hz(), 2.412e9);
        assert_eq!(WifiChannel::new(6).unwrap().center_hz(), 2.437e9);
        assert_eq!(WifiChannel::new(13).unwrap().center_hz(), 2.472e9);
    }

    #[test]
    fn paper_pairing_is_attackable() {
        // ZigBee 17 at 2435 inside a WiFi transmission at 2440: -5 MHz
        // offset, well within the data span.
        assert!(attackable(ZigbeeChannel::paper_channel(), 2.44e9));
    }

    #[test]
    fn distant_channels_are_not_attackable() {
        // ZigBee 26 at 2480 from a WiFi carrier at 2412.
        assert!(!attackable(ZigbeeChannel::new(26).unwrap(), 2.412e9));
    }

    #[test]
    fn attackable_set_size_is_three_or_four() {
        // A 20 MHz WiFi band covers ~15.6 MHz of usable span = 3 ZigBee
        // channels fully (5 MHz apart).
        for wifi in WifiChannel::all() {
            let n = attackable_channels(wifi.center_hz()).len();
            assert!((2..=4).contains(&n), "{wifi}: {n} attackable channels");
        }
    }

    #[test]
    fn sixteen_channels_total() {
        assert_eq!(ZigbeeChannel::all().len(), 16);
        assert_eq!(ZigbeeChannel::all()[0].center_hz(), 2.405e9);
        assert_eq!(ZigbeeChannel::all()[15].center_hz(), 2.48e9);
    }
}
