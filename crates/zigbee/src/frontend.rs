//! Narrowband receiver front-end.
//!
//! A ZigBee receiver digitizes only its own 2 MHz channel. When the incident
//! waveform is the attacker's 20 MHz WiFi emulation, the front-end
//! (down-conversion to the ZigBee centre frequency, channel-select low-pass,
//! decimation to 4 MHz) keeps at most 7 OFDM subcarriers' worth of it —
//! the information loss at the heart of the paper's Sec. V-A1 "FFT"
//! challenge.

use ctc_dsp::buffer::SampleBuf;
use ctc_dsp::filter::frequency_shift_in_place;
use ctc_dsp::resample::{decimate, Decimator, ZeroFactorError};
use ctc_dsp::Complex;

/// Converts a wideband waveform (sample rate `in_rate_hz`, centred at
/// `in_center_hz`) into what a ZigBee front-end centred at `out_center_hz`
/// sampling at `out_rate_hz` would capture.
///
/// `in_rate_hz` must be an integer multiple of `out_rate_hz`; the
/// anti-alias low-pass inside [`decimate`] models the 2 MHz channel filter.
///
/// # Errors
///
/// Returns [`ZeroFactorError`] if the rate ratio rounds to zero.
///
/// # Panics
///
/// Panics if `in_rate_hz` is not an integer multiple of `out_rate_hz`.
///
/// # Examples
///
/// ```
/// use ctc_zigbee::frontend::capture;
/// use ctc_dsp::Complex;
/// // WiFi at 2440 MHz / 20 MHz -> ZigBee channel 17 at 2435 MHz / 4 MHz.
/// let wifi = vec![Complex::ONE; 400];
/// let zig = capture(&wifi, 2.44e9, 20.0e6, 2.435e9, 4.0e6)?;
/// assert_eq!(zig.len(), 80);
/// # Ok::<(), ctc_dsp::resample::ZeroFactorError>(())
/// ```
pub fn capture(
    wave: &[Complex],
    in_center_hz: f64,
    in_rate_hz: f64,
    out_center_hz: f64,
    out_rate_hz: f64,
) -> Result<Vec<Complex>, ZeroFactorError> {
    let ratio = in_rate_hz / out_rate_hz;
    let factor = ratio.round() as usize;
    assert!(
        (ratio - factor as f64).abs() < 1e-9,
        "sample-rate ratio must be an integer, got {ratio}"
    );
    // Shift the target channel to DC: a signal at (out_center - in_center)
    // relative to the wideband centre must move down by that amount. When
    // the centres already coincide (baseband-aligned capture) decimate the
    // input directly — no full-waveform copy.
    let offset_hz = out_center_hz - in_center_hz;
    if offset_hz == 0.0 {
        return decimate(wave, factor);
    }
    let mut shifted = wave.to_vec();
    frequency_shift_in_place(&mut shifted, -offset_hz / in_rate_hz);
    decimate(&shifted, factor)
}

/// Streaming form of [`capture`]: the anti-alias decimator is designed once
/// and output goes to a caller-supplied buffer.
///
/// `shift_scratch` holds the frequency-shifted copy when the centres differ;
/// it is unused (and untouched) in the baseband-aligned case.
///
/// # Panics
///
/// Panics if `in_rate_hz / out_rate_hz` does not match `decimator.factor()`.
pub fn capture_into(
    wave: &[Complex],
    in_center_hz: f64,
    in_rate_hz: f64,
    out_center_hz: f64,
    decimator: &mut Decimator,
    shift_scratch: &mut SampleBuf,
    out: &mut SampleBuf,
) {
    let out_rate_hz = in_rate_hz / decimator.factor() as f64;
    let ratio = in_rate_hz / out_rate_hz;
    assert!(
        (ratio - decimator.factor() as f64).abs() < 1e-9,
        "sample-rate ratio must match the decimator factor, got {ratio}"
    );
    let offset_hz = out_center_hz - in_center_hz;
    if offset_hz == 0.0 {
        decimator.decimate_into(wave, out);
        return;
    }
    shift_scratch.clear();
    shift_scratch.extend_from_slice(wave);
    frequency_shift_in_place(shift_scratch, -offset_hz / in_rate_hz);
    decimator.decimate_into(shift_scratch, out);
}

/// The reverse of [`capture`] for the attacker side: express a narrowband
/// ZigBee waveform in the wideband WiFi baseband (interpolate + shift so the
/// ZigBee band sits at its real spectral position relative to the WiFi
/// centre).
///
/// # Errors
///
/// Returns [`ZeroFactorError`] if the rate ratio rounds to zero.
///
/// # Panics
///
/// Panics if `out_rate_hz` is not an integer multiple of `in_rate_hz`.
pub fn embed(
    wave: &[Complex],
    in_center_hz: f64,
    in_rate_hz: f64,
    out_center_hz: f64,
    out_rate_hz: f64,
) -> Result<Vec<Complex>, ZeroFactorError> {
    let ratio = out_rate_hz / in_rate_hz;
    let factor = ratio.round() as usize;
    assert!(
        (ratio - factor as f64).abs() < 1e-9,
        "sample-rate ratio must be an integer, got {ratio}"
    );
    let mut up = ctc_dsp::resample::interpolate(wave, factor)?;
    let offset_hz = in_center_hz - out_center_hz;
    if offset_hz != 0.0 {
        frequency_shift_in_place(&mut up, offset_hz / out_rate_hz);
    }
    Ok(up)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transmitter;
    use ctc_dsp::metrics::{correlation, mean_power};

    #[test]
    fn same_center_is_pure_decimation() {
        let x = vec![Complex::ONE; 100];
        let y = capture(&x, 2.44e9, 20.0e6, 2.44e9, 4.0e6).unwrap();
        assert_eq!(y.len(), 20);
        assert!((y[10] - Complex::ONE).norm() < 0.01);
    }

    #[test]
    #[should_panic(expected = "integer")]
    fn non_integer_ratio_panics() {
        let _ = capture(&[Complex::ONE; 10], 0.0, 10.0e6, 0.0, 4.0e6);
    }

    #[test]
    fn zigbee_waveform_survives_embed_capture_roundtrip() {
        // ZigBee ch.17 (2435 MHz) embedded into WiFi baseband (2440 MHz,
        // 20 MHz) and captured back must still correlate strongly.
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(b"0042").unwrap();
        let wide = embed(&wave, 2.435e9, 4.0e6, 2.44e9, 20.0e6).unwrap();
        let back = capture(&wide, 2.44e9, 20.0e6, 2.435e9, 4.0e6).unwrap();
        assert_eq!(back.len(), wave.len());
        // Skip filter edge transients when comparing.
        let n = wave.len();
        let c = correlation(&wave[40..n - 40], &back[40..n - 40]);
        assert!(c > 0.98, "round-trip correlation {c}");
    }

    #[test]
    fn out_of_band_signal_rejected() {
        // A tone at +8 MHz from the WiFi centre is outside the ZigBee channel
        // at -5 MHz; the front-end must crush it.
        let n = 2000;
        let tone: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * std::f64::consts::PI * 8.0e6 * t as f64 / 20.0e6))
            .collect();
        let captured = capture(&tone, 2.44e9, 20.0e6, 2.435e9, 4.0e6).unwrap();
        let p = mean_power(&captured[50..captured.len() - 50]);
        assert!(p < 1e-3, "out-of-band power leaked: {p}");
    }

    #[test]
    fn in_band_signal_passes() {
        // A tone at -5 MHz from the WiFi centre is exactly the ZigBee centre.
        let n = 2000;
        let tone: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(-2.0 * std::f64::consts::PI * 5.0e6 * t as f64 / 20.0e6))
            .collect();
        let captured = capture(&tone, 2.44e9, 20.0e6, 2.435e9, 4.0e6).unwrap();
        let p = mean_power(&captured[50..captured.len() - 50]);
        assert!((p - 1.0).abs() < 0.05, "in-band tone attenuated: {p}");
    }
}
