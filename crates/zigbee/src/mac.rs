//! IEEE 802.15.4 MAC layer: frame control, sequence numbers, short
//! addressing, and a stateful receiving device.
//!
//! The attack replays a recorded frame verbatim, so the MAC header — and in
//! particular the 8-bit sequence number — comes along for the ride. A
//! device that caches recent sequence numbers rejects *verbatim replays*
//! while its cache holds state; the extension experiments quantify how far
//! that gets a defender compared to the physical-layer detector (spoiler:
//! it is bypassed by waiting out the cache or power-cycling the device,
//! and it cannot tell *who* transmitted — the cumulant detector can).

use crate::frame::{build_frame_symbols, FrameError};

/// MAC frame types (FCF bits 0–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacFrameType {
    /// Beacon.
    Beacon,
    /// Data.
    Data,
    /// Acknowledgement.
    Ack,
    /// MAC command.
    Command,
}

impl MacFrameType {
    fn to_bits(self) -> u16 {
        match self {
            MacFrameType::Beacon => 0,
            MacFrameType::Data => 1,
            MacFrameType::Ack => 2,
            MacFrameType::Command => 3,
        }
    }

    fn from_bits(bits: u16) -> Option<Self> {
        Some(match bits & 0b111 {
            0 => MacFrameType::Beacon,
            1 => MacFrameType::Data,
            2 => MacFrameType::Ack,
            3 => MacFrameType::Command,
            _ => return None,
        })
    }
}

/// Errors from MAC parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacParseError {
    /// Not enough bytes for the fixed header.
    TooShort,
    /// Reserved/unsupported frame type bits.
    UnsupportedType,
}

impl std::fmt::Display for MacParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MacParseError::TooShort => write!(f, "MPDU shorter than the MAC header"),
            MacParseError::UnsupportedType => write!(f, "unsupported MAC frame type"),
        }
    }
}

impl std::error::Error for MacParseError {}

/// A MAC frame with short (16-bit) addressing on both ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacFrame {
    /// Frame type.
    pub frame_type: MacFrameType,
    /// 8-bit sequence number.
    pub sequence: u8,
    /// Destination PAN identifier.
    pub dest_pan: u16,
    /// Destination short address.
    pub dest: u16,
    /// Source short address (intra-PAN: source PAN compressed).
    pub src: u16,
    /// MAC payload (MSDU).
    pub payload: Vec<u8>,
}

impl MacFrame {
    /// A data frame with the given addressing.
    pub fn data(sequence: u8, dest_pan: u16, dest: u16, src: u16, payload: Vec<u8>) -> Self {
        MacFrame {
            frame_type: MacFrameType::Data,
            sequence,
            dest_pan,
            dest,
            src,
            payload,
        }
    }

    /// Serializes to an MPDU (without FCS — the PHY framing layer appends
    /// the CRC-16).
    pub fn to_mpdu(&self) -> Vec<u8> {
        // FCF: type | intra-PAN (bit 6) | dest addressing short (bits 10-11
        // = 0b10) | src addressing short (bits 14-15 = 0b10).
        let fcf: u16 = self.frame_type.to_bits() | (1 << 6) | (0b10 << 10) | (0b10 << 14);
        let mut out = Vec::with_capacity(9 + self.payload.len());
        out.extend_from_slice(&fcf.to_le_bytes());
        out.push(self.sequence);
        out.extend_from_slice(&self.dest_pan.to_le_bytes());
        out.extend_from_slice(&self.dest.to_le_bytes());
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses an MPDU (FCS already stripped by the PHY layer).
    ///
    /// # Errors
    ///
    /// See [`MacParseError`].
    pub fn from_mpdu(mpdu: &[u8]) -> Result<MacFrame, MacParseError> {
        if mpdu.len() < 9 {
            return Err(MacParseError::TooShort);
        }
        let fcf = u16::from_le_bytes([mpdu[0], mpdu[1]]);
        let frame_type = MacFrameType::from_bits(fcf).ok_or(MacParseError::UnsupportedType)?;
        Ok(MacFrame {
            frame_type,
            sequence: mpdu[2],
            dest_pan: u16::from_le_bytes([mpdu[3], mpdu[4]]),
            dest: u16::from_le_bytes([mpdu[5], mpdu[6]]),
            src: u16::from_le_bytes([mpdu[7], mpdu[8]]),
            payload: mpdu[9..].to_vec(),
        })
    }

    /// Builds the full on-air symbol stream (PHY framing + FCS included).
    ///
    /// # Errors
    ///
    /// Propagates [`FrameError::PayloadTooLong`].
    pub fn to_symbols(&self) -> Result<Vec<u8>, FrameError> {
        build_frame_symbols(&self.to_mpdu())
    }
}

/// Why a device rejected a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// Addressed to another device or PAN.
    NotForMe,
    /// Sequence number recently seen from this source (verbatim replay).
    DuplicateSequence,
    /// Header did not parse.
    Malformed,
}

/// A stateful ZigBee end device: filters by address and deduplicates by
/// `(source, sequence)` over a bounded cache — the MAC-level anti-replay
/// measure the extension experiments evaluate.
#[derive(Debug, Clone)]
pub struct ZigbeeDevice {
    pan: u16,
    address: u16,
    seen: std::collections::VecDeque<(u16, u8)>,
    cache_size: usize,
}

impl ZigbeeDevice {
    /// A device with the given PAN/short address and a sequence cache of
    /// `cache_size` entries (0 disables anti-replay).
    pub fn new(pan: u16, address: u16, cache_size: usize) -> Self {
        ZigbeeDevice {
            pan,
            address,
            seen: std::collections::VecDeque::new(),
            cache_size,
        }
    }

    /// Handles one received MPDU: returns the accepted frame or the reason
    /// for rejection. Accepting records the sequence number.
    pub fn handle(&mut self, mpdu: &[u8]) -> Result<MacFrame, Rejection> {
        let frame = MacFrame::from_mpdu(mpdu).map_err(|_| Rejection::Malformed)?;
        if frame.dest_pan != self.pan || frame.dest != self.address {
            return Err(Rejection::NotForMe);
        }
        let key = (frame.src, frame.sequence);
        if self.cache_size > 0 {
            if self.seen.contains(&key) {
                return Err(Rejection::DuplicateSequence);
            }
            self.seen.push_back(key);
            while self.seen.len() > self.cache_size {
                self.seen.pop_front();
            }
        }
        Ok(frame)
    }

    /// Clears the sequence cache (a power cycle — what an attacker waits
    /// for, or induces).
    pub fn power_cycle(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::parse_frame_symbols;

    fn frame(seq: u8) -> MacFrame {
        MacFrame::data(seq, 0x1A2B, 0x0001, 0x00C0, b"on".to_vec())
    }

    #[test]
    fn mpdu_roundtrip() {
        let f = frame(42);
        assert_eq!(MacFrame::from_mpdu(&f.to_mpdu()).unwrap(), f);
    }

    #[test]
    fn all_types_roundtrip() {
        for t in [
            MacFrameType::Beacon,
            MacFrameType::Data,
            MacFrameType::Ack,
            MacFrameType::Command,
        ] {
            let f = MacFrame {
                frame_type: t,
                ..frame(1)
            };
            assert_eq!(MacFrame::from_mpdu(&f.to_mpdu()).unwrap().frame_type, t);
        }
    }

    #[test]
    fn phy_integration() {
        let f = frame(7);
        let symbols = f.to_symbols().unwrap();
        let parsed = parse_frame_symbols(&symbols).unwrap();
        assert_eq!(MacFrame::from_mpdu(&parsed.payload).unwrap(), f);
    }

    #[test]
    fn short_mpdu_rejected() {
        assert_eq!(MacFrame::from_mpdu(&[0u8; 5]), Err(MacParseError::TooShort));
    }

    #[test]
    fn device_filters_addresses() {
        let mut dev = ZigbeeDevice::new(0x1A2B, 0x0001, 8);
        assert!(dev.handle(&frame(1).to_mpdu()).is_ok());
        let other = MacFrame::data(2, 0x1A2B, 0x0002, 0x00C0, vec![]);
        assert_eq!(dev.handle(&other.to_mpdu()), Err(Rejection::NotForMe));
        let other_pan = MacFrame::data(3, 0xFFFF, 0x0001, 0x00C0, vec![]);
        assert_eq!(dev.handle(&other_pan.to_mpdu()), Err(Rejection::NotForMe));
    }

    #[test]
    fn verbatim_replay_rejected_while_cached() {
        let mut dev = ZigbeeDevice::new(0x1A2B, 0x0001, 8);
        let f = frame(9);
        assert!(dev.handle(&f.to_mpdu()).is_ok());
        assert_eq!(dev.handle(&f.to_mpdu()), Err(Rejection::DuplicateSequence));
    }

    #[test]
    fn cache_eviction_reopens_replay_window() {
        let mut dev = ZigbeeDevice::new(0x1A2B, 0x0001, 2);
        let f = frame(1);
        assert!(dev.handle(&f.to_mpdu()).is_ok());
        // Two newer frames evict sequence 1 from the 2-entry cache.
        assert!(dev.handle(&frame(2).to_mpdu()).is_ok());
        assert!(dev.handle(&frame(3).to_mpdu()).is_ok());
        assert!(
            dev.handle(&f.to_mpdu()).is_ok(),
            "evicted sequence numbers are replayable again"
        );
    }

    #[test]
    fn power_cycle_clears_protection() {
        let mut dev = ZigbeeDevice::new(0x1A2B, 0x0001, 8);
        let f = frame(5);
        assert!(dev.handle(&f.to_mpdu()).is_ok());
        dev.power_cycle();
        assert!(dev.handle(&f.to_mpdu()).is_ok());
    }

    #[test]
    fn zero_cache_disables_anti_replay() {
        let mut dev = ZigbeeDevice::new(0x1A2B, 0x0001, 0);
        let f = frame(5);
        assert!(dev.handle(&f.to_mpdu()).is_ok());
        assert!(dev.handle(&f.to_mpdu()).is_ok());
    }
}
