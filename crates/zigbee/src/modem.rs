//! O-QPSK half-sine modulation and chip-level demodulation.
//!
//! The 802.15.4 2.4 GHz PHY transmits 2 Mchip/s: even-indexed chips ride the
//! in-phase branch, odd-indexed chips the quadrature branch delayed by one
//! chip period `Tc` (the "offset" in O-QPSK), and every chip is shaped by a
//! half-sine pulse spanning `2 Tc`. At the 4 MHz sample rate used throughout
//! the paper that is [`SAMPLES_PER_CHIP`] = 2 samples per chip and a 4-sample
//! pulse, giving the constant-envelope waveform whose quarter-symbols the
//! WiFi attacker emulates.

use ctc_dsp::Complex;

/// Samples per chip at the paper's 4 MHz ZigBee sample rate (2 Mchip/s).
pub const SAMPLES_PER_CHIP: usize = 2;

/// Samples per 32-chip ZigBee symbol (64 = 16 µs at 4 MHz).
pub const SAMPLES_PER_SYMBOL: usize = crate::chipmap::CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP;

/// Length of the half-sine pulse in samples (two chip periods).
const PULSE_LEN: usize = 2 * SAMPLES_PER_CHIP;

/// Half-sine pulse sample `p[i] = sin(pi * i / (2 * SAMPLES_PER_CHIP))`.
fn pulse(i: usize) -> f64 {
    (std::f64::consts::PI * i as f64 / PULSE_LEN as f64).sin()
}

/// Extra samples the Q-branch offset adds past the last chip boundary.
pub const TAIL_SAMPLES: usize = SAMPLES_PER_CHIP;

/// Modulates a chip sequence (values 0/1) into a complex baseband waveform.
///
/// The output has `chips.len() * SAMPLES_PER_CHIP + TAIL_SAMPLES` samples:
/// the O-QPSK offset pushes the final quadrature pulse one chip period past
/// the nominal end.
///
/// # Panics
///
/// Panics if `chips.len()` is odd (I/Q chips must pair up) or any chip value
/// exceeds 1.
///
/// # Examples
///
/// ```
/// use ctc_zigbee::modem::{modulate_chips, SAMPLES_PER_CHIP, TAIL_SAMPLES};
/// let chips = ctc_zigbee::chipmap::spread(0);
/// let wave = modulate_chips(&chips);
/// assert_eq!(wave.len(), 32 * SAMPLES_PER_CHIP + TAIL_SAMPLES);
/// ```
pub fn modulate_chips(chips: &[u8]) -> Vec<Complex> {
    assert!(
        chips.len().is_multiple_of(2),
        "chip count must be even, got {}",
        chips.len()
    );
    assert!(chips.iter().all(|&c| c <= 1), "chips must be 0/1 values");
    let n = chips.len() * SAMPLES_PER_CHIP + TAIL_SAMPLES;
    let mut wave = vec![Complex::ZERO; n];
    for (k, &chip) in chips.iter().enumerate() {
        let bipolar = if chip == 1 { 1.0 } else { -1.0 };
        let pair = k / 2;
        let start = if k % 2 == 0 {
            // I branch: pulse spans [2*pair*2spc, +PULSE_LEN)
            pair * 2 * SAMPLES_PER_CHIP
        } else {
            // Q branch: delayed by one chip period.
            pair * 2 * SAMPLES_PER_CHIP + SAMPLES_PER_CHIP
        };
        for i in 0..PULSE_LEN {
            let v = bipolar * pulse(i);
            if k % 2 == 0 {
                wave[start + i].re += v;
            } else {
                wave[start + i].im += v;
            }
        }
    }
    wave
}

/// Raw chip-rate samples extracted from a waveform: the input to DSSS
/// demodulation, and exactly what the defense reconstructs its QPSK
/// constellation from ("we consider to use the input of the DSSS
/// demodulation", Sec. VI-A2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChipSamples {
    /// Soft I-branch values (even chips), one per chip pair.
    pub i_samples: Vec<f64>,
    /// Soft Q-branch values (odd chips), one per chip pair.
    pub q_samples: Vec<f64>,
    /// Complex waveform samples taken between the I and Q pulse centres,
    /// where a clean O-QPSK waveform passes through `(±1 ± j)/sqrt(2)` —
    /// one genuine QPSK point per chip pair. Channel rotations show up here
    /// as constellation rotation (paper Fig. 6b), unlike in the
    /// branch-projected values above.
    pub midpoints: Vec<Complex>,
}

impl ChipSamples {
    /// Number of chip pairs.
    pub fn len(&self) -> usize {
        self.i_samples.len()
    }

    /// True when no samples were captured.
    pub fn is_empty(&self) -> bool {
        self.i_samples.is_empty()
    }

    /// Interleaves back to soft chip order `c0, c1, c2, ...` (bipolar).
    pub fn interleaved(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len() * 2);
        for (i, q) in self.i_samples.iter().zip(&self.q_samples) {
            out.push(*i);
            out.push(*q);
        }
        out
    }

    /// Hard decisions: `>= 0 -> 1`, `< 0 -> 0`, in chip order.
    pub fn hard_chips(&self) -> Vec<u8> {
        self.interleaved()
            .iter()
            .map(|&v| u8::from(v >= 0.0))
            .collect()
    }

    /// The defense's constellation points: one complex QPSK point per chip
    /// pair ("odd parts are put to the real axis and even parts being put to
    /// the imaginary axis", Sec. VI-A2), taken at the inter-centre sampling
    /// instants so channel phase offsets rotate the diagram as in Fig. 6b.
    pub fn constellation(&self) -> Vec<Complex> {
        self.midpoints.clone()
    }

    /// Constellation built from the branch-projected soft values
    /// (`I_k + j Q_k`). Equivalent to [`ChipSamples::constellation`] up to a
    /// fixed `e^{j pi/4}/sqrt(2)` factor on undistorted channels, but blind
    /// to phase rotation.
    pub fn branch_constellation(&self) -> Vec<Complex> {
        self.i_samples
            .iter()
            .zip(&self.q_samples)
            .map(|(&i, &q)| Complex::new(i, q))
            .collect()
    }
}

/// Samples the matched-filter outputs at chip centers, assuming the waveform
/// starts exactly at a chip-pair boundary (perfect clock recovery).
///
/// Returns one I and one Q soft value per chip pair. `num_chips` must be
/// even; pairs whose sample positions run past the waveform are dropped.
///
/// # Panics
///
/// Panics if `num_chips` is odd.
pub fn demodulate_chips(wave: &[Complex], num_chips: usize) -> ChipSamples {
    assert!(num_chips.is_multiple_of(2), "chip count must be even");
    let pairs = num_chips / 2;
    let mut out = ChipSamples::default();
    for n in 0..pairs {
        let i_idx = n * 2 * SAMPLES_PER_CHIP + SAMPLES_PER_CHIP; // pulse centre
        let q_idx = i_idx + SAMPLES_PER_CHIP;
        if q_idx >= wave.len() {
            break;
        }
        out.i_samples.push(wave[i_idx].re);
        out.q_samples.push(wave[q_idx].im);
        // Midway between the two centres both half-sine pulses read
        // 1/sqrt(2), so the clean waveform is (a_I + j a_Q)/sqrt(2).
        out.midpoints.push(wave[i_idx + SAMPLES_PER_CHIP / 2]);
    }
    out
}

/// Instantaneous phase (radians, unwrapped) of a waveform — the "output of
/// the OQPSK demodulation" trace the paper plots in Fig. 9a to show that
/// frequency trends cannot distinguish the attacker.
pub fn instantaneous_phase(wave: &[Complex]) -> Vec<f64> {
    let mut out = Vec::with_capacity(wave.len());
    let mut prev = 0.0f64;
    let mut acc = 0.0f64;
    for (n, v) in wave.iter().enumerate() {
        let a = v.arg();
        if n > 0 {
            let mut d = a - prev;
            while d > std::f64::consts::PI {
                d -= 2.0 * std::f64::consts::PI;
            }
            while d < -std::f64::consts::PI {
                d += 2.0 * std::f64::consts::PI;
            }
            acc += d;
        } else {
            acc = a;
        }
        prev = a;
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chipmap::spread;
    use proptest::prelude::*;

    #[test]
    fn pulse_shape() {
        assert_eq!(pulse(0), 0.0);
        assert!((pulse(SAMPLES_PER_CHIP) - 1.0).abs() < 1e-12);
        assert!((pulse(1) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn waveform_length() {
        let chips = vec![1u8; 32];
        let w = modulate_chips(&chips);
        assert_eq!(w.len(), 32 * SAMPLES_PER_CHIP + TAIL_SAMPLES);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_chip_count_panics() {
        let _ = modulate_chips(&[1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "0/1")]
    fn bad_chip_value_panics() {
        let _ = modulate_chips(&[1, 2]);
    }

    #[test]
    fn constant_envelope() {
        // Half-sine O-QPSK has |s(t)| = 1 away from the ramp-up/down edges.
        let chips = spread(5);
        let w = modulate_chips(&chips);
        for v in &w[SAMPLES_PER_CHIP..w.len() - PULSE_LEN] {
            assert!((v.norm() - 1.0).abs() < 1e-9, "envelope {}", v.norm());
        }
    }

    #[test]
    fn chips_roundtrip_clean() {
        for s in 0..16u8 {
            let chips = spread(s);
            let w = modulate_chips(&chips);
            let samples = demodulate_chips(&w, chips.len());
            assert_eq!(samples.hard_chips(), chips.to_vec());
        }
    }

    #[test]
    fn chip_samples_are_unit_magnitude_at_centres() {
        let chips = spread(3);
        let w = modulate_chips(&chips);
        let samples = demodulate_chips(&w, chips.len());
        for v in samples.interleaved() {
            assert!((v.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constellation_is_qpsk() {
        let chips = spread(11);
        let w = modulate_chips(&chips);
        let samples = demodulate_chips(&w, chips.len());
        let pts = samples.constellation();
        assert_eq!(pts.len(), 16);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        for p in &pts {
            assert!((p.re.abs() - r).abs() < 1e-9, "{p}");
            assert!((p.im.abs() - r).abs() < 1e-9, "{p}");
        }
        // Branch constellation sits at (±1, ±1) and agrees in sign.
        for (b, m) in samples.branch_constellation().iter().zip(&pts) {
            assert!((b.re.abs() - 1.0).abs() < 1e-9);
            assert_eq!(b.re.signum(), m.re.signum());
            assert_eq!(b.im.signum(), m.im.signum());
        }
    }

    #[test]
    fn constellation_rotates_with_channel_phase() {
        // Phase offsets must rotate the midpoint constellation (Fig. 6b),
        // not merely attenuate it.
        let chips = spread(6);
        let w = modulate_chips(&chips);
        let theta = 0.6;
        let rotated: Vec<Complex> = w.iter().map(|&v| v * Complex::cis(theta)).collect();
        let pts = demodulate_chips(&rotated, chips.len()).constellation();
        for p in pts {
            let rel = (p.arg() - std::f64::consts::FRAC_PI_4 - theta)
                .rem_euclid(std::f64::consts::FRAC_PI_2);
            let off = rel.min(std::f64::consts::FRAC_PI_2 - rel);
            assert!(off < 1e-9, "point {p} not rotated by {theta}");
        }
    }

    #[test]
    fn demodulate_truncated_waveform_stops_early() {
        let chips = spread(0);
        let w = modulate_chips(&chips);
        let samples = demodulate_chips(&w[..20], chips.len());
        assert!(samples.len() < 16);
        assert!(!samples.is_empty());
    }

    #[test]
    fn instantaneous_phase_monotone_for_rotation() {
        let w: Vec<Complex> = (0..50).map(|n| Complex::cis(0.3 * n as f64)).collect();
        let ph = instantaneous_phase(&w);
        for pair in ph.windows(2) {
            assert!((pair[1] - pair[0] - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_symbol_concatenation_keeps_chip_alignment() {
        // Two symbols back to back decode independently.
        let mut chips = Vec::new();
        chips.extend_from_slice(&spread(4));
        chips.extend_from_slice(&spread(9));
        let w = modulate_chips(&chips);
        let samples = demodulate_chips(&w, chips.len());
        let hard = samples.hard_chips();
        assert_eq!(&hard[..32], &spread(4)[..]);
        assert_eq!(&hard[32..64], &spread(9)[..]);
    }

    proptest! {
        #[test]
        fn arbitrary_even_chip_sequences_roundtrip(chips in proptest::collection::vec(0u8..2, 2..128)) {
            let chips = if chips.len() % 2 == 1 { chips[..chips.len()-1].to_vec() } else { chips };
            let w = modulate_chips(&chips);
            let got = demodulate_chips(&w, chips.len()).hard_chips();
            prop_assert_eq!(got, chips);
        }
    }
}
