//! Toy application layer.
//!
//! The paper's end-to-end runs "denote the text from 00000 to 00099 as the
//! input of the APP layer" (Sec. VII-C1): one hundred five-digit messages,
//! each sent as one packet. This module generates and checks that corpus and
//! gives a tiny command vocabulary for the smart-device examples.

/// The corpus of payloads used by the paper's evaluation: `"00000"` through
/// `"00099"` (`count = 100`), generalized to any count up to 100 000.
///
/// # Panics
///
/// Panics if `count > 100_000` (would not fit five digits).
///
/// # Examples
///
/// ```
/// let msgs = ctc_zigbee::app::numbered_messages(3);
/// assert_eq!(msgs, vec![b"00000".to_vec(), b"00001".to_vec(), b"00002".to_vec()]);
/// ```
pub fn numbered_messages(count: usize) -> Vec<Vec<u8>> {
    assert!(
        count <= 100_000,
        "five-digit corpus caps at 100000 messages"
    );
    (0..count).map(|i| format!("{i:05}").into_bytes()).collect()
}

/// Checks a decoded payload against the expected corpus entry.
pub fn verify_message(payload: &[u8], index: usize) -> bool {
    payload == format!("{index:05}").as_bytes()
}

/// Control commands a ZigBee actuator (smart bulb, lock, thermostat…)
/// understands in the examples — the kind of message the attacker replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Switch the device on.
    TurnOn,
    /// Switch the device off.
    TurnOff,
    /// Unlock (e.g. the garage door from the paper's introduction).
    Unlock,
    /// Set a numeric level (brightness, temperature setpoint).
    SetLevel(u8),
}

impl Command {
    /// Serializes to a fixed 2-byte payload.
    pub fn to_payload(self) -> Vec<u8> {
        match self {
            Command::TurnOn => vec![0x01, 0x00],
            Command::TurnOff => vec![0x02, 0x00],
            Command::Unlock => vec![0x03, 0x00],
            Command::SetLevel(v) => vec![0x04, v],
        }
    }

    /// Parses a payload back into a command.
    pub fn from_payload(payload: &[u8]) -> Option<Command> {
        match payload {
            [0x01, 0x00] => Some(Command::TurnOn),
            [0x02, 0x00] => Some(Command::TurnOff),
            [0x03, 0x00] => Some(Command::Unlock),
            [0x04, v] => Some(Command::SetLevel(*v)),
            _ => None,
        }
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Command::TurnOn => write!(f, "TURN_ON"),
            Command::TurnOff => write!(f, "TURN_OFF"),
            Command::Unlock => write!(f, "UNLOCK"),
            Command::SetLevel(v) => write!(f, "SET_LEVEL({v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_paper() {
        let msgs = numbered_messages(100);
        assert_eq!(msgs.len(), 100);
        assert_eq!(msgs[0], b"00000");
        assert_eq!(msgs[99], b"00099");
    }

    #[test]
    fn verify_matches() {
        assert!(verify_message(b"00042", 42));
        assert!(!verify_message(b"00042", 41));
    }

    #[test]
    #[should_panic(expected = "caps")]
    fn oversize_corpus_panics() {
        let _ = numbered_messages(100_001);
    }

    #[test]
    fn commands_roundtrip() {
        for cmd in [
            Command::TurnOn,
            Command::TurnOff,
            Command::Unlock,
            Command::SetLevel(77),
        ] {
            assert_eq!(Command::from_payload(&cmd.to_payload()), Some(cmd));
        }
        assert_eq!(Command::from_payload(b"xx"), None);
        assert_eq!(Command::from_payload(b""), None);
    }

    #[test]
    fn command_display() {
        assert_eq!(Command::Unlock.to_string(), "UNLOCK");
        assert_eq!(Command::SetLevel(5).to_string(), "SET_LEVEL(5)");
    }
}
