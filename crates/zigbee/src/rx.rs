//! ZigBee receiver: synchronization, O-QPSK demodulation, clock recovery,
//! DSSS despreading and frame parsing (Fig. 1, right half).
//!
//! Two despreading back-ends model the paper's two receiver platforms:
//!
//! - [`Decision::Hard`] — hard chip decisions + minimum-Hamming-distance
//!   lookup with a correlation threshold (the GNURadio/USRP pipeline).
//! - [`Decision::Soft`] — correlation of soft chip values against all 16
//!   sequences (the "stronger demodulation functions" of commodity
//!   CC26x2R1 silicon, Fig. 14b).

use crate::chipmap::{despread_hard, despread_soft, spread, CHIPS_PER_SYMBOL};
use crate::frame::{parse_frame_symbols, Frame, FrameError};
use crate::modem::{demodulate_chips, modulate_chips, ChipSamples, SAMPLES_PER_CHIP};
use ctc_dsp::{simd, Complex};

/// Despreading strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Hard chip decisions; a 32-chip group whose best Hamming distance
    /// exceeds `threshold` is dropped (the paper uses threshold 10).
    Hard {
        /// Maximum tolerated Hamming distance.
        threshold: u32,
    },
    /// Soft correlation against all chip sequences; a group whose normalized
    /// score falls below `min_score` is dropped.
    Soft {
        /// Minimum normalized correlation in `[-1, 1]`.
        min_score: f64,
    },
}

impl Default for Decision {
    fn default() -> Self {
        Decision::Hard { threshold: 10 }
    }
}

/// Synchronization estimates recovered from the preamble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncResult {
    /// Sample offset of the first preamble chip.
    pub offset: usize,
    /// Carrier phase estimate (radians).
    pub phase: f64,
    /// Residual CFO estimate (radians per sample).
    pub cfo_per_sample: f64,
    /// Peak normalized correlation achieved during the search.
    pub peak_correlation: f64,
}

/// Everything the receiver extracted from one waveform.
#[derive(Debug, Clone)]
pub struct Reception {
    /// Despread data symbols, in order (dropped groups decoded anyway and
    /// flagged in [`Reception::dropped`]).
    pub symbols: Vec<u8>,
    /// Per-symbol Hamming distance (hard decision) between received and
    /// matched chip sequence.
    pub hamming_distances: Vec<u32>,
    /// Per-symbol normalized soft correlation score.
    pub soft_scores: Vec<f64>,
    /// Per-symbol drop flags (distance/score beyond the configured limit).
    pub dropped: Vec<bool>,
    /// Raw chip samples before any correction.
    pub raw_chip_samples: ChipSamples,
    /// Chip samples after CFO correction but before phase correction — what
    /// the defense taps: clock recovery has removed the frequency drift, but
    /// the channel's static phase rotation is still visible (Fig. 6b).
    pub defense_chip_samples: ChipSamples,
    /// Chip samples after phase/CFO correction — what despreading used.
    pub chip_samples: ChipSamples,
    /// Frame parse over the despread symbols.
    pub frame: Result<Frame, FrameError>,
    /// Synchronization estimates.
    pub sync: SyncResult,
}

impl Reception {
    /// True when a frame parsed, its FCS checked out, and no symbol in the
    /// PSDU region was dropped.
    pub fn packet_ok(&self) -> bool {
        match &self.frame {
            Ok(f) => {
                let start = f.psdu_symbol_offset;
                !self
                    .dropped
                    .iter()
                    .skip(start)
                    .take(f.payload.len() * 2 + 4)
                    .any(|&d| d)
            }
            Err(_) => false,
        }
    }

    /// Payload bytes if the packet decoded.
    pub fn payload(&self) -> Option<&[u8]> {
        self.frame.as_ref().ok().map(|f| f.payload.as_slice())
    }

    /// Counts symbol mismatches against an expected transmitted stream
    /// (compared over the shorter of the two).
    pub fn symbol_errors(&self, expected: &[u8]) -> usize {
        self.symbols
            .iter()
            .zip(expected)
            .filter(|(a, b)| a != b)
            .count()
            + expected.len().saturating_sub(self.symbols.len())
    }
}

/// A configured ZigBee receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct Receiver {
    decision: Decision,
    sync_search: usize,
    correct_phase: bool,
    correct_cfo: bool,
    fractional_timing: bool,
}

impl Default for Receiver {
    fn default() -> Self {
        Self::new()
    }
}

impl Receiver {
    /// Hard-decision receiver (threshold 10), no timing search (the waveform
    /// is assumed frame-aligned, as in the paper's simulations), with
    /// preamble phase correction enabled.
    pub fn new() -> Self {
        Receiver {
            decision: Decision::default(),
            sync_search: 0,
            correct_phase: true,
            correct_cfo: true,
            fractional_timing: false,
        }
    }

    /// USRP-like receiver: hard decisions with the paper's threshold of 10.
    pub fn usrp() -> Self {
        Self::new()
    }

    /// Commodity-device receiver: soft-decision despreading.
    pub fn commodity() -> Self {
        Self::new().with_decision(Decision::Soft { min_score: 0.25 })
    }

    /// Sets the despreading strategy.
    pub fn with_decision(mut self, decision: Decision) -> Self {
        self.decision = decision;
        self
    }

    /// Enables a timing search over `0..=max_offset` samples.
    pub fn with_sync_search(mut self, max_offset: usize) -> Self {
        self.sync_search = max_offset;
        self
    }

    /// Enables/disables preamble-based phase correction.
    pub fn with_phase_correction(mut self, enabled: bool) -> Self {
        self.correct_phase = enabled;
        self
    }

    /// Enables/disables preamble-based CFO correction.
    pub fn with_cfo_correction(mut self, enabled: bool) -> Self {
        self.correct_cfo = enabled;
        self
    }

    /// Enables sub-sample timing recovery: after the integer search, the
    /// receiver tests quarter-sample offsets with a Farrow fractional
    /// interpolator and keeps the best preamble correlation. Needed when
    /// the incoming waveform is not sample-aligned with the receiver's
    /// clock (always true over the air).
    pub fn with_fractional_timing(mut self, enabled: bool) -> Self {
        self.fractional_timing = enabled;
        self
    }

    /// The reference waveform of one preamble symbol (32 chips of symbol 0).
    ///
    /// Modulated once per process: every burst the streaming gateway decodes
    /// runs synchronization, so rebuilding the template per call would put a
    /// fixed waveform synthesis on the hot path.
    fn preamble_template() -> &'static [Complex] {
        static TEMPLATE: std::sync::OnceLock<Vec<Complex>> = std::sync::OnceLock::new();
        TEMPLATE.get_or_init(|| modulate_chips(&spread(0)))
    }

    /// Two preamble symbols back to back — the timing-search template.
    fn sync_template() -> &'static [Complex] {
        static TEMPLATE: std::sync::OnceLock<Vec<Complex>> = std::sync::OnceLock::new();
        TEMPLATE.get_or_init(|| {
            let one = Self::preamble_template();
            let sym_len = CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP;
            let mut template = Vec::with_capacity(sym_len * 2);
            template.extend_from_slice(&one[..sym_len]);
            template.extend_from_slice(&one[..sym_len]);
            template
        })
    }

    /// Correlates the known preamble against the waveform to estimate
    /// timing, phase and CFO.
    fn synchronize(&self, wave: &[Complex]) -> SyncResult {
        // Template: two preamble symbols for timing, full four for CFO.
        let template = Self::sync_template();
        let sym_len = CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP;

        // Too little signal to correlate against the template: report a
        // null sync instead of slicing out of range.
        if wave.len() < template.len() {
            return SyncResult {
                offset: 0,
                phase: 0.0,
                cfo_per_sample: 0.0,
                peak_correlation: 0.0,
            };
        }

        let t_energy = simd::sum_norm_sqr(template);
        let search = self
            .sync_search
            .min(wave.len().saturating_sub(template.len()));
        let mut best_off = 0usize;
        let mut best_corr = Complex::ZERO;
        let mut best_score = f64::NEG_INFINITY;
        for off in 0..=search {
            let seg = &wave[off..off + template.len()];
            let corr = simd::cdot_conj(seg, template);
            let r_energy = simd::sum_norm_sqr(seg);
            let score = if r_energy > 0.0 {
                corr.norm_sqr() / (r_energy * t_energy)
            } else {
                0.0
            };
            if score > best_score {
                best_score = score;
                best_off = off;
                best_corr = corr;
            }
        }

        // CFO by delay-and-correlate over the preamble: consecutive preamble
        // symbols carry identical chips, so the waveform is 64-sample
        // periodic and `sum x[n+64] x*[n]` accumulates the per-symbol phase
        // advance with a long averaging window (unbiased for offsets below
        // fs/128 ≈ 31 kHz — far above any residual CFO after front-end
        // correction).
        let mut cfo = 0.0;
        if self.correct_cfo {
            let span = (6 * sym_len).min(wave.len().saturating_sub(best_off));
            if span > sym_len + 32 {
                let seg = &wave[best_off..best_off + span];
                let acc = simd::cdot_conj(&seg[sym_len..], &seg[..span - sym_len]);
                if acc.norm() > 0.0 {
                    cfo = acc.arg() / sym_len as f64;
                }
            }
        }

        // Phase from the template correlation of the CFO-derotated preamble.
        let phase = if self.correct_phase {
            let seg_end = (best_off + template.len()).min(wave.len());
            let corr = simd::cdot_conj_rotated(&wave[best_off..seg_end], template, -cfo);
            if corr.norm() > 0.0 {
                corr.arg()
            } else {
                best_corr.arg()
            }
        } else {
            best_corr.arg()
        };

        SyncResult {
            offset: best_off,
            phase,
            cfo_per_sample: cfo,
            peak_correlation: best_score.max(0.0).sqrt(),
        }
    }

    /// Processes a received baseband waveform (4 MHz, frame starting within
    /// the configured search window) into a [`Reception`].
    pub fn receive(&self, wave: &[Complex]) -> Reception {
        let sync = self.synchronize(wave);
        let aligned_slice = &wave[sync.offset.min(wave.len())..];
        // Sub-sample refinement: advance by the fractional offset that
        // maximizes preamble correlation.
        let fractional = if self.fractional_timing && !aligned_slice.is_empty() {
            let one = Self::preamble_template();
            let sym_len = CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP;
            let template = &one[..sym_len.min(one.len())];
            let mut best_mu = 0.0f64;
            let mut best = f64::NEG_INFINITY;
            for k in 0..8 {
                let mu = k as f64 / 8.0;
                let candidate = if mu == 0.0 {
                    aligned_slice.to_vec()
                } else {
                    ctc_dsp::fractional::fractional_advance(aligned_slice, mu)
                };
                if candidate.len() < template.len() {
                    break;
                }
                let corr = simd::cdot_conj(&candidate[..template.len()], template);
                if corr.norm() > best {
                    best = corr.norm();
                    best_mu = mu;
                }
            }
            best_mu
        } else {
            0.0
        };
        let refined;
        let aligned: &[Complex] = if fractional > 0.0 {
            refined = ctc_dsp::fractional::fractional_advance(aligned_slice, fractional);
            &refined
        } else {
            aligned_slice
        };

        // CFO-corrected copy (clock recovery), then the fully corrected copy
        // for decoding.
        let mut cfo_corrected = aligned.to_vec();
        if self.correct_cfo {
            simd::rotate_in_place(&mut cfo_corrected, -sync.cfo_per_sample);
        }
        let mut corrected = cfo_corrected.clone();
        if self.correct_phase {
            ctc_dsp::filter::phase_rotate_in_place(&mut corrected, -sync.phase);
        }

        let num_chips = (aligned.len() / SAMPLES_PER_CHIP) & !1usize;
        let raw_chip_samples = demodulate_chips(aligned, num_chips);
        let defense_chip_samples = demodulate_chips(&cfo_corrected, num_chips);
        let chip_samples = demodulate_chips(&corrected, num_chips);

        // Despread 32-chip groups.
        let soft = chip_samples.interleaved();
        let hard = chip_samples.hard_chips();
        let mut symbols = Vec::new();
        let mut hamming_distances = Vec::new();
        let mut soft_scores = Vec::new();
        let mut dropped = Vec::new();
        for group in 0..(hard.len() / CHIPS_PER_SYMBOL) {
            let lo = group * CHIPS_PER_SYMBOL;
            let hi = lo + CHIPS_PER_SYMBOL;
            let mut chips = [0u8; CHIPS_PER_SYMBOL];
            chips.copy_from_slice(&hard[lo..hi]);
            let (hard_sym, dist) = despread_hard(&chips);
            let (soft_sym, score) = despread_soft(&soft[lo..hi]);
            match self.decision {
                Decision::Hard { threshold } => {
                    symbols.push(hard_sym);
                    dropped.push(dist > threshold);
                }
                Decision::Soft { min_score } => {
                    symbols.push(soft_sym);
                    dropped.push(score < min_score);
                }
            }
            hamming_distances.push(dist);
            soft_scores.push(score);
        }

        let frame = parse_frame_symbols(&symbols);
        Reception {
            symbols,
            hamming_distances,
            soft_scores,
            dropped,
            raw_chip_samples,
            defense_chip_samples,
            chip_samples,
            frame,
            sync,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transmitter;
    use ctc_channel::Link;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tx_rx(payload: &[u8], rx: &Receiver) -> Reception {
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(payload).unwrap();
        rx.receive(&wave)
    }

    #[test]
    fn clean_frame_decodes_hard() {
        let r = tx_rx(b"00042", &Receiver::usrp());
        assert!(r.packet_ok());
        assert_eq!(r.payload(), Some(&b"00042"[..]));
        assert!(r.hamming_distances.iter().all(|&d| d == 0));
    }

    #[test]
    fn clean_frame_decodes_soft() {
        let r = tx_rx(b"hello zigbee", &Receiver::commodity());
        assert!(r.packet_ok());
        assert_eq!(r.payload(), Some(&b"hello zigbee"[..]));
        assert!(r.soft_scores.iter().all(|&s| s > 0.95));
    }

    #[test]
    fn noisy_frame_decodes_at_moderate_snr() {
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(b"00007").unwrap();
        let link = Link::awgn(12.0);
        let mut rng = StdRng::seed_from_u64(41);
        let mut ok = 0;
        for _ in 0..20 {
            let rxw = link.transmit(&wave, &mut rng);
            if Receiver::usrp().receive(&rxw).packet_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/20 packets at 12 dB");
    }

    #[test]
    fn soft_beats_hard_at_low_snr() {
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(b"0001200045").unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let link = Link::awgn(2.0);
        let mut hard_ok = 0;
        let mut soft_ok = 0;
        for _ in 0..60 {
            let rxw = link.transmit(&wave, &mut rng);
            if Receiver::usrp().receive(&rxw).packet_ok() {
                hard_ok += 1;
            }
            if Receiver::commodity().receive(&rxw).packet_ok() {
                soft_ok += 1;
            }
        }
        assert!(
            soft_ok >= hard_ok,
            "soft ({soft_ok}) should be at least as robust as hard ({hard_ok})"
        );
    }

    #[test]
    fn phase_offset_corrected() {
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(b"4567").unwrap();
        let rotated = ctc_channel::impairments::apply_phase(&wave, 0.9);
        let r = Receiver::usrp().receive(&rotated);
        assert!(r.packet_ok(), "phase correction failed");
        // Raw samples keep the rotation; corrected ones do not.
        let raw_pts = r.raw_chip_samples.constellation();
        let fixed_pts = r.chip_samples.constellation();
        let raw_rot = raw_pts[4].arg();
        let fixed_rot = fixed_pts[4].arg();
        // Fixed points sit near odd multiples of pi/4.
        let snap = |a: f64| {
            let r = a.rem_euclid(std::f64::consts::FRAC_PI_2) - std::f64::consts::FRAC_PI_4;
            r.abs()
        };
        assert!(snap(fixed_rot) < 0.1, "corrected rot {fixed_rot}");
        assert!(
            snap(raw_rot) > 0.1,
            "raw constellation lost its rotation {raw_rot}"
        );
    }

    #[test]
    fn timing_offset_found_by_search() {
        let tx = Transmitter::new();
        let mut wave = vec![Complex::ZERO; 37];
        wave.extend(tx.transmit_payload(b"99").unwrap());
        let r = Receiver::usrp().with_sync_search(64).receive(&wave);
        assert_eq!(r.sync.offset, 37);
        assert!(r.packet_ok());
    }

    #[test]
    fn cfo_corrected() {
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(b"31415").unwrap();
        let shifted = ctc_channel::impairments::apply_cfo(&wave, 200.0, 4.0e6, 0.2);
        let r = Receiver::usrp().receive(&shifted);
        assert!(r.packet_ok(), "CFO correction failed");
    }

    #[test]
    fn garbage_does_not_decode() {
        let mut rng = StdRng::seed_from_u64(43);
        let noise: Vec<Complex> = (0..2048)
            .map(|_| ctc_channel::noise::complex_gaussian(&mut rng, 1.0))
            .collect();
        let r = Receiver::usrp().receive(&noise);
        assert!(!r.packet_ok());
    }

    #[test]
    fn dropped_symbols_fail_packet() {
        // Corrupt enough chips of one payload symbol to exceed threshold 10
        // but still decode to some symbol: packet must not count as ok.
        let tx = Transmitter::new();
        let symbols = crate::frame::build_frame_symbols(b"ab").unwrap();
        let mut chips = tx.symbols_to_chips(&symbols);
        // Payload starts after 12 symbols; corrupt symbol 13 heavily.
        let lo = 13 * CHIPS_PER_SYMBOL;
        for c in chips[lo..lo + 14].iter_mut() {
            *c = 1 - *c;
        }
        let wave = crate::modem::modulate_chips(&chips);
        let r = Receiver::usrp().receive(&wave);
        assert!(
            r.hamming_distances[13] > 10 || !r.packet_ok(),
            "corruption not reflected"
        );
    }

    #[test]
    fn fractional_timing_recovers_half_sample_offset() {
        // A half-sample delay is the worst case for a 2-sample/chip
        // receiver: without sub-sample recovery the chip samples land on
        // pulse shoulders and the constellation degrades badly.
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(b"frac").unwrap();
        let delayed = ctc_dsp::fractional::fractional_delay(&wave, 0.5);
        let mut rng = StdRng::seed_from_u64(44);
        let noisy = Link::awgn(10.0).transmit(&delayed, &mut rng);

        let plain = Receiver::usrp().receive(&noisy);
        let frac = Receiver::usrp()
            .with_fractional_timing(true)
            .receive(&noisy);
        assert!(
            frac.packet_ok(),
            "fractional timing should recover the frame"
        );
        assert_eq!(frac.payload(), Some(&b"frac"[..]));
        // Half-sample misalignment costs ~8% chip amplitude (half-sine
        // shoulders) — hard decisions survive, but the matched-filter
        // quality visibly improves with sub-sample recovery.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let plain_score = mean(&plain.soft_scores);
        let frac_score = mean(&frac.soft_scores);
        assert!(
            frac_score > plain_score + 0.01,
            "sub-sample recovery should raise the despreading correlation: \
             {frac_score} vs {plain_score}"
        );
    }

    #[test]
    fn fractional_timing_sweeps_all_offsets() {
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(b"mu").unwrap();
        let rx = Receiver::usrp().with_fractional_timing(true);
        for k in 0..8 {
            let mu = k as f64 / 8.0;
            let delayed = ctc_dsp::fractional::fractional_delay(&wave, mu);
            let r = rx.receive(&delayed);
            assert_eq!(r.payload(), Some(&b"mu"[..]), "failed at mu = {mu}");
        }
    }

    #[test]
    fn symbol_error_count() {
        let r = tx_rx(b"z", &Receiver::usrp());
        let expected = crate::frame::build_frame_symbols(b"z").unwrap();
        assert_eq!(r.symbol_errors(&expected), 0);
        let wrong = crate::frame::build_frame_symbols(b"y").unwrap();
        assert!(r.symbol_errors(&wrong) > 0);
    }
}
