//! 802.15.4 PHY/MAC framing: preamble, SFD, length header, payload and FCS.
//!
//! Frame layout on the air (each byte is sent low nibble first, one symbol
//! per nibble):
//!
//! ```text
//! | preamble 4 x 0x00 | SFD 0xA7 | PHR len | PSDU (payload + FCS) |
//! ```
//!
//! The FCS is the 16-bit ITU-T CRC the standard mandates
//! (`x^16 + x^12 + x^5 + 1`, initial value 0, LSB-first).

use crate::chipmap;

/// Number of preamble bytes (all zero).
pub const PREAMBLE_BYTES: usize = 4;

/// Start-of-frame delimiter value.
pub const SFD: u8 = 0xA7;

/// Maximum PSDU length in bytes (7-bit PHR field).
pub const MAX_PSDU_LEN: usize = 127;

/// Length of the FCS in bytes.
pub const FCS_LEN: usize = 2;

/// Errors raised while building or parsing frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Payload (plus FCS) exceeds [`MAX_PSDU_LEN`].
    PayloadTooLong {
        /// Bytes supplied.
        len: usize,
    },
    /// Symbol stream ended before the advertised frame length.
    Truncated,
    /// No SFD found in the symbol stream.
    SfdNotFound,
    /// FCS check failed.
    BadFcs {
        /// CRC computed over the received payload.
        computed: u16,
        /// CRC carried in the frame.
        received: u16,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::PayloadTooLong { len } => {
                write!(f, "payload of {len} bytes exceeds the 125-byte maximum")
            }
            FrameError::Truncated => {
                write!(f, "symbol stream shorter than the frame header claims")
            }
            FrameError::SfdNotFound => write!(f, "start-of-frame delimiter not found"),
            FrameError::BadFcs { computed, received } => write!(
                f,
                "frame check sequence mismatch: computed {computed:#06x}, received {received:#06x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// ITU-T CRC-16 used as the 802.15.4 FCS (poly 0x1021 reflected = 0x8408,
/// init 0x0000, LSB first, no final XOR).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in data {
        crc ^= byte as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x8408;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// Splits bytes into 4-bit symbols, low nibble first.
pub fn bytes_to_symbols(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(b & 0x0F);
        out.push(b >> 4);
    }
    out
}

/// Reassembles bytes from 4-bit symbols (low nibble first). A trailing
/// unpaired symbol is dropped.
pub fn symbols_to_bytes(symbols: &[u8]) -> Vec<u8> {
    symbols
        .chunks_exact(2)
        .map(|p| (p[0] & 0x0F) | ((p[1] & 0x0F) << 4))
        .collect()
}

/// Builds the complete on-air symbol sequence for a MAC payload:
/// preamble + SFD + PHR + payload + FCS, as 4-bit symbols.
///
/// # Errors
///
/// Returns [`FrameError::PayloadTooLong`] when the payload plus 2-byte FCS
/// exceeds 127 bytes.
///
/// # Examples
///
/// ```
/// let symbols = ctc_zigbee::frame::build_frame_symbols(b"hi")?;
/// // 4 preamble + 1 SFD + 1 PHR + 2 payload + 2 FCS bytes = 20 symbols.
/// assert_eq!(symbols.len(), 20);
/// # Ok::<(), ctc_zigbee::frame::FrameError>(())
/// ```
pub fn build_frame_symbols(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let psdu_len = payload.len() + FCS_LEN;
    if psdu_len > MAX_PSDU_LEN {
        return Err(FrameError::PayloadTooLong { len: payload.len() });
    }
    let mut bytes = Vec::with_capacity(PREAMBLE_BYTES + 2 + psdu_len);
    bytes.extend_from_slice(&[0u8; PREAMBLE_BYTES]);
    bytes.push(SFD);
    bytes.push(psdu_len as u8);
    bytes.extend_from_slice(payload);
    let fcs = crc16(payload);
    bytes.push((fcs & 0xFF) as u8);
    bytes.push((fcs >> 8) as u8);
    Ok(bytes_to_symbols(&bytes))
}

/// A successfully parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// MAC payload (FCS stripped).
    pub payload: Vec<u8>,
    /// Symbol index (into the parsed stream) where the PSDU began.
    pub psdu_symbol_offset: usize,
}

/// Parses a symbol stream produced by [`build_frame_symbols`] (possibly with
/// symbol errors): hunts for the SFD, reads the PHR, extracts the PSDU and
/// verifies the FCS.
///
/// # Errors
///
/// - [`FrameError::SfdNotFound`] when no `0xA7` byte boundary exists,
/// - [`FrameError::Truncated`] when the stream is shorter than PHR claims,
/// - [`FrameError::BadFcs`] on checksum mismatch.
pub fn parse_frame_symbols(symbols: &[u8]) -> Result<Frame, FrameError> {
    // Hunt for the SFD at any symbol offset: synchronization may lock onto
    // any of the identical preamble symbols, so byte alignment relative to
    // the stream start is unknown.
    let sfd_low = SFD & 0x0F;
    let sfd_high = SFD >> 4;
    let mut idx = None;
    let mut i = 0;
    while i + 1 < symbols.len() {
        if symbols[i] == sfd_low && symbols[i + 1] == sfd_high {
            idx = Some(i);
            break;
        }
        i += 1;
    }
    let sfd_at = idx.ok_or(FrameError::SfdNotFound)?;
    let phr_at = sfd_at + 2;
    if phr_at + 1 >= symbols.len() {
        return Err(FrameError::Truncated);
    }
    let psdu_len = ((symbols[phr_at] & 0x0F) | (symbols[phr_at + 1] << 4)) as usize & 0x7F;
    if psdu_len < FCS_LEN {
        return Err(FrameError::Truncated);
    }
    let psdu_at = phr_at + 2;
    let needed = psdu_at + psdu_len * 2;
    if symbols.len() < needed {
        return Err(FrameError::Truncated);
    }
    let psdu = symbols_to_bytes(&symbols[psdu_at..needed]);
    let (payload, fcs_bytes) = psdu.split_at(psdu.len() - FCS_LEN);
    let received = fcs_bytes[0] as u16 | ((fcs_bytes[1] as u16) << 8);
    let computed = crc16(payload);
    if computed != received {
        return Err(FrameError::BadFcs { computed, received });
    }
    Ok(Frame {
        payload: payload.to_vec(),
        psdu_symbol_offset: psdu_at,
    })
}

/// Total chip count for a frame carrying `payload_len` payload bytes.
pub fn frame_chip_count(payload_len: usize) -> usize {
    let bytes = PREAMBLE_BYTES + 1 + 1 + payload_len + FCS_LEN;
    bytes * 2 * chipmap::CHIPS_PER_SYMBOL
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc16_known_vectors() {
        // ITU-T CRC16, CRC-16/KERMIT parameterization (poly 0x1021 reflected,
        // init 0, LSB first) — the 802.15.4 FCS. Standard check value:
        assert_eq!(crc16(&[]), 0x0000);
        assert_eq!(crc16(b"123456789"), 0x2189);
    }

    #[test]
    fn nibble_roundtrip() {
        let bytes = [0xA7, 0x00, 0x12, 0xFF];
        let syms = bytes_to_symbols(&bytes);
        assert_eq!(syms[0], 0x7);
        assert_eq!(syms[1], 0xA);
        assert_eq!(symbols_to_bytes(&syms), bytes.to_vec());
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"00042";
        let syms = build_frame_symbols(payload).unwrap();
        let frame = parse_frame_symbols(&syms).unwrap();
        assert_eq!(frame.payload, payload.to_vec());
    }

    #[test]
    fn frame_symbol_layout() {
        let syms = build_frame_symbols(b"").unwrap();
        // Preamble: 8 zero symbols.
        assert!(syms[..8].iter().all(|&s| s == 0));
        // SFD low nibble 7 then high nibble A.
        assert_eq!(syms[8], 0x7);
        assert_eq!(syms[9], 0xA);
        // PHR = 2 (FCS only).
        assert_eq!(syms[10], 0x2);
        assert_eq!(syms[11], 0x0);
    }

    #[test]
    fn rejects_oversize_payload() {
        let payload = vec![0u8; 126];
        assert!(matches!(
            build_frame_symbols(&payload),
            Err(FrameError::PayloadTooLong { len: 126 })
        ));
        assert!(build_frame_symbols(&[0u8; 125]).is_ok());
    }

    #[test]
    fn detects_missing_sfd() {
        let syms = vec![0u8; 20];
        assert_eq!(parse_frame_symbols(&syms), Err(FrameError::SfdNotFound));
    }

    #[test]
    fn detects_truncation() {
        let mut syms = build_frame_symbols(b"hello").unwrap();
        syms.truncate(syms.len() - 4);
        assert_eq!(parse_frame_symbols(&syms), Err(FrameError::Truncated));
    }

    #[test]
    fn detects_corrupted_payload() {
        let mut syms = build_frame_symbols(b"hello").unwrap();
        // Flip a payload symbol (after preamble+SFD+PHR = 12 symbols).
        syms[14] ^= 0x5;
        assert!(matches!(
            parse_frame_symbols(&syms),
            Err(FrameError::BadFcs { .. })
        ));
    }

    #[test]
    fn chip_count_matches_symbols() {
        let payload = b"0123";
        let syms = build_frame_symbols(payload).unwrap();
        assert_eq!(
            frame_chip_count(payload.len()),
            syms.len() * chipmap::CHIPS_PER_SYMBOL
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let e = FrameError::BadFcs {
            computed: 0x1234,
            received: 0x5678,
        };
        let msg = e.to_string();
        assert!(msg.contains("0x1234"));
        assert!(msg.contains("0x5678"));
    }

    proptest! {
        #[test]
        fn arbitrary_payload_roundtrips(payload in proptest::collection::vec(any::<u8>(), 0..120)) {
            let syms = build_frame_symbols(&payload).unwrap();
            let frame = parse_frame_symbols(&syms).unwrap();
            prop_assert_eq!(frame.payload, payload);
        }

        #[test]
        fn single_symbol_error_in_payload_always_caught_or_corrected(
            payload in proptest::collection::vec(any::<u8>(), 1..30),
            flip_pos in 0usize..20,
            flip_val in 1u8..16,
        ) {
            let mut syms = build_frame_symbols(&payload).unwrap();
            let pos = 12 + flip_pos % (payload.len() * 2);
            syms[pos] ^= flip_val;
            // Either the parse fails (FCS catches it) or — impossible for a
            // single nibble flip — returns the original payload.
            match parse_frame_symbols(&syms) {
                Err(FrameError::BadFcs { .. }) => {}
                Ok(frame) => prop_assert_eq!(frame.payload, payload),
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
    }
}
