//! ZigBee transmitter: MAC payload → frame symbols → DSSS chips → O-QPSK
//! waveform (Fig. 1, left half).

use crate::chipmap::{spread, CHIPS_PER_SYMBOL};
use crate::frame::{build_frame_symbols, FrameError};
use crate::modem::modulate_chips;
use ctc_dsp::Complex;

/// A configured ZigBee transmitter.
///
/// The defaults match the paper: 2 MHz channel, 4 MHz sample rate
/// (2 samples/chip), channel 17 at 2435 MHz.
///
/// # Examples
///
/// ```
/// use ctc_zigbee::Transmitter;
/// let tx = Transmitter::new();
/// let wave = tx.transmit_payload(b"00000")?;
/// assert!(!wave.is_empty());
/// # Ok::<(), ctc_zigbee::frame::FrameError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Transmitter {
    center_frequency_hz: f64,
    sample_rate_hz: f64,
    leading_zero_samples: usize,
}

impl Default for Transmitter {
    fn default() -> Self {
        Self::new()
    }
}

impl Transmitter {
    /// Transmitter on ZigBee channel 17 (2435 MHz) at 4 MHz sampling.
    pub fn new() -> Self {
        Transmitter {
            center_frequency_hz: 2.435e9,
            sample_rate_hz: 4.0e6,
            leading_zero_samples: 0,
        }
    }

    /// Prepends `n` zero samples to every transmitted waveform.
    ///
    /// The paper's experiments "add 10 zero points at the beginning of each
    /// emulated packet" so the receiver's zero-sequence detector fires.
    pub fn with_leading_zero_samples(mut self, n: usize) -> Self {
        self.leading_zero_samples = n;
        self
    }

    /// RF centre frequency (informational; the simulation is baseband).
    pub fn center_frequency_hz(&self) -> f64 {
        self.center_frequency_hz
    }

    /// Baseband sample rate.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Spreads a symbol stream into chips.
    pub fn symbols_to_chips(&self, symbols: &[u8]) -> Vec<u8> {
        let mut chips = Vec::with_capacity(symbols.len() * CHIPS_PER_SYMBOL);
        for &s in symbols {
            chips.extend_from_slice(&spread(s));
        }
        chips
    }

    /// Modulates a symbol stream into a baseband waveform.
    ///
    /// # Panics
    ///
    /// Panics if any symbol is not a 4-bit value.
    pub fn transmit_symbols(&self, symbols: &[u8]) -> Vec<Complex> {
        let chips = self.symbols_to_chips(symbols);
        let mut wave = vec![Complex::ZERO; self.leading_zero_samples];
        wave.extend(modulate_chips(&chips));
        wave
    }

    /// Builds and modulates a full frame around a MAC payload.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::PayloadTooLong`] for payloads over 125 bytes.
    pub fn transmit_payload(&self, payload: &[u8]) -> Result<Vec<Complex>, FrameError> {
        let symbols = build_frame_symbols(payload)?;
        Ok(self.transmit_symbols(&symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_chip_count;
    use crate::modem::{SAMPLES_PER_CHIP, TAIL_SAMPLES};

    #[test]
    fn waveform_length_matches_frame() {
        let tx = Transmitter::new();
        let wave = tx.transmit_payload(b"00000").unwrap();
        let chips = frame_chip_count(5);
        assert_eq!(wave.len(), chips * SAMPLES_PER_CHIP + TAIL_SAMPLES);
    }

    #[test]
    fn leading_zeros_prepended() {
        let tx = Transmitter::new().with_leading_zero_samples(10);
        let wave = tx.transmit_symbols(&[0]);
        assert!(wave[..10].iter().all(|v| *v == Complex::ZERO));
        assert!(wave[10..].iter().any(|v| *v != Complex::ZERO));
    }

    #[test]
    fn symbols_to_chips_concatenates_table_rows() {
        let tx = Transmitter::new();
        let chips = tx.symbols_to_chips(&[3, 12]);
        assert_eq!(chips.len(), 64);
        assert_eq!(&chips[..32], &spread(3)[..]);
        assert_eq!(&chips[32..], &spread(12)[..]);
    }

    #[test]
    fn defaults_match_paper() {
        let tx = Transmitter::new();
        assert_eq!(tx.sample_rate_hz(), 4.0e6);
        assert_eq!(tx.center_frequency_hz(), 2.435e9);
    }

    #[test]
    fn oversize_payload_propagates_error() {
        let tx = Transmitter::new();
        assert!(tx.transmit_payload(&[0u8; 126]).is_err());
    }
}
