//! IEEE 802.15.4 symbol-to-chip spreading table (2.4 GHz O-QPSK PHY).
//!
//! Each 4-bit data symbol maps to one of 16 nearly-orthogonal 32-chip
//! pseudo-noise sequences (std. Table 73). Symbols 1–7 are successive
//! 4-chip right rotations of symbol 0; symbols 8–15 repeat 0–7 with every
//! odd-indexed chip complemented (a conjugation on the Q branch).

/// Number of chips per ZigBee symbol.
pub const CHIPS_PER_SYMBOL: usize = 32;

/// Number of distinct data symbols (one hex digit each).
pub const SYMBOL_COUNT: usize = 16;

/// Chip sequence of data symbol 0, MSB-first chip order `c0..c31`.
const SYMBOL0: [u8; CHIPS_PER_SYMBOL] = [
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
];

/// The full 16×32 spreading table, generated once at first use.
pub fn chip_table() -> &'static [[u8; CHIPS_PER_SYMBOL]; SYMBOL_COUNT] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[u8; CHIPS_PER_SYMBOL]; SYMBOL_COUNT]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [[0u8; CHIPS_PER_SYMBOL]; SYMBOL_COUNT];
        table[0] = SYMBOL0;
        for s in 1..8 {
            // Cyclic right rotation by 4 chips of the previous sequence.
            let prev = table[s - 1];
            for (c, chip) in table[s].iter_mut().enumerate() {
                *chip = prev[(c + CHIPS_PER_SYMBOL - 4) % CHIPS_PER_SYMBOL];
            }
        }
        for s in 8..16 {
            let base_row = table[s - 8];
            for (c, chip) in table[s].iter_mut().enumerate() {
                *chip = if c % 2 == 1 {
                    1 - base_row[c]
                } else {
                    base_row[c]
                };
            }
        }
        table
    })
}

/// The spreading table as bipolar rows (`0 -> -1.0`, `1 -> +1.0`), the form
/// soft-decision correlation consumes. Cached so the DSSS correlation inner
/// loop is a plain dot product over contiguous `f64` rows.
fn bipolar_table() -> &'static [[f64; CHIPS_PER_SYMBOL]; SYMBOL_COUNT] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f64; CHIPS_PER_SYMBOL]; SYMBOL_COUNT]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [[0.0f64; CHIPS_PER_SYMBOL]; SYMBOL_COUNT];
        for (dst, src) in table.iter_mut().zip(chip_table().iter()) {
            for (d, &c) in dst.iter_mut().zip(src.iter()) {
                *d = if c == 1 { 1.0 } else { -1.0 };
            }
        }
        table
    })
}

/// Spreads one data symbol (0–15) into its 32-chip sequence.
///
/// # Panics
///
/// Panics if `symbol >= 16`.
///
/// # Examples
///
/// ```
/// let chips = ctc_zigbee::chipmap::spread(0);
/// assert_eq!(chips.len(), 32);
/// assert_eq!(&chips[..4], &[1, 1, 0, 1]);
/// ```
pub fn spread(symbol: u8) -> [u8; CHIPS_PER_SYMBOL] {
    assert!(
        (symbol as usize) < SYMBOL_COUNT,
        "ZigBee symbols are 4-bit values, got {symbol}"
    );
    chip_table()[symbol as usize]
}

/// Hamming distance between a received hard-decision chip sequence and a
/// table row.
pub fn hamming(a: &[u8; CHIPS_PER_SYMBOL], b: &[u8; CHIPS_PER_SYMBOL]) -> u32 {
    a.iter().zip(b).map(|(x, y)| u32::from(x != y)).sum()
}

/// Hard-decision despreading: returns the symbol whose chip sequence is
/// nearest in Hamming distance, with the distance itself.
///
/// The caller applies the correlation threshold ("a correlation threshold is
/// defined to control the maximum Hamming distance ... the receiver can
/// tolerate" — Sec. III-B1); sequences above it should be dropped.
pub fn despread_hard(chips: &[u8; CHIPS_PER_SYMBOL]) -> (u8, u32) {
    let mut best_sym = 0u8;
    let mut best_d = u32::MAX;
    for (s, row) in chip_table().iter().enumerate() {
        let d = hamming(chips, row);
        if d < best_d {
            best_d = d;
            best_sym = s as u8;
        }
    }
    (best_sym, best_d)
}

/// Soft-decision despreading: correlates bipolar soft chip values against
/// every row (`0 -> -1`, `1 -> +1`) and returns the symbol with the largest
/// correlation plus the normalized score in `[-1, 1]`.
///
/// This models the stronger demodulator of commodity ZigBee silicon
/// (CC26x2R1), which decodes reliably where hard-decision USRP pipelines
/// fail (paper Fig. 14b).
///
/// # Panics
///
/// Panics if `soft_chips.len() != 32`.
pub fn despread_soft(soft_chips: &[f64]) -> (u8, f64) {
    assert_eq!(
        soft_chips.len(),
        CHIPS_PER_SYMBOL,
        "need exactly 32 soft chips"
    );
    let energy = ctc_dsp::simd::dot_f64(soft_chips, soft_chips);
    let norm = (energy * CHIPS_PER_SYMBOL as f64).sqrt();
    let mut best_sym = 0u8;
    let mut best_score = f64::NEG_INFINITY;
    for (s, row) in bipolar_table().iter().enumerate() {
        let acc = ctc_dsp::simd::dot_f64(soft_chips, row);
        if acc > best_score {
            best_score = acc;
            best_sym = s as u8;
        }
    }
    let score = if norm > 0.0 { best_score / norm } else { 0.0 };
    (best_sym, score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_rows_match_standard_samples() {
        // Spot-check rows against IEEE 802.15.4 Table 73.
        let t = chip_table();
        let row1: Vec<u8> = "11101101100111000011010100100010"
            .bytes()
            .map(|b| b - b'0')
            .collect();
        assert_eq!(&t[1][..], &row1[..]);
        let row8: Vec<u8> = "10001100100101100000011101111011"
            .bytes()
            .map(|b| b - b'0')
            .collect();
        assert_eq!(&t[8][..], &row8[..]);
        let row15: Vec<u8> = "11001001011000000111011110111000"
            .bytes()
            .map(|b| b - b'0')
            .collect();
        assert_eq!(&t[15][..], &row15[..]);
    }

    #[test]
    fn rows_are_distinct_and_far_apart() {
        let t = chip_table();
        for i in 0..SYMBOL_COUNT {
            for j in (i + 1)..SYMBOL_COUNT {
                let d = hamming(&t[i], &t[j]);
                assert!(d >= 12, "rows {i},{j} too close: {d}");
            }
        }
    }

    #[test]
    fn spread_despread_roundtrip() {
        for s in 0..16u8 {
            let chips = spread(s);
            let (got, d) = despread_hard(&chips);
            assert_eq!(got, s);
            assert_eq!(d, 0);
        }
    }

    #[test]
    #[should_panic(expected = "4-bit")]
    fn spread_rejects_large_symbol() {
        let _ = spread(16);
    }

    #[test]
    fn despread_tolerates_chip_errors() {
        // DSSS error resilience: up to ~5 flipped chips still decode.
        for s in 0..16u8 {
            let mut chips = spread(s);
            for i in [0usize, 7, 13, 21, 30] {
                chips[i] = 1 - chips[i];
            }
            let (got, d) = despread_hard(&chips);
            assert_eq!(got, s, "symbol {s} misdecoded with 5 chip errors");
            assert_eq!(d, 5);
        }
    }

    #[test]
    fn soft_despread_matches_hard_on_clean_chips() {
        for s in 0..16u8 {
            let soft: Vec<f64> = spread(s)
                .iter()
                .map(|&c| if c == 1 { 1.0 } else { -1.0 })
                .collect();
            let (got, score) = despread_soft(&soft);
            assert_eq!(got, s);
            assert!((score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn soft_despread_handles_attenuation_and_noise() {
        let s = 9u8;
        let soft: Vec<f64> = spread(s)
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let v = if c == 1 { 1.0 } else { -1.0 };
                0.3 * v + 0.1 * ((i * 7) as f64).sin()
            })
            .collect();
        let (got, score) = despread_soft(&soft);
        assert_eq!(got, s);
        assert!(score > 0.8);
    }

    #[test]
    fn soft_despread_zero_input() {
        let (_, score) = despread_soft(&[0.0; 32]);
        assert_eq!(score, 0.0);
    }

    proptest! {
        #[test]
        fn hard_decode_correct_below_half_min_distance(s in 0u8..16, flips in proptest::collection::hash_set(0usize..32, 0..6)) {
            let mut chips = spread(s);
            for &i in &flips {
                chips[i] = 1 - chips[i];
            }
            let (got, d) = despread_hard(&chips);
            prop_assert_eq!(d as usize, flips.len());
            prop_assert_eq!(got, s);
        }

        #[test]
        fn hamming_symmetric(a in 0u8..16, b in 0u8..16) {
            let ca = spread(a);
            let cb = spread(b);
            prop_assert_eq!(hamming(&ca, &cb), hamming(&cb, &ca));
        }
    }
}
