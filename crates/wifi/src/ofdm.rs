//! OFDM symbol assembly: subcarrier allocation, 64-point IFFT, cyclic
//! prefix (paper Fig. 2, right half).
//!
//! One 802.11g OFDM symbol = 64 subcarriers at 0.3125 MHz spacing = 20 MHz;
//! 48 carry data, 4 carry pilots (±7, ±21), 12 are null (DC and the band
//! edges). After the IFFT the last 16 time samples are copied to the front
//! as the 0.8 µs guard interval, for 80 samples = 4 µs per symbol.

use ctc_dsp::{fft64, Complex, SampleBuf};

/// FFT size / subcarrier count.
pub const FFT_SIZE: usize = 64;

/// Cyclic-prefix length in samples (0.8 µs at 20 MHz).
pub const CP_LEN: usize = 16;

/// Total samples per OFDM symbol (4 µs at 20 MHz).
pub const SYMBOL_LEN: usize = FFT_SIZE + CP_LEN;

/// Number of data subcarriers.
pub const DATA_SUBCARRIERS: usize = 48;

/// Pilot subcarrier logical indices.
pub const PILOT_INDICES: [i32; 4] = [-21, -7, 7, 21];

/// Pilot symbol values (BPSK, the first polarity of the 802.11 sequence).
pub const PILOT_VALUES: [Complex; 4] = [
    Complex { re: 1.0, im: 0.0 },
    Complex { re: 1.0, im: 0.0 },
    Complex { re: 1.0, im: 0.0 },
    Complex { re: -1.0, im: 0.0 },
];

/// Logical data subcarrier indices in transmission order:
/// `[-26,-22], [-20,-8], [-6,-1], [1,6], [8,20], [22,26]` (Sec. V-A4).
pub fn data_subcarrier_indices() -> Vec<i32> {
    let mut idx = Vec::with_capacity(DATA_SUBCARRIERS);
    for k in -26..=26 {
        if k == 0 || PILOT_INDICES.contains(&k) {
            continue;
        }
        idx.push(k);
    }
    idx
}

/// Converts a logical subcarrier index (`-32..=31`, 0 = DC) to its FFT bin
/// (`0..64`).
///
/// # Panics
///
/// Panics when the index is outside `-32..=31`.
pub fn subcarrier_to_bin(k: i32) -> usize {
    assert!((-32..=31).contains(&k), "subcarrier index {k} out of range");
    if k >= 0 {
        k as usize
    } else {
        (FFT_SIZE as i32 + k) as usize
    }
}

/// Converts an FFT bin (`0..64`) to its logical subcarrier index.
///
/// # Panics
///
/// Panics when `bin >= 64`.
pub fn bin_to_subcarrier(bin: usize) -> i32 {
    assert!(bin < FFT_SIZE, "bin {bin} out of range");
    if bin < FFT_SIZE / 2 {
        bin as i32
    } else {
        bin as i32 - FFT_SIZE as i32
    }
}

/// Builds the 64-entry frequency-domain vector from 48 data points
/// (pilots and nulls inserted automatically).
///
/// # Panics
///
/// Panics unless `data.len() == 48`.
pub fn allocate_subcarriers(data: &[Complex]) -> [Complex; FFT_SIZE] {
    assert_eq!(data.len(), DATA_SUBCARRIERS, "need exactly 48 data points");
    let mut spectrum = [Complex::ZERO; FFT_SIZE];
    for (point, k) in data.iter().zip(data_subcarrier_indices()) {
        spectrum[subcarrier_to_bin(k)] = *point;
    }
    for (v, k) in PILOT_VALUES.iter().zip(PILOT_INDICES) {
        spectrum[subcarrier_to_bin(k)] = *v;
    }
    spectrum
}

/// Extracts the 48 data points from a 64-entry frequency-domain vector.
///
/// # Panics
///
/// Panics unless `spectrum.len() == 64`.
pub fn extract_data_subcarriers(spectrum: &[Complex]) -> Vec<Complex> {
    assert_eq!(spectrum.len(), FFT_SIZE, "need a 64-entry spectrum");
    data_subcarrier_indices()
        .into_iter()
        .map(|k| spectrum[subcarrier_to_bin(k)])
        .collect()
}

/// Synthesizes one 80-sample time-domain OFDM symbol from a 64-entry
/// spectrum: IFFT then cyclic prefix.
///
/// # Panics
///
/// Panics unless `spectrum.len() == 64`.
pub fn synthesize_symbol(spectrum: &[Complex]) -> Vec<Complex> {
    let mut scratch = SampleBuf::detached(FFT_SIZE);
    let mut out = SampleBuf::detached(SYMBOL_LEN);
    synthesize_symbol_into(spectrum, &mut scratch, &mut out);
    out.into_vec()
}

/// [`synthesize_symbol`] appending the 80-sample symbol to `out` (not
/// cleared — block pipelines concatenate symbols directly). `scratch` holds
/// the IFFT body and is reusable across calls.
///
/// # Panics
///
/// Panics unless `spectrum.len() == 64`.
pub fn synthesize_symbol_into(spectrum: &[Complex], scratch: &mut SampleBuf, out: &mut SampleBuf) {
    assert_eq!(spectrum.len(), FFT_SIZE, "need a 64-entry spectrum");
    ctc_dsp::fft::ifft_into(spectrum, scratch).expect("64 is a power of two");
    out.reserve(SYMBOL_LEN);
    out.extend_from_slice(&scratch[FFT_SIZE - CP_LEN..]);
    out.extend_from_slice(scratch);
}

/// Recovers the 64-entry spectrum from one received 80-sample symbol
/// (drops the CP, FFTs the rest) — also the first step of the attacker's
/// reverse pipeline on the *ZigBee* waveform ("the WiFi attacker has to
/// leave out the first 0.8 µs ... and emulate the following 3.2 µs").
///
/// # Panics
///
/// Panics unless `symbol.len() == 80`.
pub fn analyze_symbol(symbol: &[Complex]) -> Vec<Complex> {
    assert_eq!(symbol.len(), SYMBOL_LEN, "need an 80-sample symbol");
    fft64(&symbol[CP_LEN..])
}

/// [`analyze_symbol`] writing the 64-entry spectrum into `out` (cleared
/// first).
///
/// # Panics
///
/// Panics unless `symbol.len() == 80`.
pub fn analyze_symbol_into(symbol: &[Complex], out: &mut SampleBuf) {
    assert_eq!(symbol.len(), SYMBOL_LEN, "need an 80-sample symbol");
    ctc_dsp::fft::fft_into(&symbol[CP_LEN..], out).expect("64 is a power of two");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn data_indices_match_standard() {
        let idx = data_subcarrier_indices();
        assert_eq!(idx.len(), 48);
        assert_eq!(idx[0], -26);
        assert_eq!(*idx.last().unwrap(), 26);
        assert!(!idx.contains(&0));
        for p in PILOT_INDICES {
            assert!(!idx.contains(&p));
        }
        // The six contiguous runs from Sec. V-A4.
        assert!(idx.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn bin_mapping_roundtrip() {
        for k in -32..=31 {
            assert_eq!(bin_to_subcarrier(subcarrier_to_bin(k)), k);
        }
        assert_eq!(subcarrier_to_bin(-1), 63);
        assert_eq!(subcarrier_to_bin(1), 1);
        assert_eq!(subcarrier_to_bin(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_subcarrier_panics() {
        let _ = subcarrier_to_bin(40);
    }

    #[test]
    fn allocation_places_pilots_and_nulls() {
        let data = vec![Complex::ONE; 48];
        let spec = allocate_subcarriers(&data);
        assert_eq!(spec[subcarrier_to_bin(0)], Complex::ZERO); // DC null
        assert_eq!(spec[subcarrier_to_bin(-21)], Complex::ONE);
        assert_eq!(spec[subcarrier_to_bin(21)], Complex::new(-1.0, 0.0));
        for k in 27..=31 {
            assert_eq!(spec[subcarrier_to_bin(k)], Complex::ZERO);
            assert_eq!(spec[subcarrier_to_bin(-k - 1)], Complex::ZERO);
        }
    }

    #[test]
    fn extract_inverts_allocate() {
        let data: Vec<Complex> = (0..48)
            .map(|i| Complex::new(i as f64, -(i as f64) / 2.0))
            .collect();
        let spec = allocate_subcarriers(&data);
        assert_eq!(extract_data_subcarriers(&spec), data);
    }

    #[test]
    fn symbol_has_cyclic_prefix() {
        let data: Vec<Complex> = (0..48).map(|i| Complex::cis(i as f64 * 0.37)).collect();
        let sym = synthesize_symbol(&allocate_subcarriers(&data));
        assert_eq!(sym.len(), SYMBOL_LEN);
        for i in 0..CP_LEN {
            assert!(
                (sym[i] - sym[FFT_SIZE + i]).norm() < 1e-12,
                "CP mismatch at {i}"
            );
        }
    }

    #[test]
    fn analyze_inverts_synthesize() {
        let data: Vec<Complex> = (0..48)
            .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let spec = allocate_subcarriers(&data);
        let sym = synthesize_symbol(&spec);
        let back = analyze_symbol(&sym);
        for (a, b) in spec.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    proptest! {
        #[test]
        fn spectrum_roundtrip(values in proptest::collection::vec(-3.0f64..3.0, 96)) {
            let data: Vec<Complex> = values.chunks(2).map(|c| Complex::new(c[0], c[1])).collect();
            let spec = allocate_subcarriers(&data);
            let sym = synthesize_symbol(&spec);
            let back = analyze_symbol(&sym);
            let got = extract_data_subcarriers(&back);
            for (a, b) in data.iter().zip(&got) {
                prop_assert!((*a - *b).norm() < 1e-9);
            }
        }
    }
}
