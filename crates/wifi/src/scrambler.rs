//! IEEE 802.11 frame-synchronous scrambler.
//!
//! A 7-bit LFSR with polynomial `x^7 + x^4 + 1` whitens the data bits before
//! channel coding. Scrambling is its own inverse given the same seed — the
//! property the attacker exploits when reversing the WiFi preprocessing to
//! recover the data bits that produce a desired QAM sequence.

/// The 802.11 scrambler LFSR.
///
/// # Examples
///
/// ```
/// use ctc_wifi::scrambler::Scrambler;
/// let bits = vec![1, 0, 1, 1, 0, 0, 1];
/// let scrambled = Scrambler::new(0x5D).scramble(&bits);
/// let back = Scrambler::new(0x5D).scramble(&scrambled);
/// assert_eq!(back, bits);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scrambler {
    state: u8,
}

impl Scrambler {
    /// Creates a scrambler with a 7-bit seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero or wider than 7 bits (an all-zero LFSR never
    /// leaves state zero).
    pub fn new(seed: u8) -> Self {
        assert!(seed != 0, "scrambler seed must be nonzero");
        assert!(seed < 0x80, "scrambler seed is 7 bits");
        Scrambler { state: seed }
    }

    /// The standard's example seed (all ones).
    pub fn default_seed() -> Self {
        Scrambler::new(0x7F)
    }

    /// Produces the next keystream bit and advances the LFSR.
    pub fn next_bit(&mut self) -> u8 {
        let x7 = (self.state >> 6) & 1;
        let x4 = (self.state >> 3) & 1;
        let fb = x7 ^ x4;
        self.state = ((self.state << 1) | fb) & 0x7F;
        fb
    }

    /// Scrambles (or descrambles) a bit sequence.
    ///
    /// # Panics
    ///
    /// Panics if any input is not 0/1.
    pub fn scramble(mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter()
            .map(|&b| {
                assert!(b <= 1, "bits must be 0/1");
                b ^ self.next_bit()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn standard_keystream_prefix() {
        // With the all-ones seed the 802.11 keystream starts
        // 0000 1110 1111 0010 ... (IEEE 802.11-2016, 17.3.5.5).
        let mut s = Scrambler::default_seed();
        let ks: Vec<u8> = (0..16).map(|_| s.next_bit()).collect();
        assert_eq!(ks, vec![0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn period_is_127() {
        let mut s = Scrambler::new(0x01);
        let first: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        let second: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        assert_eq!(first, second);
        // And it is not shorter.
        assert_ne!(&first[..63], &first[64..127]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_seed_panics() {
        let _ = Scrambler::new(0);
    }

    #[test]
    #[should_panic(expected = "7 bits")]
    fn wide_seed_panics() {
        let _ = Scrambler::new(0x80);
    }

    proptest! {
        #[test]
        fn involution(seed in 1u8..0x80, bits in proptest::collection::vec(0u8..2, 0..300)) {
            let once = Scrambler::new(seed).scramble(&bits);
            let twice = Scrambler::new(seed).scramble(&once);
            prop_assert_eq!(twice, bits);
        }

        #[test]
        fn keystream_balanced(seed in 1u8..0x80) {
            let mut s = Scrambler::new(seed);
            let ones: u32 = (0..127).map(|_| s.next_bit() as u32).sum();
            // An m-sequence of period 127 has exactly 64 ones.
            prop_assert_eq!(ones, 64);
        }
    }
}
