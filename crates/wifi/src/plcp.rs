//! PLCP preamble and SIGNAL field (IEEE 802.11a/g OFDM PHY framing).
//!
//! A complete 802.11g transmission leads with:
//!
//! - **L-STF** — ten repetitions of a 16-sample short training symbol
//!   (AGC, coarse timing/CFO), built from 12 populated subcarriers.
//! - **L-LTF** — a 32-sample guard plus two 64-sample long training symbols
//!   (fine CFO, channel estimation), from a fixed ±1 BPSK sequence on all
//!   52 used subcarriers.
//! - **SIGNAL** — one BPSK rate-1/2 OFDM symbol carrying RATE and LENGTH.
//!
//! The attacker's emulation frames in this reproduction are payload-only
//! (the ZigBee receiver never sees the preamble, which lies outside its
//! 2 MHz channel-filter band in time anyway), but a *standards-complete*
//! attacker transmits them, and the [`crate::rx`] receiver uses them for
//! synchronization and equalization.

use crate::ofdm::{subcarrier_to_bin, synthesize_symbol, FFT_SIZE};
use ctc_dsp::{ifft64, Complex};

/// Samples in the legacy short training field (8 µs at 20 MHz).
pub const STF_LEN: usize = 160;

/// Samples in the legacy long training field (8 µs at 20 MHz).
pub const LTF_LEN: usize = 160;

/// Samples in the SIGNAL symbol.
pub const SIGNAL_LEN: usize = 80;

/// Full preamble + SIGNAL length.
pub const PLCP_LEN: usize = STF_LEN + LTF_LEN + SIGNAL_LEN;

/// The 12 populated S-subcarriers of the STF (index, value) with the
/// standard's sqrt(13/6) scaling.
fn stf_spectrum() -> [Complex; FFT_SIZE] {
    let scale = (13.0f64 / 6.0).sqrt();
    let p = Complex::new(1.0, 1.0) * scale;
    let m = Complex::new(-1.0, -1.0) * scale;
    let entries: [(i32, Complex); 12] = [
        (-24, p),
        (-20, m),
        (-16, p),
        (-12, m),
        (-8, m),
        (-4, p),
        (4, m),
        (8, m),
        (12, p),
        (16, p),
        (20, p),
        (24, p),
    ];
    let mut spec = [Complex::ZERO; FFT_SIZE];
    for (k, v) in entries {
        spec[subcarrier_to_bin(k)] = v;
    }
    spec
}

/// The L-LTF BPSK sequence on subcarriers −26..=26 (0 at DC), per
/// 802.11-2016 Table 17-8.
pub fn ltf_sequence() -> [Complex; FFT_SIZE] {
    const SEQ: [i8; 53] = [
        1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
        /* DC */ 0, 1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1,
        -1, 1, 1, 1, 1,
    ];
    let mut spec = [Complex::ZERO; FFT_SIZE];
    for (i, &v) in SEQ.iter().enumerate() {
        let k = i as i32 - 26;
        spec[subcarrier_to_bin(k)] = Complex::from_re(v as f64);
    }
    spec
}

/// Generates the 160-sample short training field.
pub fn short_training_field() -> Vec<Complex> {
    // IFFT of the STF spectrum has period 16; repeat to 160 samples.
    let base = ifft64(&stf_spectrum());
    (0..STF_LEN).map(|n| base[n % FFT_SIZE]).collect()
}

/// Generates the 160-sample long training field (32-sample GI2 + 2 × 64).
pub fn long_training_field() -> Vec<Complex> {
    let body = ifft64(&ltf_sequence());
    let mut out = Vec::with_capacity(LTF_LEN);
    out.extend_from_slice(&body[32..]); // GI2 = last 32 samples
    out.extend_from_slice(&body);
    out.extend_from_slice(&body);
    out
}

/// Rates encodable in the SIGNAL field (802.11g OFDM PHY).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalRate {
    /// 6 Mb/s (BPSK 1/2).
    R6 = 0b1101,
    /// 9 Mb/s.
    R9 = 0b1111,
    /// 12 Mb/s.
    R12 = 0b0101,
    /// 18 Mb/s.
    R18 = 0b0111,
    /// 24 Mb/s.
    R24 = 0b1001,
    /// 36 Mb/s.
    R36 = 0b1011,
    /// 48 Mb/s.
    R48 = 0b0001,
    /// 54 Mb/s (64-QAM 3/4 — the attacker's mode).
    R54 = 0b0011,
}

/// Errors building or parsing the SIGNAL field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalError {
    /// LENGTH exceeds the 12-bit field.
    LengthTooLarge {
        /// Requested length.
        length: usize,
    },
    /// Parity bit check failed on decode.
    BadParity,
    /// RATE bits did not match any defined rate.
    BadRate(u8),
    /// Reserved or tail bits nonzero.
    BadStructure,
}

impl std::fmt::Display for SignalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignalError::LengthTooLarge { length } => {
                write!(f, "PSDU length {length} exceeds the 4095-byte SIGNAL field")
            }
            SignalError::BadParity => write!(f, "SIGNAL parity check failed"),
            SignalError::BadRate(r) => write!(f, "undefined RATE bits {r:#06b}"),
            SignalError::BadStructure => write!(f, "reserved/tail bits nonzero"),
        }
    }
}

impl std::error::Error for SignalError {}

impl SignalRate {
    /// Parses the 4 RATE bits.
    pub fn from_bits(bits: u8) -> Result<Self, SignalError> {
        Ok(match bits {
            0b1101 => SignalRate::R6,
            0b1111 => SignalRate::R9,
            0b0101 => SignalRate::R12,
            0b0111 => SignalRate::R18,
            0b1001 => SignalRate::R24,
            0b1011 => SignalRate::R36,
            0b0001 => SignalRate::R48,
            0b0011 => SignalRate::R54,
            other => return Err(SignalError::BadRate(other)),
        })
    }

    /// Data rate in Mb/s.
    pub fn mbps(self) -> u32 {
        match self {
            SignalRate::R6 => 6,
            SignalRate::R9 => 9,
            SignalRate::R12 => 12,
            SignalRate::R18 => 18,
            SignalRate::R24 => 24,
            SignalRate::R36 => 36,
            SignalRate::R48 => 48,
            SignalRate::R54 => 54,
        }
    }
}

/// Encodes the 24 SIGNAL bits (RATE, reserved, LENGTH, parity, tail).
///
/// # Errors
///
/// Returns [`SignalError::LengthTooLarge`] when `psdu_len > 4095`.
pub fn signal_bits(rate: SignalRate, psdu_len: usize) -> Result<[u8; 24], SignalError> {
    if psdu_len > 0xFFF {
        return Err(SignalError::LengthTooLarge { length: psdu_len });
    }
    let mut bits = [0u8; 24];
    let r = rate as u8;
    for (i, bit) in bits.iter_mut().enumerate().take(4) {
        *bit = (r >> (3 - i)) & 1;
    }
    // bits[4] reserved = 0; LENGTH LSB-first in bits 5..17.
    for i in 0..12 {
        bits[5 + i] = ((psdu_len >> i) & 1) as u8;
    }
    let parity: u8 = bits[..17].iter().sum::<u8>() & 1;
    bits[17] = parity;
    // bits 18..24 tail zeros.
    Ok(bits)
}

/// Decodes 24 SIGNAL bits back to `(rate, psdu_len)` with parity and
/// structure checks.
///
/// # Errors
///
/// Returns the corresponding [`SignalError`] on any malformed field.
pub fn parse_signal_bits(bits: &[u8; 24]) -> Result<(SignalRate, usize), SignalError> {
    let parity: u8 = bits[..17].iter().sum::<u8>() & 1;
    if parity != bits[17] {
        return Err(SignalError::BadParity);
    }
    if bits[4] != 0 || bits[18..].iter().any(|&b| b != 0) {
        return Err(SignalError::BadStructure);
    }
    let r = (bits[0] << 3) | (bits[1] << 2) | (bits[2] << 1) | bits[3];
    let rate = SignalRate::from_bits(r)?;
    let mut len = 0usize;
    for i in 0..12 {
        len |= (bits[5 + i] as usize) << i;
    }
    Ok((rate, len))
}

/// Builds the SIGNAL OFDM symbol: convolutional rate 1/2, interleaved,
/// BPSK on the 48 data subcarriers.
///
/// # Errors
///
/// Propagates [`signal_bits`] errors.
pub fn signal_symbol(rate: SignalRate, psdu_len: usize) -> Result<Vec<Complex>, SignalError> {
    let bits = signal_bits(rate, psdu_len)?;
    let coded = crate::convolutional::encode(&bits, crate::convolutional::Rate::Half);
    debug_assert_eq!(coded.len(), 48);
    let inter = crate::interleaver::interleave(&coded, 48, 1);
    let points: Vec<Complex> = inter
        .iter()
        .map(|&b| Complex::from_re(if b == 1 { 1.0 } else { -1.0 }))
        .collect();
    Ok(synthesize_symbol(&crate::ofdm::allocate_subcarriers(
        &points,
    )))
}

/// Assembles the full PLCP header: STF + LTF + SIGNAL.
///
/// # Errors
///
/// Propagates [`signal_bits`] errors.
pub fn plcp_header(rate: SignalRate, psdu_len: usize) -> Result<Vec<Complex>, SignalError> {
    let mut out = Vec::with_capacity(PLCP_LEN);
    out.extend(short_training_field());
    out.extend(long_training_field());
    out.extend(signal_symbol(rate, psdu_len)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofdm::analyze_symbol;

    #[test]
    fn stf_is_16_periodic() {
        let stf = short_training_field();
        assert_eq!(stf.len(), STF_LEN);
        for i in 16..STF_LEN {
            assert!(
                (stf[i] - stf[i - 16]).norm() < 1e-12,
                "period broken at {i}"
            );
        }
    }

    #[test]
    fn ltf_symbols_repeat() {
        let ltf = long_training_field();
        assert_eq!(ltf.len(), LTF_LEN);
        for i in 0..64 {
            assert!((ltf[32 + i] - ltf[96 + i]).norm() < 1e-12);
        }
        // GI2 is the tail of the symbol.
        for i in 0..32 {
            assert!((ltf[i] - ltf[128 + i]).norm() < 1e-12);
        }
    }

    #[test]
    fn ltf_sequence_has_52_used_carriers() {
        let spec = ltf_sequence();
        let used = spec.iter().filter(|c| c.norm() > 0.5).count();
        assert_eq!(used, 52);
        assert_eq!(spec[0], Complex::ZERO); // DC null
    }

    #[test]
    fn signal_bits_roundtrip() {
        for rate in [SignalRate::R6, SignalRate::R12, SignalRate::R54] {
            for len in [0usize, 1, 100, 4095] {
                let bits = signal_bits(rate, len).unwrap();
                let (r, l) = parse_signal_bits(&bits).unwrap();
                assert_eq!(r, rate);
                assert_eq!(l, len);
            }
        }
    }

    #[test]
    fn signal_rejects_oversize() {
        assert!(matches!(
            signal_bits(SignalRate::R6, 4096),
            Err(SignalError::LengthTooLarge { length: 4096 })
        ));
    }

    #[test]
    fn signal_parity_detects_flip() {
        let mut bits = signal_bits(SignalRate::R54, 321).unwrap();
        bits[7] ^= 1;
        assert_eq!(parse_signal_bits(&bits), Err(SignalError::BadParity));
    }

    #[test]
    fn bad_rate_detected() {
        // 0b0000 is undefined; craft bits with correct parity.
        let mut bits = [0u8; 24];
        // RATE = 0000, LENGTH = 0, parity over zeros = 0 — structure ok but
        // rate undefined.
        bits[17] = 0;
        assert!(matches!(
            parse_signal_bits(&bits),
            Err(SignalError::BadRate(0))
        ));
    }

    #[test]
    fn signal_symbol_is_bpsk_on_air() {
        let sym = signal_symbol(SignalRate::R54, 64).unwrap();
        assert_eq!(sym.len(), SIGNAL_LEN);
        let spec = analyze_symbol(&sym);
        let data = crate::ofdm::extract_data_subcarriers(&spec);
        for p in data {
            assert!(p.im.abs() < 1e-9, "BPSK points must be real");
            assert!((p.re.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn plcp_header_length() {
        let hdr = plcp_header(SignalRate::R54, 100).unwrap();
        assert_eq!(hdr.len(), PLCP_LEN);
    }

    #[test]
    fn rates_expose_mbps() {
        assert_eq!(SignalRate::R54.mbps(), 54);
        assert_eq!(SignalRate::R6.mbps(), 6);
    }
}
