//! 64-QAM constellation mapping (IEEE 802.11a/g).
//!
//! Six bits map to one point of the 8×8 grid
//! `{±1, ±3, ±5, ±7}²` (Gray-coded per axis), normalized by `1/sqrt(42)` so
//! the constellation has unit average energy. The attack's QAM-quantization
//! step (paper Sec. V-A3) searches this same grid with a free scale factor
//! `alpha`.

use ctc_dsp::Complex;

/// Per-axis amplitude levels of 64-QAM.
pub const LEVELS: [f64; 8] = [-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0];

/// Normalization factor giving unit average symbol energy
/// (`E[|x|^2] = 42` over the raw grid).
pub const NORM_64QAM: f64 = 0.154_303_349_962_091_9; // 1/sqrt(42)

/// Gray mapping from 3 bits to an axis level, per 802.11 Table 18-10:
/// `000->-7, 001->-5, 011->-3, 010->-1, 110->1, 111->3, 101->5, 100->7`.
const GRAY_TO_LEVEL: [f64; 8] = [-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0];

fn level_to_gray(level: f64) -> u8 {
    match level as i32 {
        -7 => 0b000,
        -5 => 0b001,
        -3 => 0b011,
        -1 => 0b010,
        1 => 0b110,
        3 => 0b111,
        5 => 0b101,
        7 => 0b100,
        _ => unreachable!("level {level} is not a 64-QAM level"),
    }
}

/// Maps 6 bits (I bits first: `b0 b1 b2` → I, `b3 b4 b5` → Q) to a
/// normalized 64-QAM point.
///
/// # Panics
///
/// Panics if `bits.len() != 6` or any entry exceeds 1.
///
/// # Examples
///
/// ```
/// use ctc_wifi::qam::{map_64qam, NORM_64QAM};
/// let p = map_64qam(&[1, 0, 0, 1, 0, 0]);
/// assert!((p.re - 7.0 * NORM_64QAM).abs() < 1e-12);
/// assert!((p.im - 7.0 * NORM_64QAM).abs() < 1e-12);
/// ```
pub fn map_64qam(bits: &[u8]) -> Complex {
    assert_eq!(bits.len(), 6, "64-QAM consumes 6 bits per symbol");
    assert!(bits.iter().all(|&b| b <= 1), "bits must be 0/1");
    let i_idx = ((bits[0] << 2) | (bits[1] << 1) | bits[2]) as usize;
    let q_idx = ((bits[3] << 2) | (bits[4] << 1) | bits[5]) as usize;
    Complex::new(
        GRAY_TO_LEVEL[i_idx] * NORM_64QAM,
        GRAY_TO_LEVEL[q_idx] * NORM_64QAM,
    )
}

/// Hard-demaps a (noisy) point back to 6 bits by nearest grid level.
pub fn demap_64qam(point: Complex) -> [u8; 6] {
    fn nearest_level(v: f64) -> f64 {
        let mut best = LEVELS[0];
        let mut best_d = f64::INFINITY;
        for &l in &LEVELS {
            let d = (v - l).abs();
            if d < best_d {
                best_d = d;
                best = l;
            }
        }
        best
    }
    let i_lvl = nearest_level(point.re / NORM_64QAM);
    let q_lvl = nearest_level(point.im / NORM_64QAM);
    let gi = level_to_gray(i_lvl);
    let gq = level_to_gray(q_lvl);
    [
        (gi >> 2) & 1,
        (gi >> 1) & 1,
        gi & 1,
        (gq >> 2) & 1,
        (gq >> 1) & 1,
        gq & 1,
    ]
}

/// Max-log soft demapping: per-bit log-likelihood ratios for a received
/// point, positive meaning "bit 0 more likely".
///
/// `LLR_i = (min_{p: bit_i(p)=1} |y-p|^2 - min_{p: bit_i(p)=0} |y-p|^2) / noise_var`
///
/// # Panics
///
/// Panics if `noise_var <= 0`.
pub fn soft_demap_64qam(point: Complex, noise_var: f64) -> [f64; 6] {
    assert!(noise_var > 0.0, "noise variance must be positive");
    let mut min0 = [f64::INFINITY; 6];
    let mut min1 = [f64::INFINITY; 6];
    for n in 0..64u8 {
        let bits = [
            (n >> 5) & 1,
            (n >> 4) & 1,
            (n >> 3) & 1,
            (n >> 2) & 1,
            (n >> 1) & 1,
            n & 1,
        ];
        let p = map_64qam(&bits);
        let d = (point - p).norm_sqr();
        for (i, &b) in bits.iter().enumerate() {
            if b == 0 {
                min0[i] = min0[i].min(d);
            } else {
                min1[i] = min1[i].min(d);
            }
        }
    }
    let mut llrs = [0.0f64; 6];
    for i in 0..6 {
        llrs[i] = (min1[i] - min0[i]) / noise_var;
    }
    llrs
}

/// All 64 normalized constellation points.
pub fn constellation_64qam() -> Vec<Complex> {
    let mut pts = Vec::with_capacity(64);
    for &i in &LEVELS {
        for &q in &LEVELS {
            pts.push(Complex::new(i * NORM_64QAM, q * NORM_64QAM));
        }
    }
    pts
}

/// Quantizes an arbitrary complex value to the nearest point of the
/// *unnormalized* grid `alpha * {±1..±7}²` and returns that grid point
/// (including the `alpha` scale).
///
/// This is the attack's per-point quantizer: "choose the closest QAM
/// constellation point in term of Euclidean distance" (Sec. V-A3).
///
/// # Panics
///
/// Panics if `alpha <= 0`.
pub fn quantize_to_grid(value: Complex, alpha: f64) -> Complex {
    assert!(alpha > 0.0, "alpha must be positive");
    fn nearest(v: f64) -> f64 {
        // Closest odd integer in [-7, 7]: odd integers are 2k+1.
        let k = ((v - 1.0) / 2.0).round();
        (2.0 * k + 1.0).clamp(-7.0, 7.0)
    }
    Complex::new(
        alpha * nearest(value.re / alpha),
        alpha * nearest(value.im / alpha),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn norm_gives_unit_energy() {
        let pts = constellation_64qam();
        let p: f64 = pts.iter().map(|v| v.norm_sqr()).sum::<f64>() / pts.len() as f64;
        assert!((p - 1.0).abs() < 1e-12, "average energy {p}");
    }

    #[test]
    fn map_demap_roundtrip_all_64() {
        for n in 0..64u8 {
            let bits = [
                (n >> 5) & 1,
                (n >> 4) & 1,
                (n >> 3) & 1,
                (n >> 2) & 1,
                (n >> 1) & 1,
                n & 1,
            ];
            let p = map_64qam(&bits);
            assert_eq!(demap_64qam(p), bits, "failed for {n:06b}");
        }
    }

    #[test]
    fn gray_adjacent_levels_differ_one_bit() {
        let ordered = [-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0];
        for w in ordered.windows(2) {
            let a = level_to_gray(w[0]);
            let b = level_to_gray(w[1]);
            assert_eq!((a ^ b).count_ones(), 1, "levels {w:?} not Gray-adjacent");
        }
    }

    #[test]
    fn demap_tolerates_small_noise() {
        for n in [0u8, 17, 42, 63] {
            let bits = [
                (n >> 5) & 1,
                (n >> 4) & 1,
                (n >> 3) & 1,
                (n >> 2) & 1,
                (n >> 1) & 1,
                n & 1,
            ];
            let p = map_64qam(&bits) + Complex::new(0.4 * NORM_64QAM, -0.4 * NORM_64QAM);
            assert_eq!(demap_64qam(p), bits);
        }
    }

    #[test]
    #[should_panic(expected = "6 bits")]
    fn wrong_bit_count_panics() {
        let _ = map_64qam(&[0, 1, 0]);
    }

    #[test]
    fn quantize_lands_on_grid() {
        let alpha = 0.8;
        let q = quantize_to_grid(Complex::new(2.3, -5.9), alpha);
        let gi = q.re / alpha;
        let gq = q.im / alpha;
        assert!((gi.rem_euclid(2.0) - 1.0).abs() < 1e-9, "I level {gi}");
        assert!((gq.rem_euclid(2.0) - 1.0).abs() < 1e-9, "Q level {gq}");
        assert!(gi.abs() <= 7.0 && gq.abs() <= 7.0);
    }

    #[test]
    fn quantize_saturates_large_values() {
        let q = quantize_to_grid(Complex::new(100.0, -100.0), 1.0);
        assert_eq!(q, Complex::new(7.0, -7.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn quantize_rejects_bad_alpha() {
        let _ = quantize_to_grid(Complex::ONE, 0.0);
    }

    #[test]
    fn soft_demap_signs_match_hard_decision() {
        for n in [0u8, 13, 42, 63] {
            let bits = [
                (n >> 5) & 1,
                (n >> 4) & 1,
                (n >> 3) & 1,
                (n >> 2) & 1,
                (n >> 1) & 1,
                n & 1,
            ];
            let p = map_64qam(&bits);
            let llrs = soft_demap_64qam(p, 0.05);
            for (i, &b) in bits.iter().enumerate() {
                if b == 0 {
                    assert!(llrs[i] > 0.0, "point {n:06b} bit {i}");
                } else {
                    assert!(llrs[i] < 0.0, "point {n:06b} bit {i}");
                }
            }
        }
    }

    #[test]
    fn soft_demap_confidence_scales_with_distance() {
        // A point at a grid corner gives stronger LLRs than one between
        // two grid points.
        let confident = soft_demap_64qam(map_64qam(&[1, 0, 0, 1, 0, 0]), 0.1);
        let boundary = soft_demap_64qam(
            Complex::new(0.0, 7.0 * NORM_64QAM), // on the I decision line
            0.1,
        );
        assert!(confident[0].abs() > boundary[0].abs() * 3.0);
        assert!(boundary[0].abs() < 1e-9, "boundary LLR should be ~0");
    }

    #[test]
    #[should_panic(expected = "noise variance")]
    fn soft_demap_rejects_bad_variance() {
        let _ = soft_demap_64qam(Complex::ONE, 0.0);
    }

    proptest! {
        #[test]
        fn soft_demap_finite(re in -2.0f64..2.0, im in -2.0f64..2.0) {
            let llrs = soft_demap_64qam(Complex::new(re, im), 0.1);
            for l in llrs {
                prop_assert!(l.is_finite());
            }
        }

        #[test]
        fn quantize_is_nearest_point(re in -10.0f64..10.0, im in -10.0f64..10.0, alpha in 0.1f64..3.0) {
            let v = Complex::new(re, im);
            let q = quantize_to_grid(v, alpha);
            // Exhaustive check against all 64 scaled grid points.
            let mut best = f64::INFINITY;
            for &i in &LEVELS {
                for &qq in &LEVELS {
                    let p = Complex::new(alpha * i, alpha * qq);
                    best = best.min((v - p).norm_sqr());
                }
            }
            prop_assert!(((v - q).norm_sqr() - best).abs() < 1e-9);
        }

        #[test]
        fn demap_is_nearest_neighbour(re in -1.5f64..1.5, im in -1.5f64..1.5) {
            let v = Complex::new(re, im);
            let bits = demap_64qam(v);
            let p = map_64qam(&bits);
            for other in constellation_64qam() {
                prop_assert!((v - p).norm_sqr() <= (v - other).norm_sqr() + 1e-9);
            }
        }
    }
}
