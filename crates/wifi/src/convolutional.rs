//! Rate-1/2 K=7 convolutional code with Viterbi decoding (IEEE 802.11
//! BCC, generators 133/171 octal) plus the standard puncturing patterns.
//!
//! The forward direction belongs to the normal WiFi transmit chain. The
//! *decoder* doubles as the attacker's tool for the full-bit-chain emulation
//! mode: arbitrary target coded sequences are generally not codewords, so
//! the attacker runs Viterbi on the desired coded bits to find the data bits
//! whose encoding is *closest* — quantifying the extra distortion the paper
//! glosses over when it calls the preprocessing "invertible".

/// Constraint length.
pub const K: usize = 7;

/// Number of trellis states.
pub const STATES: usize = 64;

/// Generator polynomials (octal 133, 171), LSB = newest bit.
const G0: u32 = 0o133;
const G1: u32 = 0o171;

/// Coding rates defined by 802.11 puncturing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rate {
    /// Rate 1/2 (no puncturing).
    Half,
    /// Rate 2/3 (puncture pattern `1 1 / 1 0`).
    TwoThirds,
    /// Rate 3/4 (puncture pattern `1 1 0 / 1 0 1`).
    ThreeQuarters,
}

impl Rate {
    /// Puncturing mask over one period of `(a, b)` output pairs:
    /// `true` = transmit.
    fn mask(self) -> &'static [(bool, bool)] {
        match self {
            Rate::Half => &[(true, true)],
            Rate::TwoThirds => &[(true, true), (true, false)],
            Rate::ThreeQuarters => &[(true, true), (true, false), (false, true)],
        }
    }

    /// Coded bits produced per data bit, as a fraction (num, den) —
    /// e.g. 3/4 rate yields 4 coded bits per 3 data bits.
    pub fn coded_per_data(self) -> (usize, usize) {
        match self {
            Rate::Half => (2, 1),
            Rate::TwoThirds => (3, 2),
            Rate::ThreeQuarters => (4, 3),
        }
    }
}

fn parity(v: u32) -> u8 {
    (v.count_ones() & 1) as u8
}

/// Encodes data bits at the given rate. The encoder starts in the all-zero
/// state; callers wanting trellis termination should append `K-1` zero bits.
///
/// # Panics
///
/// Panics if any input bit exceeds 1.
///
/// # Examples
///
/// ```
/// use ctc_wifi::convolutional::{encode, Rate};
/// let coded = encode(&[1, 0, 1, 1], Rate::Half);
/// assert_eq!(coded.len(), 8);
/// ```
pub fn encode(data: &[u8], rate: Rate) -> Vec<u8> {
    assert!(data.iter().all(|&b| b <= 1), "bits must be 0/1");
    let mask = rate.mask();
    let mut state: u32 = 0;
    let mut out = Vec::with_capacity(data.len() * 2);
    for (i, &bit) in data.iter().enumerate() {
        let reg = ((bit as u32) << (K - 1)) | state;
        let a = parity(reg & G0);
        let b = parity(reg & G1);
        let (keep_a, keep_b) = mask[i % mask.len()];
        if keep_a {
            out.push(a);
        }
        if keep_b {
            out.push(b);
        }
        state = reg >> 1;
    }
    out
}

/// Result of a Viterbi run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Maximum-likelihood data bits.
    pub data: Vec<u8>,
    /// Hamming distance between the received sequence and the re-encoded
    /// survivor (punctured positions excluded).
    pub distance: u32,
}

/// Hard-decision Viterbi decoding.
///
/// `coded.len()` must be consistent with `rate` (an integer number of
/// puncturing periods); the decoded length is implied by it.
///
/// # Errors
///
/// Returns an error string when `coded.len()` does not correspond to a whole
/// number of data bits at this rate.
pub fn decode(coded: &[u8], rate: Rate) -> Result<Decoded, String> {
    let target: Vec<Option<u8>> = coded.iter().map(|&b| Some(b)).collect();
    decode_with(&target, rate, &[])
}

/// Viterbi decoding with erasures and input constraints — the attacker's
/// tool for shaping a *frame-structured* transmission:
///
/// - `coded[i] = None` marks a coded bit the caller does not care about
///   (e.g. the SERVICE symbol of a full 802.11 frame, whose subcarriers lie
///   outside the ZigBee band);
/// - `constraints[t] = Some(bit)` forces the data bit at trellis step `t`
///   (e.g. SERVICE and tail bits, which must descramble to zero).
///
/// `constraints` may be shorter than the data length; missing entries are
/// unconstrained.
///
/// # Errors
///
/// Returns an error string when the coded length does not correspond to a
/// whole number of data bits at this rate, or when the constraints make
/// every path infeasible.
///
/// # Panics
///
/// Panics if any present coded bit or constraint exceeds 1.
pub fn decode_with(
    coded: &[Option<u8>],
    rate: Rate,
    constraints: &[Option<u8>],
) -> Result<Decoded, String> {
    assert!(coded.iter().flatten().all(|&b| b <= 1), "bits must be 0/1");
    assert!(
        constraints.iter().flatten().all(|&b| b <= 1),
        "constraints must be 0/1"
    );
    let mask = rate.mask();
    // Reconstruct per-step (a, b) observations with erasures at punctured
    // positions (and caller-supplied erasures passed through).
    let mut observations: Vec<(Option<u8>, Option<u8>)> = Vec::new();
    let mut idx = 0;
    let mut step = 0;
    while idx < coded.len() {
        let (keep_a, keep_b) = mask[step % mask.len()];
        let a = if keep_a {
            let v = *coded.get(idx).ok_or("coded sequence ends mid-step")?;
            idx += 1;
            v
        } else {
            None
        };
        let b = if keep_b {
            if idx >= coded.len() {
                return Err("coded sequence ends mid-step".into());
            }
            let v = coded[idx];
            idx += 1;
            v
        } else {
            None
        };
        observations.push((a, b));
        step += 1;
    }

    let n = observations.len();
    let inf = u32::MAX / 2;
    let mut metric = vec![inf; STATES];
    metric[0] = 0;
    // survivors[t][state] = (previous state, input bit)
    let mut survivors: Vec<Vec<(u8, u8)>> = Vec::with_capacity(n);

    for (t, &(oa, ob)) in observations.iter().enumerate() {
        let forced = constraints.get(t).copied().flatten();
        let mut next = vec![inf; STATES];
        let mut surv = vec![(0u8, 0u8); STATES];
        for (s, &m_s) in metric.iter().enumerate() {
            if m_s >= inf {
                continue;
            }
            for bit in 0..2u32 {
                if let Some(f) = forced {
                    if bit != f as u32 {
                        continue;
                    }
                }
                let reg = (bit << (K - 1)) | s as u32;
                let a = parity(reg & G0);
                let b = parity(reg & G1);
                let ns = (reg >> 1) as usize;
                let mut cost = m_s;
                if let Some(ra) = oa {
                    cost += u32::from(ra != a);
                }
                if let Some(rb) = ob {
                    cost += u32::from(rb != b);
                }
                if cost < next[ns] {
                    next[ns] = cost;
                    surv[ns] = (s as u8, bit as u8);
                }
            }
        }
        metric = next;
        survivors.push(surv);
    }

    // Pick the best end state (no termination assumed) and trace back.
    let (mut state, &best) = metric
        .iter()
        .enumerate()
        .min_by_key(|(_, &m)| m)
        .expect("state metrics nonempty");
    if best >= inf {
        return Err("constraints leave no feasible trellis path".into());
    }
    let mut data = vec![0u8; n];
    for t in (0..n).rev() {
        let (prev, bit) = survivors[t][state];
        data[t] = bit;
        state = prev as usize;
    }
    Ok(Decoded {
        data,
        distance: best,
    })
}

/// Finds the data bits whose encoding is nearest (Hamming) to an arbitrary
/// target coded sequence — exactly [`decode`], exposed under the attacker's
/// name for readability, with the achieved distance.
///
/// # Errors
///
/// Propagates [`decode`] errors for malformed lengths.
pub fn closest_codeword(target: &[u8], rate: Rate) -> Result<Decoded, String> {
    decode(target, rate)
}

/// Result of a soft-decision Viterbi run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftDecoded {
    /// Maximum-likelihood data bits.
    pub data: Vec<u8>,
    /// Accumulated path metric (sum of `-llr * coded_bit_sign`; lower is
    /// more likely).
    pub metric: f64,
}

/// Soft-decision Viterbi: each coded position carries a log-likelihood
/// ratio, positive meaning "bit 0 more likely" (the sign convention of a
/// matched-filter output for BPSK `0 -> +1`). `f64::NAN` marks punctured or
/// erased positions and must appear exactly where the rate's puncturing
/// pattern erases bits — callers normally just supply the demapper's LLRs
/// for the transmitted positions.
///
/// Soft decoding buys the classic ~2 dB over hard decisions; the receiver
/// benches quantify it on this implementation.
///
/// # Errors
///
/// Returns an error string when the LLR count does not correspond to a
/// whole number of data bits at this rate.
///
/// # Examples
///
/// ```
/// use ctc_wifi::convolutional::{encode, decode_soft, Rate};
/// let data = vec![1, 0, 1, 1, 0, 0];
/// let coded = encode(&data, Rate::Half);
/// // Perfect LLRs: +2 for coded 0, -2 for coded 1.
/// let llrs: Vec<f64> = coded.iter().map(|&b| if b == 0 { 2.0 } else { -2.0 }).collect();
/// let dec = decode_soft(&llrs, Rate::Half)?;
/// assert_eq!(dec.data, data);
/// # Ok::<(), String>(())
/// ```
pub fn decode_soft(llrs: &[f64], rate: Rate) -> Result<SoftDecoded, String> {
    let mask = rate.mask();
    // Per-step LLR pairs with erasures at punctured positions.
    let mut observations: Vec<(Option<f64>, Option<f64>)> = Vec::new();
    let mut idx = 0;
    let mut step = 0;
    while idx < llrs.len() {
        let (keep_a, keep_b) = mask[step % mask.len()];
        let a = if keep_a {
            let v = *llrs.get(idx).ok_or("LLR sequence ends mid-step")?;
            idx += 1;
            if v.is_nan() {
                None
            } else {
                Some(v)
            }
        } else {
            None
        };
        let b = if keep_b {
            if idx >= llrs.len() {
                return Err("LLR sequence ends mid-step".into());
            }
            let v = llrs[idx];
            idx += 1;
            if v.is_nan() {
                None
            } else {
                Some(v)
            }
        } else {
            None
        };
        observations.push((a, b));
        step += 1;
    }

    let n = observations.len();
    let inf = f64::INFINITY;
    let mut metric = vec![inf; STATES];
    metric[0] = 0.0;
    let mut survivors: Vec<Vec<(u8, u8)>> = Vec::with_capacity(n);
    // Branch cost: LLR > 0 favours coded bit 0. Cost of hypothesising coded
    // bit c given llr l: c == 0 -> -l/2, c == 1 -> +l/2 (affine shift is
    // path-independent, so this ranks identically to the exact form).
    let cost = |llr: Option<f64>, coded: u8| -> f64 {
        match llr {
            None => 0.0,
            Some(l) => {
                if coded == 0 {
                    -l / 2.0
                } else {
                    l / 2.0
                }
            }
        }
    };
    for &(oa, ob) in &observations {
        let mut next = vec![inf; STATES];
        let mut surv = vec![(0u8, 0u8); STATES];
        for (s, &m_s) in metric.iter().enumerate() {
            if !m_s.is_finite() {
                continue;
            }
            for bit in 0..2u32 {
                let reg = (bit << (K - 1)) | s as u32;
                let a = parity(reg & G0);
                let b = parity(reg & G1);
                let ns = (reg >> 1) as usize;
                let m = m_s + cost(oa, a) + cost(ob, b);
                if m < next[ns] {
                    next[ns] = m;
                    surv[ns] = (s as u8, bit as u8);
                }
            }
        }
        metric = next;
        survivors.push(surv);
    }
    let (mut state, best) = metric
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(s, &m)| (s, m))
        .expect("state metrics nonempty");
    let mut data = vec![0u8; n];
    for t in (0..n).rev() {
        let (prev, bit) = survivors[t][state];
        data[t] = bit;
        state = prev as usize;
    }
    Ok(SoftDecoded { data, metric: best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn encode_known_prefix() {
        // All-zero input stays all-zero (linear code).
        assert_eq!(encode(&[0, 0, 0], Rate::Half), vec![0; 6]);
        // Single 1: outputs are the generator taps as the bit shifts through.
        let coded = encode(&[1, 0, 0, 0, 0, 0, 0], Rate::Half);
        assert_eq!(coded.len(), 14);
        // First pair: both generators tap the newest bit -> (1, 1).
        assert_eq!(&coded[..2], &[1, 1]);
    }

    #[test]
    fn rate_lengths() {
        let data = vec![0u8; 12];
        assert_eq!(encode(&data, Rate::Half).len(), 24);
        assert_eq!(encode(&data, Rate::TwoThirds).len(), 18);
        assert_eq!(encode(&data, Rate::ThreeQuarters).len(), 16);
    }

    #[test]
    fn decode_clean_roundtrip_all_rates() {
        let mut rng = StdRng::seed_from_u64(51);
        for rate in [Rate::Half, Rate::TwoThirds, Rate::ThreeQuarters] {
            let data: Vec<u8> = (0..48).map(|_| rng.gen_range(0..2u8)).collect();
            let coded = encode(&data, rate);
            let dec = decode(&coded, rate).unwrap();
            assert_eq!(dec.data, data, "{rate:?}");
            assert_eq!(dec.distance, 0);
        }
    }

    #[test]
    fn corrects_scattered_errors_at_half_rate() {
        let mut rng = StdRng::seed_from_u64(52);
        let data: Vec<u8> = (0..64).map(|_| rng.gen_range(0..2u8)).collect();
        let mut coded = encode(&data, Rate::Half);
        // Flip 6 well-separated bits (free distance 10 -> corrects bursts of
        // up to ~4; scattered singles are easy).
        for pos in [3usize, 25, 47, 69, 91, 113] {
            coded[pos] ^= 1;
        }
        let dec = decode(&coded, Rate::Half).unwrap();
        assert_eq!(dec.data, data);
        assert_eq!(dec.distance, 6);
    }

    #[test]
    fn malformed_length_rejected() {
        // Rate 1/2 needs an even number of coded bits.
        assert!(decode(&[1, 0, 1], Rate::Half).is_err());
    }

    #[test]
    fn closest_codeword_reports_distance() {
        // A random non-codeword target: distance > 0, and re-encoding the
        // answer achieves exactly that distance.
        let mut rng = StdRng::seed_from_u64(53);
        let target: Vec<u8> = (0..96).map(|_| rng.gen_range(0..2u8)).collect();
        let found = closest_codeword(&target, Rate::Half).unwrap();
        let recoded = encode(&found.data, Rate::Half);
        let d: u32 = recoded
            .iter()
            .zip(&target)
            .map(|(a, b)| u32::from(a != b))
            .sum();
        assert_eq!(d, found.distance);
    }

    #[test]
    #[should_panic(expected = "0/1")]
    fn bad_bits_panic() {
        let _ = encode(&[2], Rate::Half);
    }

    #[test]
    fn erasures_are_free() {
        // Erase half the coded bits of a clean codeword: still decodes with
        // zero distance.
        let mut rng = StdRng::seed_from_u64(54);
        let data: Vec<u8> = (0..40).map(|_| rng.gen_range(0..2u8)).collect();
        let coded = encode(&data, Rate::Half);
        let erased: Vec<Option<u8>> = coded
            .iter()
            .enumerate()
            .map(|(i, &b)| if i % 4 == 0 { None } else { Some(b) })
            .collect();
        let dec = decode_with(&erased, Rate::Half, &[]).unwrap();
        assert_eq!(dec.data, data);
        assert_eq!(dec.distance, 0);
    }

    #[test]
    fn constraints_force_data_bits() {
        let mut rng = StdRng::seed_from_u64(55);
        let target: Vec<Option<u8>> = (0..96).map(|_| Some(rng.gen_range(0..2u8))).collect();
        // Force the first 8 data bits to an arbitrary pattern.
        let forced = [1u8, 0, 0, 1, 1, 1, 0, 1];
        let constraints: Vec<Option<u8>> = forced.iter().map(|&b| Some(b)).collect();
        let dec = decode_with(&target, Rate::Half, &constraints).unwrap();
        assert_eq!(&dec.data[..8], &forced);
        // Re-encoding achieves the reported distance on non-erased bits.
        let recoded = encode(&dec.data, Rate::Half);
        let d: u32 = recoded
            .iter()
            .zip(target.iter())
            .map(|(a, b)| u32::from(Some(*a) != *b))
            .sum();
        assert_eq!(d, dec.distance);
    }

    #[test]
    fn constrained_distance_at_least_unconstrained() {
        let mut rng = StdRng::seed_from_u64(56);
        let target: Vec<Option<u8>> = (0..128).map(|_| Some(rng.gen_range(0..2u8))).collect();
        let free = decode_with(&target, Rate::Half, &[]).unwrap();
        let constraints: Vec<Option<u8>> = (0..16).map(|_| Some(0u8)).collect();
        let pinned = decode_with(&target, Rate::Half, &constraints).unwrap();
        assert!(pinned.distance >= free.distance);
        assert!(pinned.data[..16].iter().all(|&b| b == 0));
    }

    #[test]
    fn soft_decode_clean_roundtrip() {
        let mut rng = StdRng::seed_from_u64(57);
        for rate in [Rate::Half, Rate::TwoThirds, Rate::ThreeQuarters] {
            let data: Vec<u8> = (0..48).map(|_| rng.gen_range(0..2u8)).collect();
            let coded = encode(&data, rate);
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| if b == 0 { 3.0 } else { -3.0 })
                .collect();
            let dec = decode_soft(&llrs, rate).unwrap();
            assert_eq!(dec.data, data, "{rate:?}");
        }
    }

    #[test]
    fn soft_beats_hard_on_noisy_llrs() {
        // Gaussian-corrupted BPSK LLRs: soft decoding should fail strictly
        // less often than hard decisions over many trials.
        let mut rng = StdRng::seed_from_u64(58);
        let mut soft_err = 0usize;
        let mut hard_err = 0usize;
        for _ in 0..120 {
            let data: Vec<u8> = (0..60).map(|_| rng.gen_range(0..2u8)).collect();
            let coded = encode(&data, Rate::Half);
            let sigma = 0.9;
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    let sym = if b == 0 { 1.0 } else { -1.0 };
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen();
                    let noise =
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma;
                    2.0 * (sym + noise) / (sigma * sigma)
                })
                .collect();
            let soft = decode_soft(&llrs, Rate::Half).unwrap();
            let hard_bits: Vec<u8> = llrs.iter().map(|&l| u8::from(l < 0.0)).collect();
            let hard = decode(&hard_bits, Rate::Half).unwrap();
            soft_err += usize::from(soft.data != data);
            hard_err += usize::from(hard.data != data);
        }
        assert!(
            soft_err < hard_err,
            "soft ({soft_err}) should beat hard ({hard_err}) at this SNR"
        );
    }

    #[test]
    fn soft_erasures_are_free() {
        let data = vec![1u8, 0, 1, 1, 0, 1, 0, 0];
        let coded = encode(&data, Rate::Half);
        let llrs: Vec<f64> = coded
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if i % 3 == 0 {
                    f64::NAN
                } else if b == 0 {
                    4.0
                } else {
                    -4.0
                }
            })
            .collect();
        let dec = decode_soft(&llrs, Rate::Half).unwrap();
        assert_eq!(dec.data, data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn roundtrip_random(data in proptest::collection::vec(0u8..2, 6..120)) {
            // Pad to a multiple of 3 so every rate divides evenly.
            let mut data = data;
            while data.len() % 6 != 0 { data.push(0); }
            for rate in [Rate::Half, Rate::TwoThirds, Rate::ThreeQuarters] {
                let coded = encode(&data, rate);
                let dec = decode(&coded, rate).unwrap();
                prop_assert_eq!(&dec.data, &data);
            }
        }

        #[test]
        fn single_error_corrected(data in proptest::collection::vec(0u8..2, 20..60), flip in 0usize..40) {
            // Keep the flip out of the final constraint length: without
            // trellis termination the very last input bit is genuinely
            // ambiguous under an error in its own coded pair.
            let coded = encode(&data, Rate::Half);
            let mut rx = coded.clone();
            let pos = flip % (rx.len() - 2 * (K - 1));
            rx[pos] ^= 1;
            let dec = decode(&rx, Rate::Half).unwrap();
            prop_assert_eq!(dec.data, data);
        }
    }
}
