//! IEEE 802.11a/g block interleaver.
//!
//! Operates on one OFDM symbol's worth of coded bits (`n_cbps`). Two
//! permutations: the first spreads adjacent coded bits across subcarriers,
//! the second rotates bits within a subcarrier's group so adjacent bits
//! alternate between high- and low-reliability constellation positions.

/// Coded bits per OFDM symbol for 64-QAM (48 data subcarriers × 6 bits).
pub const N_CBPS_64QAM: usize = 288;

/// Coded bits per subcarrier for 64-QAM.
pub const N_BPSC_64QAM: usize = 6;

/// Computes the interleaver output position for input position `k`
/// (802.11-2016 eqs. 17-17/17-18).
fn permute(k: usize, n_cbps: usize, n_bpsc: usize) -> usize {
    let s = (n_bpsc / 2).max(1);
    // First permutation.
    let i = (n_cbps / 16) * (k % 16) + k / 16;
    // Second permutation.
    s * (i / s) + (i + n_cbps - (16 * i / n_cbps)) % s
}

/// The full interleaver permutation: `out[permutation(k)] = in[k]`.
///
/// Exposed so callers can permute structures other than plain bit vectors
/// (the full-frame attacker deinterleaves `Option<u8>` don't-care masks).
///
/// # Panics
///
/// Panics unless `n_cbps` is a multiple of 16 and of `n_bpsc`.
pub fn permutation(n_cbps: usize, n_bpsc: usize) -> Vec<usize> {
    assert!(n_cbps.is_multiple_of(16), "n_cbps must be a multiple of 16");
    assert!(
        n_cbps.is_multiple_of(n_bpsc),
        "n_cbps must divide by n_bpsc"
    );
    (0..n_cbps).map(|k| permute(k, n_cbps, n_bpsc)).collect()
}

/// Interleaves one OFDM symbol of coded bits.
///
/// # Panics
///
/// Panics unless `bits.len() == n_cbps` and `n_cbps` is a multiple of 16 and
/// of `n_bpsc`.
///
/// # Examples
///
/// ```
/// use ctc_wifi::interleaver::{interleave, deinterleave, N_CBPS_64QAM, N_BPSC_64QAM};
/// let bits: Vec<u8> = (0..N_CBPS_64QAM).map(|i| (i % 2) as u8).collect();
/// let inter = interleave(&bits, N_CBPS_64QAM, N_BPSC_64QAM);
/// assert_eq!(deinterleave(&inter, N_CBPS_64QAM, N_BPSC_64QAM), bits);
/// ```
pub fn interleave(bits: &[u8], n_cbps: usize, n_bpsc: usize) -> Vec<u8> {
    assert_eq!(bits.len(), n_cbps, "one symbol of bits at a time");
    assert!(n_cbps.is_multiple_of(16), "n_cbps must be a multiple of 16");
    assert!(
        n_cbps.is_multiple_of(n_bpsc),
        "n_cbps must divide by n_bpsc"
    );
    let mut out = vec![0u8; n_cbps];
    for (k, &b) in bits.iter().enumerate() {
        out[permute(k, n_cbps, n_bpsc)] = b;
    }
    out
}

/// Inverts [`interleave`].
///
/// # Panics
///
/// Same conditions as [`interleave`].
pub fn deinterleave(bits: &[u8], n_cbps: usize, n_bpsc: usize) -> Vec<u8> {
    assert_eq!(bits.len(), n_cbps, "one symbol of bits at a time");
    let mut out = vec![0u8; n_cbps];
    for k in 0..n_cbps {
        out[k] = bits[permute(k, n_cbps, n_bpsc)];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn permutation_is_bijective() {
        let mut seen = vec![false; N_CBPS_64QAM];
        for k in 0..N_CBPS_64QAM {
            let p = permute(k, N_CBPS_64QAM, N_BPSC_64QAM);
            assert!(p < N_CBPS_64QAM);
            assert!(!seen[p], "position {p} hit twice");
            seen[p] = true;
        }
    }

    #[test]
    fn adjacent_bits_end_up_far_apart() {
        // The defining property: adjacent coded bits map to nonadjacent
        // subcarriers (at least 3 subcarriers apart for 64-QAM).
        let p0 = permute(0, N_CBPS_64QAM, N_BPSC_64QAM) / N_BPSC_64QAM;
        let p1 = permute(1, N_CBPS_64QAM, N_BPSC_64QAM) / N_BPSC_64QAM;
        assert!((p0 as i64 - p1 as i64).unsigned_abs() >= 3);
    }

    #[test]
    fn bpsk_sized_blocks_also_work() {
        // 48 bits, 1 bit per subcarrier (BPSK) — used by the SIGNAL field.
        let bits: Vec<u8> = (0..48).map(|i| ((i * 7) % 2) as u8).collect();
        let inter = interleave(&bits, 48, 1);
        assert_eq!(deinterleave(&inter, 48, 1), bits);
    }

    #[test]
    #[should_panic(expected = "one symbol")]
    fn wrong_length_panics() {
        let _ = interleave(&[0, 1], N_CBPS_64QAM, N_BPSC_64QAM);
    }

    proptest! {
        #[test]
        fn roundtrip(bits in proptest::collection::vec(0u8..2, N_CBPS_64QAM)) {
            let inter = interleave(&bits, N_CBPS_64QAM, N_BPSC_64QAM);
            prop_assert_eq!(deinterleave(&inter, N_CBPS_64QAM, N_BPSC_64QAM), bits);
        }
    }
}
