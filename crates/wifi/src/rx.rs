//! 802.11g OFDM receiver: STF/LTF synchronization, channel estimation and
//! equalization, SIGNAL decode, and full data recovery (64-QAM rate 3/4).
//!
//! The reproduction needs this for two reasons: the attacker is a complete
//! WiFi device (its emulation frames are valid 802.11g transmissions that
//! other WiFi nodes can receive), and the arms-race experiments decode the
//! attacker's own frames to verify standards compliance end to end.

use crate::convolutional::{decode, Rate};
use crate::interleaver::{deinterleave, N_BPSC_64QAM, N_CBPS_64QAM};
use crate::ofdm::{
    bin_to_subcarrier, data_subcarrier_indices, subcarrier_to_bin, FFT_SIZE, PILOT_INDICES,
    PILOT_VALUES, SYMBOL_LEN,
};
use crate::plcp::{
    ltf_sequence, parse_signal_bits, SignalError, SignalRate, LTF_LEN, SIGNAL_LEN, STF_LEN,
};
use crate::qam::demap_64qam;
use crate::scrambler::Scrambler;
use ctc_dsp::{fft64, Complex};

/// Errors the receiver can report.
#[derive(Debug, Clone, PartialEq)]
pub enum WifiRxError {
    /// No STF plateau found in the stream.
    NoFrame,
    /// The stream ended before the advertised frame did.
    Truncated,
    /// SIGNAL field failed to decode.
    Signal(SignalError),
    /// The frame uses a rate this receiver does not demodulate (only
    /// 64-QAM rate 3/4 data is supported).
    UnsupportedRate(SignalRate),
}

impl std::fmt::Display for WifiRxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WifiRxError::NoFrame => write!(f, "no 802.11 frame detected"),
            WifiRxError::Truncated => write!(f, "stream ends before the frame does"),
            WifiRxError::Signal(e) => write!(f, "SIGNAL field invalid: {e}"),
            WifiRxError::UnsupportedRate(r) => {
                write!(f, "rate {} Mb/s not demodulated by this receiver", r.mbps())
            }
        }
    }
}

impl std::error::Error for WifiRxError {}

impl From<SignalError> for WifiRxError {
    fn from(e: SignalError) -> Self {
        WifiRxError::Signal(e)
    }
}

/// A successfully received frame.
#[derive(Debug, Clone)]
pub struct WifiReception {
    /// Sample index where the frame (STF) begins.
    pub frame_start: usize,
    /// Estimated CFO in radians per sample.
    pub cfo_per_sample: f64,
    /// SIGNAL-field rate.
    pub rate: SignalRate,
    /// SIGNAL-field PSDU length in bytes.
    pub psdu_len: usize,
    /// Decoded PSDU bytes (empty when the rate is unsupported).
    pub psdu: Vec<u8>,
    /// Per-subcarrier channel estimate from the LTF.
    pub channel: Vec<Complex>,
    /// Viterbi path distance over the data field (0 = clean).
    pub viterbi_distance: u32,
}

/// A configured 802.11g receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WifiReceiver {
    soft: bool,
}

impl WifiReceiver {
    /// Creates a receiver with default synchronization parameters
    /// (hard-decision data decoding).
    pub fn new() -> Self {
        WifiReceiver { soft: false }
    }

    /// Enables soft-decision data decoding: max-log LLR demapping plus the
    /// soft Viterbi — the classic ~2 dB sensitivity gain over hard
    /// decisions.
    pub fn with_soft_decoding(mut self, enabled: bool) -> Self {
        self.soft = enabled;
        self
    }

    /// STF detection by delay-16 autocorrelation plateau; returns the
    /// estimated frame start and the coarse CFO.
    fn detect_stf(&self, x: &[Complex]) -> Option<(usize, f64)> {
        const D: usize = 16;
        if x.len() < STF_LEN + D {
            return None;
        }
        let win = 64;
        let mut best_start = None;
        let best_metric = 0.55; // normalized threshold
        let mut corr = Complex::ZERO;
        let mut energy = 0.0f64;
        // Sliding sums over [n, n+win).
        for n in 0..win {
            corr += x[n + D] * x[n].conj();
            energy += x[n + D].norm_sqr();
        }
        let limit = x.len() - D - win;
        for n in 0..limit {
            let metric = if energy > 1e-12 {
                corr.norm() / energy
            } else {
                0.0
            };
            if metric > best_metric {
                // The plateau start is the first threshold crossing; fine
                // timing against the LTF refines it later.
                best_start = Some(n);
                break;
            }
            corr += x[n + win + D] * x[n + win].conj() - x[n + D] * x[n].conj();
            energy += x[n + win + D].norm_sqr() - x[n + D].norm_sqr();
        }
        let start = best_start?;
        // Coarse CFO from the STF periodicity.
        let seg = &x[start..start + STF_LEN.min(x.len() - start)];
        let acc: Complex = seg[..seg.len() - D]
            .iter()
            .zip(&seg[D..])
            .map(|(a, b)| *b * a.conj())
            .sum();
        let cfo = if acc.norm() > 0.0 {
            acc.arg() / D as f64
        } else {
            0.0
        };
        Some((start, cfo))
    }

    /// Fine timing via cross-correlation with the known LTF symbol around
    /// the coarse estimate (the STF plateau detector can be ~a window early).
    fn fine_timing(&self, x: &[Complex], coarse_ltf: usize) -> usize {
        let reference = ctc_dsp::ifft64(&ltf_sequence());
        let lo = coarse_ltf.saturating_sub(24);
        let hi = (coarse_ltf + 48).min(x.len().saturating_sub(FFT_SIZE));
        let mut best = coarse_ltf.min(hi);
        let mut best_mag = 0.0;
        for n in lo..=hi {
            let c: Complex = x[n..n + FFT_SIZE]
                .iter()
                .zip(&reference)
                .map(|(r, t)| *r * t.conj())
                .sum();
            if c.norm() > best_mag {
                best_mag = c.norm();
                best = n;
            }
        }
        best
    }

    /// Receives one frame from a sample stream.
    ///
    /// # Errors
    ///
    /// See [`WifiRxError`]; `UnsupportedRate` still carries the decoded
    /// SIGNAL information in the error path.
    pub fn receive(&self, x: &[Complex]) -> Result<WifiReception, WifiRxError> {
        let (start, coarse_cfo) = self.detect_stf(x).ok_or(WifiRxError::NoFrame)?;

        // Derotate everything after the detected start.
        let derot: Vec<Complex> = x[start..]
            .iter()
            .enumerate()
            .map(|(n, &v)| v * Complex::cis(-coarse_cfo * n as f64))
            .collect();
        if derot.len() < STF_LEN + LTF_LEN + SIGNAL_LEN {
            return Err(WifiRxError::Truncated);
        }

        // Fine CFO from the two LTF repetitions; re-anchor the frame start
        // on the fine LTF timing (the STF plateau can trigger early).
        let ltf_at = self.fine_timing(&derot, STF_LEN + 32);
        if derot.len() < ltf_at + 2 * FFT_SIZE {
            return Err(WifiRxError::Truncated);
        }
        let start = (start + ltf_at).saturating_sub(STF_LEN + 32);
        let a = &derot[ltf_at..ltf_at + FFT_SIZE];
        let b = &derot[ltf_at + FFT_SIZE..ltf_at + 2 * FFT_SIZE];
        let acc: Complex = a.iter().zip(b).map(|(p, q)| *q * p.conj()).sum();
        let fine_cfo = if acc.norm() > 0.0 {
            acc.arg() / FFT_SIZE as f64
        } else {
            0.0
        };
        let wave: Vec<Complex> = derot
            .iter()
            .enumerate()
            .map(|(n, &v)| v * Complex::cis(-fine_cfo * n as f64))
            .collect();

        // Channel estimation from the averaged LTF symbols.
        let fa = fft64(&wave[ltf_at..ltf_at + FFT_SIZE]);
        let fb = fft64(&wave[ltf_at + FFT_SIZE..ltf_at + 2 * FFT_SIZE]);
        let known = ltf_sequence();
        let mut channel = vec![Complex::ONE; FFT_SIZE];
        for bin in 0..FFT_SIZE {
            if known[bin].norm() > 0.5 {
                channel[bin] = (fa[bin] + fb[bin]) * 0.5 / known[bin];
            }
        }

        // SIGNAL symbol.
        let sig_at = ltf_at + 2 * FFT_SIZE;
        if wave.len() < sig_at + SIGNAL_LEN {
            return Err(WifiRxError::Truncated);
        }
        let sig_spec = fft64(&wave[sig_at + 16..sig_at + 16 + FFT_SIZE]);
        let mut sig_bits_soft = vec![0u8; 48];
        let idx = data_subcarrier_indices();
        for (j, &k) in idx.iter().enumerate() {
            let bin = subcarrier_to_bin(k);
            let eq = sig_spec[bin] / channel[bin];
            sig_bits_soft[j] = u8::from(eq.re >= 0.0);
        }
        let deint = deinterleave(&sig_bits_soft, 48, 1);
        let sig_dec = decode(&deint, Rate::Half)
            .map_err(|_| WifiRxError::Signal(SignalError::BadStructure))?;
        let mut sig_arr = [0u8; 24];
        sig_arr.copy_from_slice(&sig_dec.data[..24]);
        let (rate, psdu_len) = parse_signal_bits(&sig_arr)?;

        if rate != SignalRate::R54 {
            return Err(WifiRxError::UnsupportedRate(rate));
        }

        // Data field: SERVICE(16) + 8*len + tail(6), padded to 216-bit symbols.
        let n_bits = 16 + 8 * psdu_len + 6;
        let n_sym = n_bits.div_ceil(216);
        let data_at = sig_at + SIGNAL_LEN;
        if wave.len() < data_at + n_sym * SYMBOL_LEN {
            return Err(WifiRxError::Truncated);
        }

        let mut coded_stream = Vec::with_capacity(n_sym * N_CBPS_64QAM);
        let mut llr_stream: Vec<f64> = Vec::with_capacity(n_sym * N_CBPS_64QAM);
        for s in 0..n_sym {
            let sym_at = data_at + s * SYMBOL_LEN;
            let spec = fft64(&wave[sym_at + 16..sym_at + 16 + FFT_SIZE]);
            // Common phase error (and residual noise estimate) from pilots.
            let mut pilot_acc = Complex::ZERO;
            for (&k, &v) in PILOT_INDICES.iter().zip(PILOT_VALUES.iter()) {
                let bin = subcarrier_to_bin(k);
                pilot_acc += (spec[bin] / channel[bin]) * v.conj();
            }
            let cpe = if pilot_acc.norm() > 0.0 {
                Complex::cis(-pilot_acc.arg())
            } else {
                Complex::ONE
            };
            let mut pilot_err = 0.0;
            for (&k, &v) in PILOT_INDICES.iter().zip(PILOT_VALUES.iter()) {
                let bin = subcarrier_to_bin(k);
                pilot_err += (spec[bin] / channel[bin] * cpe - v).norm_sqr();
            }
            let noise_var = (pilot_err / PILOT_INDICES.len() as f64).max(1e-4);
            let mut inter_bits = Vec::with_capacity(N_CBPS_64QAM);
            let mut inter_llrs: Vec<f64> = Vec::with_capacity(N_CBPS_64QAM);
            for &k in &idx {
                let bin = subcarrier_to_bin(k);
                let eq = spec[bin] / channel[bin] * cpe;
                inter_bits.extend_from_slice(&demap_64qam(eq));
                if self.soft {
                    inter_llrs.extend_from_slice(&crate::qam::soft_demap_64qam(eq, noise_var));
                }
            }
            coded_stream.extend(deinterleave(&inter_bits, N_CBPS_64QAM, N_BPSC_64QAM));
            if self.soft {
                // Deinterleave the LLRs through the same permutation.
                let perm = crate::interleaver::permutation(N_CBPS_64QAM, N_BPSC_64QAM);
                let mut deint = vec![0.0f64; N_CBPS_64QAM];
                for (kk, d) in deint.iter_mut().enumerate() {
                    *d = inter_llrs[perm[kk]];
                }
                llr_stream.extend(deint);
            }
        }
        let dec = if self.soft {
            let soft = crate::convolutional::decode_soft(&llr_stream, Rate::ThreeQuarters)
                .map_err(|_| WifiRxError::Truncated)?;
            // Distance of the survivor against the hard-decided stream, for
            // diagnostics parity with the hard path.
            let recoded = crate::convolutional::encode(&soft.data, Rate::ThreeQuarters);
            let distance: u32 = recoded
                .iter()
                .zip(&coded_stream)
                .map(|(a, b)| u32::from(a != b))
                .sum();
            crate::convolutional::Decoded {
                data: soft.data,
                distance,
            }
        } else {
            decode(&coded_stream, Rate::ThreeQuarters).map_err(|_| WifiRxError::Truncated)?
        };
        let descrambled = Scrambler::new(0x7F).scramble(&dec.data);

        // Strip SERVICE, collect PSDU bytes LSB-first.
        let mut psdu = Vec::with_capacity(psdu_len);
        for byte_i in 0..psdu_len {
            let base = 16 + byte_i * 8;
            if base + 8 > descrambled.len() {
                return Err(WifiRxError::Truncated);
            }
            let mut b = 0u8;
            for bit in 0..8 {
                b |= descrambled[base + bit] << bit;
            }
            psdu.push(b);
        }

        Ok(WifiReception {
            frame_start: start,
            cfo_per_sample: coarse_cfo + fine_cfo,
            rate,
            psdu_len,
            psdu,
            channel: channel
                .iter()
                .enumerate()
                .filter(|(bin, _)| known[*bin].norm() > 0.5 || *bin == 0)
                .map(|(_, &h)| h)
                .collect(),
            viterbi_distance: dec.distance,
        })
    }
}

/// Expresses the logical subcarrier index of each channel-estimate entry
/// returned in [`WifiReception::channel`].
pub fn channel_estimate_subcarriers() -> Vec<i32> {
    let known = ltf_sequence();
    (0..FFT_SIZE)
        .filter(|&bin| known[bin].norm() > 0.5 || bin == 0)
        .map(bin_to_subcarrier)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::WifiTransmitter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn frame(psdu: &[u8]) -> Vec<Complex> {
        WifiTransmitter::new().transmit_frame(psdu).expect("fits")
    }

    #[test]
    fn clean_frame_roundtrip() {
        let psdu = b"hello 802.11g world";
        let wave = frame(psdu);
        let r = WifiReceiver::new().receive(&wave).unwrap();
        assert_eq!(r.rate, SignalRate::R54);
        assert_eq!(r.psdu_len, psdu.len());
        assert_eq!(r.psdu, psdu);
        assert_eq!(r.viterbi_distance, 0);
        assert_eq!(r.frame_start, 0);
    }

    #[test]
    fn frame_found_after_leading_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut stream: Vec<Complex> = (0..200)
            .map(|_| ctc_channel::noise::complex_gaussian(&mut rng, 1e-4))
            .collect();
        stream.extend(frame(b"offset"));
        let r = WifiReceiver::new().receive(&stream).unwrap();
        assert!(
            (r.frame_start as i64 - 200).unsigned_abs() <= 4,
            "start {}",
            r.frame_start
        );
        assert_eq!(r.psdu, b"offset");
    }

    #[test]
    fn survives_awgn() {
        let psdu = b"noisy frame payload";
        let wave = frame(psdu);
        let mut rng = StdRng::seed_from_u64(2);
        let mut ok = 0;
        for _ in 0..10 {
            let noisy = ctc_channel::noise::awgn_measured(&wave, 22.0, &mut rng);
            if let Ok(r) = WifiReceiver::new().receive(&noisy) {
                ok += usize::from(r.psdu == psdu);
            }
        }
        assert!(ok >= 9, "{ok}/10 at 22 dB");
    }

    #[test]
    fn survives_cfo_and_phase() {
        let psdu = b"cfo test";
        let wave = frame(psdu);
        let shifted = ctc_channel::impairments::apply_cfo(&wave, 10_000.0, 20.0e6, 1.1);
        let r = WifiReceiver::new().receive(&shifted).unwrap();
        assert_eq!(r.psdu, psdu);
        let expected = 2.0 * std::f64::consts::PI * 10_000.0 / 20.0e6;
        assert!(
            (r.cfo_per_sample - expected).abs() < expected * 0.2 + 1e-5,
            "cfo {} vs {expected}",
            r.cfo_per_sample
        );
    }

    #[test]
    fn survives_flat_channel_gain() {
        let psdu = b"equalizer";
        let wave = frame(psdu);
        let h = Complex::from_polar(0.6, 2.2);
        let faded: Vec<Complex> = wave.iter().map(|&v| v * h).collect();
        let r = WifiReceiver::new().receive(&faded).unwrap();
        assert_eq!(r.psdu, psdu);
        // The channel estimate should recover the gain on used subcarriers.
        let mid = r.channel[r.channel.len() / 4];
        assert!((mid - h).norm() < 0.05, "estimate {mid} vs {h}");
    }

    #[test]
    fn noise_only_reports_no_frame() {
        let mut rng = StdRng::seed_from_u64(3);
        let noise: Vec<Complex> = (0..2000)
            .map(|_| ctc_channel::noise::complex_gaussian(&mut rng, 1.0))
            .collect();
        assert_eq!(
            WifiReceiver::new().receive(&noise).unwrap_err(),
            WifiRxError::NoFrame
        );
    }

    #[test]
    fn truncated_frame_detected() {
        let wave = frame(b"truncate me please");
        let cut = &wave[..wave.len() - 200];
        assert!(matches!(
            WifiReceiver::new().receive(cut),
            Err(WifiRxError::Truncated)
        ));
    }

    #[test]
    fn random_payloads_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        for len in [1usize, 17, 64, 200] {
            let psdu: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let wave = frame(&psdu);
            let r = WifiReceiver::new().receive(&wave).unwrap();
            assert_eq!(r.psdu, psdu, "len {len}");
        }
    }

    #[test]
    fn soft_decoding_roundtrip_and_low_snr_gain() {
        let psdu = b"soft decoding test payload bytes";
        let wave = frame(psdu);
        // Clean: both paths decode.
        let soft_rx = WifiReceiver::new().with_soft_decoding(true);
        let r = soft_rx.receive(&wave).unwrap();
        assert_eq!(r.psdu, psdu);
        // Noisy: soft should succeed at least as often as hard.
        let mut rng = StdRng::seed_from_u64(9);
        let mut soft_ok = 0;
        let mut hard_ok = 0;
        for _ in 0..20 {
            let noisy = ctc_channel::noise::awgn_measured(&wave, 17.5, &mut rng);
            if let Ok(rr) = soft_rx.receive(&noisy) {
                soft_ok += usize::from(rr.psdu == psdu);
            }
            if let Ok(rr) = WifiReceiver::new().receive(&noisy) {
                hard_ok += usize::from(rr.psdu == psdu);
            }
        }
        assert!(
            soft_ok >= hard_ok,
            "soft ({soft_ok}/20) should not lose to hard ({hard_ok}/20)"
        );
        assert!(
            soft_ok >= 10,
            "soft should mostly work at 17.5 dB: {soft_ok}/20"
        );
    }

    #[test]
    fn channel_estimate_subcarrier_listing() {
        let subs = channel_estimate_subcarriers();
        assert!(subs.contains(&-26));
        assert!(subs.contains(&26));
        assert!(subs.contains(&0));
        assert_eq!(subs.len(), 53);
    }
}
