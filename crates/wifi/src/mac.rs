//! Minimal IEEE 802.11 MAC framing: data-frame header, CRC-32 FCS,
//! build and parse.
//!
//! Two uses in the reproduction: the coexistence experiments generate
//! *legitimate* WiFi traffic for the attacker to hide among, and the
//! full-stack attack's PSDU can be inspected for MAC-level plausibility
//! (its Viterbi-chosen bytes parse as a frame with a bad FCS — the one
//! WiFi-side fingerprint that survives).

/// MAC addresses are six bytes.
pub type MacAddr = [u8; 6];

/// Frame types we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Data frame (type 2, subtype 0).
    Data,
    /// QoS data frame (type 2, subtype 8) — parsed but built as plain data.
    QosData,
}

/// Errors from MAC parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacError {
    /// Frame shorter than header + FCS.
    TooShort,
    /// FCS mismatch.
    BadFcs {
        /// CRC computed over the frame body.
        computed: u32,
        /// CRC carried in the frame.
        received: u32,
    },
    /// Frame control field does not describe a (QoS) data frame.
    UnsupportedType(u16),
}

impl std::fmt::Display for MacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MacError::TooShort => write!(f, "frame shorter than MAC header + FCS"),
            MacError::BadFcs { computed, received } => {
                write!(
                    f,
                    "FCS mismatch: computed {computed:#010x}, received {received:#010x}"
                )
            }
            MacError::UnsupportedType(fc) => write!(f, "unsupported frame control {fc:#06x}"),
        }
    }
}

impl std::error::Error for MacError {}

/// IEEE CRC-32 (reflected 0x04C11DB7, init all-ones, final complement) —
/// the 802.11 FCS.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xEDB8_8320;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// A parsed (or to-be-built) data frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// Destination address.
    pub dst: MacAddr,
    /// Source address.
    pub src: MacAddr,
    /// BSSID.
    pub bssid: MacAddr,
    /// Sequence number (0–4095).
    pub sequence: u16,
    /// Frame body.
    pub body: Vec<u8>,
}

impl DataFrame {
    /// Serializes to a PSDU: frame control, duration, addresses, sequence
    /// control, body, FCS.
    ///
    /// # Panics
    ///
    /// Panics if `sequence > 4095`.
    pub fn to_psdu(&self) -> Vec<u8> {
        assert!(self.sequence <= 0x0FFF, "sequence number is 12 bits");
        let mut out = Vec::with_capacity(24 + self.body.len() + 4);
        out.extend_from_slice(&0x0008u16.to_le_bytes()); // FC: data, ToDS=0
        out.extend_from_slice(&0u16.to_le_bytes()); // duration
        out.extend_from_slice(&self.dst);
        out.extend_from_slice(&self.src);
        out.extend_from_slice(&self.bssid);
        out.extend_from_slice(&(self.sequence << 4).to_le_bytes());
        out.extend_from_slice(&self.body);
        let fcs = crc32(&out);
        out.extend_from_slice(&fcs.to_le_bytes());
        out
    }

    /// Parses a PSDU back into a frame, verifying the FCS.
    ///
    /// # Errors
    ///
    /// See [`MacError`].
    pub fn from_psdu(psdu: &[u8]) -> Result<DataFrame, MacError> {
        if psdu.len() < 24 + 4 {
            return Err(MacError::TooShort);
        }
        let (body_all, fcs_bytes) = psdu.split_at(psdu.len() - 4);
        let received = u32::from_le_bytes(fcs_bytes.try_into().expect("4 bytes"));
        let computed = crc32(body_all);
        if received != computed {
            return Err(MacError::BadFcs { computed, received });
        }
        let fc = u16::from_le_bytes([psdu[0], psdu[1]]);
        let ftype = (fc >> 2) & 0b11;
        let subtype = (fc >> 4) & 0b1111;
        if ftype != 2 || (subtype != 0 && subtype != 8) {
            return Err(MacError::UnsupportedType(fc));
        }
        let take6 = |at: usize| -> MacAddr { psdu[at..at + 6].try_into().expect("6 bytes") };
        let seq_ctl = u16::from_le_bytes([psdu[22], psdu[23]]);
        Ok(DataFrame {
            dst: take6(4),
            src: take6(10),
            bssid: take6(16),
            sequence: seq_ctl >> 4,
            body: body_all[24..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const A: MacAddr = [0x02, 0, 0, 0, 0, 1];
    const B: MacAddr = [0x02, 0, 0, 0, 0, 2];
    const AP: MacAddr = [0x02, 0, 0, 0, 0, 0xFF];

    #[test]
    fn crc32_check_value() {
        // Standard CRC-32 check: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0x0000_0000);
    }

    #[test]
    fn frame_roundtrip() {
        let f = DataFrame {
            dst: A,
            src: B,
            bssid: AP,
            sequence: 1234,
            body: b"hello mac".to_vec(),
        };
        let psdu = f.to_psdu();
        assert_eq!(DataFrame::from_psdu(&psdu).unwrap(), f);
    }

    #[test]
    fn corrupted_frame_caught() {
        let f = DataFrame {
            dst: A,
            src: B,
            bssid: AP,
            sequence: 7,
            body: vec![1, 2, 3],
        };
        let mut psdu = f.to_psdu();
        psdu[25] ^= 0x10;
        assert!(matches!(
            DataFrame::from_psdu(&psdu),
            Err(MacError::BadFcs { .. })
        ));
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(DataFrame::from_psdu(&[0u8; 10]), Err(MacError::TooShort));
    }

    #[test]
    fn wrong_type_rejected() {
        // Build a valid-FCS frame with a management frame control.
        let mut raw = vec![0u8; 24];
        raw[0] = 0x00; // management/association
        let fcs = crc32(&raw);
        raw.extend_from_slice(&fcs.to_le_bytes());
        assert!(matches!(
            DataFrame::from_psdu(&raw),
            Err(MacError::UnsupportedType(_))
        ));
    }

    proptest! {
        #[test]
        fn arbitrary_bodies_roundtrip(body in proptest::collection::vec(any::<u8>(), 0..500), seq in 0u16..4096) {
            let f = DataFrame { dst: A, src: B, bssid: AP, sequence: seq, body };
            let psdu = f.to_psdu();
            prop_assert_eq!(DataFrame::from_psdu(&psdu).unwrap(), f);
        }

        #[test]
        fn single_bit_flip_always_detected(body in proptest::collection::vec(any::<u8>(), 1..100), pos in 0usize..500, bit in 0u8..8) {
            let f = DataFrame { dst: A, src: B, bssid: AP, sequence: 0, body };
            let mut psdu = f.to_psdu();
            let p = pos % psdu.len();
            psdu[p] ^= 1 << bit;
            prop_assert!(DataFrame::from_psdu(&psdu).is_err());
        }
    }
}
