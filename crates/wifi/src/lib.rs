//! # ctc-wifi
//!
//! IEEE 802.11g OFDM PHY substrate for the *Hide and Seek* (ICDCS 2019)
//! reproduction — the attacker's radio. Implements the full 64-QAM transmit
//! chain of the paper's Fig. 2 (scrambler, convolutional code + Viterbi,
//! interleaver, subcarrier allocation, 64-IFFT, cyclic prefix) and its
//! reverse, which the attacker runs to find transmittable data bits for a
//! desired spectrum.
//!
//! ```
//! use ctc_wifi::WifiTransmitter;
//!
//! let tx = WifiTransmitter::new(); // 64-QAM rate 3/4, 2440 MHz, 20 MHz
//! let wave = tx.transmit_bits(&[1, 0, 1, 1]);
//! assert_eq!(wave.len(), 80); // padded to one 4 µs OFDM symbol
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod convolutional;
pub mod interleaver;
pub mod mac;
pub mod ofdm;
pub mod plcp;
pub mod qam;
pub mod rx;
pub mod scrambler;
pub mod tx;

pub use convolutional::Rate;
pub use rx::{WifiReceiver, WifiReception};
pub use tx::{RecoveredBits, WifiTransmitter};
