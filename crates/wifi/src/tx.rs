//! Complete 802.11g transmit chain and its reverse.
//!
//! Forward (paper Fig. 2): data bits → scramble → convolutional encode →
//! interleave → 64-QAM map → subcarrier allocation → IFFT → cyclic prefix.
//!
//! Reverse (the attacker's direction): desired 64-QAM points → hard demap →
//! deinterleave → Viterbi closest-codeword → descramble → data bits. The
//! closest-codeword step quantifies the distortion the paper waves away when
//! it calls the preprocessing "invertible": arbitrary coded-bit patterns are
//! not codewords, so re-encoding the recovered bits generally changes some
//! constellation points.

use crate::convolutional::{closest_codeword, encode, Rate};
use crate::interleaver::{deinterleave, interleave, N_BPSC_64QAM, N_CBPS_64QAM};
use crate::ofdm::{
    allocate_subcarriers, analyze_symbol, extract_data_subcarriers, synthesize_symbol,
    DATA_SUBCARRIERS, SYMBOL_LEN,
};
use crate::qam::{demap_64qam, map_64qam};
use crate::scrambler::Scrambler;
use ctc_dsp::Complex;

/// A configured 802.11g OFDM transmitter (64-QAM only — the mode the attack
/// uses).
///
/// # Examples
///
/// ```
/// use ctc_wifi::WifiTransmitter;
/// let tx = WifiTransmitter::new();
/// let bits = vec![1u8; tx.data_bits_per_symbol()];
/// let wave = tx.transmit_bits(&bits);
/// assert_eq!(wave.len(), 80); // one OFDM symbol
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WifiTransmitter {
    rate: Rate,
    scrambler_seed: u8,
    center_frequency_hz: f64,
    sample_rate_hz: f64,
}

impl Default for WifiTransmitter {
    fn default() -> Self {
        Self::new()
    }
}

impl WifiTransmitter {
    /// 64-QAM, rate 3/4 (54 Mb/s), centre 2440 MHz, 20 MHz sampling — the
    /// paper's attacker configuration.
    pub fn new() -> Self {
        WifiTransmitter {
            rate: Rate::ThreeQuarters,
            scrambler_seed: 0x7F,
            center_frequency_hz: 2.44e9,
            sample_rate_hz: 20.0e6,
        }
    }

    /// Selects a different convolutional-code rate.
    pub fn with_rate(mut self, rate: Rate) -> Self {
        self.rate = rate;
        self
    }

    /// Sets the scrambler seed (7 bits, nonzero).
    ///
    /// # Panics
    ///
    /// Panics on invalid seeds (see [`Scrambler::new`]).
    pub fn with_scrambler_seed(mut self, seed: u8) -> Self {
        let _ = Scrambler::new(seed);
        self.scrambler_seed = seed;
        self
    }

    /// RF centre frequency (informational).
    pub fn center_frequency_hz(&self) -> f64 {
        self.center_frequency_hz
    }

    /// Baseband sample rate.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Data bits consumed per OFDM symbol at the configured rate
    /// (`N_DBPS`; 216 at rate 3/4).
    pub fn data_bits_per_symbol(&self) -> usize {
        let (num, den) = self.rate.coded_per_data();
        N_CBPS_64QAM * den / num
    }

    /// Runs the full forward chain. Input is padded with zero bits to a
    /// whole number of OFDM symbols.
    ///
    /// # Panics
    ///
    /// Panics if any bit exceeds 1.
    pub fn transmit_bits(&self, data_bits: &[u8]) -> Vec<Complex> {
        let n_dbps = self.data_bits_per_symbol();
        let mut bits = data_bits.to_vec();
        while !bits.len().is_multiple_of(n_dbps) || bits.is_empty() {
            bits.push(0);
        }
        let scrambled = Scrambler::new(self.scrambler_seed).scramble(&bits);
        let coded = encode(&scrambled, self.rate);
        debug_assert_eq!(coded.len() % N_CBPS_64QAM, 0);
        let mut wave = Vec::new();
        for chunk in coded.chunks(N_CBPS_64QAM) {
            let inter = interleave(chunk, N_CBPS_64QAM, N_BPSC_64QAM);
            let points: Vec<Complex> = inter.chunks(N_BPSC_64QAM).map(map_64qam).collect();
            debug_assert_eq!(points.len(), DATA_SUBCARRIERS);
            wave.extend(synthesize_symbol(&allocate_subcarriers(&points)));
        }
        wave
    }

    /// Transmits a complete 802.11g frame: PLCP preamble (STF + LTF), the
    /// SIGNAL symbol announcing 54 Mb/s and the PSDU length, then the data
    /// field (`SERVICE` zeros + PSDU bytes LSB-first + tail zeros, padded to
    /// whole OFDM symbols).
    ///
    /// Unlike the standard, the tail/pad bits go through the scrambler like
    /// everything else; [`crate::rx::WifiReceiver`] mirrors this, so frames
    /// round-trip exactly.
    ///
    /// # Errors
    ///
    /// Returns [`crate::plcp::SignalError::LengthTooLarge`] for PSDUs over
    /// 4095 bytes.
    pub fn transmit_frame(&self, psdu: &[u8]) -> Result<Vec<Complex>, crate::plcp::SignalError> {
        let mut wave = crate::plcp::plcp_header(crate::plcp::SignalRate::R54, psdu.len())?;
        let mut bits = Vec::with_capacity(16 + psdu.len() * 8 + 6);
        bits.extend_from_slice(&[0u8; 16]); // SERVICE
        for &byte in psdu {
            for bit in 0..8 {
                bits.push((byte >> bit) & 1);
            }
        }
        bits.extend_from_slice(&[0u8; 6]); // tail
        wave.extend(self.transmit_bits(&bits));
        Ok(wave)
    }

    /// Synthesizes OFDM symbols directly from QAM points, bypassing the bit
    /// chain — the paper's simulation mode ("The preprocessing is ignored and
    /// the produced QAM constellation points are sent into 64-point IFFT").
    ///
    /// # Panics
    ///
    /// Panics unless `points.len()` is a multiple of 48.
    pub fn transmit_points(&self, points: &[Complex]) -> Vec<Complex> {
        assert_eq!(
            points.len() % DATA_SUBCARRIERS,
            0,
            "need whole OFDM symbols (48 points each)"
        );
        let mut wave = Vec::with_capacity(points.len() / DATA_SUBCARRIERS * SYMBOL_LEN);
        for chunk in points.chunks(DATA_SUBCARRIERS) {
            wave.extend(synthesize_symbol(&allocate_subcarriers(chunk)));
        }
        wave
    }

    /// The attacker's reverse chain: finds MAC data bits whose normal
    /// transmission best approximates the desired QAM points, and reports
    /// the points actually produced plus the codeword Hamming gap.
    ///
    /// # Panics
    ///
    /// Panics unless `desired_points.len()` is a multiple of 48.
    pub fn recover_bits_for_points(&self, desired_points: &[Complex]) -> RecoveredBits {
        assert_eq!(
            desired_points.len() % DATA_SUBCARRIERS,
            0,
            "need whole OFDM symbols (48 points each)"
        );
        // Demap + deinterleave per symbol to get the target coded stream.
        let mut target_coded = Vec::with_capacity(desired_points.len() * N_BPSC_64QAM);
        for chunk in desired_points.chunks(DATA_SUBCARRIERS) {
            let mut bits = Vec::with_capacity(N_CBPS_64QAM);
            for p in chunk {
                bits.extend_from_slice(&demap_64qam(*p));
            }
            target_coded.extend(deinterleave(&bits, N_CBPS_64QAM, N_BPSC_64QAM));
        }
        let found = closest_codeword(&target_coded, self.rate)
            .expect("whole symbols always align with the puncturing period");
        let data_bits = Scrambler::new(self.scrambler_seed).scramble(&found.data);
        // Re-run the forward chain to see what the air actually carries.
        let wave = self.transmit_bits(&data_bits);
        let mut actual_points = Vec::with_capacity(desired_points.len());
        for sym in wave.chunks(SYMBOL_LEN) {
            actual_points.extend(extract_data_subcarriers(&analyze_symbol(sym)));
        }
        RecoveredBits {
            data_bits,
            actual_points,
            codeword_distance: found.distance,
        }
    }
}

/// Output of the reverse chain.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredBits {
    /// MAC-layer data bits to feed a stock 802.11g transmitter.
    pub data_bits: Vec<u8>,
    /// QAM points the recovered bits actually produce on air.
    pub actual_points: Vec<Complex>,
    /// Hamming distance between the desired coded stream and the nearest
    /// codeword — zero iff the desired points were exactly reachable.
    pub codeword_distance: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn one_symbol_per_n_dbps() {
        let tx = WifiTransmitter::new();
        assert_eq!(tx.data_bits_per_symbol(), 216);
        let bits = vec![0u8; 216];
        assert_eq!(tx.transmit_bits(&bits).len(), SYMBOL_LEN);
        let bits2 = vec![0u8; 217];
        assert_eq!(tx.transmit_bits(&bits2).len(), 2 * SYMBOL_LEN);
    }

    #[test]
    fn rate_half_n_dbps() {
        let tx = WifiTransmitter::new().with_rate(Rate::Half);
        assert_eq!(tx.data_bits_per_symbol(), 144);
    }

    #[test]
    fn every_symbol_has_cp() {
        let tx = WifiTransmitter::new();
        let mut rng = StdRng::seed_from_u64(61);
        let bits: Vec<u8> = (0..432).map(|_| rng.gen_range(0..2u8)).collect();
        let wave = tx.transmit_bits(&bits);
        for sym in wave.chunks(SYMBOL_LEN) {
            for i in 0..16 {
                assert!((sym[i] - sym[64 + i]).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn transmit_points_roundtrip_via_fft() {
        let tx = WifiTransmitter::new();
        let pts: Vec<Complex> = (0..48)
            .map(|i| Complex::new(i as f64 * 0.1, -0.2))
            .collect();
        let wave = tx.transmit_points(&pts);
        let spec = analyze_symbol(&wave);
        let got = extract_data_subcarriers(&spec);
        for (a, b) in pts.iter().zip(&got) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn reverse_chain_exact_for_reachable_points() {
        // Points produced by a forward transmission are exactly reachable:
        // the reverse chain must recover bits with zero codeword distance
        // and reproduce the same points.
        let tx = WifiTransmitter::new();
        let mut rng = StdRng::seed_from_u64(62);
        let bits: Vec<u8> = (0..216).map(|_| rng.gen_range(0..2u8)).collect();
        let wave = tx.transmit_bits(&bits);
        let points = extract_data_subcarriers(&analyze_symbol(&wave));
        let rec = tx.recover_bits_for_points(&points);
        assert_eq!(rec.codeword_distance, 0);
        assert_eq!(rec.data_bits, bits);
        for (a, b) in points.iter().zip(&rec.actual_points) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn reverse_chain_approximates_arbitrary_points() {
        // Random constellation points are generally unreachable; the reverse
        // chain still returns the nearest transmittable approximation.
        let tx = WifiTransmitter::new();
        let mut rng = StdRng::seed_from_u64(63);
        let desired: Vec<Complex> = (0..48)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let rec = tx.recover_bits_for_points(&desired);
        assert_eq!(rec.actual_points.len(), 48);
        assert!(
            rec.codeword_distance > 0,
            "random points should not be a codeword"
        );
        // The approximation should still be correlated with the target.
        let corr = ctc_dsp::metrics::correlation(&desired, &rec.actual_points);
        assert!(corr > 0.3, "approximation too poor: correlation {corr}");
    }

    #[test]
    fn scrambler_seed_changes_waveform() {
        let bits = vec![1u8; 216];
        let w1 = WifiTransmitter::new().transmit_bits(&bits);
        let w2 = WifiTransmitter::new()
            .with_scrambler_seed(0x11)
            .transmit_bits(&bits);
        let diff: f64 = w1.iter().zip(&w2).map(|(a, b)| (*a - *b).norm_sqr()).sum();
        assert!(diff > 0.1);
    }

    #[test]
    #[should_panic(expected = "48 points")]
    fn transmit_points_validates_length() {
        let _ = WifiTransmitter::new().transmit_points(&[Complex::ONE; 47]);
    }

    #[test]
    fn defaults_match_paper() {
        let tx = WifiTransmitter::new();
        assert_eq!(tx.center_frequency_hz(), 2.44e9);
        assert_eq!(tx.sample_rate_hz(), 20.0e6);
    }
}
