//! Lock-free pipeline observability: monotonic counters plus a log-scale
//! latency histogram, all plain atomics so the hot paths never contend.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets (bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended).
pub const LATENCY_BUCKETS: usize = 32;

/// Histogram of pipeline latencies in microseconds, power-of-two buckets.
///
/// Quantiles are resolved to a bucket's upper bound — coarse (a factor of
/// two) but allocation-free and wait-free to record, which is what a
/// per-frame hot path wants.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation.
    pub fn record(&self, micros: u64) {
        let bucket = (u64::BITS - micros.max(1).leading_zeros() - 1) as usize;
        let bucket = bucket.min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The latency (µs, bucket upper bound) at quantile `q` in `[0, 1]`,
    /// or `None` when nothing was recorded.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        Some(u64::MAX)
    }
}

/// Counters shared by every pipeline stage.
#[derive(Debug, Default)]
pub struct Metrics {
    /// IQ samples ingested.
    pub samples_in: AtomicU64,
    /// Chunks ingested.
    pub chunks_in: AtomicU64,
    /// Bursts carved out of the stream.
    pub bursts: AtomicU64,
    /// Bursts whose frame decoded (payload passed the FCS).
    pub frames_decoded: AtomicU64,
    /// Decoded frames the detector attributed to the attacker.
    pub forgeries: AtomicU64,
    /// Bursts evicted under overload (drop-oldest policy).
    pub bursts_dropped: AtomicU64,
    /// Samples inside evicted bursts.
    pub samples_dropped: AtomicU64,
    /// End-to-end (ingest→classified) per-burst latency.
    pub latency: LatencyHistogram,
}

/// A point-in-time copy of the counters, ready for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// IQ samples ingested.
    pub samples_in: u64,
    /// Chunks ingested.
    pub chunks_in: u64,
    /// Bursts carved out of the stream.
    pub bursts: u64,
    /// Bursts whose frame decoded.
    pub frames_decoded: u64,
    /// Decoded frames flagged as forgeries.
    pub forgeries: u64,
    /// Bursts evicted under overload.
    pub bursts_dropped: u64,
    /// Samples inside evicted bursts.
    pub samples_dropped: u64,
    /// Median end-to-end latency (µs), when any was recorded.
    pub p50_us: Option<u64>,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_us: Option<u64>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies every counter at once (individually relaxed-consistent).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            samples_in: load(&self.samples_in),
            chunks_in: load(&self.chunks_in),
            bursts: load(&self.bursts),
            frames_decoded: load(&self.frames_decoded),
            forgeries: load(&self.forgeries),
            bursts_dropped: load(&self.bursts_dropped),
            samples_dropped: load(&self.samples_dropped),
            p50_us: self.latency.quantile(0.50),
            p99_us: self.latency.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for us in [10u64, 12, 14, 100, 1000] {
            h.record(us);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile(0.5).unwrap();
        assert!((10..=32).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((1000..=2048).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(2));
    }

    #[test]
    fn huge_latency_saturates_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn extreme_quantiles_hit_first_and_last_observation() {
        let h = LatencyHistogram::new();
        h.record(1); // bucket 0: [1, 2)
        h.record(1000); // bucket 9: [512, 1024)
                        // q = 0 clamps to rank 1: the smallest observation's bucket bound.
        assert_eq!(h.quantile(0.0), Some(2));
        // q = 1 is the largest observation's bucket bound.
        assert_eq!(h.quantile(1.0), Some(1024));
        // Out-of-range q clamps rather than panics or skips buckets.
        assert_eq!(h.quantile(-3.0), Some(2));
        assert_eq!(h.quantile(7.5), Some(1024));
    }

    #[test]
    fn open_ended_top_bucket_collects_everything_past_2_pow_31_us() {
        let h = LatencyHistogram::new();
        // Largest value that still maps onto its exact power-of-two bucket,
        // and two that can only land in the open-ended last bucket.
        h.record(1u64 << (LATENCY_BUCKETS - 1));
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        // Both saturate to bucket 31, whose reported bound is 2^32.
        assert_eq!(h.quantile(0.0), h.quantile(1.0));
        assert_eq!(h.quantile(1.0), Some(1u64 << LATENCY_BUCKETS));
    }

    #[test]
    fn single_observation_is_every_quantile() {
        let h = LatencyHistogram::new();
        h.record(100); // bucket 6: [64, 128) -> bound 128
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(128), "q = {q}");
        }
    }

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::new();
        m.samples_in.fetch_add(100, Ordering::Relaxed);
        m.forgeries.fetch_add(2, Ordering::Relaxed);
        m.latency.record(50);
        let s = m.snapshot();
        assert_eq!(s.samples_in, 100);
        assert_eq!(s.forgeries, 2);
        assert!(s.p50_us.is_some());
        assert_eq!(s.p99_us, s.p50_us);
    }
}
