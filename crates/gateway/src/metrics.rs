//! Lock-free pipeline observability: monotonic counters plus a log-scale
//! latency histogram, all plain atomics so the hot paths never contend.
//!
//! The histogram itself now lives in [`ctc_obs`] (the workspace telemetry
//! layer); this module keeps the gateway-flavoured names and the snapshot
//! type the stats lines are built from. [`Metrics`] is a cheap-to-clone
//! `Arc` handle so a run's counters can also be captured by `'static`
//! registry collectors (see [`crate::obs`]) and scraped after the
//! pipeline threads have joined.

use ctc_core::defense::PipelineScores;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two latency buckets (bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended).
pub const LATENCY_BUCKETS: usize = ctc_obs::HISTOGRAM_BUCKETS;

/// Histogram of pipeline latencies in microseconds, power-of-two buckets.
///
/// Recording is wait-free; quantiles are linearly interpolated inside the
/// selected bucket (see [`ctc_obs::Histogram::quantile`]), so a
/// well-populated bucket resolves finer than a factor of two.
pub type LatencyHistogram = ctc_obs::Histogram;

/// Counters shared by every pipeline stage.
#[derive(Debug, Default)]
pub struct MetricsCore {
    /// IQ samples ingested.
    pub samples_in: AtomicU64,
    /// Chunks ingested.
    pub chunks_in: AtomicU64,
    /// Bursts carved out of the stream.
    pub bursts: AtomicU64,
    /// Bursts whose frame decoded (payload passed the FCS).
    pub frames_decoded: AtomicU64,
    /// Decoded frames the detector attributed to the attacker.
    pub forgeries: AtomicU64,
    /// Bursts evicted under overload (drop-oldest policy).
    pub bursts_dropped: AtomicU64,
    /// Samples inside evicted bursts.
    pub samples_dropped: AtomicU64,
    /// End-to-end (ingest→classified) per-burst latency.
    pub latency: LatencyHistogram,
}

/// Shared handle to one run's [`MetricsCore`].
///
/// Dereferences to the core, so `metrics.samples_in.fetch_add(...)` works
/// as it always did; cloning bumps an `Arc`, which is what lets registry
/// collectors outlive the run that produced them.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    core: Arc<MetricsCore>,
}

impl Deref for Metrics {
    type Target = MetricsCore;

    fn deref(&self) -> &MetricsCore {
        &self.core
    }
}

/// A point-in-time copy of the counters, ready for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// IQ samples ingested.
    pub samples_in: u64,
    /// Chunks ingested.
    pub chunks_in: u64,
    /// Bursts carved out of the stream.
    pub bursts: u64,
    /// Bursts whose frame decoded.
    pub frames_decoded: u64,
    /// Decoded frames flagged as forgeries.
    pub forgeries: u64,
    /// Bursts evicted under overload.
    pub bursts_dropped: u64,
    /// Samples inside evicted bursts.
    pub samples_dropped: u64,
    /// Median end-to-end latency (µs), when any was recorded.
    pub p50_us: Option<u64>,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_us: Option<u64>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Latest per-feature detector scores for a pipeline-equipped run —
/// f64 bits stored in relaxed atomics, the backing store for the
/// `ctc_detector_score{feature=...}` gauges (see [`crate::obs`]).
///
/// Same `Arc`-backed shape as [`Metrics`]: cloning is cheap, and registry
/// collectors keep the board alive after the run joins. Workers overwrite
/// slots with the most recent burst's values (a gauge, not an
/// accumulator), so a scrape sees the last classified burst.
#[derive(Debug, Clone)]
pub struct ScoreBoard {
    inner: Arc<ScoreBoardCore>,
}

#[derive(Debug)]
struct ScoreBoardCore {
    /// Feature names, aligned with `values`.
    names: Vec<&'static str>,
    /// Per-feature values as `f64::to_bits`.
    values: Vec<AtomicU64>,
    /// The fused classifier score as `f64::to_bits`.
    fused: AtomicU64,
}

impl ScoreBoard {
    /// A board with one slot per feature name, all starting at `0.0`.
    pub fn new(names: Vec<&'static str>) -> Self {
        let values = names.iter().map(|_| AtomicU64::new(0)).collect();
        ScoreBoard {
            inner: Arc::new(ScoreBoardCore {
                names,
                values,
                fused: AtomicU64::new(0),
            }),
        }
    }

    /// The feature names, in registration order.
    pub fn names(&self) -> &[&'static str] {
        &self.inner.names
    }

    /// Overwrites every slot with one burst's scores. Entries whose name
    /// is not on the board are ignored (a model may use a feature subset).
    pub fn record(&self, scores: &PipelineScores) {
        self.inner
            .fused
            .store(scores.fused.to_bits(), Ordering::Relaxed);
        for (name, value) in scores.features.entries() {
            if let Some(i) = self.inner.names.iter().position(|n| n == name) {
                self.inner.values[i].store(value.to_bits(), Ordering::Relaxed);
            }
        }
    }

    /// The latest value for feature slot `index`.
    pub fn value(&self, index: usize) -> f64 {
        f64::from_bits(self.inner.values[index].load(Ordering::Relaxed))
    }

    /// The latest fused classifier score.
    pub fn fused(&self) -> f64 {
        f64::from_bits(self.inner.fused.load(Ordering::Relaxed))
    }
}

/// Session-lifecycle counters for a multi-stream server run.
#[derive(Debug, Default)]
pub struct ServerMetricsCore {
    /// Sessions accepted (or supplied in-process) so far.
    pub sessions_opened: AtomicU64,
    /// Sessions that reached end of stream and closed.
    pub sessions_closed: AtomicU64,
    /// Connections refused at the `max_streams` ceiling.
    pub sessions_refused: AtomicU64,
    /// Sessions whose input died with a read error.
    pub sessions_errored: AtomicU64,
}

/// Shared handle to one server run's [`ServerMetricsCore`] — the same
/// `Arc`-backed shape as [`Metrics`], for the same reason: registry
/// collectors must be able to outlive the run.
#[derive(Debug, Clone, Default)]
pub struct ServerMetrics {
    core: Arc<ServerMetricsCore>,
}

impl Deref for ServerMetrics {
    type Target = ServerMetricsCore;

    fn deref(&self) -> &ServerMetricsCore {
        &self.core
    }
}

impl ServerMetrics {
    /// Fresh, all-zero server metrics.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A point-in-time copy of the session-lifecycle counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerMetricsSnapshot {
    /// Sessions accepted so far.
    pub sessions_opened: u64,
    /// Sessions closed cleanly.
    pub sessions_closed: u64,
    /// Connections refused at the session limit.
    pub sessions_refused: u64,
    /// Sessions that died with a read error.
    pub sessions_errored: u64,
}

impl ServerMetricsSnapshot {
    /// Sessions currently live.
    pub fn active(&self) -> u64 {
        self.sessions_opened
            .saturating_sub(self.sessions_closed)
            .saturating_sub(self.sessions_errored)
    }
}

impl ServerMetricsCore {
    /// Copies every counter at once (individually relaxed-consistent).
    pub fn snapshot(&self) -> ServerMetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerMetricsSnapshot {
            sessions_opened: load(&self.sessions_opened),
            sessions_closed: load(&self.sessions_closed),
            sessions_refused: load(&self.sessions_refused),
            sessions_errored: load(&self.sessions_errored),
        }
    }
}

impl MetricsCore {
    /// Copies every counter at once (individually relaxed-consistent).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            samples_in: load(&self.samples_in),
            chunks_in: load(&self.chunks_in),
            bursts: load(&self.bursts),
            frames_decoded: load(&self.frames_decoded),
            forgeries: load(&self.forgeries),
            bursts_dropped: load(&self.bursts_dropped),
            samples_dropped: load(&self.samples_dropped),
            p50_us: self.latency.quantile(0.50),
            p99_us: self.latency.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for us in [10u64, 12, 14, 100, 1000] {
            h.record(us);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile(0.5).unwrap();
        assert!((10..=32).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((1000..=2048).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(2));
    }

    #[test]
    fn huge_latency_saturates_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn extreme_quantiles_hit_first_and_last_observation() {
        let h = LatencyHistogram::new();
        h.record(1); // bucket 0: [1, 2)
        h.record(1000); // bucket 9: [512, 1024)
                        // q = 0 clamps to rank 1: the smallest observation's bucket bound.
        assert_eq!(h.quantile(0.0), Some(2));
        // q = 1 is the largest observation's bucket bound.
        assert_eq!(h.quantile(1.0), Some(1024));
        // Out-of-range q clamps rather than panics or skips buckets.
        assert_eq!(h.quantile(-3.0), Some(2));
        assert_eq!(h.quantile(7.5), Some(1024));
    }

    #[test]
    fn open_ended_top_bucket_collects_everything_past_2_pow_31_us() {
        let h = LatencyHistogram::new();
        // Largest value that still maps onto its exact power-of-two bucket,
        // and two that can only land in the open-ended last bucket.
        h.record(1u64 << (LATENCY_BUCKETS - 1));
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        // Both saturate to bucket 31, whose reported bound is 2^32.
        assert_eq!(h.quantile(0.0), h.quantile(1.0));
        assert_eq!(h.quantile(1.0), Some(1u64 << LATENCY_BUCKETS));
    }

    #[test]
    fn single_observation_is_every_quantile() {
        let h = LatencyHistogram::new();
        h.record(100); // bucket 6: [64, 128) -> bound 128
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(128), "q = {q}");
        }
    }

    /// The PR 5 interpolation fix: a quantile falling mid-bucket is a
    /// linear estimate over the bucket range, not the upper edge.
    #[test]
    fn quantiles_interpolate_inside_a_populated_bucket() {
        let h = LatencyHistogram::new();
        for us in [9u64, 10, 12, 14] {
            h.record(us); // all bucket 3 = [8, 16)
        }
        assert_eq!(h.quantile(0.25), Some(10));
        assert_eq!(h.quantile(0.5), Some(12));
        assert_eq!(h.quantile(1.0), Some(16));
    }

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::new();
        m.samples_in.fetch_add(100, Ordering::Relaxed);
        m.forgeries.fetch_add(2, Ordering::Relaxed);
        m.latency.record(50);
        let s = m.snapshot();
        assert_eq!(s.samples_in, 100);
        assert_eq!(s.forgeries, 2);
        assert!(s.p50_us.is_some());
        assert_eq!(s.p99_us, s.p50_us);
    }

    #[test]
    fn score_board_records_latest_burst() {
        use ctc_core::defense::FeatureVector;

        let board = ScoreBoard::new(vec!["de2_ideal", "clustered_evm"]);
        let clone = board.clone();
        let mut features = FeatureVector::default();
        features.push("de2_ideal", 0.125);
        features.push("clustered_evm", 0.5);
        features.push("unknown_extra", 9.0); // ignored: not on the board
        board.record(&PipelineScores {
            fused: 0.125,
            features,
        });
        assert_eq!(clone.fused(), 0.125);
        assert_eq!(clone.value(0), 0.125);
        assert_eq!(clone.value(1), 0.5);
        assert_eq!(clone.names(), ["de2_ideal", "clustered_evm"]);
    }

    #[test]
    fn metrics_clones_share_one_core() {
        let m = Metrics::new();
        let clone = m.clone();
        m.bursts.fetch_add(3, Ordering::Relaxed);
        assert_eq!(clone.snapshot().bursts, 3);
    }
}
