//! The gateway's typed error surface.
//!
//! Every public fallible operation in this crate returns [`GatewayError`]
//! instead of a bare `std::io::Error`, so callers (and the `ctc monitor`
//! process) can tell a malformed address apart from a refused bind, a
//! dying client socket, or a broken event sink — each maps to its own
//! process exit code via [`GatewayError::exit_code`].

use std::fmt;
use std::io;

/// Everything that can go wrong running the gateway.
#[derive(Debug)]
pub enum GatewayError {
    /// An input/listen spec that does not parse (`tcp://` with no
    /// address, empty `unix://` path, …).
    BadAddress {
        /// The spec as given.
        spec: String,
        /// Why it was rejected.
        reason: String,
    },
    /// Binding a listener failed.
    Bind {
        /// The address that refused to bind.
        addr: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// Accepting a connection failed (transient `WouldBlock` is handled
    /// internally; this is a real accept failure).
    Accept(io::Error),
    /// A connection was refused because the server is at its
    /// `max_streams` session limit. Carried in session `refused` events;
    /// `serve` itself keeps running.
    SessionLimit {
        /// The configured ceiling.
        max: usize,
    },
    /// Opening an input byte stream failed (file open, for instance).
    Open {
        /// The input spec that failed to open.
        input: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// Reading a session's IQ stream failed mid-run.
    Read {
        /// Label of the session whose input died.
        stream: String,
        /// The underlying read error.
        source: io::Error,
    },
    /// Writing the JSONL event sink (or the stats sink) failed.
    SinkWrite(io::Error),
    /// The server was asked to shut down before the run completed.
    Shutdown,
    /// A configuration rejected by [`GatewayConfigBuilder::build`]
    /// (zero workers, zero queue depth, zero chunk size, …).
    ///
    /// [`GatewayConfigBuilder::build`]: crate::pipeline::GatewayConfigBuilder::build
    Config(String),
}

impl GatewayError {
    /// The process exit code `ctc monitor` maps this error to. Distinct
    /// per variant so shell pipelines can branch; `3` stays reserved for
    /// "forgery detected" (which is a verdict, not an error).
    pub fn exit_code(&self) -> u8 {
        match self {
            GatewayError::BadAddress { .. } => 4,
            GatewayError::Bind { .. } | GatewayError::Accept(_) => 5,
            GatewayError::SessionLimit { .. } => 6,
            GatewayError::SinkWrite(_) => 7,
            GatewayError::Shutdown => 8,
            GatewayError::Open { .. } | GatewayError::Read { .. } => 9,
            GatewayError::Config(_) => 10,
        }
    }

    /// Wraps a sink write error.
    pub(crate) fn sink(source: io::Error) -> Self {
        GatewayError::SinkWrite(source)
    }
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::BadAddress { spec, reason } => {
                write!(f, "bad address {spec:?}: {reason}")
            }
            GatewayError::Bind { addr, source } => write!(f, "bind {addr}: {source}"),
            GatewayError::Accept(e) => write!(f, "accept: {e}"),
            GatewayError::SessionLimit { max } => {
                write!(f, "session limit reached ({max} streams)")
            }
            GatewayError::Open { input, source } => write!(f, "open {input}: {source}"),
            GatewayError::Read { stream, source } => {
                write!(f, "stream {stream}: read: {source}")
            }
            GatewayError::SinkWrite(e) => write!(f, "event sink: {e}"),
            GatewayError::Shutdown => write!(f, "shut down before end of stream"),
            GatewayError::Config(reason) => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for GatewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GatewayError::Bind { source, .. }
            | GatewayError::Open { source, .. }
            | GatewayError::Read { source, .. } => Some(source),
            GatewayError::Accept(e) | GatewayError::SinkWrite(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_avoid_reserved_values() {
        let errs = [
            GatewayError::BadAddress {
                spec: "x".into(),
                reason: "y".into(),
            },
            GatewayError::Bind {
                addr: "a".into(),
                source: io::Error::other("e"),
            },
            GatewayError::SessionLimit { max: 4 },
            GatewayError::SinkWrite(io::Error::other("e")),
            GatewayError::Shutdown,
            GatewayError::Read {
                stream: "s1".into(),
                source: io::Error::other("e"),
            },
            GatewayError::Config("zero workers".into()),
        ];
        let mut codes: Vec<u8> = errs.iter().map(GatewayError::exit_code).collect();
        // Accept shares the bind code (both are "listener broken").
        codes.push(GatewayError::Accept(io::Error::other("e")).exit_code());
        for code in &codes {
            // 0 = clean, 1 = generic CLI error, 2 = usage, 3 = forgery.
            assert!(*code > 3, "exit code {code} collides with a reserved one");
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len(), "variant exit codes overlap");
    }

    #[test]
    fn displays_are_actionable() {
        let e = GatewayError::BadAddress {
            spec: "tcp://".into(),
            reason: "missing host:port".into(),
        };
        assert_eq!(e.to_string(), "bad address \"tcp://\": missing host:port");
        assert!(GatewayError::Shutdown.to_string().contains("shut down"));
        let chained = GatewayError::Bind {
            addr: "tcp://127.0.0.1:1".into(),
            source: io::Error::other("denied"),
        };
        assert!(std::error::Error::source(&chained).is_some());
    }
}
