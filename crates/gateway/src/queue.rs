//! A bounded MPMC work queue with an explicit overload policy.
//!
//! The ingest thread must never block — a gateway that stalls its ADC
//! loses samples silently, which is strictly worse than dropping work it
//! can count. [`BoundedQueue::push_drop_oldest`] therefore always
//! succeeds: when the queue is full the *oldest* queued item is evicted
//! and returned to the caller, who records the drop. Workers block on
//! [`BoundedQueue::pop`] until work arrives or the queue is closed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Bounded multi-producer/multi-consumer queue (drop-oldest on overflow).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item` without ever blocking. When the queue is full, the
    /// oldest queued item is evicted and returned (the backpressure signal
    /// the caller must count). Pushing to a closed queue returns the item
    /// itself.
    pub fn push_drop_oldest(&self, item: T) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Some(item);
        }
        let evicted = if s.items.len() == s.capacity {
            s.items.pop_front()
        } else {
            None
        };
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        evicted
    }

    /// Blocks until an item is available (FIFO) or the queue is closed
    /// *and* drained, which returns `None`.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).expect("queue poisoned");
        }
    }

    /// Closes the queue: already-queued items still drain, new pushes are
    /// refused, and blocked `pop`s return once the queue empties.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            assert!(q.push_drop_oldest(i).is_none());
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn overflow_evicts_oldest() {
        let q = BoundedQueue::new(2);
        assert!(q.push_drop_oldest(1).is_none());
        assert!(q.push_drop_oldest(2).is_none());
        assert_eq!(q.push_drop_oldest(3), Some(1), "oldest evicted");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.push_drop_oldest(7);
        q.close();
        assert_eq!(q.push_drop_oldest(8), Some(8), "closed queue refuses");
        assert_eq!(q.pop(), Some(7), "queued items still drain");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_consumers_count() {
        let q = Arc::new(BoundedQueue::new(1024));
        let total = 4 * 1000;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    // If consumers lag, overflow evicts; count the drops so
                    // every item is accounted for either way.
                    (0..1000)
                        .filter(|i| q.push_drop_oldest(p * 1000 + i).is_some())
                        .count()
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    while q.pop().is_some() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let dropped: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();
        q.close();
        let consumed: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(consumed + dropped, total);
    }
}
