//! Minimal JSON-lines encoding and decoding for gateway events.
//!
//! The workspace is dependency-free by construction (no crates.io), so
//! this is a tiny hand-rolled encoder covering exactly what the event
//! schema needs: objects of string/number/bool/null fields. Output is a
//! single line, RFC 8259-escaped, stable field order.
//!
//! The matching [`parse`] decoder turns a rendered line back into a
//! [`JsonValue`] tree (objects preserve field order), so tests and the
//! golden-vector comparator can inspect event streams field by field
//! instead of matching on raw text.

use std::fmt::Write as _;

/// Builder for one JSON object rendered onto a single line.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        push_json_string(&mut self.buf, key);
        self.buf.push(':');
        &mut self.buf
    }

    /// Adds a string field.
    pub fn string(mut self, key: &str, value: &str) -> Self {
        let buf = self.key(key);
        push_json_string(buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        let _ = write!(self.key(key), "{value}");
        self
    }

    /// Adds a float field (finite values only; NaN/inf render as null,
    /// which JSON cannot represent as numbers).
    pub fn float(mut self, key: &str, value: f64) -> Self {
        let buf = self.key(key);
        if value.is_finite() {
            let _ = write!(buf, "{value}");
        } else {
            buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key).push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an explicit null field.
    pub fn null(mut self, key: &str) -> Self {
        self.key(key).push_str("null");
        self
    }

    /// Adds an optional field: `Some` via `f`, `None` as null.
    pub fn opt<T>(
        self,
        key: &str,
        value: Option<T>,
        f: impl FnOnce(Self, &str, T) -> Self,
    ) -> Self {
        match value {
            Some(v) => f(self, key, v),
            None => self.null(key),
        }
    }

    /// Adds a string field only when present: `None` omits the key
    /// entirely (unlike [`opt`](Self::opt), which renders null). Used for
    /// the `stream` tag, which legacy unlabelled events must not carry.
    pub fn string_if(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.string(key, v),
            None => self,
        }
    }

    /// Adds a pre-rendered JSON value (e.g. a nested object) verbatim.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key).push_str(json);
        self
    }

    /// Renders the object (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Lowercase hex encoding (for payload bytes).
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Decodes a lowercase/uppercase hex string back into bytes.
///
/// # Errors
///
/// Returns `None` for odd-length input or non-hex characters.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

/// A parsed JSON value. Objects keep their field order so a re-render of
/// an untouched tree is byte-identical to the encoder's output.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source field order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants or missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, when this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, when this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The fields, when this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, when this is an `Array`.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one complete JSON value (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns [`JsonParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are outside the event schema;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonParseError {
                offset: start,
                message: format!("invalid number {text:?}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_field_order() {
        let line = JsonObject::new()
            .string("type", "frame")
            .uint("seq", 7)
            .float("de2", 0.25)
            .bool("attack", true)
            .null("missing")
            .finish();
        assert_eq!(
            line,
            r#"{"type":"frame","seq":7,"de2":0.25,"attack":true,"missing":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let line = JsonObject::new().string("s", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(line, "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn optional_fields() {
        let some = JsonObject::new()
            .opt("x", Some(3u64), JsonObject::uint)
            .finish();
        assert_eq!(some, r#"{"x":3}"#);
        let none = JsonObject::new()
            .opt("x", None::<u64>, JsonObject::uint)
            .finish();
        assert_eq!(none, r#"{"x":null}"#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        let line = JsonObject::new().float("x", f64::NAN).finish();
        assert_eq!(line, r#"{"x":null}"#);
    }

    #[test]
    fn nested_raw_objects() {
        let inner = JsonObject::new().uint("a", 1).finish();
        let line = JsonObject::new().raw("inner", &inner).finish();
        assert_eq!(line, r#"{"inner":{"a":1}}"#);
    }

    #[test]
    fn hex_encodes_lowercase() {
        assert_eq!(hex(&[0x00, 0xff, 0x30]), "00ff30");
        assert_eq!(hex(&[]), "");
    }

    #[test]
    fn hex_roundtrips() {
        let bytes = [0x00u8, 0x7f, 0x80, 0xff, 0x30];
        assert_eq!(unhex(&hex(&bytes)).unwrap(), bytes);
        assert_eq!(unhex(""), Some(Vec::new()));
        assert_eq!(unhex("abc"), None, "odd length");
        assert_eq!(unhex("zz"), None, "non-hex");
    }

    #[test]
    fn parses_encoder_output() {
        let line = JsonObject::new()
            .string("type", "frame")
            .uint("seq", 7)
            .float("de2", 0.25)
            .bool("attack", true)
            .null("missing")
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("frame"));
        assert_eq!(v.get("seq").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("de2").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("attack").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), Some(&JsonValue::Null));
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn object_preserves_field_order() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            parse(r#"{"latency":{"queue_us":3},"bins":[1,-2.5,3e2],"empty":[],"eo":{}}"#).unwrap();
        assert_eq!(
            v.get("latency").unwrap().get("queue_us").unwrap().as_f64(),
            Some(3.0)
        );
        let bins = v.get("bins").unwrap().as_array().unwrap();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[1].as_f64(), Some(-2.5));
        assert_eq!(bins[2].as_f64(), Some(300.0));
        assert!(v.get("empty").unwrap().as_array().unwrap().is_empty());
        assert!(v.get("eo").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn unescapes_strings() {
        let line = JsonObject::new().string("s", "a\"b\\c\nd\u{1}").finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\":1} extra",
            "\"unterminated",
            "nul",
            "1.2.3",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "offset in bounds for {bad:?}");
        }
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
