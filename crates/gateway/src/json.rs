//! Minimal JSON-lines encoding for gateway events.
//!
//! The workspace is dependency-free by construction (no crates.io), so
//! this is a tiny hand-rolled encoder covering exactly what the event
//! schema needs: objects of string/number/bool/null fields. Output is a
//! single line, RFC 8259-escaped, stable field order.

use std::fmt::Write as _;

/// Builder for one JSON object rendered onto a single line.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        push_json_string(&mut self.buf, key);
        self.buf.push(':');
        &mut self.buf
    }

    /// Adds a string field.
    pub fn string(mut self, key: &str, value: &str) -> Self {
        let buf = self.key(key);
        push_json_string(buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        let _ = write!(self.key(key), "{value}");
        self
    }

    /// Adds a float field (finite values only; NaN/inf render as null,
    /// which JSON cannot represent as numbers).
    pub fn float(mut self, key: &str, value: f64) -> Self {
        let buf = self.key(key);
        if value.is_finite() {
            let _ = write!(buf, "{value}");
        } else {
            buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key).push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an explicit null field.
    pub fn null(mut self, key: &str) -> Self {
        self.key(key).push_str("null");
        self
    }

    /// Adds an optional field: `Some` via `f`, `None` as null.
    pub fn opt<T>(
        self,
        key: &str,
        value: Option<T>,
        f: impl FnOnce(Self, &str, T) -> Self,
    ) -> Self {
        match value {
            Some(v) => f(self, key, v),
            None => self.null(key),
        }
    }

    /// Adds a pre-rendered JSON value (e.g. a nested object) verbatim.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key).push_str(json);
        self
    }

    /// Renders the object (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Lowercase hex encoding (for payload bytes).
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_field_order() {
        let line = JsonObject::new()
            .string("type", "frame")
            .uint("seq", 7)
            .float("de2", 0.25)
            .bool("attack", true)
            .null("missing")
            .finish();
        assert_eq!(
            line,
            r#"{"type":"frame","seq":7,"de2":0.25,"attack":true,"missing":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let line = JsonObject::new().string("s", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(line, "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn optional_fields() {
        let some = JsonObject::new()
            .opt("x", Some(3u64), JsonObject::uint)
            .finish();
        assert_eq!(some, r#"{"x":3}"#);
        let none = JsonObject::new()
            .opt("x", None::<u64>, JsonObject::uint)
            .finish();
        assert_eq!(none, r#"{"x":null}"#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        let line = JsonObject::new().float("x", f64::NAN).finish();
        assert_eq!(line, r#"{"x":null}"#);
    }

    #[test]
    fn nested_raw_objects() {
        let inner = JsonObject::new().uint("a", 1).finish();
        let line = JsonObject::new().raw("inner", &inner).finish();
        assert_eq!(line, r#"{"inner":{"a":1}}"#);
    }

    #[test]
    fn hex_encodes_lowercase() {
        assert_eq!(hex(&[0x00, 0xff, 0x30]), "00ff30");
        assert_eq!(hex(&[]), "");
    }
}
