//! Per-stream session state and the shard queue it is pinned to.
//!
//! A [`Session`] is the server-side handle for one connected IQ stream:
//! its id, tenant label, per-stream [`Metrics`], per-session event
//! sequence, and the shard it is pinned to. Sessions never share splitter
//! state — each gets a fresh `BurstSplitter` from the server's
//! `MonitorFactory` — but they do share the worker pool, the capture
//! buffer pool, and (with the other sessions of their shard) a
//! [`ShardQueue`].
//!
//! The shard queue is the multi-tenant version of
//! [`BoundedQueue`](crate::queue::BoundedQueue): bounded, non-blocking
//! push, drop-oldest under overload — but *which* oldest is governed by a
//! per-session **drop budget**. A session pushing beyond its fair share
//! of the shard (`capacity / active sessions`) sheds its own oldest
//! burst; a session within budget sheds the most-loaded session's oldest
//! instead. A chatty stream therefore pays for its own overload and a
//! quiet stream's bursts survive, which is the isolation property the
//! fairness unit tests below pin down.

use crate::metrics::{Metrics, MetricsSnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Identifier of one gateway session, unique within a server run.
pub type SessionId = u64;

/// Server-side handle for one connected stream.
#[derive(Debug)]
pub struct Session {
    id: SessionId,
    label: Option<String>,
    shard: usize,
    metrics: Metrics,
    seq: AtomicU64,
}

impl Session {
    /// A session pinned to `shard`. `label` is the tenant label stamped
    /// on the session's JSONL events and metrics; `None` is the legacy
    /// unlabelled single-stream mode (events stay byte-identical to the
    /// pre-server gateway).
    pub fn new(id: SessionId, label: Option<String>, shard: usize) -> Self {
        Session {
            id,
            label,
            shard,
            metrics: Metrics::new(),
            seq: AtomicU64::new(0),
        }
    }

    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The tenant label (`None` in legacy single-stream mode).
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The worker shard this session's bursts are queued on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// This session's own counters (the aggregate ones live on the
    /// server).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A point-in-time copy of this session's counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The next per-session event sequence number (monotonic from 0).
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }
}

/// What a full shard did when a push came in.
#[derive(Debug, PartialEq, Eq)]
pub enum Evicted<T> {
    /// There was room; nothing was dropped.
    None,
    /// The queue was full (or closed): this item was shed and must be
    /// counted against its session.
    Item {
        /// Session the shed item belonged to.
        key: SessionId,
        /// The shed item.
        item: T,
    },
}

/// One shard's bounded work queue with per-session drop budgets.
#[derive(Debug)]
pub struct ShardQueue<T> {
    state: Mutex<ShardState<T>>,
    available: Condvar,
}

#[derive(Debug)]
struct ShardState<T> {
    items: VecDeque<(SessionId, T)>,
    /// Queued items per session — the load the drop budget arbitrates on.
    counts: BTreeMap<SessionId, usize>,
    capacity: usize,
    closed: bool,
}

impl<T> ShardState<T> {
    /// The fair per-session share of this shard right now: capacity
    /// divided over the sessions that currently have items queued (the
    /// pusher counts even when it has none yet).
    fn fair_share(&self, pusher: SessionId) -> usize {
        let mut active = self.counts.len();
        if !self.counts.contains_key(&pusher) {
            active += 1;
        }
        (self.capacity / active.max(1)).max(1)
    }

    /// Removes the oldest queued item of `victim`.
    fn evict_oldest_of(&mut self, victim: SessionId) -> Option<(SessionId, T)> {
        let pos = self.items.iter().position(|(k, _)| *k == victim)?;
        let evicted = self.items.remove(pos)?;
        self.decrement(victim);
        Some(evicted)
    }

    fn decrement(&mut self, key: SessionId) {
        if let Some(n) = self.counts.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                self.counts.remove(&key);
            }
        }
    }

    /// The session holding the most queued items (ties broken by lower
    /// id, for determinism).
    fn most_loaded(&self) -> Option<SessionId> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(k, _)| *k)
    }
}

impl<T> ShardQueue<T> {
    /// Shard queue holding at most `capacity` items across all sessions.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shard capacity must be positive");
        ShardQueue {
            state: Mutex::new(ShardState {
                items: VecDeque::with_capacity(capacity),
                counts: BTreeMap::new(),
                capacity,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item` for session `key` without ever blocking. On a full
    /// shard the drop budget picks the victim: the pusher's own oldest
    /// item when the pusher is at or over its fair share, otherwise the
    /// most-loaded session's oldest. Pushing to a closed shard sheds the
    /// item itself.
    pub fn push(&self, key: SessionId, item: T) -> Evicted<T> {
        let mut s = self.state.lock().expect("shard poisoned");
        if s.closed {
            return Evicted::Item { key, item };
        }
        let evicted = if s.items.len() == s.capacity {
            let share = s.fair_share(key);
            let over_budget = s.counts.get(&key).copied().unwrap_or(0) >= share;
            let victim = if over_budget {
                key
            } else {
                s.most_loaded().unwrap_or(key)
            };
            s.evict_oldest_of(victim)
        } else {
            None
        };
        *s.counts.entry(key).or_insert(0) += 1;
        s.items.push_back((key, item));
        drop(s);
        self.available.notify_one();
        match evicted {
            Some((key, item)) => Evicted::Item { key, item },
            None => Evicted::None,
        }
    }

    /// Pops the oldest item without blocking (`None`: empty shard). This
    /// is what workers use to scan their home shard and steal from
    /// others.
    pub fn try_pop(&self) -> Option<(SessionId, T)> {
        let mut s = self.state.lock().expect("shard poisoned");
        let popped = s.items.pop_front();
        if let Some((key, _)) = &popped {
            s.decrement(*key);
        }
        popped
    }

    /// Blocks up to `timeout` for an item. `None` means the wait timed
    /// out or the shard is closed and drained — callers distinguish via
    /// [`is_closed`](Self::is_closed).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<(SessionId, T)> {
        let mut s = self.state.lock().expect("shard poisoned");
        loop {
            if let Some((key, item)) = s.items.pop_front() {
                s.decrement(key);
                return Some((key, item));
            }
            if s.closed {
                return None;
            }
            let (guard, wait) = self
                .available
                .wait_timeout(s, timeout)
                .expect("shard poisoned");
            s = guard;
            if wait.timed_out() {
                return None;
            }
        }
    }

    /// Closes the shard: queued items still drain via `try_pop`, new
    /// pushes are shed, blocked `pop_timeout`s wake.
    pub fn close(&self) {
        self.state.lock().expect("shard poisoned").closed = true;
        self.available.notify_all();
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("shard poisoned").closed
    }

    /// Items currently queued across all sessions.
    pub fn len(&self) -> usize {
        self.state.lock().expect("shard poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items currently queued for one session.
    pub fn len_of(&self, key: SessionId) -> usize {
        self.state
            .lock()
            .expect("shard poisoned")
            .counts
            .get(&key)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &ShardQueue<T>) -> Vec<(SessionId, T)> {
        std::iter::from_fn(|| q.try_pop()).collect()
    }

    #[test]
    fn fifo_within_capacity_across_sessions() {
        let q = ShardQueue::new(4);
        assert_eq!(q.push(1, "a"), Evicted::None);
        assert_eq!(q.push(2, "b"), Evicted::None);
        assert_eq!(q.push(1, "c"), Evicted::None);
        assert_eq!(q.len(), 3);
        assert_eq!(q.len_of(1), 2);
        let order: Vec<_> = drain(&q);
        assert_eq!(order, vec![(1, "a"), (2, "b"), (1, "c")]);
        assert_eq!(q.len_of(1), 0);
    }

    /// A session flooding past its fair share sheds its *own* oldest,
    /// never the quiet session's only burst.
    #[test]
    fn noisy_session_pays_its_own_drops() {
        let q = ShardQueue::new(4);
        assert_eq!(q.push(7, "quiet"), Evicted::None);
        for noisy in ["a", "b", "c"] {
            assert_eq!(q.push(1, noisy), Evicted::None);
        }
        // Shard full; session 1 holds 3/4 > fair share (4/2 = 2).
        for noisy in ["d", "e", "f", "g", "h", "i", "j"] {
            match q.push(1, noisy) {
                Evicted::Item { key, .. } => assert_eq!(key, 1, "noisy pays"),
                Evicted::None => panic!("full shard must evict"),
            }
        }
        let remaining = drain(&q);
        assert!(
            remaining.contains(&(7, "quiet")),
            "quiet session survived the flood: {remaining:?}"
        );
        assert_eq!(q.len(), 0);
    }

    /// A within-budget pusher on a full shard evicts from the most
    /// loaded session, not from itself.
    #[test]
    fn under_budget_push_evicts_the_most_loaded() {
        let q = ShardQueue::new(4);
        for i in 0..4 {
            assert_eq!(q.push(1, i), Evicted::None);
        }
        match q.push(2, 100) {
            Evicted::Item { key, item } => {
                assert_eq!(key, 1, "most-loaded session evicted");
                assert_eq!(item, 0, "its oldest item");
            }
            Evicted::None => panic!("full shard must evict"),
        }
        assert_eq!(q.len_of(2), 1);
        assert_eq!(q.len_of(1), 3);
    }

    /// Per-session FIFO order survives mid-queue evictions.
    #[test]
    fn eviction_preserves_per_session_order() {
        let q = ShardQueue::new(4);
        q.push(1, 0);
        q.push(2, 10);
        q.push(1, 1);
        q.push(2, 11);
        q.push(3, 20); // evicts oldest of most-loaded (session 1, item 0)
        let order = drain(&q);
        assert_eq!(order, vec![(2, 10), (1, 1), (2, 11), (3, 20)]);
    }

    /// With every session at one item and capacity below the session
    /// count, a pusher at fair share (1) sheds its own item.
    #[test]
    fn tiny_capacity_still_fair() {
        let q = ShardQueue::new(2);
        q.push(1, "a");
        q.push(2, "b");
        match q.push(1, "c") {
            Evicted::Item { key, item } => {
                assert_eq!((key, item), (1, "a"));
            }
            Evicted::None => panic!("full shard must evict"),
        }
        assert_eq!(drain(&q), vec![(2, "b"), (1, "c")]);
    }

    /// The adversarial fleet pattern the soak harness generates: one
    /// tenant pushing at 100× the rate of 31 quiet tenants, interleaved
    /// the way a shared accept loop would deliver it, with workers
    /// draining partially between rounds. Fair-share eviction must make
    /// the noisy tenant absorb *every* drop — the quiet tenants' drop
    /// count stays exactly zero and all their bursts come back out.
    #[test]
    fn adversarial_flood_never_drops_quiet_tenants() {
        const NOISY: SessionId = 1;
        const QUIET_TENANTS: u64 = 31;
        let q: ShardQueue<u64> = ShardQueue::new(64);
        let mut dropped_noisy = 0u64;
        let mut dropped_quiet = 0u64;
        let mut quiet_sent = 0u64;
        let mut quiet_out = 0u64;
        let mut drain_budget;
        for round in 0..50u64 {
            // 100 noisy pushes per round, one push per quiet tenant
            // spread through them (≈100:1 per-tenant rate).
            for burst in 0..100u64 {
                match q.push(NOISY, round * 1000 + burst) {
                    Evicted::Item { key, .. } if key == NOISY => dropped_noisy += 1,
                    Evicted::Item { .. } => dropped_quiet += 1,
                    Evicted::None => {}
                }
                if burst % 3 == 0 {
                    let tenant = 2 + (quiet_sent % QUIET_TENANTS);
                    quiet_sent += 1;
                    match q.push(tenant, round) {
                        Evicted::Item { key, .. } if key == NOISY => dropped_noisy += 1,
                        Evicted::Item { .. } => dropped_quiet += 1,
                        Evicted::None => {}
                    }
                }
            }
            // Workers catch up between rounds, so every round floods a
            // freshly drained shard back to capacity.
            drain_budget = 64;
            while drain_budget > 0 {
                match q.try_pop() {
                    Some((key, _)) if key != NOISY => quiet_out += 1,
                    Some(_) => {}
                    None => break,
                }
                drain_budget -= 1;
            }
        }
        for (key, _) in drain(&q) {
            if key != NOISY {
                quiet_out += 1;
            }
        }
        assert_eq!(
            dropped_quiet, 0,
            "quiet tenants must never pay for the flood"
        );
        assert_eq!(quiet_out, quiet_sent, "every quiet burst drains intact");
        assert!(
            dropped_noisy > 1000,
            "the flood itself must have been shed ({dropped_noisy} drops)"
        );
    }

    #[test]
    fn close_sheds_new_pushes_and_wakes_waiters() {
        let q = std::sync::Arc::new(ShardQueue::new(2));
        q.push(1, 1);
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || {
                // Drain the one item, then block until close.
                let first = q.pop_timeout(Duration::from_secs(5));
                let second = q.pop_timeout(Duration::from_secs(5));
                (first, second)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let (first, second) = waiter.join().unwrap();
        assert_eq!(first, Some((1, 1)));
        assert_eq!(second, None);
        assert!(q.is_closed());
        assert_eq!(q.push(2, 9), Evicted::Item { key: 2, item: 9 });
    }

    #[test]
    fn pop_timeout_times_out_when_idle() {
        let q: ShardQueue<u32> = ShardQueue::new(2);
        let start = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
