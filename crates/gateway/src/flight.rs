//! Gateway-side flight-recorder wiring: options, trigger plumbing, and
//! incident-snapshot dumps.
//!
//! The ring itself lives in [`ctc_obs::flight`]; this module owns what
//! the *server* knows and the obs layer cannot: the registry handle for
//! baseline/current exposition, the session table, the effective
//! config, and the trigger policy — dump once on the first accepted
//! forgery or on per-session drop-budget exhaustion, dump on every
//! `SIGUSR1`. Snapshots are only written when an output path is
//! configured ([`FlightOptions::out`]); the journal itself is always on
//! while a recorder is attached, so a `SIGUSR1` can interrogate a run
//! that was started without any incident expected.

use crate::json::JsonObject;
use crate::server::ServerConfig;
use crate::session::Session;
use ctc_obs::flight::take_sigusr1;
use ctc_obs::{FlightRecorder, Registry, SnapshotBuilder};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Flight-recorder configuration for one [`GatewayServer`](
/// crate::server::GatewayServer) run.
#[derive(Debug, Clone)]
pub struct FlightOptions {
    /// Ring capacity in events ([`FlightRecorder::DEFAULT_CAPACITY`] by
    /// default; memory is `capacity × ~200 B`, allocated once).
    pub capacity: usize,
    /// Where to write incident snapshots. `None`: journal only, no
    /// dumps (triggers are ignored).
    pub out: Option<PathBuf>,
    /// Cap on journal events embedded per snapshot.
    pub max_events: usize,
    /// Auto-dump when one session's dropped-burst count reaches this
    /// budget (`None`: drops never trigger).
    pub drop_budget: Option<u64>,
}

impl Default for FlightOptions {
    fn default() -> Self {
        FlightOptions {
            capacity: FlightRecorder::DEFAULT_CAPACITY,
            out: None,
            max_events: ctc_obs::SnapshotBuilder::DEFAULT_MAX_EVENTS,
            drop_budget: None,
        }
    }
}

/// Per-run flight-recorder control: the shared ring plus everything a
/// snapshot needs for self-containment.
pub(crate) struct FlightCtl {
    recorder: FlightRecorder,
    out: Option<PathBuf>,
    max_events: usize,
    drop_budget: Option<u64>,
    registry: Mutex<Option<Arc<Registry>>>,
    /// Exposition text captured at run start — the delta baseline.
    baseline: Mutex<Option<String>>,
    /// Effective config, pre-rendered once at run start.
    config_json: Mutex<String>,
    /// Every session opened this run (snapshots embed the table).
    sessions: Mutex<Vec<Arc<Session>>>,
    /// Auto triggers (forgery, drop budget) dump at most once per run;
    /// SIGUSR1 dumps are not gated.
    auto_dumped: AtomicBool,
    dumps: AtomicU64,
}

impl FlightCtl {
    pub(crate) fn new(options: FlightOptions) -> FlightCtl {
        FlightCtl {
            recorder: FlightRecorder::with_capacity(options.capacity),
            out: options.out,
            max_events: options.max_events,
            drop_budget: options.drop_budget,
            registry: Mutex::new(None),
            baseline: Mutex::new(None),
            config_json: Mutex::new(String::from("{}")),
            sessions: Mutex::new(Vec::new()),
            auto_dumped: AtomicBool::new(false),
            dumps: AtomicU64::new(0),
        }
    }

    pub(crate) fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Captures the run's baseline (registry exposition at start) and
    /// renders the effective config. Called once per `run_feed`.
    pub(crate) fn begin_run(&self, registry: Option<Arc<Registry>>, config: &ServerConfig) {
        *self.baseline.lock().unwrap() = registry.as_ref().map(|r| r.render());
        *self.registry.lock().unwrap() = registry;
        *self.config_json.lock().unwrap() = self.config_json_for(config);
        self.sessions.lock().unwrap().clear();
    }

    fn config_json_for(&self, config: &ServerConfig) -> String {
        let gw = &config.gateway;
        let flight = JsonObject::new()
            .uint("capacity", self.recorder.capacity() as u64)
            .uint("max_events", self.max_events as u64)
            .opt("drop_budget", self.drop_budget, JsonObject::uint)
            .opt(
                "out",
                self.out.as_ref().map(|p| p.display().to_string()),
                |o, k, v| o.string(k, &v),
            )
            .finish();
        JsonObject::new()
            .uint("chunk_samples", gw.chunk_samples as u64)
            .uint("workers", gw.workers as u64)
            .uint("queue_depth", gw.queue_depth as u64)
            .uint("max_burst", gw.max_burst as u64)
            .uint("shards", config.shards as u64)
            .uint("max_streams", config.max_streams as u64)
            .opt(
                "stats_interval_ms",
                gw.stats_interval.map(|d| d.as_millis() as u64),
                JsonObject::uint,
            )
            .raw("flight", &flight)
            .finish()
    }

    pub(crate) fn track_session(&self, session: Arc<Session>) {
        self.sessions.lock().unwrap().push(session);
    }

    fn sessions_json(&self) -> String {
        let sessions = self.sessions.lock().unwrap();
        let mut out = String::from("[");
        for (i, session) in sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = session.snapshot();
            out.push_str(
                &JsonObject::new()
                    .uint("id", session.id())
                    .string_if("stream", session.label())
                    .uint("shard", session.shard() as u64)
                    .uint("samples_in", s.samples_in)
                    .uint("bursts", s.bursts)
                    .uint("frames_decoded", s.frames_decoded)
                    .uint("forgeries", s.forgeries)
                    .uint("bursts_dropped", s.bursts_dropped)
                    .finish(),
            );
        }
        out.push(']');
        out
    }

    /// One-shot auto trigger (forgery, drop budget): the first wins,
    /// later ones are no-ops so a noisy incident produces exactly one
    /// snapshot.
    pub(crate) fn auto_trigger(&self, reason: &str, until: Option<u64>) {
        if self.out.is_none() || self.auto_dumped.swap(true, Relaxed) {
            return;
        }
        self.dump(reason, until);
    }

    /// Drop-budget trigger: fires when `session`'s dropped-burst count
    /// reaches the configured budget.
    pub(crate) fn check_drop_budget(&self, session: &Session, until: Option<u64>) {
        if let Some(budget) = self.drop_budget {
            if session.metrics().bursts_dropped.load(Relaxed) >= budget {
                self.auto_trigger("drop_budget", until);
            }
        }
    }

    /// Polls the process-wide SIGUSR1 latch; each signal dumps a fresh
    /// snapshot (overwriting the configured path).
    pub(crate) fn poll_sigusr1(&self) {
        if take_sigusr1() && self.out.is_some() {
            self.dump("sigusr1", None);
        }
    }

    /// Writes one incident snapshot to the configured path and notes it
    /// on stderr (scripts watch for the `flight:` marker line).
    fn dump(&self, reason: &str, until: Option<u64>) {
        let Some(path) = &self.out else { return };
        let seq = self.dumps.fetch_add(1, Relaxed) + 1;
        let now_text = {
            let registry = self.registry.lock().unwrap();
            registry.as_ref().map(|r| r.render())
        };
        let baseline = self.baseline.lock().unwrap().clone();
        let config = self.config_json.lock().unwrap().clone();
        let mut builder = SnapshotBuilder::new(&self.recorder, reason).max_events(self.max_events);
        if let Some(t) = until {
            builder = builder.until_ticket(t);
        }
        if let Some(text) = &now_text {
            builder = builder.exposition(text);
        }
        if let Some(text) = &baseline {
            builder = builder.baseline(text);
        }
        let json = builder
            .section("sessions", &self.sessions_json())
            .section("config", &config)
            .section("dump_seq", &seq.to_string())
            .render();
        match std::fs::write(path, json + "\n") {
            Ok(()) => eprintln!(
                "flight: incident snapshot ({reason}) written to {}",
                path.display()
            ),
            Err(e) => eprintln!(
                "flight: failed to write incident snapshot to {}: {e}",
                path.display()
            ),
        }
    }
}

impl std::fmt::Debug for FlightCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightCtl")
            .field("recorder", &self.recorder)
            .field("out", &self.out)
            .field("drop_budget", &self.drop_budget)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ctc_flight_{tag}_{}.json", std::process::id()))
    }

    #[test]
    fn auto_trigger_dumps_exactly_once() {
        let path = tmp_path("auto_once");
        let _ = std::fs::remove_file(&path);
        let ctl = FlightCtl::new(FlightOptions {
            out: Some(path.clone()),
            ..FlightOptions::default()
        });
        ctl.begin_run(None, &ServerConfig::default());
        ctl.auto_trigger("forgery", None);
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(first.contains("\"trigger\":\"forgery\""));
        assert!(first.contains("\"dump_seq\":1"));

        // A later auto trigger must not overwrite the first incident.
        std::fs::remove_file(&path).unwrap();
        ctl.auto_trigger("drop_budget", None);
        assert!(!path.exists(), "second auto trigger wrote a snapshot");
    }

    #[test]
    fn dump_embeds_config_and_sessions() {
        let path = tmp_path("sections");
        let _ = std::fs::remove_file(&path);
        let ctl = FlightCtl::new(FlightOptions {
            out: Some(path.clone()),
            drop_budget: Some(4),
            ..FlightOptions::default()
        });
        ctl.begin_run(None, &ServerConfig::default());
        ctl.track_session(Arc::new(Session::new(1, Some("s1".into()), 0)));
        ctl.auto_trigger("forgery", None);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"config\":{"), "{json}");
        assert!(json.contains("\"drop_budget\":4"));
        assert!(json.contains("\"sessions\":[{\"id\":1,\"stream\":\"s1\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn no_out_path_means_no_dump() {
        let ctl = FlightCtl::new(FlightOptions::default());
        ctl.begin_run(None, &ServerConfig::default());
        // Must be a no-op rather than a panic or a stray file.
        ctl.auto_trigger("forgery", None);
        ctl.poll_sigusr1();
    }
}
