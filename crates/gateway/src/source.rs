//! Where the IQ stream comes from: a cf32 file, standard input, a TCP
//! socket, or a Unix-domain socket — the transports a deployed gateway
//! actually sees (replay capture, shell pipeline, networked SDR, local
//! SDR daemon).
//!
//! [`Input`] parses CLI-style specs (it implements [`FromStr`], so
//! `"tcp://…".parse()` works) and opens them either as a one-shot byte
//! stream ([`Input::open`], the legacy single-stream path) or as a
//! reusable [`Listener`] that a [`GatewayServer`] accepts many concurrent
//! sessions from.
//!
//! [`GatewayServer`]: crate::server::GatewayServer

use crate::error::GatewayError;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Duration;

/// An IQ byte-stream source, parsed from a CLI-style spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// A cf32 file on disk.
    File(PathBuf),
    /// Standard input (`-`).
    Stdin,
    /// Listen on `addr` and stream from clients that connect
    /// (`tcp://addr`); e.g. GNURadio's TCP sink pointed at the gateway.
    TcpListen(String),
    /// Listen on a Unix-domain socket (`unix://path`); the zero-copy
    /// local transport for an SDR daemon on the same host.
    UnixListen(PathBuf),
}

impl FromStr for Input {
    type Err = GatewayError;

    fn from_str(spec: &str) -> Result<Input, GatewayError> {
        let bad = |reason: &str| {
            Err(GatewayError::BadAddress {
                spec: spec.to_string(),
                reason: reason.to_string(),
            })
        };
        if spec.is_empty() {
            return bad("empty input spec");
        }
        if spec == "-" {
            return Ok(Input::Stdin);
        }
        if let Some(addr) = spec.strip_prefix("tcp://") {
            if addr.is_empty() {
                return bad("missing host:port after tcp://");
            }
            if !addr.contains(':') {
                return bad("tcp address must be host:port");
            }
            return Ok(Input::TcpListen(addr.to_string()));
        }
        if let Some(path) = spec.strip_prefix("unix://") {
            if path.is_empty() {
                return bad("missing socket path after unix://");
            }
            return Ok(Input::UnixListen(PathBuf::from(path)));
        }
        if let Some((scheme, _)) = spec.split_once("://") {
            return bad(&format!("unsupported scheme {scheme}://"));
        }
        Ok(Input::File(PathBuf::from(spec)))
    }
}

impl Input {
    /// Parses an input spec: `-` is stdin, `tcp://HOST:PORT` and
    /// `unix://PATH` bind listeners, anything else is a file path.
    ///
    /// # Errors
    ///
    /// [`GatewayError::BadAddress`] on an empty spec, a listener spec
    /// with no address, or an unknown `scheme://`.
    pub fn parse(spec: &str) -> Result<Input, GatewayError> {
        spec.parse()
    }

    /// True for the listener flavours ([`Input::TcpListen`] and
    /// [`Input::UnixListen`]) — the specs [`Listener::bind`] accepts.
    pub fn is_listener(&self) -> bool {
        matches!(self, Input::TcpListen(_) | Input::UnixListen(_))
    }

    /// Opens the byte stream. For the listener flavours this blocks until
    /// one client connects, then streams from that connection (the legacy
    /// single-stream path; a server calls [`Listener::bind`] instead).
    ///
    /// # Errors
    ///
    /// File-open, bind, or accept errors, as [`GatewayError`].
    pub fn open(&self) -> Result<Box<dyn Read + Send>, GatewayError> {
        match self {
            Input::File(path) => Ok(Box::new(std::fs::File::open(path).map_err(|source| {
                GatewayError::Open {
                    input: path.display().to_string(),
                    source,
                }
            })?)),
            Input::Stdin => Ok(Box::new(io::stdin())),
            Input::TcpListen(_) | Input::UnixListen(_) => {
                let listener = Listener::bind(self)?;
                let (conn, _peer) = listener.accept().map_err(GatewayError::Accept)?;
                Ok(Box::new(conn))
            }
        }
    }
}

impl std::fmt::Display for Input {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Input::File(p) => write!(f, "{}", p.display()),
            Input::Stdin => write!(f, "stdin"),
            Input::TcpListen(a) => write!(f, "tcp://{a}"),
            Input::UnixListen(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// A bound accept socket: TCP or Unix-domain, one interface.
///
/// Wraps the two OS listener types so the server's accept loop is
/// transport-agnostic. [`Listener::accept`] is non-blocking once
/// [`set_nonblocking`](Listener::set_nonblocking) is on; accepted
/// connections are returned as boxed readers with a short read timeout
/// already applied, so a stalled client polls instead of wedging its
/// ingest thread (see [`SessionStream`]).
#[derive(Debug)]
pub enum Listener {
    /// A bound TCP listener.
    Tcp(TcpListener),
    /// A bound Unix-domain listener (the socket file is removed on drop).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// How long an accepted connection's reads wait before re-checking the
/// server's shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

impl Listener {
    /// Binds the listener described by `input`.
    ///
    /// # Errors
    ///
    /// [`GatewayError::BadAddress`] when `input` is not a listener spec;
    /// [`GatewayError::Bind`] when the OS refuses the bind. A `unix://`
    /// bind removes a pre-existing socket file first (the standard
    /// daemon-restart idiom).
    pub fn bind(input: &Input) -> Result<Listener, GatewayError> {
        match input {
            Input::TcpListen(addr) => {
                let listener =
                    TcpListener::bind(addr.as_str()).map_err(|source| GatewayError::Bind {
                        addr: input.to_string(),
                        source,
                    })?;
                Ok(Listener::Tcp(listener))
            }
            #[cfg(unix)]
            Input::UnixListen(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                let listener = UnixListener::bind(path).map_err(|source| GatewayError::Bind {
                    addr: input.to_string(),
                    source,
                })?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            #[cfg(not(unix))]
            Input::UnixListen(_) => Err(GatewayError::BadAddress {
                spec: input.to_string(),
                reason: "unix:// sockets are not supported on this platform".to_string(),
            }),
            other => Err(GatewayError::BadAddress {
                spec: other.to_string(),
                reason: "not a listener spec (want tcp:// or unix://)".to_string(),
            }),
        }
    }

    /// The bound address as a connectable spec (`tcp://ip:port` with the
    /// OS-assigned port resolved, or `unix://path`).
    pub fn local_display(&self) -> String {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(addr) => format!("tcp://{addr}"),
                Err(_) => "tcp://?".to_string(),
            },
            #[cfg(unix)]
            Listener::Unix(_, path) => format!("unix://{}", path.display()),
        }
    }

    /// Switches the accept socket between blocking and non-blocking.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection, returning its reader and a peer label.
    /// In non-blocking mode, `WouldBlock` means "no client waiting".
    pub fn accept(&self) -> io::Result<(SessionStream, String)> {
        match self {
            Listener::Tcp(l) => {
                let (conn, peer) = l.accept()?;
                // The per-connection socket must block (with a timeout)
                // even when the accept socket does not.
                conn.set_nonblocking(false)?;
                conn.set_read_timeout(Some(READ_POLL))?;
                Ok((SessionStream::new(StreamKind::Tcp(conn)), peer.to_string()))
            }
            #[cfg(unix)]
            Listener::Unix(l, path) => {
                let (conn, _peer) = l.accept()?;
                conn.set_nonblocking(false)?;
                conn.set_read_timeout(Some(READ_POLL))?;
                Ok((
                    SessionStream::new(StreamKind::Unix(conn)),
                    format!("unix://{}", path.display()),
                ))
            }
        }
    }
}

#[cfg(unix)]
impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// An accepted connection with timeout-aware reads: a read that times out
/// silently retries, re-checking an optional shutdown flag each poll —
/// when the flag is raised the stream reports end-of-file, so a stalled
/// client can never wedge its ingest thread past a server shutdown.
#[derive(Debug)]
pub struct SessionStream {
    inner: StreamKind,
    shutdown: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

#[derive(Debug)]
enum StreamKind {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl SessionStream {
    fn new(inner: StreamKind) -> Self {
        SessionStream {
            inner,
            shutdown: None,
        }
    }

    /// Ends the stream (as EOF) once `flag` is set: checked before every
    /// read and on every read-timeout poll.
    pub fn with_shutdown(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.shutdown = Some(flag);
        self
    }
}

impl Read for SessionStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if let Some(flag) = &self.shutdown {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    return Ok(0);
                }
            }
            let result = match &mut self.inner {
                StreamKind::Tcp(s) => s.read(buf),
                #[cfg(unix)]
                StreamKind::Unix(s) => s.read(buf),
            };
            match result {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn parses_specs() {
        assert_eq!(Input::parse("-").unwrap(), Input::Stdin);
        assert_eq!(
            Input::parse("tcp://127.0.0.1:4000").unwrap(),
            Input::TcpListen("127.0.0.1:4000".into())
        );
        assert_eq!(
            Input::parse("unix:///tmp/ctc.sock").unwrap(),
            Input::UnixListen(PathBuf::from("/tmp/ctc.sock"))
        );
        assert_eq!(
            Input::parse("x.cf32").unwrap(),
            Input::File(PathBuf::from("x.cf32"))
        );
        assert_eq!(Input::parse("x.cf32").unwrap().to_string(), "x.cf32");
        assert_eq!(Input::parse("-").unwrap().to_string(), "stdin");
        assert_eq!(
            Input::parse("unix:///tmp/ctc.sock").unwrap().to_string(),
            "unix:///tmp/ctc.sock"
        );
    }

    #[test]
    fn from_str_is_the_parse_path() {
        let input: Input = "tcp://0.0.0.0:9000".parse().unwrap();
        assert_eq!(input, Input::TcpListen("0.0.0.0:9000".into()));
        assert!("tcp://".parse::<Input>().is_err());
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for (spec, needle) in [
            ("", "empty"),
            ("tcp://", "missing host:port"),
            ("tcp://nohost", "host:port"),
            ("unix://", "missing socket path"),
            ("quic://x:1", "unsupported scheme"),
        ] {
            match Input::parse(spec) {
                Err(GatewayError::BadAddress { spec: s, reason }) => {
                    assert_eq!(s, spec);
                    assert!(reason.contains(needle), "{spec}: {reason}");
                }
                other => panic!("{spec}: expected BadAddress, got {other:?}"),
            }
        }
    }

    #[test]
    fn file_source_round_trips() {
        let dir = std::env::temp_dir().join("ctc_gateway_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("in.bin");
        std::fs::write(&path, b"hello").unwrap();
        let mut out = Vec::new();
        Input::parse(path.to_str().unwrap())
            .unwrap()
            .open()
            .unwrap()
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, b"hello");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_file_is_a_typed_open_error() {
        let err = match Input::File(PathBuf::from("/no/such/capture.cf32")).open() {
            Ok(_) => panic!("open of a missing file must fail"),
            Err(err) => err,
        };
        assert!(matches!(err, GatewayError::Open { .. }), "{err:?}");
        assert!(err.exit_code() > 3);
    }

    #[test]
    fn tcp_source_streams_from_first_client() {
        let listener = Listener::bind(&Input::TcpListen("127.0.0.1:0".into())).unwrap();
        let addr = listener
            .local_display()
            .strip_prefix("tcp://")
            .unwrap()
            .to_string();
        let writer = std::thread::spawn(move || {
            let mut conn = std::net::TcpStream::connect(addr.as_str()).unwrap();
            conn.write_all(b"iq-bytes").unwrap();
        });
        let (mut conn, peer) = listener.accept().unwrap();
        assert!(peer.starts_with("127.0.0.1:"), "peer label: {peer}");
        let mut out = Vec::new();
        conn.read_to_end(&mut out).unwrap();
        writer.join().unwrap();
        assert_eq!(out, b"iq-bytes");
    }

    #[cfg(unix)]
    #[test]
    fn unix_listener_accepts_and_cleans_up() {
        let dir = std::env::temp_dir().join("ctc_gateway_uds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gw.sock");
        let input = Input::parse(&format!("unix://{}", path.display())).unwrap();
        let listener = Listener::bind(&input).unwrap();
        assert_eq!(listener.local_display(), input.to_string());
        let sock = path.clone();
        let writer = std::thread::spawn(move || {
            let mut conn = std::os::unix::net::UnixStream::connect(&sock).unwrap();
            conn.write_all(b"uds-bytes").unwrap();
        });
        let (mut conn, _peer) = listener.accept().unwrap();
        let mut out = Vec::new();
        conn.read_to_end(&mut out).unwrap();
        writer.join().unwrap();
        assert_eq!(out, b"uds-bytes");
        drop(listener);
        assert!(!path.exists(), "socket file removed on drop");
        // Re-binding over a stale socket file also works.
        std::fs::write(&path, b"").unwrap();
        let relisten = Listener::bind(&input).unwrap();
        drop(relisten);
        let _ = std::fs::remove_dir_all(dir);
    }
}
