//! Where the IQ stream comes from: a cf32 file, standard input, or a TCP
//! socket — the three transports a deployed gateway actually sees (replay
//! capture, shell pipeline, networked SDR).

use std::io::{self, Read};
use std::net::TcpListener;
use std::path::PathBuf;

/// An IQ byte-stream source, parsed from a CLI-style spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// A cf32 file on disk.
    File(PathBuf),
    /// Standard input (`-`).
    Stdin,
    /// Listen on `addr` and stream from the first client that connects
    /// (`tcp://addr`); e.g. GNURadio's TCP sink pointed at the gateway.
    TcpListen(String),
}

impl Input {
    /// Parses an input spec: `-` is stdin, `tcp://HOST:PORT` binds a
    /// listener, anything else is a file path.
    pub fn parse(spec: &str) -> Input {
        if spec == "-" {
            Input::Stdin
        } else if let Some(addr) = spec.strip_prefix("tcp://") {
            Input::TcpListen(addr.to_string())
        } else {
            Input::File(PathBuf::from(spec))
        }
    }

    /// Opens the byte stream. For [`Input::TcpListen`] this blocks until
    /// one client connects, then streams from that connection.
    ///
    /// # Errors
    ///
    /// File-open, bind, or accept errors.
    pub fn open(&self) -> io::Result<Box<dyn Read + Send>> {
        match self {
            Input::File(path) => Ok(Box::new(std::fs::File::open(path)?)),
            Input::Stdin => Ok(Box::new(io::stdin())),
            Input::TcpListen(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let (conn, _peer) = listener.accept()?;
                Ok(Box::new(conn))
            }
        }
    }
}

impl std::fmt::Display for Input {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Input::File(p) => write!(f, "{}", p.display()),
            Input::Stdin => write!(f, "stdin"),
            Input::TcpListen(a) => write!(f, "tcp://{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn parses_specs() {
        assert_eq!(Input::parse("-"), Input::Stdin);
        assert_eq!(
            Input::parse("tcp://127.0.0.1:4000"),
            Input::TcpListen("127.0.0.1:4000".into())
        );
        assert_eq!(Input::parse("x.cf32"), Input::File(PathBuf::from("x.cf32")));
        assert_eq!(Input::parse("x.cf32").to_string(), "x.cf32");
        assert_eq!(Input::parse("-").to_string(), "stdin");
    }

    #[test]
    fn file_source_round_trips() {
        let dir = std::env::temp_dir().join("ctc_gateway_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("in.bin");
        std::fs::write(&path, b"hello").unwrap();
        let mut out = Vec::new();
        Input::parse(path.to_str().unwrap())
            .open()
            .unwrap()
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, b"hello");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tcp_source_streams_from_first_client() {
        // Bind on an OS-assigned port, then race-free connect: bind
        // ourselves first to learn the port, accept in `open`.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);
        let addr = format!("127.0.0.1:{port}");
        let input = Input::TcpListen(addr.clone());
        let writer = std::thread::spawn(move || {
            // Retry until the listener is up.
            for _ in 0..200 {
                if let Ok(mut conn) = std::net::TcpStream::connect(addr.as_str()) {
                    conn.write_all(b"iq-bytes").unwrap();
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            panic!("could not connect to gateway listener");
        });
        let mut out = Vec::new();
        input.open().unwrap().read_to_end(&mut out).unwrap();
        writer.join().unwrap();
        assert_eq!(out, b"iq-bytes");
    }
}
