//! Wiring between one gateway run and the [`ctc_obs`] telemetry layer.
//!
//! Two pieces live here:
//!
//! * [`register_run`] — publishes a run's counters under the canonical
//!   workspace metric names (see the README's Observability section) as
//!   *pull-based collectors*: the registry samples the pipeline's existing
//!   atomics at scrape time, so the hot path pays nothing and nothing is
//!   counted twice. Starting a new run re-registers and takes the names
//!   over.
//! * `RunObs` — the per-run tracing handle threaded through ingest,
//!   workers and sink. With the `telemetry` feature off it compiles to a
//!   zero-sized no-op, so the pipeline code carries no `#[cfg]` noise and
//!   the disabled build provably does no telemetry work.

#[cfg(feature = "telemetry")]
use crate::metrics::Metrics;
#[cfg(feature = "telemetry")]
use ctc_dsp::BufferPool;
#[cfg(feature = "telemetry")]
use ctc_obs::{Registry, TraceSink};
use std::time::Instant;

/// Per-run tracing handle: allocates span IDs and records stage intervals
/// when a trace sink is attached, does nothing otherwise.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RunObs<'a> {
    #[cfg(feature = "telemetry")]
    trace: Option<&'a TraceSink>,
    #[cfg(not(feature = "telemetry"))]
    _lifetime: std::marker::PhantomData<&'a ()>,
}

impl<'a> RunObs<'a> {
    /// A handle that records nothing (the only kind this build has).
    #[cfg(not(feature = "telemetry"))]
    pub(crate) fn disabled() -> Self {
        RunObs {
            _lifetime: std::marker::PhantomData,
        }
    }

    /// A handle recording into `trace` (when given).
    #[cfg(feature = "telemetry")]
    pub(crate) fn new(trace: Option<&'a TraceSink>) -> Self {
        RunObs { trace }
    }

    /// A fresh span ID for one burst, or `0` (the disabled sentinel) when
    /// no sink is attached — recording a `0` span is a no-op everywhere.
    pub(crate) fn next_span(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        if self.trace.is_some() {
            return ctc_obs::next_span_id();
        }
        0
    }

    /// Records one stage interval for `span`.
    #[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
    pub(crate) fn record(&self, span: u64, seq: u64, stage: &str, start: Instant, end: Instant) {
        #[cfg(feature = "telemetry")]
        if let Some(trace) = self.trace {
            trace.record(span, seq, stage, start, end);
        }
    }
}

/// Registers one run's counters in `registry` under the canonical
/// workspace metric names.
///
/// All metrics are collectors sampling the run's [`Metrics`] and
/// [`BufferPool`] atomics, so values stay live for the whole run and
/// remain scrapeable after the pipeline joins (the collectors keep the
/// backing `Arc`s alive).
#[cfg(feature = "telemetry")]
pub fn register_run(registry: &Registry, metrics: &Metrics, pool: &BufferPool) {
    use std::sync::atomic::Ordering::Relaxed;

    let m = metrics.clone();
    registry.counter_fn(
        "ctc_gateway_samples_total",
        "IQ samples ingested.",
        &[],
        move || m.samples_in.load(Relaxed),
    );
    let m = metrics.clone();
    registry.counter_fn(
        "ctc_gateway_chunks_total",
        "Ingest chunks read from the sample stream.",
        &[],
        move || m.chunks_in.load(Relaxed),
    );
    let m = metrics.clone();
    registry.counter_fn(
        "ctc_gateway_bursts_total",
        "Bursts carved out of the stream by energy detection.",
        &[],
        move || m.bursts.load(Relaxed),
    );
    let frames_help = "Bursts processed, by verdict: decoded frames split \
                       authentic/attack, the rest undecoded.";
    let m = metrics.clone();
    registry.counter_fn(
        "ctc_gateway_frames_total",
        frames_help,
        &[("verdict", "authentic")],
        move || {
            m.frames_decoded
                .load(Relaxed)
                .saturating_sub(m.forgeries.load(Relaxed))
        },
    );
    let m = metrics.clone();
    registry.counter_fn(
        "ctc_gateway_frames_total",
        frames_help,
        &[("verdict", "attack")],
        move || m.forgeries.load(Relaxed),
    );
    let m = metrics.clone();
    registry.counter_fn(
        "ctc_gateway_frames_total",
        frames_help,
        &[("verdict", "undecoded")],
        move || {
            m.bursts
                .load(Relaxed)
                .saturating_sub(m.bursts_dropped.load(Relaxed))
                .saturating_sub(m.frames_decoded.load(Relaxed))
        },
    );
    let m = metrics.clone();
    registry.counter_fn(
        "ctc_queue_dropped_total",
        "Bursts evicted from the bounded queue under overload.",
        &[],
        move || m.bursts_dropped.load(Relaxed),
    );
    let m = metrics.clone();
    registry.counter_fn(
        "ctc_queue_dropped_samples_total",
        "IQ samples inside evicted bursts.",
        &[],
        move || m.samples_dropped.load(Relaxed),
    );
    let m = metrics.clone();
    registry.histogram_fn(
        "ctc_gateway_latency_us",
        "End-to-end (enqueue to classified) per-burst latency in microseconds.",
        &[],
        move || m.latency.snapshot(),
    );
    let p = pool.clone();
    registry.counter_fn(
        "ctc_pool_hits_total",
        "Buffer checkouts served from the free-list.",
        &[],
        move || p.hits(),
    );
    let p = pool.clone();
    registry.counter_fn(
        "ctc_pool_misses_total",
        "Buffer checkouts that had to allocate.",
        &[],
        move || p.misses(),
    );
    let p = pool.clone();
    registry.gauge_fn(
        "ctc_pool_idle_buffers",
        "Idle buffers currently retained by the pool.",
        &[],
        move || p.idle() as u64,
    );
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn register_run_exposes_canonical_names() {
        let registry = Registry::new();
        let metrics = Metrics::new();
        let pool = BufferPool::new();
        register_run(&registry, &metrics, &pool);

        use std::sync::atomic::Ordering::Relaxed;
        metrics.samples_in.fetch_add(4096, Relaxed);
        metrics.bursts.fetch_add(3, Relaxed);
        metrics.frames_decoded.fetch_add(2, Relaxed);
        metrics.forgeries.fetch_add(1, Relaxed);
        metrics.latency.record(120);
        drop(pool.checkout(16)); // one miss, one idle buffer

        let text = registry.render();
        assert!(text.contains("ctc_gateway_samples_total 4096"), "{text}");
        assert!(text.contains("ctc_gateway_frames_total{verdict=\"attack\"} 1"));
        assert!(text.contains("ctc_gateway_frames_total{verdict=\"authentic\"} 1"));
        assert!(text.contains("ctc_gateway_frames_total{verdict=\"undecoded\"} 1"));
        assert!(text.contains("ctc_gateway_latency_us_count 1"));
        assert!(text.contains("ctc_pool_misses_total 1"));
        assert!(text.contains("ctc_pool_idle_buffers 1"));
        assert!(text.contains("ctc_queue_dropped_total 0"));

        // Collectors sample live values: later increments show up in the
        // next render without re-registration.
        metrics.samples_in.fetch_add(1, Relaxed);
        assert!(registry.render().contains("ctc_gateway_samples_total 4097"));
    }
}
