//! Wiring between one gateway run and the [`ctc_obs`] telemetry layer.
//!
//! Three pieces live here:
//!
//! * [`register_run`] — publishes a run's aggregate counters under the
//!   canonical workspace metric names (see the README's Observability
//!   section) as *pull-based collectors*: the registry samples the
//!   pipeline's existing atomics at scrape time, so the hot path pays
//!   nothing and nothing is counted twice. Starting a new run
//!   re-registers and takes the names over.
//! * [`register_session`] / [`register_server`] — the multi-stream
//!   layer: the same gateway metric schema stamped with a
//!   `{stream="..."}` label per session, plus `ctc_sessions_*`
//!   lifecycle counters for the server itself.
//! * `RunObs` — the per-run tracing handle threaded through ingest,
//!   workers and sink. With the `telemetry` feature off it compiles to a
//!   zero-sized no-op, so the pipeline code carries no `#[cfg]` noise and
//!   the disabled build provably does no telemetry work.

#[cfg(feature = "telemetry")]
use crate::metrics::{Metrics, ServerMetrics};
#[cfg(feature = "telemetry")]
use ctc_dsp::BufferPool;
#[cfg(feature = "telemetry")]
use ctc_obs::{Registry, ScopedRegistry, TraceSink};
use std::time::Instant;

/// Per-run tracing handle: allocates span IDs, records stage intervals
/// when a trace sink is attached, and journals flight-recorder events
/// when a recorder is attached; does nothing otherwise.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RunObs<'a> {
    #[cfg(feature = "telemetry")]
    trace: Option<&'a TraceSink>,
    #[cfg(feature = "telemetry")]
    flight: Option<&'a crate::flight::FlightCtl>,
    #[cfg(not(feature = "telemetry"))]
    _lifetime: std::marker::PhantomData<&'a ()>,
}

impl<'a> RunObs<'a> {
    /// A handle that records nothing (the only kind this build has).
    #[cfg(not(feature = "telemetry"))]
    pub(crate) fn disabled() -> Self {
        RunObs {
            _lifetime: std::marker::PhantomData,
        }
    }

    /// A handle recording into `trace` and/or `flight` (when given).
    #[cfg(feature = "telemetry")]
    pub(crate) fn new(
        trace: Option<&'a TraceSink>,
        flight: Option<&'a crate::flight::FlightCtl>,
    ) -> Self {
        RunObs { trace, flight }
    }

    /// A fresh span ID for one burst, or `0` (the disabled sentinel) when
    /// no sink is attached — recording a `0` span is a no-op everywhere.
    pub(crate) fn next_span(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        if self.trace.is_some() {
            return ctc_obs::next_span_id();
        }
        0
    }

    /// Records one stage interval for `span` — into the trace sink as a
    /// span record, and into the flight journal as a compact stage event
    /// (the `drop` stage is journaled separately with richer fields; see
    /// the shed path in [`crate::server`]).
    #[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
    pub(crate) fn record(
        &self,
        session: crate::session::SessionId,
        span: u64,
        seq: u64,
        stage: &str,
        start: Instant,
        end: Instant,
    ) {
        #[cfg(feature = "telemetry")]
        {
            if let Some(trace) = self.trace {
                trace.record(span, seq, stage, start, end);
            }
            if stage != "drop" {
                if let Some(flight) = self.flight {
                    use ctc_obs::flight::{stage_id, EventKind, FlightEvent};
                    let rec = flight.recorder();
                    rec.record(
                        FlightEvent::new(EventKind::Stage, session, seq, rec.now_us()).with_args(
                            stage_id(stage),
                            end.saturating_duration_since(start).as_micros() as u64,
                        ),
                    );
                }
            }
        }
    }

    /// Journals one flight event built by `make` (only invoked when a
    /// recorder is attached, so the cost of constructing the event is
    /// paid only then). Returns the event's ring ticket.
    #[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
    pub(crate) fn flight_record(
        &self,
        make: impl FnOnce(&ctc_obs::FlightRecorder) -> ctc_obs::FlightEvent,
    ) -> Option<u64> {
        #[cfg(feature = "telemetry")]
        if let Some(flight) = self.flight {
            let rec = flight.recorder();
            return Some(rec.record(make(rec)));
        }
        None
    }

    /// Auto trigger for an accepted forgery: dump one incident snapshot
    /// ending at `ticket` (the verdict event), first trigger wins.
    #[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
    pub(crate) fn flight_forgery(&self, ticket: Option<u64>) {
        #[cfg(feature = "telemetry")]
        if let Some(flight) = self.flight {
            flight.auto_trigger("forgery", ticket);
        }
    }

    /// Auto trigger for drop-budget exhaustion on `session`.
    #[cfg_attr(not(feature = "telemetry"), allow(unused_variables))]
    pub(crate) fn flight_drop_check(&self, session: &crate::session::Session, ticket: Option<u64>) {
        #[cfg(feature = "telemetry")]
        if let Some(flight) = self.flight {
            flight.check_drop_budget(session, ticket);
        }
    }

    /// Polls the SIGUSR1 latch (supervisor loops call this every few
    /// milliseconds); each signal dumps a snapshot.
    pub(crate) fn flight_poll(&self) {
        #[cfg(feature = "telemetry")]
        if let Some(flight) = self.flight {
            flight.poll_sigusr1();
        }
    }
}

/// Registers one run's counters in `registry` under the canonical
/// workspace metric names.
///
/// All metrics are collectors sampling the run's [`Metrics`] and
/// [`BufferPool`] atomics, so values stay live for the whole run and
/// remain scrapeable after the pipeline joins (the collectors keep the
/// backing `Arc`s alive).
#[cfg(feature = "telemetry")]
pub fn register_run(registry: &Registry, metrics: &Metrics, pool: &BufferPool) {
    register_gateway_metrics(&registry.scoped(&[]), metrics);
    let p = pool.clone();
    registry.counter_fn(
        "ctc_pool_hits_total",
        "Buffer checkouts served from the free-list.",
        &[],
        move || p.hits(),
    );
    let p = pool.clone();
    registry.counter_fn(
        "ctc_pool_misses_total",
        "Buffer checkouts that had to allocate.",
        &[],
        move || p.misses(),
    );
    let p = pool.clone();
    registry.gauge_fn(
        "ctc_pool_idle_buffers",
        "Idle buffers currently retained by the pool.",
        &[],
        move || p.idle() as u64,
    );
}

/// Registers one session's counters under the gateway metric names with a
/// `{stream="<label>"}` label, alongside the unlabelled aggregates from
/// [`register_run`]. Collectors keep the session's [`Metrics`] `Arc`
/// alive, so a closed session stays scrapeable for the rest of the run.
#[cfg(feature = "telemetry")]
pub fn register_session(registry: &Registry, stream: &str, metrics: &Metrics) {
    register_gateway_metrics(&registry.scoped(&[("stream", stream)]), metrics);
}

/// Registers one pipeline run's detector scores as
/// `ctc_detector_score{feature=...}` gauges — one child per extracted
/// feature plus `{feature="fused"}` for the classifier output. Collectors
/// sample the run's [`ScoreBoard`](crate::metrics::ScoreBoard), so a
/// scrape always sees the most recently classified burst.
#[cfg(feature = "telemetry")]
pub fn register_scores(registry: &Registry, board: &crate::metrics::ScoreBoard) {
    let help = "Latest detector score, by feature (fused = classifier output).";
    for (i, name) in board.names().iter().enumerate() {
        let b = board.clone();
        registry.gauge_f64_fn(
            "ctc_detector_score",
            help,
            &[("feature", name)],
            move || b.value(i),
        );
    }
    let b = board.clone();
    registry.gauge_f64_fn(
        "ctc_detector_score",
        help,
        &[("feature", "fused")],
        move || b.fused(),
    );
}

/// Registers the session-lifecycle counters of a multi-stream server run.
#[cfg(feature = "telemetry")]
pub fn register_server(registry: &Registry, server: &ServerMetrics) {
    use std::sync::atomic::Ordering::Relaxed;

    let s = server.clone();
    registry.counter_fn(
        "ctc_sessions_opened_total",
        "Sessions accepted (or supplied in-process).",
        &[],
        move || s.sessions_opened.load(Relaxed),
    );
    let s = server.clone();
    registry.counter_fn(
        "ctc_sessions_closed_total",
        "Sessions that reached end of stream and closed.",
        &[],
        move || s.sessions_closed.load(Relaxed),
    );
    let s = server.clone();
    registry.counter_fn(
        "ctc_sessions_refused_total",
        "Connections refused at the max-streams ceiling.",
        &[],
        move || s.sessions_refused.load(Relaxed),
    );
    let s = server.clone();
    registry.counter_fn(
        "ctc_sessions_errored_total",
        "Sessions whose input died with a read error.",
        &[],
        move || s.sessions_errored.load(Relaxed),
    );
    let s = server.clone();
    registry.gauge_fn(
        "ctc_sessions_active",
        "Sessions currently live.",
        &[],
        move || s.snapshot().active(),
    );
}

/// The shared gateway metric schema, registered through `scoped` so the
/// same code serves both the unlabelled aggregate and each
/// `{stream="..."}` session.
#[cfg(feature = "telemetry")]
fn register_gateway_metrics(scoped: &ScopedRegistry<'_>, metrics: &Metrics) {
    use std::sync::atomic::Ordering::Relaxed;

    let m = metrics.clone();
    scoped.counter_fn(
        "ctc_gateway_samples_total",
        "IQ samples ingested.",
        &[],
        move || m.samples_in.load(Relaxed),
    );
    let m = metrics.clone();
    scoped.counter_fn(
        "ctc_gateway_chunks_total",
        "Ingest chunks read from the sample stream.",
        &[],
        move || m.chunks_in.load(Relaxed),
    );
    let m = metrics.clone();
    scoped.counter_fn(
        "ctc_gateway_bursts_total",
        "Bursts carved out of the stream by energy detection.",
        &[],
        move || m.bursts.load(Relaxed),
    );
    let frames_help = "Bursts processed, by verdict: decoded frames split \
                       authentic/attack, the rest undecoded.";
    let m = metrics.clone();
    scoped.counter_fn(
        "ctc_gateway_frames_total",
        frames_help,
        &[("verdict", "authentic")],
        move || {
            m.frames_decoded
                .load(Relaxed)
                .saturating_sub(m.forgeries.load(Relaxed))
        },
    );
    let m = metrics.clone();
    scoped.counter_fn(
        "ctc_gateway_frames_total",
        frames_help,
        &[("verdict", "attack")],
        move || m.forgeries.load(Relaxed),
    );
    let m = metrics.clone();
    scoped.counter_fn(
        "ctc_gateway_frames_total",
        frames_help,
        &[("verdict", "undecoded")],
        move || {
            m.bursts
                .load(Relaxed)
                .saturating_sub(m.bursts_dropped.load(Relaxed))
                .saturating_sub(m.frames_decoded.load(Relaxed))
        },
    );
    let m = metrics.clone();
    scoped.counter_fn(
        "ctc_queue_dropped_total",
        "Bursts evicted from the bounded queue under overload.",
        &[],
        move || m.bursts_dropped.load(Relaxed),
    );
    let m = metrics.clone();
    scoped.counter_fn(
        "ctc_queue_dropped_samples_total",
        "IQ samples inside evicted bursts.",
        &[],
        move || m.samples_dropped.load(Relaxed),
    );
    let m = metrics.clone();
    scoped.histogram_fn(
        "ctc_gateway_latency_us",
        "End-to-end (enqueue to classified) per-burst latency in microseconds.",
        &[],
        move || m.latency.snapshot(),
    );
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn register_run_exposes_canonical_names() {
        let registry = Registry::new();
        let metrics = Metrics::new();
        let pool = BufferPool::new();
        register_run(&registry, &metrics, &pool);

        use std::sync::atomic::Ordering::Relaxed;
        metrics.samples_in.fetch_add(4096, Relaxed);
        metrics.bursts.fetch_add(3, Relaxed);
        metrics.frames_decoded.fetch_add(2, Relaxed);
        metrics.forgeries.fetch_add(1, Relaxed);
        metrics.latency.record(120);
        drop(pool.checkout(16)); // one miss, one idle buffer

        let text = registry.render();
        assert!(text.contains("ctc_gateway_samples_total 4096"), "{text}");
        assert!(text.contains("ctc_gateway_frames_total{verdict=\"attack\"} 1"));
        assert!(text.contains("ctc_gateway_frames_total{verdict=\"authentic\"} 1"));
        assert!(text.contains("ctc_gateway_frames_total{verdict=\"undecoded\"} 1"));
        assert!(text.contains("ctc_gateway_latency_us_count 1"));
        assert!(text.contains("ctc_pool_misses_total 1"));
        assert!(text.contains("ctc_pool_idle_buffers 1"));
        assert!(text.contains("ctc_queue_dropped_total 0"));

        // Collectors sample live values: later increments show up in the
        // next render without re-registration.
        metrics.samples_in.fetch_add(1, Relaxed);
        assert!(registry.render().contains("ctc_gateway_samples_total 4097"));
    }

    #[test]
    fn session_metrics_are_labelled_alongside_the_aggregate() {
        use std::sync::atomic::Ordering::Relaxed;

        let registry = Registry::new();
        let aggregate = Metrics::new();
        let pool = BufferPool::new();
        register_run(&registry, &aggregate, &pool);

        let s1 = Metrics::new();
        let s2 = Metrics::new();
        register_session(&registry, "s1", &s1);
        register_session(&registry, "s2", &s2);

        aggregate.samples_in.fetch_add(30, Relaxed);
        s1.samples_in.fetch_add(10, Relaxed);
        s2.samples_in.fetch_add(20, Relaxed);
        s1.forgeries.fetch_add(1, Relaxed);
        s1.frames_decoded.fetch_add(1, Relaxed);

        let text = registry.render();
        assert!(text.contains("ctc_gateway_samples_total 30"), "{text}");
        assert!(text.contains("ctc_gateway_samples_total{stream=\"s1\"} 10"));
        assert!(text.contains("ctc_gateway_samples_total{stream=\"s2\"} 20"));
        // Per-registration labels merge with the stream label.
        assert!(
            text.contains("ctc_gateway_frames_total{stream=\"s1\",verdict=\"attack\"} 1")
                || text.contains("ctc_gateway_frames_total{verdict=\"attack\",stream=\"s1\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn detector_scores_render_per_feature() {
        use crate::metrics::ScoreBoard;
        use ctc_core::defense::{FeatureVector, PipelineScores};

        let registry = Registry::new();
        let board = ScoreBoard::new(vec!["de2_ideal", "clustered_evm"]);
        register_scores(&registry, &board);

        let mut features = FeatureVector::default();
        features.push("de2_ideal", 0.25);
        features.push("clustered_evm", 0.75);
        board.record(&PipelineScores {
            fused: 0.25,
            features,
        });

        let text = registry.render();
        assert!(text.contains("# TYPE ctc_detector_score gauge"), "{text}");
        assert!(text.contains("ctc_detector_score{feature=\"de2_ideal\"} 0.25"));
        assert!(text.contains("ctc_detector_score{feature=\"clustered_evm\"} 0.75"));
        assert!(text.contains("ctc_detector_score{feature=\"fused\"} 0.25"));
    }

    #[test]
    fn server_lifecycle_counters_render() {
        use std::sync::atomic::Ordering::Relaxed;

        let registry = Registry::new();
        let server = ServerMetrics::new();
        register_server(&registry, &server);
        server.sessions_opened.fetch_add(3, Relaxed);
        server.sessions_closed.fetch_add(1, Relaxed);
        server.sessions_refused.fetch_add(2, Relaxed);

        let text = registry.render();
        assert!(text.contains("ctc_sessions_opened_total 3"), "{text}");
        assert!(text.contains("ctc_sessions_refused_total 2"));
        assert!(text.contains("ctc_sessions_active 2"));
    }
}
