//! # ctc-gateway
//!
//! The defense of *Hide and Seek* deployed as a long-running service: a
//! real-time streaming detection gateway that watches a continuous IQ
//! stream and emits one JSON-lines event per decoded frame, flagging
//! waveform-emulation forgeries as they arrive.
//!
//! Where [`ctc_core::defense::StreamMonitor`] processes bursts inline,
//! this crate puts the same two stages on opposite sides of a bounded
//! queue so ingest keeps pace with the sample clock no matter how slow
//! decoding gets:
//!
//! - [`source::Input`] — where the bytes come from: cf32 file, stdin
//!   (`-`), or a TCP listener (`tcp://host:port`).
//! - [`pipeline::Gateway`] — the pipeline itself: chunked ingest with
//!   state carried across chunk boundaries, a drop-oldest bounded queue,
//!   a decode/classify worker pool, and an order-restoring JSONL sink.
//! - [`metrics::Metrics`] — lock-free counters and a log-scale latency
//!   histogram behind the periodic stats lines.
//! - [`obs`] (feature `telemetry`, default-on) — publishes a run's
//!   counters into a [`ctc_obs::Registry`] under canonical `ctc_*` names
//!   and records per-stage trace spans into a
//!   [`ctc_obs::TraceSink`]; see [`Gateway::with_registry`] and
//!   [`Gateway::with_trace_sink`].
//!
//! ```no_run
//! use ctc_gateway::{Gateway, GatewayConfig, Input};
//!
//! let input = Input::parse("-").open()?; // stdin
//! let gateway = Gateway::new(GatewayConfig::default());
//! let report = gateway.run(input, &mut std::io::stdout(), &mut std::io::stderr())?;
//! if report.forgery_detected() {
//!     eprintln!("forgeries: {}", report.metrics.forgeries);
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod obs;
pub mod pipeline;
pub mod queue;
pub mod source;

pub use json::{JsonParseError, JsonValue};
pub use metrics::{LatencyHistogram, Metrics, MetricsCore, MetricsSnapshot};
pub use pipeline::{default_workers, Gateway, GatewayConfig, GatewayReport};
pub use queue::BoundedQueue;
pub use source::Input;
