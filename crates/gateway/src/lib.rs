//! # ctc-gateway
//!
//! The defense of *Hide and Seek* deployed as a long-running service: a
//! multi-stream streaming detection gateway that watches continuous IQ
//! streams and emits one JSON-lines event per decoded frame, flagging
//! waveform-emulation forgeries as they arrive.
//!
//! Where [`ctc_core::defense::StreamMonitor`] processes bursts inline,
//! this crate puts the same two stages on opposite sides of bounded
//! queues so ingest keeps pace with the sample clock no matter how slow
//! decoding gets — and multiplexes many independent streams through one
//! shared worker pool:
//!
//! - [`server::GatewayServer`] — the service: each stream becomes a
//!   [`session::Session`] pinned to a worker shard (workers steal across
//!   shards, so one stalled stream never head-of-line-blocks another),
//!   with per-session drop budgets under overload, per-session
//!   sequence-ordered JSONL tagged with a `stream` field, and both
//!   aggregate and `{stream="..."}`-labelled metrics.
//! - [`source::Input`] — where the bytes come from: cf32 file, stdin
//!   (`-`), a TCP listener (`tcp://host:port`), or a Unix-domain
//!   listener (`unix:///path.sock`); [`source::Listener`] accepts many
//!   connections for [`GatewayServer::serve`].
//! - [`pipeline::Gateway`] — the deprecated single-stream front door,
//!   now a thin one-session wrapper over the server with byte-identical
//!   output.
//! - [`metrics::Metrics`] — lock-free counters and a log-scale latency
//!   histogram behind the periodic stats lines.
//! - [`error::GatewayError`] — typed failures with distinct process
//!   exit codes for the CLI.
//! - [`obs`] (feature `telemetry`, default-on) — publishes a run's
//!   counters into a [`ctc_obs::Registry`] under canonical `ctc_*` names
//!   (aggregate and per-stream) and records per-stage trace spans into a
//!   [`ctc_obs::TraceSink`]; see [`GatewayServer::with_registry`] and
//!   [`GatewayServer::with_trace_sink`].
//! - [`flight`] (feature `telemetry`, default-on) — an always-on,
//!   bounded-memory flight recorder ([`ctc_obs::flight`]) journaling
//!   bursts, stage boundaries, verdicts with per-feature scores, drops
//!   and session lifecycle; on a trigger (first accepted forgery,
//!   per-session drop-budget exhaustion, `SIGUSR1`) it dumps a
//!   self-contained JSON incident snapshot; see
//!   [`GatewayServer::with_flight`].
//!
//! Monitor two labelled streams through one engine:
//!
//! ```no_run
//! use ctc_gateway::{GatewayServer, NamedStream, ServerConfig};
//!
//! let server = GatewayServer::new(ServerConfig::default());
//! let report = server.run_streams(
//!     vec![
//!         NamedStream::new("uplink", std::io::stdin()),
//!         NamedStream::new("downlink", std::fs::File::open("capture.cf32").unwrap()),
//!     ],
//!     &mut std::io::stdout(),
//!     &mut std::io::stderr(),
//! )?;
//! for s in &report.sessions {
//!     eprintln!("{}: {} forgeries", s.label.as_deref().unwrap_or("?"), s.metrics.forgeries);
//! }
//! # Ok::<(), ctc_gateway::GatewayError>(())
//! ```
//!
//! Or serve a listener, each connection its own session:
//!
//! ```no_run
//! use ctc_gateway::{GatewayServer, Input, Listener, ServerConfig};
//!
//! let listener = Listener::bind(&Input::parse("tcp://127.0.0.1:4000")?)?;
//! let server = GatewayServer::new(ServerConfig::default());
//! let handle = server.shutdown_handle(); // stop from another thread
//! # drop(handle);
//! server.serve(listener, &mut std::io::stdout(), &mut std::io::stderr())?;
//! # Ok::<(), ctc_gateway::GatewayError>(())
//! ```

#![warn(missing_docs)]

pub mod error;
#[cfg(feature = "telemetry")]
pub mod flight;
pub mod json;
pub mod metrics;
pub mod obs;
pub mod pipeline;
pub mod queue;
pub mod server;
pub mod session;
pub mod source;

pub use error::GatewayError;
#[cfg(feature = "telemetry")]
pub use flight::FlightOptions;
pub use json::{JsonParseError, JsonValue};
pub use metrics::{
    LatencyHistogram, Metrics, MetricsCore, MetricsSnapshot, ScoreBoard, ServerMetrics,
    ServerMetricsCore, ServerMetricsSnapshot,
};
pub use pipeline::{default_workers, Gateway, GatewayConfig, GatewayConfigBuilder, GatewayReport};
pub use queue::BoundedQueue;
pub use server::{
    GatewayServer, NamedStream, PoolStats, ServerConfig, ServerReport, SessionSummary,
    ShutdownHandle,
};
pub use session::{Evicted, Session, SessionId, ShardQueue};
pub use source::{Input, Listener, SessionStream};
