//! The streaming pipeline: chunked ingest → burst splitting → a bounded
//! work queue → decode/classify workers → an order-restoring JSONL sink.
//!
//! ```text
//!            ┌────────────────────── ingest thread ──────────────────────┐
//! cf32 bytes │ Cf32Reader ─ chunks ─▶ BurstSplitter ─ captures ─▶ queue │
//!            └───────────────────────────────────────────────────┬──────┘
//!                    bounded, drop-oldest, never blocks ingest ──┘
//!            ┌── worker pool (N threads) ──┐   ┌──── sink thread ────┐
//!            │ decode ▶ classify ▶ events ─┼──▶│ reorder by seq ▶ io │
//!            └─────────────────────────────┘   └─────────────────────┘
//! ```
//!
//! Ingest is the stage that must keep up with the ADC, so it does only
//! O(1)-per-sample work (energy detection and buffer management); all
//! frame decoding happens behind the queue. Overload sheds the *oldest*
//! queued burst (counted, reported as a `dropped` event) rather than ever
//! stalling the sample stream.

use crate::json::{hex, JsonObject};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::obs::RunObs;
use crate::queue::BoundedQueue;
use ctc_core::attack::EnergyDetector;
use ctc_core::defense::{BurstCapture, BurstSplitter, Detector, FrameProcessor, StreamEvent};
use ctc_dsp::io::{Cf32Reader, DEFAULT_CHUNK_SAMPLES};
use ctc_dsp::BufferPool;
use ctc_zigbee::Receiver;
use std::io::{self, Read, Write};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Gateway configuration: transport-independent pipeline knobs plus the
/// three detection stages.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Samples per ingest chunk.
    pub chunk_samples: usize,
    /// Decode/classify worker threads.
    pub workers: usize,
    /// Bounded work-queue depth, in bursts.
    pub queue_depth: usize,
    /// Burst-length cap in samples (continuous transmissions are split),
    /// bounding per-burst memory.
    pub max_burst: usize,
    /// Emit a stats line this often (`None`: only the final one).
    pub stats_interval: Option<Duration>,
    /// Energy/burst detection stage.
    pub energy: EnergyDetector,
    /// Frame decoding stage.
    pub receiver: Receiver,
    /// Classification stage.
    pub detector: Detector,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            chunk_samples: DEFAULT_CHUNK_SAMPLES,
            workers: default_workers(),
            queue_depth: 64,
            max_burst: 1 << 20,
            stats_interval: Some(Duration::from_secs(5)),
            energy: EnergyDetector::default(),
            receiver: Receiver::usrp().with_sync_search(96),
            detector: Detector::new(ctc_core::defense::ChannelAssumption::Ideal),
        }
    }
}

/// Default worker count: leave a core for ingest, cap the fan-out.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(2)
        .clamp(1, 8)
}

/// Final tally of one gateway run.
#[derive(Debug, Clone, Copy)]
pub struct GatewayReport {
    /// Counters at end of stream.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl GatewayReport {
    /// Ingest rate in megasamples per second.
    pub fn msamples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.metrics.samples_in as f64 / secs / 1e6
    }

    /// True when at least one decoded frame was attributed to the
    /// attacker — what a shell pipeline branches on.
    pub fn forgery_detected(&self) -> bool {
        self.metrics.forgeries > 0
    }
}

/// One unit of work crossing the bounded queue.
struct WorkItem {
    seq: u64,
    capture: BurstCapture,
    enqueued: Instant,
    /// Trace span for this burst (`0` = tracing disabled).
    span: u64,
}

/// What reaches the sink: a rendered line, slotted by sequence number so
/// output order equals burst order even with a racing worker pool. The
/// span and classification instant ride along so the sink can record the
/// `emit` stage contiguously with the worker's `classify` stage.
enum SinkMsg {
    Line {
        seq: u64,
        line: String,
        span: u64,
        classified: Instant,
    },
}

/// The streaming detection gateway.
///
/// # Examples
///
/// ```no_run
/// use ctc_gateway::{Gateway, GatewayConfig};
/// use std::io::Write;
///
/// let gateway = Gateway::new(GatewayConfig::default());
/// let input = std::fs::File::open("recording.cf32")?;
/// let report = gateway.run(input, &mut std::io::stdout(), &mut std::io::stderr())?;
/// writeln!(std::io::stderr(), "{:.1} Msamples/s", report.msamples_per_sec())?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gateway {
    config: GatewayConfig,
    /// Registry the run's counters are published into (collectors are
    /// registered at `run()` start).
    #[cfg(feature = "telemetry")]
    registry: Option<std::sync::Arc<ctc_obs::Registry>>,
    /// Span log receiving per-stage trace records.
    #[cfg(feature = "telemetry")]
    trace: Option<std::sync::Arc<ctc_obs::TraceSink>>,
}

impl Gateway {
    /// Gateway with the given configuration.
    pub fn new(config: GatewayConfig) -> Self {
        Gateway {
            config,
            #[cfg(feature = "telemetry")]
            registry: None,
            #[cfg(feature = "telemetry")]
            trace: None,
        }
    }

    /// Publishes this gateway's runs into `registry` under the canonical
    /// `ctc_*` metric names (see [`crate::obs::register_run`]).
    #[cfg(feature = "telemetry")]
    pub fn with_registry(mut self, registry: std::sync::Arc<ctc_obs::Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Records per-stage span intervals into `trace` (JSONL; see
    /// [`ctc_obs::trace`]). Without a sink, tracing costs nothing.
    #[cfg(feature = "telemetry")]
    pub fn with_trace_sink(mut self, trace: std::sync::Arc<ctc_obs::TraceSink>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Runs the pipeline until `input` reaches end of stream: frame events
    /// as JSON lines onto `events`, periodic + final stats lines onto
    /// `stats`.
    ///
    /// # Errors
    ///
    /// Input read errors and event/stats write errors. Detection state is
    /// internal; a malformed *stream* (partial trailing sample) is an
    /// error after all complete samples were processed.
    pub fn run<R, W, E>(&self, input: R, events: &mut W, stats: &mut E) -> io::Result<GatewayReport>
    where
        R: Read,
        W: Write + Send,
        E: Write,
    {
        let cfg = &self.config;
        let queue: BoundedQueue<WorkItem> = BoundedQueue::new(cfg.queue_depth.max(1));
        let metrics = Metrics::new();
        // The pool is shared with the workers implicitly: every capture's
        // buffer returns here when the worker drops it, so after warm-up a
        // burst costs a free-list pop, not an allocation.
        let pool = BufferPool::new();
        let processor = FrameProcessor::new(cfg.receiver.clone(), cfg.detector);
        let (tx, rx) = mpsc::channel::<SinkMsg>();
        let started = Instant::now();

        #[cfg(feature = "telemetry")]
        if let Some(registry) = &self.registry {
            crate::obs::register_run(registry, &metrics, &pool);
        }
        #[cfg(feature = "telemetry")]
        let obs = RunObs::new(self.trace.as_deref());
        #[cfg(not(feature = "telemetry"))]
        let obs = RunObs::disabled();

        let mut ingest_result: io::Result<()> = Ok(());
        let mut sink_result: io::Result<()> = Ok(());
        std::thread::scope(|scope| {
            let worker_handles: Vec<_> = (0..cfg.workers.max(1))
                .map(|_| {
                    let tx = tx.clone();
                    let queue = &queue;
                    let metrics = &metrics;
                    let processor = processor.clone();
                    scope.spawn(move || worker_loop(queue, &processor, metrics, &tx, obs))
                })
                .collect();
            let sink_handle = scope.spawn(|| sink_loop(rx, events, obs));

            ingest_result = self.ingest(input, &queue, &metrics, &pool, &tx, stats, started, obs);
            queue.close();
            drop(tx);
            for handle in worker_handles {
                handle.join().expect("worker panicked");
            }
            sink_result = sink_handle.join().expect("sink panicked");
        });
        ingest_result?;
        sink_result?;

        // Span records buffer in the sink; push them out while the run's
        // counters are still being finalised so nothing is lost if the
        // caller exits right after reading the report.
        #[cfg(feature = "telemetry")]
        if let Some(trace) = &self.trace {
            trace.flush();
        }

        let report = GatewayReport {
            metrics: metrics.snapshot(),
            elapsed: started.elapsed(),
        };
        writeln!(stats, "{}", stats_line(&report.metrics, started, &queue))?;
        stats.flush()?;
        Ok(report)
    }

    /// The ingest loop: read chunks, advance the splitter, enqueue
    /// captures (shedding the oldest on overflow), emit periodic stats.
    #[allow(clippy::too_many_arguments)]
    fn ingest<R: Read, E: Write>(
        &self,
        input: R,
        queue: &BoundedQueue<WorkItem>,
        metrics: &Metrics,
        pool: &BufferPool,
        tx: &mpsc::Sender<SinkMsg>,
        stats: &mut E,
        started: Instant,
        obs: RunObs<'_>,
    ) -> io::Result<()> {
        use std::sync::atomic::Ordering::Relaxed;
        let cfg = &self.config;
        let mut reader = Cf32Reader::new(input).with_chunk_samples(cfg.chunk_samples.max(1));
        let mut splitter = BurstSplitter::new(cfg.energy)
            .with_max_burst(cfg.max_burst)
            .with_pool(pool.clone());
        let mut chunk = Vec::new();
        let mut captures: Vec<BurstCapture> = Vec::new();
        let mut seq = 0u64;
        let mut last_stats = started;

        // `ingest_start` is when the chunk that completed the burst was
        // read; the span's `ingest` stage covers read→enqueue and hands
        // its end instant to the `queue` stage untouched, keeping the
        // per-frame stage chain contiguous.
        let enqueue = |captures: &mut Vec<BurstCapture>, seq: &mut u64, ingest_start: Instant| {
            for capture in captures.drain(..) {
                metrics.bursts.fetch_add(1, Relaxed);
                let span = obs.next_span();
                let enqueued = Instant::now();
                obs.record(span, *seq, "ingest", ingest_start, enqueued);
                let item = WorkItem {
                    seq: *seq,
                    capture,
                    enqueued,
                    span,
                };
                *seq += 1;
                if let Some(evicted) = queue.push_drop_oldest(item) {
                    metrics.bursts_dropped.fetch_add(1, Relaxed);
                    metrics
                        .samples_dropped
                        .fetch_add(evicted.capture.samples.len() as u64, Relaxed);
                    obs.record(
                        evicted.span,
                        evicted.seq,
                        "drop",
                        evicted.enqueued,
                        Instant::now(),
                    );
                    // Fill the sequence hole so the sink's reordering
                    // never waits on work that will not arrive.
                    let _ = tx.send(SinkMsg::Line {
                        seq: evicted.seq,
                        line: dropped_line(&evicted.capture),
                        span: 0,
                        classified: enqueued,
                    });
                }
            }
        };

        loop {
            let chunk_read = Instant::now();
            let n = reader.read_chunk(&mut chunk)?;
            if n == 0 {
                break;
            }
            metrics.chunks_in.fetch_add(1, Relaxed);
            metrics.samples_in.fetch_add(n as u64, Relaxed);
            splitter.push_into(&chunk, &mut captures);
            enqueue(&mut captures, &mut seq, chunk_read);
            if let Some(interval) = cfg.stats_interval {
                if last_stats.elapsed() >= interval {
                    last_stats = Instant::now();
                    writeln!(stats, "{}", stats_line(&metrics.snapshot(), started, queue))?;
                    stats.flush()?;
                }
            }
        }
        let finish_started = Instant::now();
        splitter.finish_into(&mut captures);
        enqueue(&mut captures, &mut seq, finish_started);
        Ok(())
    }
}

/// Worker: pop, decode, classify, render, send — with per-stage timing.
fn worker_loop(
    queue: &BoundedQueue<WorkItem>,
    processor: &FrameProcessor,
    metrics: &Metrics,
    tx: &mpsc::Sender<SinkMsg>,
    obs: RunObs<'_>,
) {
    use std::sync::atomic::Ordering::Relaxed;
    while let Some(item) = queue.pop() {
        let dequeued = Instant::now();
        let queue_us = micros_between(item.enqueued, dequeued);
        let reception = processor.decode(&item.capture);
        let decoded = Instant::now();
        let event = processor.classify(&item.capture, reception);
        let done = Instant::now();
        obs.record(item.span, item.seq, "queue", item.enqueued, dequeued);
        obs.record(item.span, item.seq, "decode", dequeued, decoded);
        obs.record(item.span, item.seq, "classify", decoded, done);
        let total_us = micros_between(item.enqueued, done);
        metrics.latency.record(total_us);
        if event.payload.is_some() {
            metrics.frames_decoded.fetch_add(1, Relaxed);
        }
        if event.accepted_forgery() {
            metrics.forgeries.fetch_add(1, Relaxed);
        }
        let line = frame_line(
            item.seq,
            &event,
            queue_us,
            micros_between(dequeued, decoded),
            micros_between(decoded, done),
            total_us,
        );
        // A send error means the sink hit an output error and hung up;
        // keep draining the queue so ingest accounting stays truthful.
        let _ = tx.send(SinkMsg::Line {
            seq: item.seq,
            line,
            span: item.span,
            classified: done,
        });
    }
}

/// Sink: restore sequence order (workers race) and write JSON lines.
fn sink_loop<W: Write>(
    rx: mpsc::Receiver<SinkMsg>,
    events: &mut W,
    obs: RunObs<'_>,
) -> io::Result<()> {
    let mut pending = std::collections::BTreeMap::new();
    let mut next = 0u64;
    while let Ok(SinkMsg::Line {
        seq,
        line,
        span,
        classified,
    }) = rx.recv()
    {
        pending.insert(seq, (line, span, classified));
        while let Some((line, span, classified)) = pending.remove(&next) {
            writeln!(events, "{line}")?;
            obs.record(span, next, "emit", classified, Instant::now());
            next += 1;
        }
        if pending.is_empty() {
            events.flush()?;
        }
    }
    // Channel closed: flush whatever is contiguous (holes can only mean a
    // worker died, which join() will have surfaced as a panic).
    while let Some((line, span, classified)) = pending.remove(&next) {
        writeln!(events, "{line}")?;
        obs.record(span, next, "emit", classified, Instant::now());
        next += 1;
    }
    events.flush()
}

fn micros_between(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_micros() as u64
}

/// Renders one frame event as a JSON line.
fn frame_line(
    seq: u64,
    event: &StreamEvent,
    queue_us: u64,
    decode_us: u64,
    classify_us: u64,
    total_us: u64,
) -> String {
    let latency = JsonObject::new()
        .uint("queue_us", queue_us)
        .uint("decode_us", decode_us)
        .uint("classify_us", classify_us)
        .uint("total_us", total_us)
        .finish();
    JsonObject::new()
        .string("type", "frame")
        .uint("seq", seq)
        .uint("burst_start", event.burst.start as u64)
        .uint("burst_end", event.burst.end as u64)
        .bool("truncated", event.truncated)
        .opt("payload_hex", event.payload.as_deref(), |o, k, p| {
            o.string(k, &hex(p))
        })
        .opt(
            "de2",
            event.verdict.map(|v| v.de_squared),
            JsonObject::float,
        )
        .opt("verdict", event.verdict, |o, k, v| {
            o.string(k, if v.is_attack { "attack" } else { "authentic" })
        })
        .bool("accepted_forgery", event.accepted_forgery())
        .raw("latency", &latency)
        .finish()
}

/// Renders the event for a burst shed under overload.
fn dropped_line(capture: &BurstCapture) -> String {
    JsonObject::new()
        .string("type", "dropped")
        .uint("burst_start", capture.burst.start as u64)
        .uint("burst_end", capture.burst.end as u64)
        .uint("samples", capture.samples.len() as u64)
        .finish()
}

/// Renders one stats line.
fn stats_line(s: &MetricsSnapshot, started: Instant, queue: &BoundedQueue<WorkItem>) -> String {
    let secs = started.elapsed().as_secs_f64();
    let msps = if secs > 0.0 {
        s.samples_in as f64 / secs / 1e6
    } else {
        0.0
    };
    JsonObject::new()
        .string("type", "stats")
        .uint("elapsed_ms", (secs * 1e3) as u64)
        .uint("samples_in", s.samples_in)
        .uint("chunks_in", s.chunks_in)
        .uint("bursts", s.bursts)
        .uint("frames_decoded", s.frames_decoded)
        .uint("forgeries", s.forgeries)
        .uint("bursts_dropped", s.bursts_dropped)
        .uint("samples_dropped", s.samples_dropped)
        .uint("queue_len", queue.len() as u64)
        .opt("p50_us", s.p50_us, JsonObject::uint)
        .opt("p99_us", s.p99_us, JsonObject::uint)
        .float("msamples_per_sec", (msps * 1e3).round() / 1e3)
        .finish()
}
