//! The single-stream gateway API: configuration, the run report, and the
//! deprecated [`Gateway`] front door.
//!
//! The pipeline itself (ingest → shard queues → worker pool → ordering
//! sink) lives in [`crate::server`]; since the multi-stream redesign,
//! [`Gateway::run`] is a thin one-session wrapper over
//! [`crate::server::GatewayServer`] kept for callers that
//! monitor exactly one stream.

use crate::error::GatewayError;
use crate::metrics::MetricsSnapshot;
use crate::server::{GatewayServer, NamedStream, ServerConfig};
use ctc_core::attack::EnergyDetector;
use ctc_core::defense::{DetectionPipeline, Detector};
use ctc_dsp::io::DEFAULT_CHUNK_SAMPLES;
use ctc_zigbee::Receiver;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// Gateway configuration: transport-independent pipeline knobs plus the
/// three detection stages.
///
/// Construct via [`GatewayConfig::builder`] (validates at build time) or
/// [`GatewayConfig::default`]; the fields stay public for
/// record-update syntax over a known-good base.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Samples per ingest chunk.
    pub chunk_samples: usize,
    /// Decode/classify worker threads.
    pub workers: usize,
    /// Bounded work-queue depth per shard, in bursts.
    pub queue_depth: usize,
    /// Burst-length cap in samples (continuous transmissions are split),
    /// bounding per-burst memory.
    pub max_burst: usize,
    /// Emit a stats line this often (`None`: only the final one).
    pub stats_interval: Option<Duration>,
    /// Energy/burst detection stage.
    pub energy: EnergyDetector,
    /// Frame decoding stage.
    pub receiver: Receiver,
    /// Classification stage.
    pub detector: Detector,
    /// Feature-ensemble classification stage (`None`: the legacy
    /// single-statistic `detector` path, byte-for-byte). When set, every
    /// burst is scored by the pipeline and events carry per-feature
    /// scores.
    pub pipeline: Option<Arc<DetectionPipeline>>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            chunk_samples: DEFAULT_CHUNK_SAMPLES,
            workers: default_workers(),
            queue_depth: 64,
            max_burst: 1 << 20,
            stats_interval: Some(Duration::from_secs(5)),
            energy: EnergyDetector::default(),
            receiver: Receiver::usrp().with_sync_search(96),
            detector: Detector::new(ctc_core::defense::ChannelAssumption::Ideal),
            pipeline: None,
        }
    }
}

impl GatewayConfig {
    /// A validating builder starting from [`GatewayConfig::default`].
    pub fn builder() -> GatewayConfigBuilder {
        GatewayConfigBuilder {
            config: GatewayConfig::default(),
        }
    }
}

/// Builder for [`GatewayConfig`] that rejects nonsense at
/// [`build`](GatewayConfigBuilder::build) time instead of panicking (or
/// hanging) deep inside a run.
#[derive(Debug, Clone)]
pub struct GatewayConfigBuilder {
    config: GatewayConfig,
}

impl GatewayConfigBuilder {
    /// Samples per ingest chunk.
    pub fn chunk_samples(mut self, samples: usize) -> Self {
        self.config.chunk_samples = samples;
        self
    }

    /// Decode/classify worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Bounded work-queue depth per shard, in bursts.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Burst-length cap in samples.
    pub fn max_burst(mut self, max: usize) -> Self {
        self.config.max_burst = max;
        self
    }

    /// Stats-line cadence (`None`: only the final line).
    pub fn stats_interval(mut self, interval: Option<Duration>) -> Self {
        self.config.stats_interval = interval;
        self
    }

    /// Energy/burst detection stage.
    pub fn energy(mut self, energy: EnergyDetector) -> Self {
        self.config.energy = energy;
        self
    }

    /// Frame decoding stage.
    pub fn receiver(mut self, receiver: Receiver) -> Self {
        self.config.receiver = receiver;
        self
    }

    /// Classification stage.
    pub fn detector(mut self, detector: Detector) -> Self {
        self.config.detector = detector;
        self
    }

    /// Feature-ensemble classification stage (see
    /// [`GatewayConfig::pipeline`]).
    pub fn detection_pipeline(mut self, pipeline: Arc<DetectionPipeline>) -> Self {
        self.config.pipeline = Some(pipeline);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Config`] when any of these hold:
    /// `workers == 0` (no one would ever decode), `queue_depth == 0`
    /// (every burst would be shed), `chunk_samples == 0` (ingest could
    /// not make progress), `energy.window == 0` (the splitter would
    /// panic), or `max_burst < energy.min_len` (the splitter would
    /// reject it).
    pub fn build(self) -> Result<GatewayConfig, GatewayError> {
        let c = &self.config;
        if c.workers == 0 {
            return Err(GatewayError::Config("workers must be > 0".into()));
        }
        if c.queue_depth == 0 {
            return Err(GatewayError::Config("queue depth must be > 0".into()));
        }
        if c.chunk_samples == 0 {
            return Err(GatewayError::Config("chunk size must be > 0".into()));
        }
        if c.energy.window == 0 {
            return Err(GatewayError::Config(
                "energy detection window must be > 0".into(),
            ));
        }
        if c.max_burst < c.energy.min_len {
            return Err(GatewayError::Config(format!(
                "max burst ({}) below the energy detector's min_len ({})",
                c.max_burst, c.energy.min_len
            )));
        }
        Ok(self.config)
    }
}

/// Default worker count: leave a core for ingest, cap the fan-out.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(2)
        .clamp(1, 8)
}

/// Final tally of one gateway run.
#[derive(Debug, Clone, Copy)]
pub struct GatewayReport {
    /// Counters at end of stream.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl GatewayReport {
    /// Ingest rate in megasamples per second.
    pub fn msamples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.metrics.samples_in as f64 / secs / 1e6
    }

    /// True when at least one decoded frame was attributed to the
    /// attacker — what a shell pipeline branches on.
    pub fn forgery_detected(&self) -> bool {
        self.metrics.forgeries > 0
    }
}

/// The single-stream detection gateway (deprecated front door).
///
/// # Examples
///
/// ```no_run
/// use ctc_gateway::{GatewayError, NamedStream, ServerConfig, GatewayServer};
///
/// let server = GatewayServer::new(ServerConfig::default());
/// let input = std::fs::File::open("recording.cf32").map_err(|source| {
///     GatewayError::Open { input: "recording.cf32".into(), source }
/// })?;
/// let report = server.run_streams(
///     vec![NamedStream::unlabelled(input)],
///     &mut std::io::stdout(),
///     &mut std::io::stderr(),
/// )?;
/// eprintln!("{:.1} Msamples/s", report.msamples_per_sec());
/// # Ok::<(), GatewayError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gateway {
    config: GatewayConfig,
    /// Registry the run's counters are published into (collectors are
    /// registered at `run()` start).
    #[cfg(feature = "telemetry")]
    registry: Option<std::sync::Arc<ctc_obs::Registry>>,
    /// Span log receiving per-stage trace records.
    #[cfg(feature = "telemetry")]
    trace: Option<std::sync::Arc<ctc_obs::TraceSink>>,
}

impl Gateway {
    /// Gateway with the given configuration.
    pub fn new(config: GatewayConfig) -> Self {
        Gateway {
            config,
            #[cfg(feature = "telemetry")]
            registry: None,
            #[cfg(feature = "telemetry")]
            trace: None,
        }
    }

    /// Publishes this gateway's runs into `registry` under the canonical
    /// `ctc_*` metric names (see [`crate::obs::register_run`]).
    #[cfg(feature = "telemetry")]
    pub fn with_registry(mut self, registry: std::sync::Arc<ctc_obs::Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Records per-stage span intervals into `trace` (JSONL; see
    /// [`ctc_obs::trace`]). Without a sink, tracing costs nothing.
    #[cfg(feature = "telemetry")]
    pub fn with_trace_sink(mut self, trace: std::sync::Arc<ctc_obs::TraceSink>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Runs the pipeline until `input` reaches end of stream: frame events
    /// as JSON lines onto `events`, periodic + final stats lines onto
    /// `stats`.
    ///
    /// Deprecated — this is now a one-session wrapper over the
    /// multi-stream server. One-line migration:
    ///
    /// ```text
    /// -  Gateway::new(config).run(input, &mut out, &mut err)?
    /// +  GatewayServer::new(ServerConfig::from(config))
    /// +      .run_streams(vec![NamedStream::unlabelled(input)], &mut out, &mut err)?
    /// ```
    ///
    /// Events and the final stats line are byte-identical between the two
    /// forms for an unlabelled single stream.
    ///
    /// # Errors
    ///
    /// Input read errors ([`GatewayError::Read`]) and event/stats write
    /// errors ([`GatewayError::SinkWrite`]). Detection state is internal;
    /// a malformed *stream* (partial trailing sample) is an error after
    /// all complete samples were processed.
    #[deprecated(
        since = "0.6.0",
        note = "use GatewayServer::run_streams with one NamedStream::unlabelled(input) \
                (identical output for a single unlabelled stream)"
    )]
    pub fn run<R, W, E>(
        &self,
        input: R,
        events: &mut W,
        stats: &mut E,
    ) -> Result<GatewayReport, GatewayError>
    where
        R: Read + Send,
        W: Write + Send,
        E: Write,
    {
        // One stream has no cross-session fairness to arbitrate: a single
        // shard reproduces the original single-queue pipeline exactly.
        let config = ServerConfig {
            shards: 1,
            ..ServerConfig::from(self.config.clone())
        };
        #[allow(unused_mut)]
        let mut server = GatewayServer::new(config);
        #[cfg(feature = "telemetry")]
        {
            if let Some(registry) = &self.registry {
                server = server.with_registry(registry.clone());
            }
            if let Some(trace) = &self.trace {
                server = server.with_trace_sink(trace.clone());
            }
        }
        let report = server.run_streams(vec![NamedStream::unlabelled(input)], events, stats)?;
        Ok(GatewayReport {
            metrics: report.metrics,
            elapsed: report.elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accepts_the_default_shape() {
        let config = GatewayConfig::builder()
            .chunk_samples(1000)
            .workers(2)
            .queue_depth(8)
            .stats_interval(None)
            .build()
            .unwrap();
        assert_eq!(config.chunk_samples, 1000);
        assert_eq!(config.workers, 2);
        assert_eq!(config.queue_depth, 8);
        assert_eq!(config.stats_interval, None);
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        for (builder, needle) in [
            (GatewayConfig::builder().workers(0), "workers"),
            (GatewayConfig::builder().queue_depth(0), "queue depth"),
            (GatewayConfig::builder().chunk_samples(0), "chunk size"),
            (GatewayConfig::builder().max_burst(1), "min_len"),
        ] {
            match builder.build() {
                Err(GatewayError::Config(reason)) => {
                    assert!(reason.contains(needle), "{reason}");
                }
                other => panic!("expected Config error about {needle}, got {other:?}"),
            }
        }
    }

    #[test]
    fn builder_errors_map_to_the_config_exit_code() {
        let err = GatewayConfig::builder().workers(0).build().unwrap_err();
        assert_eq!(err.exit_code(), 10);
    }
}
