//! The multi-stream gateway server: sessions, shards, and the shared
//! decode/classify engine.
//!
//! ```text
//!            ┌─ accept loop (serve) / caller (run_streams) ─┐
//!  tcp/unix  │  session 1 ingest ─▶ shard 0 ─┐              │
//!  clients ─▶│  session 2 ingest ─▶ shard 1 ─┼─▶ worker pool│
//!            │  session 3 ingest ─▶ shard 0 ─┘   (stealing) │
//!            └───────────────────────────────────────┬──────┘
//!                                  ┌── sink thread ──▼──────────┐
//!                                  │ per-session reorder ▶ JSONL │
//!                                  └─────────────────────────────┘
//! ```
//!
//! Each accepted stream becomes a [`Session`] pinned to a worker shard;
//! workers drain their home shard first and steal from the others when it
//! is empty, so a stalled or noisy stream cannot head-of-line-block the
//! rest. Overload is arbitrated per session by the shard queue's drop
//! budget (see [`crate::session`]). One sink thread restores per-session
//! sequence order, so the JSONL stream interleaves sessions but is always
//! in order *within* a `stream` label.

use crate::error::GatewayError;
use crate::json::{hex, JsonObject};
use crate::metrics::{Metrics, MetricsSnapshot, ScoreBoard, ServerMetrics, ServerMetricsSnapshot};
use crate::obs::RunObs;
use crate::pipeline::GatewayConfig;
use crate::session::{Evicted, Session, SessionId, ShardQueue};
use crate::source::Listener;
use ctc_core::defense::{BurstCapture, FrameProcessor, MonitorFactory, StreamEvent};
use ctc_dsp::io::Cf32Reader;
use ctc_obs::flight::{EventKind, FlightEvent};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long an idle worker blocks on its home shard before rescanning.
const WORKER_IDLE_WAIT: Duration = Duration::from_millis(5);
/// Accept-loop poll cadence when no client is waiting.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Supervisor poll cadence while draining sessions with stats enabled.
const DRAIN_POLL: Duration = Duration::from_millis(1);

/// Multi-stream server configuration: the per-stream pipeline knobs plus
/// the session/shard layer on top.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The per-stream pipeline configuration (chunking, workers, queue
    /// depth per shard, detection stages).
    pub gateway: GatewayConfig,
    /// Concurrent-session ceiling; connections beyond it are refused
    /// (counted, reported as a `refused` event) rather than queued.
    pub max_streams: usize,
    /// Worker shards sessions are pinned to (`0`: one shard per worker).
    pub shards: usize,
    /// Stop accepting after this many sessions, then drain and return
    /// (`None`: serve until [`GatewayServer::shutdown_handle`] fires).
    pub stop_after: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            gateway: GatewayConfig::default(),
            max_streams: 64,
            shards: 0,
            stop_after: None,
        }
    }
}

impl From<GatewayConfig> for ServerConfig {
    fn from(gateway: GatewayConfig) -> Self {
        ServerConfig {
            gateway,
            ..ServerConfig::default()
        }
    }
}

/// One input stream handed to [`GatewayServer::run_streams`]: a reader
/// plus the tenant label stamped on its events and metrics.
pub struct NamedStream<'a> {
    label: Option<String>,
    reader: Box<dyn Read + Send + 'a>,
}

impl<'a> NamedStream<'a> {
    /// A labelled stream (`label` becomes the JSONL `stream` field and
    /// the `{stream="..."}` metric label).
    pub fn new(label: impl Into<String>, reader: impl Read + Send + 'a) -> Self {
        NamedStream {
            label: Some(label.into()),
            reader: Box::new(reader),
        }
    }

    /// An unlabelled stream: events carry no `stream` field and no
    /// session open/close markers — byte-identical to the legacy
    /// single-stream [`Gateway::run`](crate::pipeline::Gateway::run).
    pub fn unlabelled(reader: impl Read + Send + 'a) -> Self {
        NamedStream {
            label: None,
            reader: Box::new(reader),
        }
    }
}

/// Summary of one session at the end of a server run.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// The session id.
    pub id: SessionId,
    /// The tenant label (`None` for unlabelled streams).
    pub label: Option<String>,
    /// The session's own counters.
    pub metrics: MetricsSnapshot,
}

/// Capture-buffer pool counters at the end of a run (the churn test's
/// leak oracle: every checked-out buffer must be back, so
/// `idle <= misses` always, and a session churn must not grow `misses`
/// unboundedly).
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    /// Checkouts served from the free-list.
    pub hits: u64,
    /// Checkouts that had to allocate.
    pub misses: u64,
    /// Buffers idle in the pool right now.
    pub idle: usize,
}

/// Final tally of one server run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Aggregate counters across every session.
    pub metrics: MetricsSnapshot,
    /// Session-lifecycle counters.
    pub server: ServerMetricsSnapshot,
    /// Per-session summaries, in open order.
    pub sessions: Vec<SessionSummary>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Shared capture-pool counters at the end of the run.
    pub pool: PoolStats,
}

impl ServerReport {
    /// Aggregate ingest rate in megasamples per second.
    pub fn msamples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.metrics.samples_in as f64 / secs / 1e6
    }

    /// True when any session saw an accepted forgery.
    pub fn forgery_detected(&self) -> bool {
        self.metrics.forgeries > 0
    }

    /// The summary for one labelled session, if present.
    pub fn session(&self, label: &str) -> Option<&SessionSummary> {
        self.sessions
            .iter()
            .find(|s| s.label.as_deref() == Some(label))
    }
}

/// Raises a server's shutdown flag from another thread: the accept loop
/// stops, socket sessions read EOF at their next poll, and the run winds
/// down through the normal drain path.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown (idempotent).
    pub fn shutdown(&self) {
        self.0.store(true, Relaxed);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Relaxed)
    }
}

/// One unit of work crossing a shard queue.
struct WorkItem {
    session: Arc<Session>,
    /// Per-session event sequence number.
    seq: u64,
    capture: BurstCapture,
    enqueued: Instant,
    /// Trace span for this burst (`0` = tracing disabled).
    span: u64,
}

/// What reaches the sink. `Line` and `Close` slot into their session's
/// sequence order; `Note` lines (refusals) are written immediately.
enum SinkMsg {
    Line {
        session: SessionId,
        seq: u64,
        line: String,
        span: u64,
        classified: Instant,
    },
    Close {
        session: Arc<Session>,
        seq: u64,
        error: Option<String>,
    },
    Note {
        line: String,
    },
}

/// Where a run's sessions come from.
enum Feed<'a> {
    /// A fixed set of in-process streams, all started upfront.
    Streams(Vec<NamedStream<'a>>),
    /// A bound listener accepted from until shutdown/`stop_after`.
    Accept(Listener),
}

/// The sharded multi-stream gateway server.
///
/// # Examples
///
/// Serve a TCP listener until three sessions have been monitored:
///
/// ```no_run
/// use ctc_gateway::{GatewayServer, Input, Listener, ServerConfig};
///
/// let listener = Listener::bind(&Input::parse("tcp://127.0.0.1:4000")?)?;
/// let server = GatewayServer::new(ServerConfig {
///     stop_after: Some(3),
///     ..ServerConfig::default()
/// });
/// let report = server.serve(listener, &mut std::io::stdout(), &mut std::io::stderr())?;
/// eprintln!("sessions: {}", report.server.sessions_opened);
/// # Ok::<(), ctc_gateway::GatewayError>(())
/// ```
#[derive(Debug, Default)]
pub struct GatewayServer {
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    #[cfg(feature = "telemetry")]
    registry: Option<Arc<ctc_obs::Registry>>,
    #[cfg(feature = "telemetry")]
    trace: Option<Arc<ctc_obs::TraceSink>>,
    #[cfg(feature = "telemetry")]
    flight: Option<Arc<crate::flight::FlightCtl>>,
}

impl GatewayServer {
    /// Server with the given configuration.
    pub fn new(config: ServerConfig) -> Self {
        GatewayServer {
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            #[cfg(feature = "telemetry")]
            registry: None,
            #[cfg(feature = "telemetry")]
            trace: None,
            #[cfg(feature = "telemetry")]
            flight: None,
        }
    }

    /// Publishes runs into `registry`: aggregate counters under the
    /// canonical unlabelled `ctc_*` names, per-session counters under
    /// `ctc_gateway_*{stream="..."}`, session lifecycle under
    /// `ctc_sessions_*`.
    #[cfg(feature = "telemetry")]
    pub fn with_registry(mut self, registry: Arc<ctc_obs::Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Records per-stage span intervals into `trace`.
    #[cfg(feature = "telemetry")]
    pub fn with_trace_sink(mut self, trace: Arc<ctc_obs::TraceSink>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a flight recorder: a bounded ring journal of bursts,
    /// stage boundaries, verdicts (with per-feature scores), drops and
    /// session lifecycle, recorded wait-free from the hot path. With
    /// [`FlightOptions::out`](crate::flight::FlightOptions::out) set, a
    /// trigger — first accepted forgery, per-session drop-budget
    /// exhaustion, or `SIGUSR1` (install the handler with
    /// [`ctc_obs::flight::install_sigusr1_handler`]) — dumps a
    /// self-contained JSON incident snapshot there.
    #[cfg(feature = "telemetry")]
    pub fn with_flight(mut self, options: crate::flight::FlightOptions) -> Self {
        self.flight = Some(Arc::new(crate::flight::FlightCtl::new(options)));
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A handle that stops this server's accept loop and unwedges its
    /// socket sessions (they read EOF at the next poll).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.shutdown.clone())
    }

    /// Accepts sessions from `listener` until shutdown (or `stop_after`
    /// sessions), multiplexing them through the shared engine. Each
    /// accepted connection becomes a labelled session (`s1`, `s2`, …);
    /// its events carry the label in the `stream` field, in per-session
    /// sequence order. A client read error closes that session (counted,
    /// reported in its `close` event) without disturbing the others.
    ///
    /// # Errors
    ///
    /// Fatal server errors only: accept failure
    /// ([`GatewayError::Accept`]) or a broken event/stats sink
    /// ([`GatewayError::SinkWrite`]). A graceful shutdown returns the
    /// report, not an error.
    pub fn serve<W, E>(
        &self,
        listener: Listener,
        events: &mut W,
        stats: &mut E,
    ) -> Result<ServerReport, GatewayError>
    where
        W: Write + Send,
        E: Write,
    {
        listener
            .set_nonblocking(true)
            .map_err(GatewayError::Accept)?;
        self.run_feed(Feed::Accept(listener), events, stats)
    }

    /// Runs a fixed set of in-process streams through the engine — the
    /// transport-free form of [`serve`](Self::serve), and what the
    /// deprecated single-stream `Gateway::run` wraps.
    ///
    /// # Errors
    ///
    /// Unlike `serve`, a stream read error here is fatal
    /// ([`GatewayError::Read`]) — the caller handed the readers over, so
    /// a broken one is a caller bug, not client weather.
    pub fn run_streams<W, E>(
        &self,
        streams: Vec<NamedStream<'_>>,
        events: &mut W,
        stats: &mut E,
    ) -> Result<ServerReport, GatewayError>
    where
        W: Write + Send,
        E: Write,
    {
        self.run_feed(Feed::Streams(streams), events, stats)
    }

    /// The engine shared by both feeds: shards, workers, sink, and the
    /// feed-specific supervisor on the calling thread.
    fn run_feed<'a, W, E>(
        &self,
        feed: Feed<'a>,
        events: &mut W,
        stats: &mut E,
    ) -> Result<ServerReport, GatewayError>
    where
        W: Write + Send,
        E: Write,
    {
        let cfg = &self.config;
        let gw = &cfg.gateway;
        let workers = gw.workers.max(1);
        let shard_count = if cfg.shards == 0 { workers } else { cfg.shards };
        let shards: Vec<ShardQueue<WorkItem>> = (0..shard_count)
            .map(|_| ShardQueue::new(gw.queue_depth.max(1)))
            .collect();
        let aggregate = Metrics::new();
        let server_metrics = ServerMetrics::new();
        let mut factory = MonitorFactory::new(gw.energy, gw.receiver.clone(), gw.detector)
            .with_max_burst(gw.max_burst);
        if let Some(pipeline) = &gw.pipeline {
            factory = factory.with_pipeline(pipeline.clone());
        }
        let scores = gw
            .pipeline
            .as_ref()
            .map(|p| ScoreBoard::new(p.feature_names()));
        let processor = factory.processor().clone();
        let (tx, rx) = mpsc::channel::<SinkMsg>();
        let started = Instant::now();
        let fatal_in_streams = matches!(feed, Feed::Streams(_));

        #[cfg(feature = "telemetry")]
        if let Some(registry) = &self.registry {
            crate::obs::register_run(registry, &aggregate, factory.pool());
            crate::obs::register_server(registry, &server_metrics);
            if let Some(board) = &scores {
                crate::obs::register_scores(registry, board);
            }
        }
        #[cfg(feature = "telemetry")]
        if let Some(flight) = &self.flight {
            flight.begin_run(self.registry.clone(), cfg);
            if let Some(board) = &scores {
                flight
                    .recorder()
                    .set_feature_names(board.names().iter().map(|s| s.to_string()).collect());
            }
        }
        #[cfg(feature = "telemetry")]
        let obs = RunObs::new(self.trace.as_deref(), self.flight.as_deref());
        #[cfg(not(feature = "telemetry"))]
        let obs = RunObs::disabled();

        type SessionOutcome = (Arc<Session>, io::Result<()>);
        let (outcomes, sink_result, fatal): (
            Vec<SessionOutcome>,
            io::Result<()>,
            Option<GatewayError>,
        ) = std::thread::scope(|scope| {
            let worker_handles: Vec<_> = (0..workers)
                .map(|w| {
                    let tx = tx.clone();
                    let shards = &shards;
                    let aggregate = &aggregate;
                    let processor = processor.clone();
                    let scores = scores.clone();
                    scope.spawn(move || {
                        worker_loop(
                            w % shard_count,
                            shards,
                            &processor,
                            aggregate,
                            scores.as_ref(),
                            &tx,
                            obs,
                        )
                    })
                })
                .collect();
            let sink_handle = scope.spawn(|| sink_loop(rx, events, obs));

            // Everything a session thread needs, captured by reference so
            // the closure can be called for late-arriving connections.
            let spawn_session =
                |reader: Box<dyn Read + Send + 'a>, session: Arc<Session>, peer: Option<String>| {
                    let tx = tx.clone();
                    let shards = &shards;
                    let aggregate = &aggregate;
                    let server_metrics = &server_metrics;
                    let factory = &factory;
                    let chunk_samples = gw.chunk_samples;
                    scope.spawn(move || {
                        obs.flight_record(|rec| {
                            FlightEvent::new(EventKind::SessionOpen, session.id(), 0, rec.now_us())
                                .with_args(session.shard() as u64, 0)
                        });
                        if session.label().is_some() {
                            let seq = session.next_seq();
                            let _ = tx.send(SinkMsg::Line {
                                session: session.id(),
                                seq,
                                line: session_open_line(&session, seq, peer.as_deref()),
                                span: 0,
                                classified: Instant::now(),
                            });
                        }
                        let shard = &shards[session.shard()];
                        let result = session_ingest(
                            reader,
                            &session,
                            factory,
                            shard,
                            aggregate,
                            &tx,
                            chunk_samples,
                            obs,
                        );
                        match &result {
                            Ok(()) => server_metrics.sessions_closed.fetch_add(1, Relaxed),
                            Err(_) => server_metrics.sessions_errored.fetch_add(1, Relaxed),
                        };
                        obs.flight_record(|rec| {
                            FlightEvent::new(EventKind::SessionClose, session.id(), 0, rec.now_us())
                                .with_args(result.is_err() as u64, 0)
                        });
                        if session.label().is_some() {
                            let seq = session.next_seq();
                            let _ = tx.send(SinkMsg::Close {
                                session: session.clone(),
                                seq,
                                error: result.as_ref().err().map(|e| e.to_string()),
                            });
                        }
                        result
                    })
                };

            let mut sessions: Vec<Arc<Session>> = Vec::new();
            let mut handles = Vec::new();
            let mut fatal: Option<GatewayError> = None;
            let mut last_stats = started;
            let mut emit_stats = |stats: &mut E, streams: Option<u64>| -> io::Result<()> {
                if let Some(interval) = gw.stats_interval {
                    if last_stats.elapsed() >= interval {
                        last_stats = Instant::now();
                        let queue_len: usize = shards.iter().map(ShardQueue::len).sum();
                        let line = stats_line(&aggregate.snapshot(), started, queue_len, streams);
                        writeln!(stats, "{line}")?;
                        stats.flush()?;
                    }
                }
                Ok(())
            };
            let open_session =
                |sessions: &mut Vec<Arc<Session>>, label: Option<String>| -> Arc<Session> {
                    let id = sessions.len() as u64 + 1;
                    let shard = (id - 1) as usize % shard_count;
                    let session = Arc::new(Session::new(id, label, shard));
                    #[cfg(feature = "telemetry")]
                    if let (Some(registry), Some(label)) = (&self.registry, session.label()) {
                        crate::obs::register_session(registry, label, session.metrics());
                    }
                    #[cfg(feature = "telemetry")]
                    if let Some(flight) = &self.flight {
                        flight.track_session(session.clone());
                    }
                    server_metrics.sessions_opened.fetch_add(1, Relaxed);
                    sessions.push(session.clone());
                    session
                };

            match feed {
                Feed::Streams(streams) => {
                    for stream in streams {
                        let session = open_session(&mut sessions, stream.label);
                        handles.push(spawn_session(stream.reader, session, None));
                    }
                    // No `streams` field here: a `run_streams` feed (the
                    // legacy wrapper included) keeps the original stats
                    // shape byte-for-byte.
                    if gw.stats_interval.is_some() {
                        while handles.iter().any(|h| !h.is_finished()) {
                            obs.flight_poll();
                            if let Err(e) = emit_stats(&mut *stats, None) {
                                fatal = Some(GatewayError::sink(e));
                                break;
                            }
                            std::thread::sleep(DRAIN_POLL);
                        }
                    }
                }
                Feed::Accept(listener) => {
                    let max_streams = cfg.max_streams.max(1);
                    loop {
                        if self.shutdown.load(Relaxed) {
                            break;
                        }
                        if cfg
                            .stop_after
                            .is_some_and(|limit| sessions.len() as u64 >= limit)
                        {
                            break;
                        }
                        match listener.accept() {
                            Ok((conn, peer)) => {
                                let active = handles.iter().filter(|h| !h.is_finished()).count();
                                if active >= max_streams {
                                    server_metrics.sessions_refused.fetch_add(1, Relaxed);
                                    let _ = tx.send(SinkMsg::Note {
                                        line: session_refused_line(&peer, max_streams),
                                    });
                                    continue;
                                }
                                let label = format!("s{}", sessions.len() + 1);
                                let session = open_session(&mut sessions, Some(label));
                                let reader = Box::new(conn.with_shutdown(self.shutdown.clone()));
                                handles.push(spawn_session(reader, session, Some(peer)));
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                obs.flight_poll();
                                let active = handles.iter().filter(|h| !h.is_finished()).count();
                                if let Err(we) = emit_stats(&mut *stats, Some(active as u64)) {
                                    fatal = Some(GatewayError::sink(we));
                                    break;
                                }
                                std::thread::sleep(ACCEPT_POLL);
                            }
                            Err(e) => {
                                fatal = Some(GatewayError::Accept(e));
                                break;
                            }
                        }
                    }
                    if fatal.is_some() {
                        // Unwedge the sessions so the drain below ends.
                        self.shutdown.store(true, Relaxed);
                    }
                    while handles.iter().any(|h| !h.is_finished()) {
                        obs.flight_poll();
                        let active = handles.iter().filter(|h| !h.is_finished()).count();
                        // Keep draining even if a stats write fails; the
                        // first error still wins below.
                        if let Err(we) = emit_stats(&mut *stats, Some(active as u64)) {
                            fatal.get_or_insert(GatewayError::sink(we));
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }

            let outcomes: Vec<SessionOutcome> = sessions
                .into_iter()
                .zip(handles)
                .map(|(session, handle)| {
                    let result = handle.join().expect("session ingest panicked");
                    (session, result)
                })
                .collect();
            for shard in &shards {
                shard.close();
            }
            for handle in worker_handles {
                handle.join().expect("worker panicked");
            }
            drop(tx);
            let sink_result = sink_handle.join().expect("sink panicked");
            (outcomes, sink_result, fatal)
        });

        // One last poll so a SIGUSR1 that landed while sessions drained
        // (feeds without a polling supervisor loop) still dumps.
        obs.flight_poll();

        if let Some(err) = fatal {
            return Err(err);
        }
        if fatal_in_streams {
            for (session, result) in &outcomes {
                if let Some(source) = result.as_ref().err() {
                    return Err(GatewayError::Read {
                        stream: session
                            .label()
                            .map(str::to_string)
                            .unwrap_or_else(|| format!("#{}", session.id())),
                        source: io::Error::new(source.kind(), source.to_string()),
                    });
                }
            }
        }
        sink_result.map_err(GatewayError::sink)?;

        // Span records buffer in the sink; push them out while the run's
        // counters are still being finalised so nothing is lost if the
        // caller exits right after reading the report.
        #[cfg(feature = "telemetry")]
        if let Some(trace) = &self.trace {
            trace.flush();
        }

        let report = ServerReport {
            metrics: aggregate.snapshot(),
            server: server_metrics.snapshot(),
            sessions: outcomes
                .iter()
                .map(|(session, _)| SessionSummary {
                    id: session.id(),
                    label: session.label().map(str::to_string),
                    metrics: session.snapshot(),
                })
                .collect(),
            elapsed: started.elapsed(),
            pool: PoolStats {
                hits: factory.pool().hits(),
                misses: factory.pool().misses(),
                idle: factory.pool().idle(),
            },
        };
        let streams_field = if fatal_in_streams { None } else { Some(0) };
        writeln!(
            stats,
            "{}",
            stats_line(&report.metrics, started, 0, streams_field)
        )
        .map_err(GatewayError::sink)?;
        stats.flush().map_err(GatewayError::sink)?;
        Ok(report)
    }
}

/// One session's ingest loop: read chunks, advance its splitter, enqueue
/// captures on its shard (the shard's drop budget arbitrates overload).
#[allow(clippy::too_many_arguments)]
fn session_ingest<R: Read>(
    input: R,
    session: &Arc<Session>,
    factory: &MonitorFactory,
    shard: &ShardQueue<WorkItem>,
    aggregate: &Metrics,
    tx: &mpsc::Sender<SinkMsg>,
    chunk_samples: usize,
    obs: RunObs<'_>,
) -> io::Result<()> {
    let mut reader = Cf32Reader::new(input).with_chunk_samples(chunk_samples.max(1));
    let mut splitter = factory.splitter();
    let mut chunk = Vec::new();
    let mut captures: Vec<BurstCapture> = Vec::new();
    let own = session.metrics();

    // `ingest_start` is when the chunk that completed the burst was read;
    // the span's `ingest` stage covers read→enqueue and hands its end
    // instant to the `queue` stage untouched, keeping the per-frame stage
    // chain contiguous.
    let enqueue = |captures: &mut Vec<BurstCapture>, ingest_start: Instant| {
        for capture in captures.drain(..) {
            aggregate.bursts.fetch_add(1, Relaxed);
            own.bursts.fetch_add(1, Relaxed);
            let seq = session.next_seq();
            let span = obs.next_span();
            let enqueued = Instant::now();
            obs.record(session.id(), span, seq, "ingest", ingest_start, enqueued);
            obs.flight_record(|rec| {
                FlightEvent::new(EventKind::Burst, session.id(), seq, rec.now_us())
                    .with_args(capture.burst.start as u64, capture.samples.len() as u64)
            });
            let item = WorkItem {
                session: session.clone(),
                seq,
                capture,
                enqueued,
                span,
            };
            if let Evicted::Item { item: evicted, .. } = shard.push(session.id(), item) {
                shed(evicted, aggregate, tx, obs);
            }
            obs.flight_record(|rec| {
                FlightEvent::new(EventKind::QueueDepth, session.id(), seq, rec.now_us())
                    .with_args(shard.len() as u64, session.shard() as u64)
            });
        }
    };

    loop {
        let chunk_read = Instant::now();
        let n = reader.read_chunk(&mut chunk)?;
        if n == 0 {
            break;
        }
        aggregate.chunks_in.fetch_add(1, Relaxed);
        own.chunks_in.fetch_add(1, Relaxed);
        aggregate.samples_in.fetch_add(n as u64, Relaxed);
        own.samples_in.fetch_add(n as u64, Relaxed);
        splitter.push_into(&chunk, &mut captures);
        enqueue(&mut captures, chunk_read);
    }
    let finish_started = Instant::now();
    splitter.finish_into(&mut captures);
    enqueue(&mut captures, finish_started);
    Ok(())
}

/// Accounts one burst shed by a shard's drop budget and fills its
/// sequence hole so the sink never waits on work that will not arrive.
fn shed(evicted: WorkItem, aggregate: &Metrics, tx: &mpsc::Sender<SinkMsg>, obs: RunObs<'_>) {
    let now = Instant::now();
    let samples = evicted.capture.samples.len() as u64;
    for m in [aggregate, evicted.session.metrics()] {
        m.bursts_dropped.fetch_add(1, Relaxed);
        m.samples_dropped.fetch_add(samples, Relaxed);
    }
    obs.record(
        evicted.session.id(),
        evicted.span,
        evicted.seq,
        "drop",
        evicted.enqueued,
        now,
    );
    let ticket = obs.flight_record(|rec| {
        FlightEvent::new(
            EventKind::Drop,
            evicted.session.id(),
            evicted.seq,
            rec.now_us(),
        )
        .with_args(samples, micros_between(evicted.enqueued, now))
    });
    obs.flight_drop_check(&evicted.session, ticket);
    let _ = tx.send(SinkMsg::Line {
        session: evicted.session.id(),
        seq: evicted.seq,
        line: dropped_line(evicted.session.label(), &evicted.capture),
        span: 0,
        classified: now,
    });
}

/// Worker: drain the home shard, steal from the others when it is empty,
/// block briefly only when every shard is dry.
fn worker_loop(
    home: usize,
    shards: &[ShardQueue<WorkItem>],
    processor: &FrameProcessor,
    aggregate: &Metrics,
    scores: Option<&ScoreBoard>,
    tx: &mpsc::Sender<SinkMsg>,
    obs: RunObs<'_>,
) {
    let n = shards.len();
    loop {
        let mut found = None;
        for i in 0..n {
            if let Some((_key, item)) = shards[(home + i) % n].try_pop() {
                found = Some(item);
                break;
            }
        }
        let item = match found {
            Some(item) => item,
            None if shards.iter().all(ShardQueue::is_closed) => {
                // Closed shards cannot gain items; one more scan beats the
                // close/empty race, then the worker is done.
                match shards.iter().find_map(ShardQueue::try_pop) {
                    Some((_key, item)) => item,
                    None => break,
                }
            }
            None => match shards[home].pop_timeout(WORKER_IDLE_WAIT) {
                Some((_key, item)) => item,
                None => continue,
            },
        };
        process_item(item, processor, aggregate, scores, tx, obs);
    }
}

/// Decode, classify, render, send — with per-stage timing, counted into
/// both the session's and the aggregate metrics.
fn process_item(
    item: WorkItem,
    processor: &FrameProcessor,
    aggregate: &Metrics,
    scores: Option<&ScoreBoard>,
    tx: &mpsc::Sender<SinkMsg>,
    obs: RunObs<'_>,
) {
    let WorkItem {
        session,
        seq,
        capture,
        enqueued,
        span,
    } = item;
    let dequeued = Instant::now();
    let queue_us = micros_between(enqueued, dequeued);
    let reception = processor.decode(&capture);
    let decoded = Instant::now();
    let event = processor.classify(&capture, reception);
    let done = Instant::now();
    if let (Some(board), Some(s)) = (scores, event.scores.as_ref()) {
        board.record(s);
    }
    obs.record(session.id(), span, seq, "queue", enqueued, dequeued);
    obs.record(session.id(), span, seq, "decode", dequeued, decoded);
    obs.record(session.id(), span, seq, "classify", decoded, done);
    let total_us = micros_between(enqueued, done);
    aggregate.latency.record(total_us);
    session.metrics().latency.record(total_us);
    if event.payload.is_some() {
        aggregate.frames_decoded.fetch_add(1, Relaxed);
        session.metrics().frames_decoded.fetch_add(1, Relaxed);
    }
    if event.accepted_forgery() {
        aggregate.forgeries.fetch_add(1, Relaxed);
        session.metrics().forgeries.fetch_add(1, Relaxed);
    }
    // The verdict journal entry carries everything the incident report
    // needs to explain the call: flags, the DE² statistic, the fused
    // score and the per-feature scores already computed for this burst.
    let verdict_ticket = obs.flight_record(|rec| {
        let mut flags = 0u64;
        if event.payload.is_some() {
            flags |= FlightEvent::VERDICT_DECODED;
        }
        if event.verdict.is_some_and(|v| v.is_attack) {
            flags |= FlightEvent::VERDICT_ATTACK;
        }
        if event.accepted_forgery() {
            flags |= FlightEvent::VERDICT_ACCEPTED;
        }
        let de2 = event.verdict.map(|v| v.de_squared).unwrap_or(f64::NAN);
        let ev = FlightEvent::new(EventKind::Verdict, session.id(), seq, rec.now_us())
            .with_args(flags, de2.to_bits());
        match &event.scores {
            Some(s) => ev.with_scores(s.fused, s.features.entries().iter().map(|(_, v)| *v)),
            None => ev,
        }
    });
    if event.accepted_forgery() {
        // The exit-3 condition: dump one incident snapshot whose journal
        // ends at exactly this verdict.
        obs.flight_forgery(verdict_ticket);
    }
    let line = frame_line(
        session.label(),
        seq,
        &event,
        queue_us,
        micros_between(dequeued, decoded),
        micros_between(decoded, done),
        total_us,
    );
    // A send error means the sink hit an output error and hung up; keep
    // draining the queue so ingest accounting stays truthful.
    let _ = tx.send(SinkMsg::Line {
        session: session.id(),
        seq,
        line,
        span,
        classified: done,
    });
}

/// One session's reorder state inside the sink.
#[derive(Default)]
struct SessionSink {
    pending: BTreeMap<u64, Slot>,
    next: u64,
}

enum Slot {
    Line {
        line: String,
        span: u64,
        classified: Instant,
    },
    Close {
        session: Arc<Session>,
        error: Option<String>,
    },
}

/// Sink: restore per-session sequence order (workers race) and write
/// JSON lines. Sessions interleave; within a session, order is exact.
fn sink_loop<W: Write>(
    rx: mpsc::Receiver<SinkMsg>,
    events: &mut W,
    obs: RunObs<'_>,
) -> io::Result<()> {
    let mut sessions: HashMap<SessionId, SessionSink> = HashMap::new();
    let mut pending_total = 0usize;
    for msg in rx.iter() {
        match msg {
            SinkMsg::Note { line } => {
                writeln!(events, "{line}")?;
            }
            SinkMsg::Line {
                session,
                seq,
                line,
                span,
                classified,
            } => {
                let sink = sessions.entry(session).or_default();
                sink.pending.insert(
                    seq,
                    Slot::Line {
                        line,
                        span,
                        classified,
                    },
                );
                pending_total += 1;
                let (emitted, closed) = drain_session(session, sink, events, obs)?;
                pending_total -= emitted;
                if closed {
                    sessions.remove(&session);
                }
            }
            SinkMsg::Close {
                session,
                seq,
                error,
            } => {
                let id = session.id();
                let sink = sessions.entry(id).or_default();
                sink.pending.insert(seq, Slot::Close { session, error });
                pending_total += 1;
                let (emitted, closed) = drain_session(id, sink, events, obs)?;
                pending_total -= emitted;
                if closed {
                    sessions.remove(&id);
                }
            }
        }
        if pending_total == 0 {
            events.flush()?;
        }
    }
    // Channel closed: flush whatever is contiguous (holes can only mean a
    // worker died, which join() will have surfaced as a panic).
    for (id, sink) in sessions.iter_mut() {
        drain_session(*id, sink, events, obs)?;
    }
    events.flush()
}

/// Writes `sink`'s contiguous prefix; returns (lines written, session
/// closed).
fn drain_session<W: Write>(
    session: SessionId,
    sink: &mut SessionSink,
    events: &mut W,
    obs: RunObs<'_>,
) -> io::Result<(usize, bool)> {
    let mut emitted = 0usize;
    let mut closed = false;
    while let Some(slot) = sink.pending.remove(&sink.next) {
        match slot {
            Slot::Line {
                line,
                span,
                classified,
            } => {
                writeln!(events, "{line}")?;
                obs.record(session, span, sink.next, "emit", classified, Instant::now());
            }
            Slot::Close { session, error } => {
                let line = session_close_line(&session, sink.next, error.as_deref());
                writeln!(events, "{line}")?;
                closed = true;
            }
        }
        sink.next += 1;
        emitted += 1;
    }
    Ok((emitted, closed))
}

fn micros_between(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_micros() as u64
}

/// Renders one frame event as a JSON line. Unlabelled sessions omit the
/// `stream` field entirely, keeping legacy single-stream output
/// byte-identical.
fn frame_line(
    stream: Option<&str>,
    seq: u64,
    event: &StreamEvent,
    queue_us: u64,
    decode_us: u64,
    classify_us: u64,
    total_us: u64,
) -> String {
    let latency = JsonObject::new()
        .uint("queue_us", queue_us)
        .uint("decode_us", decode_us)
        .uint("classify_us", classify_us)
        .uint("total_us", total_us)
        .finish();
    let line = JsonObject::new()
        .string("type", "frame")
        .string_if("stream", stream)
        .uint("seq", seq)
        .uint("burst_start", event.burst.start as u64)
        .uint("burst_end", event.burst.end as u64)
        .bool("truncated", event.truncated)
        .opt("payload_hex", event.payload.as_deref(), |o, k, p| {
            o.string(k, &hex(p))
        })
        .opt(
            "de2",
            event.verdict.map(|v| v.de_squared),
            JsonObject::float,
        )
        .opt("verdict", event.verdict, |o, k, v| {
            o.string(k, if v.is_attack { "attack" } else { "authentic" })
        });
    // Pipeline runs add the fused score and the named feature vector;
    // legacy runs carry no `scores`, keeping their lines byte-identical.
    let line = match &event.scores {
        Some(scores) => {
            let mut features = JsonObject::new();
            for (name, value) in scores.features.entries() {
                features = features.float(name, *value);
            }
            line.float("score", scores.fused)
                .raw("features", &features.finish())
        }
        None => line,
    };
    line.bool("accepted_forgery", event.accepted_forgery())
        .raw("latency", &latency)
        .finish()
}

/// Renders the event for a burst shed by the drop budget.
fn dropped_line(stream: Option<&str>, capture: &BurstCapture) -> String {
    JsonObject::new()
        .string("type", "dropped")
        .string_if("stream", stream)
        .uint("burst_start", capture.burst.start as u64)
        .uint("burst_end", capture.burst.end as u64)
        .uint("samples", capture.samples.len() as u64)
        .finish()
}

/// Renders a session-open marker (labelled sessions only).
fn session_open_line(session: &Session, seq: u64, peer: Option<&str>) -> String {
    JsonObject::new()
        .string("type", "session")
        .string_if("stream", session.label())
        .uint("seq", seq)
        .string("event", "open")
        .string_if("peer", peer)
        .finish()
}

/// Renders a session-close marker with the session's final counters.
fn session_close_line(session: &Session, seq: u64, error: Option<&str>) -> String {
    let s = session.snapshot();
    JsonObject::new()
        .string("type", "session")
        .string_if("stream", session.label())
        .uint("seq", seq)
        .string("event", "close")
        .uint("samples_in", s.samples_in)
        .uint("bursts", s.bursts)
        .uint("frames_decoded", s.frames_decoded)
        .uint("forgeries", s.forgeries)
        .uint("bursts_dropped", s.bursts_dropped)
        .string_if("error", error)
        .finish()
}

/// Renders the marker for a connection refused at the session ceiling.
fn session_refused_line(peer: &str, max_streams: usize) -> String {
    JsonObject::new()
        .string("type", "session")
        .string("event", "refused")
        .string("peer", peer)
        .uint("max_streams", max_streams as u64)
        .finish()
}

/// Renders one stats line. `streams` (active sessions) appears only in
/// server mode; legacy single-stream stats stay byte-identical.
fn stats_line(
    s: &MetricsSnapshot,
    started: Instant,
    queue_len: usize,
    streams: Option<u64>,
) -> String {
    let secs = started.elapsed().as_secs_f64();
    let msps = if secs > 0.0 {
        s.samples_in as f64 / secs / 1e6
    } else {
        0.0
    };
    let line = JsonObject::new()
        .string("type", "stats")
        .uint("elapsed_ms", (secs * 1e3) as u64)
        .uint("samples_in", s.samples_in)
        .uint("chunks_in", s.chunks_in)
        .uint("bursts", s.bursts)
        .uint("frames_decoded", s.frames_decoded)
        .uint("forgeries", s.forgeries)
        .uint("bursts_dropped", s.bursts_dropped)
        .uint("samples_dropped", s.samples_dropped)
        .uint("queue_len", queue_len as u64);
    let line = match streams {
        Some(n) => line.uint("streams", n),
        None => line,
    };
    line.opt("p50_us", s.p50_us, JsonObject::uint)
        .opt("p99_us", s.p99_us, JsonObject::uint)
        .float("msamples_per_sec", (msps * 1e3).round() / 1e3)
        .finish()
}
